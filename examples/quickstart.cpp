// Quickstart: monitor a small distributed application end to end.
//
//   1. Define interfaces in IDL (idl/bank.idl) and build them with
//      `idlc --instrument` (see idl/CMakeLists.txt).
//   2. Host servants in ProcessDomains ("processes") connected by a Fabric.
//   3. Drive calls through the generated proxies -- monitoring is entirely
//      transparent to this code.
//   4. Collect the scattered logs, rebuild the Dynamic System Call Graph,
//      annotate latency, and print it.
#include <cstdio>
#include <map>
#include <memory>

#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "bank.causeway.h"
#include "common/work.h"
#include "monitor/collector.h"
#include "monitor/tss.h"

using namespace causeway;

namespace {

// --- user-written servant implementations: no monitoring code anywhere ---

class AuditLogImpl final : public Bank::AuditLog {
 public:
  void record(const std::string& entry) override {
    burn_cpu(20 * kNanosPerMicro);  // pretend to persist
    std::printf("  [audit] %s\n", entry.c_str());
  }
};

class LedgerImpl final : public Bank::Ledger {
 public:
  LedgerImpl(std::unique_ptr<Bank::AuditLogProxy> audit)
      : audit_(std::move(audit)) {}

  std::int64_t balance(std::int64_t account) override {
    burn_cpu(30 * kNanosPerMicro);
    return balances_[account];
  }

  void deposit(std::int64_t account, std::int64_t cents) override {
    burn_cpu(50 * kNanosPerMicro);
    balances_[account] += cents;
    audit_->record("deposit " + std::to_string(cents) + " -> " +
                   std::to_string(account));
  }

  void transfer(const Bank::Transfer& t) override {
    burn_cpu(80 * kNanosPerMicro);
    auto& from = balances_[t.from_account];
    if (from < t.cents) {
      Bank::InsufficientFunds error;
      error.account = t.from_account;
      error.available_cents = from;
      throw error;
    }
    from -= t.cents;
    balances_[t.to_account] += t.cents;
    audit_->record("transfer " + std::to_string(t.cents));
  }

 private:
  std::unique_ptr<Bank::AuditLogProxy> audit_;
  std::map<std::int64_t, std::int64_t> balances_;
};

}  // namespace

int main() {
  // Two "processes" on one fabric: the bank server and a client.
  orb::Fabric fabric;
  fabric.set_default_latency(200 * kNanosPerMicro);  // a LAN-ish link

  orb::DomainOptions server_opts;
  server_opts.process_name = "bank-server";
  server_opts.processor_type = "pa-risc";
  orb::ProcessDomain server(fabric, server_opts);

  orb::DomainOptions client_opts;
  client_opts.process_name = "teller";
  client_opts.clock_skew = 3600 * kNanosPerSecond;  // clocks need not agree
  orb::ProcessDomain client(fabric, client_opts);

  // Activate the audit log and the ledger (which calls the audit log).
  auto audit_ref =
      Bank::activate_AuditLog(server, std::make_shared<AuditLogImpl>());
  auto ledger_ref = Bank::activate_Ledger(
      server, std::make_shared<LedgerImpl>(
                  std::make_unique<Bank::AuditLogProxy>(server, audit_ref)));

  // Drive a transaction from the client through the generated proxy.
  Bank::LedgerProxy ledger(client, ledger_ref);
  std::printf("== driving the bank ==\n");
  ledger.deposit(1001, 50'000);
  ledger.deposit(1002, 10'000);
  Bank::Transfer t;
  t.from_account = 1001;
  t.to_account = 1002;
  t.cents = 20'000;
  ledger.transfer(t);
  std::printf("balance(1001) = %lld\n",
              static_cast<long long>(ledger.balance(1001)));

  // Typed exceptions cross the wire intact.
  try {
    Bank::Transfer big;
    big.from_account = 1002;
    big.to_account = 1001;
    big.cents = 999'999;
    ledger.transfer(big);
  } catch (const Bank::InsufficientFunds& e) {
    std::printf("rejected: account %lld has only %lld cents\n",
                static_cast<long long>(e.account),
                static_cast<long long>(e.available_cents));
  }

  // Off-line characterization: collect, rebuild, annotate, render.
  monitor::Collector collector;
  collector.attach(&client.monitor_runtime());
  collector.attach(&server.monitor_runtime());
  analysis::LogDatabase db;
  db.ingest(collector.collect());

  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_latency(dscg);

  std::printf("\n== Dynamic System Call Graph ==\n%s",
              analysis::to_text(dscg).c_str());
  std::printf("(%zu calls reconstructed, %zu anomalies)\n", dscg.call_count(),
              dscg.anomaly_count());
  return 0;
}
