// A CORBA/COM hybrid application (paper Sec. 2.3): an order front end on the
// ORB, a pricing engine living in a COM single-threaded apartment, and an
// inventory service back on the ORB.  One causal chain crosses the
// infrastructure boundary twice through the FTL-aware bridge; the example
// then rebuilds it and prints the seamless cross-runtime call tree -- and
// repeats the run with a naive bridge to show the chain break.
#include <cstdio>

#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "bridge/bridge.h"
#include "com/stubs.h"
#include "common/work.h"
#include "monitor/collector.h"
#include "monitor/tss.h"
#include "orb/stubs.h"

using namespace causeway;

namespace {

// CORBA inventory servant (hand-written against the stub support layer).
class Inventory final : public orb::Servant {
 public:
  std::string_view interface_name() const override {
    return "Shop::Inventory";
  }
  orb::DispatchResult dispatch(orb::DispatchContext& ctx, orb::MethodId,
                               WireCursor& in, WireBuffer& out) override {
    orb::SkeletonGuard guard(
        ctx, monitor::CallIdentity{"Shop::Inventory", "reserve",
                                   ctx.object_key},
        in, true);
    const std::string sku = in.read_string();
    burn_cpu(40 * kNanosPerMicro);
    guard.body_end();
    out.write_bool(sku != "sold-out");
    guard.seal(out);
    return {};
  }
};

// COM pricing engine; calls back into CORBA for inventory.
class PricingEngine final : public com::ComServant {
 public:
  PricingEngine(orb::ProcessDomain& domain, orb::ObjectRef inventory)
      : domain_(domain), inventory_(std::move(inventory)) {}

  std::string_view interface_name() const override { return "Shop::Pricing"; }

  com::ComDispatchResult com_dispatch(com::ComDispatchContext& ctx,
                                      com::MethodId, WireCursor& in,
                                      WireBuffer& out) override {
    com::ComSkelGuard guard(
        ctx, monitor::CallIdentity{"Shop::Pricing", "quote", ctx.object_id},
        in, true);
    const std::string sku = in.read_string();
    burn_cpu(60 * kNanosPerMicro);

    orb::ClientCall call(domain_, inventory_,
                         {"Shop::Inventory", "reserve", 0, false}, true);
    call.request().write_string(sku);
    const bool in_stock = call.invoke().read_bool();

    guard.body_end();
    out.write_i32(in_stock ? 1999 : -1);
    guard.seal(out);
    return {};
  }

 private:
  orb::ProcessDomain& domain_;
  orb::ObjectRef inventory_;
};

void run(bridge::FtlPolicy policy) {
  monitor::tss_clear();
  orb::Fabric fabric;
  auto opts = [](const char* name) {
    orb::DomainOptions o;
    o.process_name = name;
    return o;
  };
  orb::ProcessDomain storefront(fabric, opts("storefront"));
  orb::ProcessDomain gateway(fabric, opts("gateway"));
  orb::ProcessDomain warehouse(fabric, opts("warehouse"));

  monitor::MonitorRuntime com_monitor(
      monitor::DomainIdentity{"pricing-host", "com-node", "nt-x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
  com::ComRuntime com_rt(&com_monitor);

  auto inventory_ref = warehouse.activate(std::make_shared<Inventory>());
  const auto sta = com_rt.create_sta();
  const auto pricing = com_rt.register_object(
      sta, com::ComPtr<com::ComServant>(
               new PricingEngine(gateway, inventory_ref)));
  auto bridged_ref = gateway.activate(std::make_shared<bridge::ComBackedServant>(
      "Shop::Pricing", com_rt, pricing, policy));

  // The storefront asks for two quotes.
  for (const char* sku : {"widget-7", "sold-out"}) {
    monitor::tss_clear();
    orb::ClientCall call(storefront, bridged_ref,
                         {"Shop::Pricing", "quote", 0, false}, true);
    call.request().write_string(sku);
    const std::int32_t cents = call.invoke().read_i32();
    std::printf("  quote(%-9s) = %d\n", sku, cents);
  }

  monitor::Collector collector;
  collector.attach(&storefront.monitor_runtime());
  collector.attach(&gateway.monitor_runtime());
  collector.attach(&warehouse.monitor_runtime());
  collector.attach(&com_monitor);
  analysis::LogDatabase db;
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_latency(dscg);

  std::printf("  -> %zu chains for 2 transactions (2 = seamless, 4 = "
              "broken at the bridge)\n%s\n",
              db.chains().size(), analysis::to_text(dscg).c_str());
  com_rt.shutdown();
  monitor::tss_clear();
}

}  // namespace

int main() {
  std::printf("== FTL-aware bridge ==\n");
  run(bridge::FtlPolicy::kForward);
  std::printf("== naive bridge (strips the hidden FTL) ==\n");
  run(bridge::FtlPolicy::kStrip);
  return 0;
}
