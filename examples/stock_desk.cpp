// A COM-side application built entirely from idlc --runtime=com generated
// bindings (idl/stock_com.idl): a pricing service in one single-threaded
// apartment, a risk checker in another, and a market-data feed posting
// oneway heartbeats.  The STA pricing engine calls the risk checker while
// blocked -- the message loop pumps, exactly the paper's COM scenario -- and
// the whole causal chain still reconstructs cleanly because the channel
// hooks and the inout FTL are in place.
#include <cstdio>
#include <map>
#include <memory>

#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "analysis/report.h"
#include "common/work.h"
#include "monitor/collector.h"
#include "monitor/tss.h"
#include "stock_com.causeway.h"

using namespace causeway;

namespace {

// Risk desk: only quotes under a price ceiling pass.
class RiskDeskImpl final : public Stock::Ticker {
 public:
  Stock::Quote quote(const std::string& symbol) override {
    burn_cpu(40 * kNanosPerMicro);  // risk model crunching
    Stock::Quote q;
    q.symbol = symbol;
    q.price_cents = 100'000;  // the approved ceiling
    q.volume = 0;
    return q;
  }
  Stock::QuoteBook book(Stock::Venue, std::int32_t) override { return {}; }
  void heartbeat(std::int64_t) override {}
  void set_price(const std::string&, std::int64_t) override {}
};

// Pricing engine: serves quotes, consults the risk desk on every one.
class PricingImpl final : public Stock::Ticker {
 public:
  explicit PricingImpl(std::unique_ptr<Stock::TickerComProxy> risk)
      : risk_(std::move(risk)) {}

  Stock::Quote quote(const std::string& symbol) override {
    auto it = prices_.find(symbol);
    if (it == prices_.end()) {
      Stock::UnknownSymbol unknown;
      unknown.symbol = symbol;
      throw unknown;
    }
    burn_cpu(25 * kNanosPerMicro);
    // Blocking outbound call from inside this STA: the apartment pumps.
    const Stock::Quote ceiling = risk_->quote(symbol);
    Stock::Quote q;
    q.symbol = symbol;
    q.price_cents = std::min(it->second, ceiling.price_cents);
    q.volume = 100;
    return q;
  }

  Stock::QuoteBook book(Stock::Venue venue, std::int32_t depth) override {
    Stock::QuoteBook out;
    for (std::int32_t i = 0; i < depth; ++i) {
      Stock::Quote q;
      q.symbol = venue == Stock::Venue::kNasdaq ? "NQ" : "NY";
      q.price_cents = 5000 + 10 * i;
      q.volume = 10 * (i + 1);
      out.push_back(std::move(q));
    }
    return out;
  }

  void heartbeat(std::int64_t at) override {
    burn_cpu(5 * kNanosPerMicro);
    last_beat_ = at;
  }

  void set_price(const std::string& symbol,
                 std::int64_t price_cents) override {
    prices_[symbol] = price_cents;
  }

 private:
  std::unique_ptr<Stock::TickerComProxy> risk_;
  std::map<std::string, std::int64_t> prices_;
  std::int64_t last_beat_{0};
};

}  // namespace

int main() {
  monitor::MonitorRuntime com_monitor(
      monitor::DomainIdentity{"trading-host", "nt-node", "nt-x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{});
  com::ComRuntime runtime(&com_monitor);

  // Risk desk in its own STA; pricing in another; heartbeats from an MTA.
  const auto risk_sta = runtime.create_sta();
  const auto pricing_sta = runtime.create_sta();
  const auto risk_id =
      Stock::register_Ticker(runtime, risk_sta, std::make_shared<RiskDeskImpl>());
  const auto pricing_id = Stock::register_Ticker(
      runtime, pricing_sta,
      std::make_shared<PricingImpl>(
          std::make_unique<Stock::TickerComProxy>(runtime, risk_id)));

  Stock::TickerComProxy pricing(runtime, pricing_id);

  std::printf("== trading desk over the COM runtime ==\n");
  pricing.set_price("HPQ", 2'345);
  pricing.set_price("AAPL", 999'999'00);  // above the risk ceiling
  pricing.heartbeat(1);

  for (const char* symbol : {"HPQ", "AAPL"}) {
    monitor::ScopedFreshChain fresh;
    const Stock::Quote q = pricing.quote(symbol);
    std::printf("  quote(%-5s) = %lld cents (risk-capped)\n", symbol,
                static_cast<long long>(q.price_cents));
  }

  try {
    monitor::ScopedFreshChain fresh;
    pricing.quote("ENRON");
  } catch (const Stock::UnknownSymbol& unknown) {
    std::printf("  quote(%s) rejected: unknown symbol\n",
                unknown.symbol.c_str());
  }

  const Stock::QuoteBook book = pricing.book(Stock::Venue::kNasdaq, 3);
  std::printf("  book depth %zu, top %lld cents\n", book.size(),
              static_cast<long long>(book.front().price_cents));

  // Characterize: the quote chains cross two apartments; the rejected call
  // carries an app-error outcome.
  idle_for(100 * kNanosPerMilli);  // let the heartbeat post drain
  monitor::Collector collector;
  collector.attach(&com_monitor);
  analysis::LogDatabase db;
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);
  std::printf("\n%s",
              analysis::characterization_report(dscg, db).c_str());
  return 0;
}
