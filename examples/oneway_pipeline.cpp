// Asynchronous causality: oneway calls spawn child chains (paper Sec. 2.2).
//
// A trading front end records fills through a oneway audit feed; each
// notification is processed asynchronously on the server, where it makes
// further monitored calls.  The example shows the parent chain continuing in
// the caller while the spawned chains -- linked by the spawned_chain UUID
// captured at the oneway stub -- hang beneath the spawning node in the DSCG.
#include <cstdio>
#include <map>
#include <memory>

#include "analysis/dscg.h"
#include "analysis/export.h"
#include "bank.causeway.h"
#include "common/work.h"
#include "monitor/collector.h"
#include "monitor/tss.h"

using namespace causeway;

namespace {

// The audit processor itself calls the ledger -- asynchronous work that
// still produces a monitored (child-chain) call tree.
class FanoutAuditLog final : public Bank::AuditLog {
 public:
  explicit FanoutAuditLog(std::unique_ptr<Bank::LedgerProxy> fee_ledger)
      : fee_ledger_(std::move(fee_ledger)) {}

  void record(const std::string& entry) override {
    burn_cpu(30 * kNanosPerMicro);
    // Charge a bookkeeping fee as part of async processing.
    fee_ledger_->deposit(/*account=*/9000, /*cents=*/1);
    (void)entry;
  }

 private:
  std::unique_ptr<Bank::LedgerProxy> fee_ledger_;
};

class SimpleLedger final : public Bank::Ledger {
 public:
  std::int64_t balance(std::int64_t account) override {
    burn_cpu(10 * kNanosPerMicro);
    return balances_[account];
  }
  void deposit(std::int64_t account, std::int64_t cents) override {
    burn_cpu(20 * kNanosPerMicro);
    balances_[account] += cents;
  }
  void transfer(const Bank::Transfer& t) override {
    burn_cpu(30 * kNanosPerMicro);
    balances_[t.from_account] -= t.cents;
    balances_[t.to_account] += t.cents;
  }

 private:
  std::map<std::int64_t, std::int64_t> balances_;
};

}  // namespace

int main() {
  orb::Fabric fabric;
  orb::DomainOptions front_opts;
  front_opts.process_name = "trading-frontend";
  orb::ProcessDomain frontend(fabric, front_opts);

  orb::DomainOptions back_opts;
  back_opts.process_name = "audit-backend";
  back_opts.pool_size = 2;
  orb::ProcessDomain backend(fabric, back_opts);

  auto ledger_ref =
      Bank::activate_Ledger(backend, std::make_shared<SimpleLedger>());
  auto audit_ref = Bank::activate_AuditLog(
      backend, std::make_shared<FanoutAuditLog>(
                   std::make_unique<Bank::LedgerProxy>(backend, ledger_ref)));

  Bank::AuditLogProxy audit(frontend, audit_ref);
  Bank::LedgerProxy ledger(frontend, ledger_ref);

  // One trading transaction: a synchronous transfer plus three oneway audit
  // notifications; the caller never blocks on the audit path.
  monitor::ScopedFreshChain fresh;
  Bank::Transfer fill;
  fill.from_account = 1;
  fill.to_account = 2;
  fill.cents = 12'500;
  ledger.transfer(fill);
  audit.record("fill 12500");
  audit.record("fee 1");
  audit.record("settled");

  // Quiesce: let the async chains finish before collecting.
  idle_for(200 * kNanosPerMilli);

  monitor::Collector collector;
  collector.attach(&frontend.monitor_runtime());
  collector.attach(&backend.monitor_runtime());
  analysis::LogDatabase db;
  db.ingest(collector.collect());
  auto dscg = analysis::Dscg::build(db);

  std::printf("== one parent chain, three spawned audit chains ==\n%s\n",
              analysis::to_text(dscg).c_str());

  std::size_t spawned = 0, oneway_child_chains = 0;
  dscg.visit([&](const analysis::CallNode& node, int) {
    spawned += node.spawned.size();
  });
  for (const auto& tree : dscg.chains()) {
    if (tree->oneway_child) ++oneway_child_chains;
  }
  std::printf("chains: %zu total, %zu spawned by oneway calls; "
              "%zu spawn links; top-level roots: %zu\n",
              dscg.chains().size(), oneway_child_chains, spawned,
              dscg.roots().size());
  std::printf("each audit chain contains the async deposit the processor "
              "made -- causality survives the asynchronous hop.\n");
  return 0;
}
