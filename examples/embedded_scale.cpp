// The commercial-embedded-system experiment at full scale (paper Sec. 4 /
// Fig. 5): 195,000 calls across 801 methods, 155 interfaces, 176 components,
// 32 threads, 4 processes -- synthesized at record level -- plus a live
// multi-domain run of a scaled-down population through the real ORB.
//
//   ./embedded_scale          # scaled-down live run + full-scale analysis
//   ./embedded_scale --live-only / --scale-only
#include <cstdio>
#include <cstring>

#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "common/clock.h"
#include "workload/logsynth.h"
#include "workload/synthetic.h"

using namespace causeway;

namespace {

void live_run() {
  std::printf("== live run: 4 domains, 48 components, thread pool ==\n");
  orb::Fabric fabric;
  workload::SyntheticConfig config;
  config.seed = 1959;  // ORBlite's HP Journal issue year, why not
  config.domains = 4;
  config.components = 48;
  config.interfaces = 24;
  config.methods_per_interface = 5;
  config.levels = 5;
  config.max_children = 2;
  config.oneway_fraction = 0.08;
  config.cpu_per_call = 10 * kNanosPerMicro;
  config.processor_kinds = 3;
  workload::SyntheticSystem system(fabric, config);

  const std::size_t kTransactions = 50;
  const Nanos t0 = steady_now_ns();
  system.run_transactions(kTransactions);
  system.wait_quiescent();
  const double run_ms =
      static_cast<double>(steady_now_ns() - t0) / kNanosPerMilli;

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_latency(dscg);

  std::printf(
      "  %zu transactions (%zu calls each) in %.1f ms\n"
      "  %zu records -> %zu nodes, %zu chains, %zu anomalies\n",
      kTransactions, system.calls_per_transaction(), run_ms, db.size(),
      dscg.call_count(), dscg.chains().size(), dscg.anomaly_count());

  analysis::ExportOptions options;
  options.max_nodes = 12;
  std::printf("  first transaction:\n%s\n",
              analysis::to_text(dscg, options).c_str());
}

void full_scale_analysis() {
  std::printf("== full paper scale: 195,000 calls, 801 methods, 155 "
              "interfaces, 176 components ==\n");
  workload::LogSynthConfig config;  // defaults are the paper's shape
  analysis::LogDatabase db;

  Nanos t0 = steady_now_ns();
  const auto stats = workload::synthesize_logs(config, db);
  const double synth_ms =
      static_cast<double>(steady_now_ns() - t0) / kNanosPerMilli;

  t0 = steady_now_ns();
  auto dscg = analysis::Dscg::build(db);
  const double build_ms =
      static_cast<double>(steady_now_ns() - t0) / kNanosPerMilli;

  t0 = steady_now_ns();
  auto report = analysis::annotate_latency(dscg);
  const double annotate_ms =
      static_cast<double>(steady_now_ns() - t0) / kNanosPerMilli;

  std::printf(
      "  synthesized %zu calls / %zu records in %.0f ms\n"
      "  DSCG: %zu nodes in %zu chains built in %.0f ms "
      "(paper: 28 minutes, Java, 2003)\n"
      "  latency annotated on %zu nodes in %.0f ms, %zu anomalies\n",
      stats.calls, stats.records, synth_ms, dscg.call_count(),
      dscg.chains().size(), build_ms, report.annotated, annotate_ms,
      dscg.anomaly_count());
}

}  // namespace

int main(int argc, char** argv) {
  bool live = true, scale = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--live-only") == 0) scale = false;
    if (std::strcmp(argv[i], "--scale-only") == 0) live = false;
  }
  if (live) live_run();
  if (scale) full_scale_analysis();
  return 0;
}
