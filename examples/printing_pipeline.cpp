// The paper's CORBA example: the Printing Pipeline Simulator in the
// 4-process configuration.  Runs a batch of print jobs in latency mode, then
// again in CPU mode, and renders every artifact the paper shows: the DSCG
// (hyperbolic-viewer export stand-ins: text + DOT + JSON), per-function
// latency, and the CCSG XML of Fig. 6.
#include <cstdio>
#include <fstream>

#include "analysis/ccsg.h"
#include "analysis/cpu.h"
#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/latency.h"
#include "analysis/stats.h"
#include "pps/pps_system.h"

using namespace causeway;

namespace {

analysis::LogDatabase run_batch(monitor::ProbeMode mode, int jobs) {
  orb::Fabric fabric;
  fabric.set_default_latency(100 * kNanosPerMicro);
  pps::PpsConfig config;
  config.topology = pps::PpsConfig::Topology::kFourProcess;
  config.monitor.mode = mode;
  config.hostile_clocks = true;  // domains disagree by hours; analysis copes
  pps::PpsSystem system(fabric, config);

  for (int i = 0; i < jobs; ++i) {
    system.submit_job(/*pages=*/2 + i % 3, /*dpi=*/150 + 150 * (i % 2),
                      /*color=*/i % 2 == 0);
  }
  system.wait_quiescent();
  analysis::LogDatabase db;
  db.ingest(system.collect());
  return db;
}

}  // namespace

int main() {
  constexpr int kJobs = 6;

  // --- pass 1: timing latency ---
  std::printf("== PPS, 4-process deployment, latency probes, %d jobs ==\n\n",
              kJobs);
  analysis::LogDatabase latency_db = run_batch(monitor::ProbeMode::kLatency,
                                               kJobs);
  auto dscg = analysis::Dscg::build(latency_db);
  analysis::annotate_latency(dscg);
  std::printf("%zu records -> %zu calls in %zu chains, %zu anomalies\n\n",
              latency_db.size(), dscg.call_count(), dscg.chains().size(),
              dscg.anomaly_count());

  // Per-function latency summary, like hovering over DSCG nodes.
  std::map<std::string, std::vector<double>> latencies;
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.latency) {
      latencies[std::string(node.interface_name) +
                "::" + std::string(node.function_name)]
          .push_back(static_cast<double>(*node.latency) / 1e3);
    }
  });
  std::printf("%-36s %6s %10s %10s %10s\n", "function", "n", "mean us",
              "p50 us", "p90 us");
  for (auto& [name, values] : latencies) {
    const auto s = analysis::summarize(std::move(values));
    std::printf("%-36s %6zu %10.1f %10.1f %10.1f\n", name.c_str(), s.count,
                s.mean, s.p50, s.p90);
  }

  // One job's call tree.
  std::printf("\n== first job's call tree ==\n");
  analysis::ExportOptions options;
  options.max_nodes = 25;
  std::printf("%s", analysis::to_text(dscg, options).c_str());

  std::ofstream("pps_dscg.dot") << analysis::to_dot(dscg);
  std::ofstream("pps_dscg.json") << analysis::to_json(dscg);
  std::ofstream("pps_dscg.html") << analysis::to_html(dscg);
  std::printf("\nfull DSCG written to pps_dscg.{dot,json,html} -- open the "
              "html for a browsable tree\n");

  // --- pass 2: CPU consumption ---
  std::printf("\n== PPS, same deployment, CPU probes ==\n");
  analysis::LogDatabase cpu_db = run_batch(monitor::ProbeMode::kCpu, kJobs);
  auto cpu_dscg = analysis::Dscg::build(cpu_db);
  analysis::annotate_cpu(cpu_dscg);
  analysis::Ccsg ccsg = analysis::Ccsg::build(cpu_dscg);
  std::ofstream("pps_ccsg.xml") << ccsg.to_xml();
  std::printf("CCSG with %zu aggregated nodes written to pps_ccsg.xml "
              "(paper Fig. 6)\n",
              ccsg.node_count());

  // Top-level CPU propagation row.
  for (const auto& root : ccsg.roots()) {
    std::printf("  %s::%s invoked %llu times: self %.1f us, descendants "
                "%.1f us\n",
                std::string(root->interface_name).c_str(),
                std::string(root->function_name).c_str(),
                static_cast<unsigned long long>(root->invocation_times),
                static_cast<double>(root->self_cpu.total()) / 1e3,
                static_cast<double>(root->descendant_cpu.total()) / 1e3);
  }
  return 0;
}
