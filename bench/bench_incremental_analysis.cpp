// Incremental analysis bench: the epoch-driven pipeline's core promise is
// that per-epoch update cost scales with the *batch* (dirty chains, their
// spawn-site neighborhood) and not with the accumulated graph.  A 195k-call
// stream arrives as E epochs; every epoch runs the full pass chain (DSCG
// update, annotation, CCSG fold, report/anomaly accumulators) and then
// re-renders the two artifacts a live analyzer serves (report, CCSG XML).
// Update and render are timed separately, per epoch, so the cost *curves*
// over the run are visible -- flat curves are the win, rising ones mean a
// pass or section still walks the whole graph.
//
// A from-scratch rebuild variant (Dscg::build + Ccsg::build +
// characterization_report over everything, per epoch) runs over the same
// slices as the baseline the incremental path replaces.
//
// Emits BENCH_incremental_analysis.json next to the stdout summary;
// override the path with --json=PATH.  Flatness is reported, not enforced:
// this bench is a non-gating artifact.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "analysis/ccsg.h"
#include "analysis/dscg.h"
#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kTotalCalls = 195'000;
constexpr std::size_t kEpochs = 64;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                 .count()) /
         1e6;
}

double mean(std::span<const double> xs) {
  double sum = 0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0 : sum / static_cast<double>(xs.size());
}

struct Curve {
  std::vector<double> epoch_ms;  // one entry per epoch

  void add(double ms) { epoch_ms.push_back(ms); }
  double total() const { return mean(epoch_ms) * epoch_ms.size(); }
  // Mean of the first and last quarter of the run: the flatness signal.
  double early() const {
    return mean(std::span(epoch_ms).first(epoch_ms.size() / 4));
  }
  double late() const {
    return mean(std::span(epoch_ms).last(epoch_ms.size() / 4));
  }
  double ratio() const { return early() > 0 ? late() / early() : 0; }
};

struct VariantResult {
  std::string name;
  Curve update;  // ingest + pass chain (or full rebuild)
  Curve render;  // report re-render
  double final_ccsg_ms{0};
  std::size_t final_ccsg_bytes{0};
};

std::vector<std::span<const monitor::TraceRecord>> slice_epochs(
    const std::vector<monitor::TraceRecord>& records, std::size_t epochs) {
  std::vector<std::span<const monitor::TraceRecord>> out;
  const std::size_t span = (records.size() + epochs - 1) / epochs;
  for (std::size_t off = 0; off < records.size(); off += span) {
    out.push_back(std::span(records).subspan(
        off, std::min(span, records.size() - off)));
  }
  return out;
}

// The pipeline path: one AnalysisPipeline fed epoch by epoch.  The live
// artifact (the report) re-renders every epoch; the full CCSG XML export --
// whose size grows with the graph's content -- renders once at the end,
// exactly like `causeway-analyze --follow` does.
VariantResult run_incremental(
    const std::vector<std::span<const monitor::TraceRecord>>& slices) {
  VariantResult result;
  result.name = "pipeline_incremental";
  analysis::AnalysisPipeline pipeline;
  for (const auto slice : slices) {
    const auto t0 = Clock::now();
    pipeline.ingest_records(slice);
    const auto t1 = Clock::now();
    const std::string report = pipeline.report();
    const auto t2 = Clock::now();
    result.update.add(ms_between(t0, t1));
    result.render.add(ms_between(t1, t2));
    if (report.empty()) std::abort();  // keep the work live
  }
  const auto t0 = Clock::now();
  const std::string ccsg = pipeline.ccsg_xml();
  result.final_ccsg_ms = ms_between(t0, Clock::now());
  result.final_ccsg_bytes = ccsg.size();
  return result;
}

// The pre-pipeline loop: every epoch rebuilds the DSCG and the report over
// everything seen so far.
VariantResult run_rebuild(
    const std::vector<std::span<const monitor::TraceRecord>>& slices) {
  VariantResult result;
  result.name = "rebuild_from_scratch";
  analysis::LogDatabase db;
  analysis::Dscg last;
  for (const auto slice : slices) {
    const auto t0 = Clock::now();
    db.ingest_records(slice);
    analysis::Dscg dscg = analysis::Dscg::build(db);
    const auto t1 = Clock::now();
    const std::string report = analysis::characterization_report(dscg, db);
    const auto t2 = Clock::now();
    result.update.add(ms_between(t0, t1));
    result.render.add(ms_between(t1, t2));
    if (report.empty()) std::abort();
    last = std::move(dscg);
  }
  const auto t0 = Clock::now();
  const std::string ccsg = analysis::Ccsg::build(last).to_xml();
  result.final_ccsg_ms = ms_between(t0, Clock::now());
  result.final_ccsg_bytes = ccsg.size();
  return result;
}

void write_curve(std::ofstream& out, const char* key, const Curve& c,
                 bool last) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "      \"%s\": {\"total_ms\": %.1f, \"early_epoch_ms\": %.3f, "
                "\"late_epoch_ms\": %.3f, \"late_over_early\": %.2f,\n"
                "        \"epoch_ms\": [",
                key, c.total(), c.early(), c.late(), c.ratio());
  out << buf;
  for (std::size_t i = 0; i < c.epoch_ms.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%.3f", i ? ", " : "", c.epoch_ms[i]);
    out << buf;
  }
  out << "]}" << (last ? "" : ",") << "\n";
}

void write_json(const std::string& path, std::size_t records,
                const std::vector<VariantResult>& variants) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"bench_incremental_analysis\",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"epochs\": " << kEpochs << ",\n  \"variants\": [\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& v = variants[i];
    out << "    {\n      \"variant\": \"" << v.name << "\",\n";
    write_curve(out, "update", v.update, false);
    write_curve(out, "render_report", v.render, false);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "      \"final_ccsg_xml\": {\"ms\": %.1f, \"bytes\": %zu}\n",
                  v.final_ccsg_ms, v.final_ccsg_bytes);
    out << buf;
    out << "    }" << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void print_variant(const VariantResult& v) {
  std::printf(
      "%-22s update total %8.1f ms, epoch early %7.3f -> late %7.3f ms "
      "(%.2fx)\n%-22s report total %8.1f ms, epoch early %7.3f -> late "
      "%7.3f ms (%.2fx)\n%-22s final ccsg xml %.1f ms (%zu bytes)\n",
      v.name.c_str(), v.update.total(), v.update.early(), v.update.late(),
      v.update.ratio(), "", v.render.total(), v.render.early(),
      v.render.late(), v.render.ratio(), "", v.final_ccsg_ms,
      v.final_ccsg_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_incremental_analysis.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  analysis::LogDatabase source;
  workload::LogSynthConfig config;
  config.total_calls = kTotalCalls;
  workload::synthesize_logs(config, source);
  const auto& records = source.records();
  const auto slices = slice_epochs(records, kEpochs);

  std::printf(
      "=== incremental analysis: per-epoch pipeline cost over a growing "
      "graph ===\n%zu records in %zu epochs\n\n",
      records.size(), slices.size());

  std::vector<VariantResult> variants;
  variants.push_back(run_incremental(slices));
  variants.push_back(run_rebuild(slices));
  for (const auto& v : variants) print_variant(v);

  const double inc_total = variants[0].update.total() +
                           variants[0].render.total();
  const double reb_total = variants[1].update.total() +
                           variants[1].render.total();
  std::printf(
      "\nincremental vs rebuild: %.1fx total; incremental update late/early "
      "%.2fx (flat = per-epoch cost tracks the batch, not the graph)\n",
      inc_total > 0 ? reb_total / inc_total : 0, variants[0].update.ratio());

  write_json(json_path, records.size(), variants);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
