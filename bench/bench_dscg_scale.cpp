// E2 -- paper Fig. 5 / the commercial-system experiment.
//
// Paper: "The largest system run ever conducted so far consisted of about
// 195,000 calls, with a total of 801 unique methods in 155 unique interfaces
// from 176 unique components ... it took the analyzer 28 minutes to compute
// the DSCG" (Java, 1.7 GHz dual-processor, 2003).
//
// This bench synthesizes log streams of exactly that shape (32 threads, 4
// processes), sweeps the call volume up to and past 195k, and times DSCG
// construction.  Absolute numbers differ (C++ vs 2003 Java); the claim that
// survives is *feasibility at commercial scale* and roughly linear growth.
// E10 rides along: the --drop rows inject record loss and report anomaly
// counts and recovered structure.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/dscg.h"
#include "analysis/latency.h"
#include "analysis/report.h"
#include "analysis/topology.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;

workload::LogSynthConfig paper_shape(std::size_t calls, double drop) {
  workload::LogSynthConfig config;  // defaults carry the paper's shape
  config.total_calls = calls;
  config.drop_fraction = drop;
  config.seed = 2003;
  return config;
}

void BM_DscgBuild(benchmark::State& state) {
  const auto calls = static_cast<std::size_t>(state.range(0));
  analysis::LogDatabase db;
  const auto stats = workload::synthesize_logs(paper_shape(calls, 0.0), db);

  std::size_t node_count = 0;
  std::size_t chains = 0;
  for (auto _ : state) {
    auto dscg = analysis::Dscg::build(db);
    node_count = dscg.call_count();
    chains = dscg.chains().size();
    benchmark::DoNotOptimize(dscg);
  }
  state.counters["calls"] = static_cast<double>(stats.calls);
  state.counters["records"] = static_cast<double>(db.size());
  state.counters["chains"] = static_cast<double>(chains);
  state.counters["nodes"] = static_cast<double>(node_count);
  state.counters["calls/s"] = benchmark::Counter(
      static_cast<double>(stats.calls), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DscgBuild)
    ->Arg(10'000)
    ->Arg(50'000)
    ->Arg(100'000)
    ->Arg(195'000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_DscgBuildPlusLatency(benchmark::State& state) {
  const auto calls = static_cast<std::size_t>(state.range(0));
  analysis::LogDatabase db;
  workload::synthesize_logs(paper_shape(calls, 0.0), db);

  for (auto _ : state) {
    auto dscg = analysis::Dscg::build(db);
    auto report = analysis::annotate_latency(dscg);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DscgBuildPlusLatency)
    ->Arg(195'000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_TopologyCompute(benchmark::State& state) {
  analysis::LogDatabase db;
  workload::synthesize_logs(paper_shape(195'000, 0.0), db);
  auto dscg = analysis::Dscg::build(db);
  for (auto _ : state) {
    auto topo = analysis::compute_topology(dscg);
    benchmark::DoNotOptimize(topo);
  }
}
BENCHMARK(BM_TopologyCompute)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CharacterizationReport(benchmark::State& state) {
  analysis::LogDatabase db;
  workload::synthesize_logs(paper_shape(195'000, 0.0), db);
  auto dscg = analysis::Dscg::build(db);
  for (auto _ : state) {
    std::string report = analysis::characterization_report(dscg, db);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CharacterizationReport)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// E10: reconstruction robustness under record loss.
void BM_DscgBuildWithDroppedRecords(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 1000.0;
  analysis::LogDatabase db;
  const auto stats =
      workload::synthesize_logs(paper_shape(50'000, drop), db);

  std::size_t anomalies = 0, nodes = 0;
  for (auto _ : state) {
    auto dscg = analysis::Dscg::build(db);
    anomalies = dscg.anomaly_count();
    nodes = dscg.call_count();
    benchmark::DoNotOptimize(dscg);
  }
  state.counters["drop_permille"] = static_cast<double>(state.range(0));
  state.counters["dropped_records"] = static_cast<double>(stats.dropped);
  state.counters["anomalies"] = static_cast<double>(anomalies);
  state.counters["recovered_nodes"] = static_cast<double>(nodes);
  state.counters["emitted_calls"] = static_cast<double>(stats.calls);
}
BENCHMARK(BM_DscgBuildWithDroppedRecords)
    ->Arg(0)
    ->Arg(5)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== E2: DSCG construction at commercial-system scale (paper Fig. 5) "
      "===\n"
      "paper shape: 801 methods / 155 interfaces / 176 components / 32 "
      "threads / 4 processes\n"
      "paper result: 195,000 calls -> 28 min (Java analyzer, 2003 "
      "hardware)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
