// E4 -- paper Fig. 6: the CPU Consumption Summarization Graph.
//
// Runs the 4-process PPS in CPU mode, builds the CCSG, writes the XML the
// paper screenshots (ccsg.xml next to the binary), prints a summary of the
// top-level rows (ObjectID / InvocationTimes / Self / Descendent CPU in
// [second, microsecond] form), and times CCSG construction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "analysis/ccsg.h"
#include "analysis/cpu.h"
#include "analysis/dscg.h"
#include "monitor/tss.h"
#include "pps/pps_system.h"

namespace {

using namespace causeway;

analysis::LogDatabase collect_pps_cpu_logs(int jobs) {
  monitor::tss_clear();
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.topology = pps::PpsConfig::Topology::kFourProcess;
  config.monitor.mode = monitor::ProbeMode::kCpu;
  config.cpu_scale = 0.5;
  pps::PpsSystem system(fabric, config);
  for (int i = 0; i < jobs; ++i) {
    system.submit_job(2, 300, i % 2 == 0);
  }
  system.wait_quiescent();
  analysis::LogDatabase db;
  db.ingest(system.collect());
  monitor::tss_clear();
  return db;
}

void print_node(const analysis::CcsgNode& node, int depth, int max_depth) {
  if (depth > max_depth) return;
  const Nanos self = node.self_cpu.total();
  const Nanos desc = node.descendant_cpu.total();
  std::printf("%*s%s::%s  ObjectID=%llu  InvocationTimes=%llu  "
              "Self=[%lld s, %lld us]  Descendent=[%lld s, %lld us]\n",
              depth * 2, "", std::string(node.interface_name).c_str(),
              std::string(node.function_name).c_str(),
              static_cast<unsigned long long>(node.object_key),
              static_cast<unsigned long long>(node.invocation_times),
              static_cast<long long>(self / kNanosPerSecond),
              static_cast<long long>((self % kNanosPerSecond) / 1000),
              static_cast<long long>(desc / kNanosPerSecond),
              static_cast<long long>((desc % kNanosPerSecond) / 1000));
  for (const auto& [key, child] : node.children) {
    print_node(*child, depth + 1, max_depth);
  }
}

void report(int jobs) {
  std::printf("=== E4: CCSG -- system-wide CPU propagation (paper Fig. 6) "
              "===\n\n");
  analysis::LogDatabase db = collect_pps_cpu_logs(jobs);
  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_cpu(dscg);
  analysis::Ccsg ccsg = analysis::Ccsg::build(dscg);

  std::printf("records=%zu  dscg_nodes=%zu  ccsg_nodes=%zu\n\n", db.size(),
              dscg.call_count(), ccsg.node_count());
  for (const auto& root : ccsg.roots()) {
    print_node(*root, 0, 2);
  }

  const std::string xml = ccsg.to_xml();
  std::ofstream out("ccsg.xml");
  out << xml;
  std::printf("\nfull CCSG written to ccsg.xml (%zu bytes)\n\n", xml.size());
}

void BM_CcsgBuild(benchmark::State& state) {
  analysis::LogDatabase db =
      collect_pps_cpu_logs(static_cast<int>(state.range(0)));
  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_cpu(dscg);
  for (auto _ : state) {
    analysis::Ccsg ccsg = analysis::Ccsg::build(dscg);
    benchmark::DoNotOptimize(ccsg);
  }
  state.counters["dscg_nodes"] = static_cast<double>(dscg.call_count());
}
BENCHMARK(BM_CcsgBuild)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_CcsgXmlRender(benchmark::State& state) {
  analysis::LogDatabase db = collect_pps_cpu_logs(8);
  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_cpu(dscg);
  analysis::Ccsg ccsg = analysis::Ccsg::build(dscg);
  for (auto _ : state) {
    std::string xml = ccsg.to_xml();
    benchmark::DoNotOptimize(xml);
  }
}
BENCHMARK(BM_CcsgXmlRender)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  report(/*jobs=*/10);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
