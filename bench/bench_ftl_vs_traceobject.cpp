// E6 -- FTL vs Trace Object (paper Sec. 2.1 + Related Work ablation).
//
// Paper: the FTL "is light-weighted since no log concatenation occurs as the
// call progresses through the tunnel", whereas the Universal-Delegator-style
// Trace Object "concatenates log info during call progression and
// unavoidably introduces the barrier for the call chains that exceed tens of
// thousands calls".
//
// Sweeps chain depth and reports bytes-on-wire and propagation time per hop
// for both schemes.  Expected shape: FTL flat at 28 bytes / O(1) per hop;
// Trace Object linear in depth in both dimensions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/trace_object.h"
#include "common/wire.h"
#include "monitor/ftl.h"

namespace {

using namespace causeway;

void report() {
  std::printf("=== E6: bytes-on-wire vs chain depth ===\n");
  std::printf("%10s %16s %20s\n", "depth", "FTL bytes/hop",
              "TraceObject bytes/hop");
  for (std::size_t depth : {1u, 10u, 100u, 1000u, 10000u, 20000u}) {
    baseline::TraceObject to;
    for (std::size_t i = 0; i < depth; ++i) {
      to.add_hop({"Example::Interface", "method", i, static_cast<Nanos>(i)});
    }
    std::printf("%10zu %16zu %20zu\n", depth, monitor::kFtlTrailerSize,
                to.encoded_size());
  }
  std::printf("\n");
}

// One hop of FTL propagation: update + re-marshal the constant trailer.
void BM_FtlPerHop(benchmark::State& state) {
  monitor::Ftl ftl{Uuid::generate(), 0};
  for (auto _ : state) {
    ftl.seq += 1;
    WireBuffer payload;
    monitor::append_ftl_trailer(payload, ftl);
    WireCursor cursor(payload);
    auto peeled = monitor::peel_ftl_trailer(cursor);
    benchmark::DoNotOptimize(peeled);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * monitor::kFtlTrailerSize));
}
BENCHMARK(BM_FtlPerHop);

// One hop of Trace-Object propagation at a given existing depth: decode the
// accumulated object, append this hop, re-encode.  This is the work every
// interception point performs as the chain advances.
void BM_TraceObjectPerHop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  baseline::TraceObject to;
  for (std::size_t i = 0; i < depth; ++i) {
    to.add_hop({"Example::Interface", "method", i, static_cast<Nanos>(i)});
  }
  WireBuffer encoded;
  to.encode(encoded);

  for (auto _ : state) {
    WireCursor cursor(encoded);
    baseline::TraceObject hop = baseline::TraceObject::decode(cursor);
    hop.add_hop({"Example::Interface", "method", depth,
                 static_cast<Nanos>(depth)});
    WireBuffer out;
    hop.encode(out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["bytes_on_wire"] = static_cast<double>(encoded.size());
}
BENCHMARK(BM_TraceObjectPerHop)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(20000);

// Whole-chain cost: drive a depth-N chain end to end under both schemes.
void BM_FtlWholeChain(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    monitor::Ftl ftl{Uuid{1, 2}, 0};
    std::size_t total_bytes = 0;
    for (std::size_t hop = 0; hop < depth; ++hop) {
      ftl.seq += 4;
      WireBuffer payload;
      monitor::append_ftl_trailer(payload, ftl);
      total_bytes += payload.size();
      WireCursor cursor(payload);
      ftl = *monitor::peel_ftl_trailer(cursor);
    }
    benchmark::DoNotOptimize(total_bytes);
  }
}
BENCHMARK(BM_FtlWholeChain)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_TraceObjectWholeChain(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    baseline::TraceObject to;
    std::size_t total_bytes = 0;
    for (std::size_t hop = 0; hop < depth; ++hop) {
      to.add_hop({"Example::Interface", "method", hop,
                  static_cast<Nanos>(hop)});
      WireBuffer payload;
      to.encode(payload);
      total_bytes += payload.size();
      WireCursor cursor(payload);
      to = baseline::TraceObject::decode(cursor);
    }
    benchmark::DoNotOptimize(total_bytes);
  }
}
BENCHMARK(BM_TraceObjectWholeChain)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(1)  // quadratic by design; one pass tells the story
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
