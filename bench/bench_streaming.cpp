// Streaming collection bench: probe append latency while epoch drains run
// concurrently, for the previous mutex+chunk store (reconstructed below as
// the baseline) and the per-thread SPSC ring store that replaced it.
//
// Acceptance shape: the ring store's append p99 must not regress against
// the baseline while a drainer loops at ~1 ms -- the whole point of the
// refactor is that the collector's cadence no longer couples into probe
// latency through a shared lock.
//
// Emits BENCH_streaming.json (machine-readable) next to the stdout summary;
// override the path with --json=PATH.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "monitor/log_store.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

// The pre-refactor store shape: one mutex over chunked vectors.  Every
// probe append takes the lock, so a concurrent drain stalls the hot path.
class MutexChunkStore {
 public:
  void append(const monitor::TraceRecord& record) {
    std::lock_guard lock(mu_);
    if (chunks_.empty() || chunks_.back().size() == kChunkSize) {
      chunks_.emplace_back();
      chunks_.back().reserve(kChunkSize);
    }
    chunks_.back().push_back(record);
  }

  std::vector<monitor::TraceRecord> drain() {
    std::vector<std::vector<monitor::TraceRecord>> taken;
    {
      std::lock_guard lock(mu_);
      taken.swap(chunks_);
    }
    std::size_t total = 0;
    for (const auto& chunk : taken) total += chunk.size();
    std::vector<monitor::TraceRecord> out;
    out.reserve(total);
    for (auto& chunk : taken) {
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
    return out;
  }

  std::uint64_t dropped() const { return 0; }  // blocks instead of dropping

 private:
  static constexpr std::size_t kChunkSize = 4096;
  std::mutex mu_;
  std::vector<std::vector<monitor::TraceRecord>> chunks_;
};

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kPerThread = 250'000;
constexpr auto kDrainInterval = std::chrono::milliseconds(1);

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

struct Stats {
  double p50{0};
  double p99{0};
  double mean{0};
  double max{0};
};

Stats summarize(std::vector<std::uint64_t>& ns) {
  Stats s;
  if (ns.empty()) return s;
  std::sort(ns.begin(), ns.end());
  double sum = 0;
  for (auto v : ns) sum += static_cast<double>(v);
  s.p50 = static_cast<double>(ns[ns.size() / 2]);
  s.p99 = static_cast<double>(ns[std::min(ns.size() - 1, ns.size() * 99 / 100)]);
  s.mean = sum / static_cast<double>(ns.size());
  s.max = static_cast<double>(ns.back());
  return s;
}

struct VariantResult {
  std::string name;
  Stats append;
  Stats drain;
  std::size_t drains{0};
  std::uint64_t drained_records{0};
  std::uint64_t dropped{0};
};

monitor::TraceRecord make_record(unsigned thread, std::uint64_t i) {
  monitor::TraceRecord r;
  r.chain = Uuid{thread + 1, i + 1};
  r.seq = i + 1;
  r.event = monitor::EventKind::kStubStart;
  r.interface_name = "Bench::Stream";
  r.function_name = "probe";
  r.object_key = (static_cast<std::uint64_t>(thread) << 32) | i;
  r.process_name = "bench";
  r.node_name = "local";
  r.processor_type = "x86";
  r.thread_ordinal = thread;
  return r;
}

// N producer threads hammer the store while one drainer loops; every append
// and every drain is timed individually so we get real percentiles, not
// gbench's per-iteration mean.
template <typename Store>
VariantResult run_variant(std::string name, Store& store) {
  VariantResult result;
  result.name = std::move(name);

  std::vector<std::vector<std::uint64_t>> samples(kThreads);
  std::vector<std::uint64_t> drain_ns;
  std::atomic<unsigned> finished{0};
  std::uint64_t drained = 0;

  std::thread drainer([&] {
    while (finished.load(std::memory_order_acquire) < kThreads) {
      const auto t0 = Clock::now();
      const auto batch = store.drain();
      const auto t1 = Clock::now();
      drain_ns.push_back(ns_between(t0, t1));
      drained += batch.size();
      std::this_thread::sleep_for(kDrainInterval);
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      auto& mine = samples[t];
      mine.reserve(kPerThread);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const auto rec = make_record(t, i);
        const auto t0 = Clock::now();
        store.append(rec);
        const auto t1 = Clock::now();
        mine.push_back(ns_between(t0, t1));
      }
      finished.fetch_add(1, std::memory_order_release);
    });
  }
  for (auto& p : producers) p.join();
  drainer.join();
  drained += store.drain().size();  // final epoch: whatever is left

  std::vector<std::uint64_t> all;
  all.reserve(static_cast<std::size_t>(kThreads) * kPerThread);
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  result.append = summarize(all);
  result.drains = drain_ns.size();
  result.drain = summarize(drain_ns);
  result.drained_records = drained;
  result.dropped = store.dropped();
  return result;
}

void write_stats(std::ofstream& out, const char* key, const Stats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "      \"%s\": {\"p50\": %.1f, \"p99\": %.1f, "
                "\"mean\": %.1f, \"max\": %.1f}",
                key, s.p50, s.p99, s.mean, s.max);
  out << buf;
}

void write_json(const std::string& path,
                const std::vector<VariantResult>& variants,
                bool no_regression) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"bench_streaming\",\n"
      << "  \"threads\": " << kThreads << ",\n"
      << "  \"appends_per_thread\": " << kPerThread << ",\n"
      << "  \"drain_interval_us\": "
      << std::chrono::duration_cast<std::chrono::microseconds>(kDrainInterval)
             .count()
      << ",\n"
      << "  \"variants\": [\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& v = variants[i];
    out << "    {\n      \"store\": \"" << v.name << "\",\n";
    write_stats(out, "append_ns", v.append);
    out << ",\n";
    write_stats(out, "drain_ns", v.drain);
    out << ",\n      \"drains\": " << v.drains
        << ",\n      \"drained_records\": " << v.drained_records
        << ",\n      \"dropped\": " << v.dropped << "\n    }"
        << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"ring_append_p99_no_regression\": "
      << (no_regression ? "true" : "false") << "\n}\n";
}

void print_variant(const VariantResult& v) {
  std::printf(
      "%-12s append p50 %6.0f ns  p99 %7.0f ns  mean %6.1f ns | "
      "%4zu drains, drain p99 %9.0f ns | drained %llu dropped %llu\n",
      v.name.c_str(), v.append.p50, v.append.p99, v.append.mean, v.drains,
      v.drain.p99, static_cast<unsigned long long>(v.drained_records),
      static_cast<unsigned long long>(v.dropped));
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_streaming.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  std::printf(
      "=== streaming collection: probe append under concurrent epoch drains "
      "===\n%u threads x %llu appends, drainer every %lld us\n\n",
      kThreads, static_cast<unsigned long long>(kPerThread),
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::microseconds>(kDrainInterval)
              .count()));

  std::vector<VariantResult> variants;
  {
    MutexChunkStore baseline;
    variants.push_back(run_variant("mutex_chunk", baseline));
  }
  {
    monitor::ProcessLogStore ring;
    variants.push_back(run_variant("spsc_ring", ring));
  }
  for (const auto& v : variants) print_variant(v);

  // Acceptance: the ring's tail latency must not regress vs the lock-based
  // seed store while drains run (10% slack absorbs scheduler noise).
  const bool ok = variants[1].append.p99 <= variants[0].append.p99 * 1.10;
  std::printf("\nring append p99 vs mutex baseline: %s (%.0f ns vs %.0f ns)\n",
              ok ? "no regression" : "REGRESSION", variants[1].append.p99,
              variants[0].append.p99);

  write_json(json_path, variants, ok);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
