// E9 -- causality across the CORBA/COM bridge (paper Sec. 2.3).
//
// Drives the hybrid path CORBA client -> bridge -> COM object -> CORBA
// backend with (a) the FTL-aware bridge and (b) a naive bridge that strips
// unknown payload data, and reports chain continuity for each; benchmarks
// the per-call cost of the hybrid hop.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/dscg.h"
#include "bridge/bridge.h"
#include "com/stubs.h"
#include "monitor/collector.h"
#include "monitor/tss.h"
#include "orb/stubs.h"

namespace {

using namespace causeway;

// CORBA backend leaf.
class Backend final : public orb::Servant {
 public:
  std::string_view interface_name() const override { return "E9::Backend"; }
  orb::DispatchResult dispatch(orb::DispatchContext& ctx, orb::MethodId,
                               WireCursor& in, WireBuffer& out) override {
    orb::SkeletonGuard guard(
        ctx, monitor::CallIdentity{"E9::Backend", "store", ctx.object_key},
        in, true);
    const std::int32_t x = in.read_i32();
    guard.body_end();
    out.write_i32(x + 1);
    guard.seal(out);
    return {};
  }
};

// COM middle tier calling back into CORBA.
class Middle final : public com::ComServant {
 public:
  Middle(orb::ProcessDomain& domain, orb::ObjectRef backend)
      : domain_(domain), backend_(std::move(backend)) {}
  std::string_view interface_name() const override { return "E9::Middle"; }
  com::ComDispatchResult com_dispatch(com::ComDispatchContext& ctx,
                                      com::MethodId, WireCursor& in,
                                      WireBuffer& out) override {
    com::ComSkelGuard guard(
        ctx, monitor::CallIdentity{"E9::Middle", "relay", ctx.object_id}, in,
        true);
    const std::int32_t x = in.read_i32();
    orb::ClientCall call(domain_, backend_, {"E9::Backend", "store", 0, false},
                         true);
    call.request().write_i32(x);
    const std::int32_t stored = call.invoke().read_i32();
    guard.body_end();
    out.write_i32(stored);
    guard.seal(out);
    return {};
  }

 private:
  orb::ProcessDomain& domain_;
  orb::ObjectRef backend_;
};

struct Hybrid {
  orb::Fabric fabric;
  std::unique_ptr<orb::ProcessDomain> client;
  std::unique_ptr<orb::ProcessDomain> gateway;
  std::unique_ptr<orb::ProcessDomain> backend;
  monitor::MonitorRuntime com_monitor{
      monitor::DomainIdentity{"com-proc", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kLatency},
      ClockDomain{}};
  std::unique_ptr<com::ComRuntime> com_rt;
  orb::ObjectRef bridged;

  explicit Hybrid(bridge::FtlPolicy policy) {
    monitor::tss_clear();
    auto opts = [](const char* name) {
      orb::DomainOptions o;
      o.process_name = name;
      return o;
    };
    client = std::make_unique<orb::ProcessDomain>(fabric, opts("client"));
    gateway = std::make_unique<orb::ProcessDomain>(fabric, opts("gateway"));
    backend = std::make_unique<orb::ProcessDomain>(fabric, opts("backend"));
    com_rt = std::make_unique<com::ComRuntime>(&com_monitor);
    auto backend_ref = backend->activate(std::make_shared<Backend>());
    const auto sta = com_rt->create_sta();
    const auto middle = com_rt->register_object(
        sta,
        com::ComPtr<com::ComServant>(new Middle(*gateway, backend_ref)));
    bridged = gateway->activate(std::make_shared<bridge::ComBackedServant>(
        "E9::Middle", *com_rt, middle, policy));
  }

  ~Hybrid() {
    com_rt->shutdown();
    monitor::tss_clear();
  }

  std::int32_t relay(std::int32_t x, bool fresh_chain = true) {
    if (fresh_chain) monitor::tss_clear();
    orb::ClientCall call(*client, bridged, {"E9::Middle", "relay", 0, false},
                         true);
    call.request().write_i32(x);
    return call.invoke().read_i32();
  }

  analysis::Dscg analyze(analysis::LogDatabase& db) {
    monitor::Collector collector;
    collector.attach(&client->monitor_runtime());
    collector.attach(&gateway->monitor_runtime());
    collector.attach(&backend->monitor_runtime());
    collector.attach(&com_monitor);
    db.ingest(collector.collect());
    return analysis::Dscg::build(db);
  }
};

void report(int calls) {
  std::printf("=== E9: causality across the CORBA/COM bridge ===\n\n");
  for (auto policy : {bridge::FtlPolicy::kForward, bridge::FtlPolicy::kStrip}) {
    Hybrid world(policy);
    for (int i = 0; i < calls; ++i) world.relay(i);
    analysis::LogDatabase db;
    auto dscg = world.analyze(db);

    // A continuous end-to-end chain starts at the *client's* stub and holds
    // the backend call nested under the relay -- i.e. the client can see
    // through the bridge into the other infrastructure.
    std::size_t continuous = 0;
    for (const auto& tree : dscg.chains()) {
      for (const auto& top : tree->root->children) {
        const auto& stub_start = top->record(monitor::EventKind::kStubStart);
        if (top->function_name == "relay" && stub_start &&
            stub_start->process_name == "client" && !top->children.empty() &&
            top->children[0]->function_name == "store") {
          ++continuous;
        }
      }
    }
    std::printf("  %-22s chains=%3zu  end-to-end-continuous=%2zu/%d  "
                "anomalies=%zu\n",
                policy == bridge::FtlPolicy::kForward
                    ? "FTL-aware bridge:"
                    : "naive bridge (strip):",
                db.chains().size(), continuous, calls, dscg.anomaly_count());
  }
  std::printf("  (paper: causality seamlessly propagates when the bridge is "
              "aware of the FTL)\n\n");
}

void BM_HybridRelayCall(benchmark::State& state) {
  Hybrid world(bridge::FtlPolicy::kForward);
  std::int32_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.relay(++x));
  }
}
BENCHMARK(BM_HybridRelayCall)->Unit(benchmark::kMicrosecond)->MinTime(0.4);

void BM_HybridRelayCallNaive(benchmark::State& state) {
  Hybrid world(bridge::FtlPolicy::kStrip);
  std::int32_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.relay(++x));
  }
}
BENCHMARK(BM_HybridRelayCallNaive)->Unit(benchmark::kMicrosecond)->MinTime(0.4);

}  // namespace

int main(int argc, char** argv) {
  report(/*calls=*/10);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
