// E5 -- CPU characterization accuracy (paper Sec. 4).
//
// Paper: "we first evaluated that the automatic measurement from the
// monolithic single-thread configuration matches the true manual measurement
// to within less than 10%.  Then we compared the measurement result on the
// ... single-processor 4-process configuration with this monolithic
// single-thread configuration ... and obtained good matching (within 40%
// difference)."
//
// Step 1: monolithic PPS, CPU mode.  Automatic inclusive CPU of submit
//         (SC + DC) vs the manual caller-side per-thread CPU measurement.
// Step 2: the same pipeline in the 4-process configuration; its inclusive
//         CPU vs the monolithic result.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/cpu.h"
#include "analysis/dscg.h"
#include "analysis/latency.h"
#include "analysis/stats.h"
#include "monitor/tss.h"
#include "pps/pps_system.h"

namespace {

using namespace causeway;

struct CpuResult {
  double automatic_inclusive_us{0};  // SC + DC of JobQueue::submit
  double manual_cpu_us{0};           // caller-side thread-CPU measurement
};

CpuResult run_config(pps::PpsConfig::Topology topology, int jobs) {
  monitor::tss_clear();
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.topology = topology;
  config.monitor.mode = monitor::ProbeMode::kCpu;
  // Realistic stage costs: with microsecond-sized stages the fixed probe and
  // marshaling CPU dominates the comparison; the paper's pipeline did real
  // parsing/rasterizing work, which this scale factor stands in for.
  config.cpu_scale = 4.0;
  pps::ManualProbes manual;
  pps::PpsSystem system(fabric, config, &manual);

  for (int i = 0; i < jobs; ++i) {
    system.submit_job(/*pages=*/2, /*dpi=*/300, /*color=*/true);
  }
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_cpu(dscg);

  std::vector<double> inclusive;
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (node.function_name == "submit") {
      inclusive.push_back(static_cast<double>(node.self_cpu.total() +
                                              node.descendant_cpu.total()));
    }
  });

  CpuResult result;
  result.automatic_inclusive_us =
      analysis::summarize(std::move(inclusive)).mean / 1e3;
  result.manual_cpu_us = manual.mean_cpu("PPS::JobQueue::submit") / 1e3;
  monitor::tss_clear();
  return result;
}

double pct_diff(double a, double b) {
  if (b == 0) return 0;
  return 100.0 * (a - b) / b;
}

void report(int jobs) {
  std::printf("=== E5: system-wide CPU accuracy (paper Sec. 4) ===\n\n");

  const CpuResult mono = run_config(pps::PpsConfig::Topology::kMonolithic, jobs);
  std::printf("step 1: monolithic single-thread configuration (%d jobs)\n",
              jobs);
  std::printf("  automatic inclusive CPU of submit (SC+DC): %10.1f us\n",
              mono.automatic_inclusive_us);
  std::printf("  manual per-thread CPU around submit:       %10.1f us\n",
              mono.manual_cpu_us);
  std::printf("  difference: %+.1f%%   (paper: < 10%%)\n\n",
              pct_diff(mono.automatic_inclusive_us, mono.manual_cpu_us));

  const CpuResult four = run_config(pps::PpsConfig::Topology::kFourProcess, jobs);
  std::printf("step 2: single-processor 4-process configuration\n");
  std::printf("  automatic inclusive CPU of submit (SC+DC): %10.1f us\n",
              four.automatic_inclusive_us);
  std::printf("  vs monolithic automatic:                   %10.1f us\n",
              mono.automatic_inclusive_us);
  std::printf("  difference: %+.1f%%   (paper: within 40%%)\n\n",
              pct_diff(four.automatic_inclusive_us,
                       mono.automatic_inclusive_us));
}

void BM_PpsSubmitCpuMode(benchmark::State& state) {
  monitor::tss_clear();
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.topology = pps::PpsConfig::Topology::kMonolithic;
  config.monitor.mode = monitor::ProbeMode::kCpu;
  config.cpu_scale = 0.2;
  pps::PpsSystem system(fabric, config);
  for (auto _ : state) {
    system.submit_job(1, 150, false);
  }
  monitor::tss_clear();
}
BENCHMARK(BM_PpsSubmitCpuMode)->Unit(benchmark::kMillisecond)->MinTime(0.5);

}  // namespace

int main(int argc, char** argv) {
  report(/*jobs=*/15);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
