// E8 -- causality under server threading architectures (paper Sec. 2.2).
//
// Part 1 (ORB): thread-per-request / thread-per-connection / thread-pool all
// uphold O1/O2, so concurrent clients always yield clean, untangled chains;
// the bench measures throughput per policy and verifies zero anomalies and
// the expected chain count after each run.
//
// Part 2 (COM STA): the paper's negative result.  With the legacy
// (TSS-trusting) stub and channel hooks disabled, interleaved calls into one
// STA mingle their chains; enabling the hooks repairs attribution.  The
// bench reports the mingled-chain rate in both settings.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>
#include <thread>

#include "analysis/dscg.h"
#include "com/stubs.h"
#include "common/work.h"
#include "monitor/tss.h"
#include "workload/synthetic.h"

namespace {

using namespace causeway;

void BM_PolicyThroughput(benchmark::State& state) {
  const auto policy = static_cast<orb::PolicyKind>(state.range(0));
  monitor::tss_clear();
  orb::Fabric fabric;
  workload::SyntheticConfig config;
  config.seed = 8;
  config.domains = 3;
  config.components = 9;
  config.interfaces = 4;
  config.methods_per_interface = 3;
  config.levels = 3;
  config.max_children = 2;
  config.oneway_fraction = 0.1;
  config.cpu_per_call = 5 * kNanosPerMicro;
  config.policy = policy;
  workload::SyntheticSystem system(fabric, config);

  std::size_t transactions = 0;
  for (auto _ : state) {
    system.run_transaction();
    ++transactions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      transactions * system.calls_per_transaction()));

  // Post-run verification (outside the timed loop): chains stay untangled.
  system.wait_quiescent();
  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  state.counters["anomalies"] = static_cast<double>(dscg.anomaly_count());
  state.counters["chains"] = static_cast<double>(dscg.chains().size());
}
BENCHMARK(BM_PolicyThroughput)
    ->Arg(0)  // thread-per-request
    ->Arg(1)  // thread-per-connection
    ->Arg(2)  // thread-pool
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.4);

// --- COM STA mingling rate ---

class SlowDoubler final : public com::ComServant {
 public:
  std::string_view interface_name() const override { return "E8::Doubler"; }
  com::ComDispatchResult com_dispatch(com::ComDispatchContext& ctx,
                                      com::MethodId, WireCursor& in,
                                      WireBuffer& out) override {
    com::ComSkelGuard guard(
        ctx, monitor::CallIdentity{"E8::Doubler", "double_it", ctx.object_id},
        in, true);
    const std::int32_t x = in.read_i32();
    idle_for(8 * kNanosPerMilli);  // hold the caller blocked => pumping
    guard.body_end();
    out.write_i32(2 * x);
    guard.seal(out);
    return {};
  }
};

class Worker final : public com::ComServant {
 public:
  Worker(std::string name, com::ComObjectId helper)
      : name_(std::move(name)), helper_(helper) {}
  std::string_view interface_name() const override { return name_; }
  com::ComDispatchResult com_dispatch(com::ComDispatchContext& ctx,
                                      com::MethodId, WireCursor& in,
                                      WireBuffer& out) override {
    com::ComSkelGuard guard(
        ctx, monitor::CallIdentity{name_, "outer", ctx.object_id}, in, true);
    const std::int32_t x = in.read_i32();
    com::ComCall call(*ctx.runtime, helper_,
                      {"E8::Doubler", "double_it", 0, false}, true);
    call.request().write_i32(x);
    const std::int32_t doubled = call.invoke().read_i32();
    guard.body_end();
    out.write_i32(doubled + 1);
    guard.seal(out);
    return {};
  }

 private:
  std::string name_;
  com::ComObjectId helper_;
};

// Returns the fraction of rounds in which the two transactions' chains
// mingled (records of both workers on one chain).
double sta_mingle_rate(bool hooks, int rounds) {
  int mingled_rounds = 0;
  for (int round = 0; round < rounds; ++round) {
    monitor::MonitorRuntime mon(
        monitor::DomainIdentity{"com-proc", "n", "x86"},
        monitor::MonitorConfig{true, monitor::ProbeMode::kCausalityOnly},
        ClockDomain{});
    com::ComRuntime rt(&mon, hooks);
    rt.set_strict_inout_ftl(false);  // the paper's vulnerable legacy stub

    const auto sta = rt.create_sta();
    const auto helper_sta = rt.create_sta();
    const auto helper = rt.register_object(
        helper_sta, com::ComPtr<com::ComServant>(new SlowDoubler()));
    const auto wa = rt.register_object(
        sta, com::ComPtr<com::ComServant>(new Worker("E8::WorkerA", helper)));
    const auto wb = rt.register_object(
        sta, com::ComPtr<com::ComServant>(new Worker("E8::WorkerB", helper)));

    auto drive = [&](com::ComObjectId target, std::string_view iface) {
      monitor::tss_clear();
      com::ComCall c(rt, target, {iface, "outer", 0, false}, true);
      c.request().write_i32(1);
      c.invoke();
    };
    std::thread t1([&] { drive(wa, "E8::WorkerA"); });
    idle_for(1 * kNanosPerMilli);
    std::thread t2([&] { drive(wb, "E8::WorkerB"); });
    t1.join();
    t2.join();

    std::map<Uuid, std::set<std::string_view>> per_chain;
    for (const auto& r : mon.store().snapshot()) {
      if (r.interface_name == "E8::WorkerA" ||
          r.interface_name == "E8::WorkerB") {
        per_chain[r.chain].insert(r.interface_name);
      }
    }
    for (const auto& [chain, ifaces] : per_chain) {
      if (ifaces.size() > 1) {
        ++mingled_rounds;
        break;
      }
    }
    rt.shutdown();
  }
  monitor::tss_clear();
  return static_cast<double>(mingled_rounds) / rounds;
}

void report_sta(int rounds) {
  std::printf("=== E8 part 2: STA multiplexing with the legacy COM stub ===\n");
  const double without_hooks = sta_mingle_rate(false, rounds);
  const double with_hooks = sta_mingle_rate(true, rounds);
  std::printf("  chain-mingling rate over %d interleaved rounds:\n", rounds);
  std::printf("    channel hooks OFF: %5.1f%%   (paper: chains intertwine)\n",
              100.0 * without_hooks);
  std::printf("    channel hooks ON : %5.1f%%   (paper: clean separation)\n\n",
              100.0 * with_hooks);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E8: causality under server threading policies ===\n\n");
  report_sta(/*rounds=*/20);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
