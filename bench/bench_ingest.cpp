// Sharded-ingest bench: LogDatabase::ingest_records throughput vs shard
// count, plus a batch-size sweep at the machine's native shard count.
//
// The workload is the E2 synthesizer's record stream (multi-chain,
// multi-process, realistic string identities), ingested as one big batch so
// the parallel scatter path engages.  Acceptance shape: with shards =
// hardware_concurrency on a >= 1M-record batch, throughput must reach 3x
// the single-shard run (only meaningful on >= 4 cores; the JSON carries the
// core count so the artifact is interpretable on any runner).
//
// Emits BENCH_ingest.json next to the stdout summary; override with
// --json=PATH, shrink the workload with --calls=N.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/database.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

struct RunResult {
  std::string name;
  std::size_t shards{0};
  std::size_t batch_records{0};  // records per ingest call
  std::size_t records{0};
  double seconds{0};
  double records_per_sec{0};
};

// Ingests `records` into a fresh LogDatabase(shards) in `batch`-sized
// chunks (0 = one shot), best of `reps` timed runs.
RunResult run(std::string name, std::size_t shards, std::size_t batch,
              std::span<const monitor::TraceRecord> records, int reps) {
  RunResult r;
  r.name = std::move(name);
  r.shards = shards;
  r.batch_records = batch == 0 ? records.size() : batch;
  r.records = records.size();
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    analysis::LogDatabase db(shards);
    const auto t0 = Clock::now();
    if (batch == 0) {
      db.ingest_records(records);
    } else {
      for (std::size_t off = 0; off < records.size(); off += batch) {
        db.ingest_records(
            records.subspan(off, std::min(batch, records.size() - off)));
      }
    }
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    if (db.size() != records.size()) {
      std::fprintf(stderr, "FATAL: ingested %zu of %zu records\n", db.size(),
                   records.size());
      std::exit(1);
    }
  }
  r.seconds = best;
  r.records_per_sec = static_cast<double>(records.size()) / best;
  return r;
}

void print_result(const RunResult& r, double baseline_rps) {
  std::printf(
      "%-18s shards %2zu  batch %8zu | %7.3f s  %10.0f rec/s  %5.2fx\n",
      r.name.c_str(), r.shards, r.batch_records, r.seconds, r.records_per_sec,
      baseline_rps > 0 ? r.records_per_sec / baseline_rps : 1.0);
}

void write_json(const std::string& path, std::size_t cores,
                std::size_t records, const std::vector<RunResult>& runs,
                double speedup, bool target_applicable, bool meets_target) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"bench_ingest\",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"shards\": %zu, "
                  "\"batch_records\": %zu, \"seconds\": %.4f, "
                  "\"records_per_sec\": %.0f}",
                  r.name.c_str(), r.shards, r.batch_records, r.seconds,
                  r.records_per_sec);
    out << buf << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  char tail[256];
  std::snprintf(tail, sizeof tail,
                "  ],\n  \"speedup_vs_serial\": %.2f,\n"
                "  \"target_3x_applicable\": %s,\n"
                "  \"meets_3x_target\": %s\n}\n",
                speedup, target_applicable ? "true" : "false",
                meets_target ? "true" : "false");
  out << tail;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_ingest.json";
  std::size_t calls = 250'000;  // ~4 records per call => ~1M records
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calls=", 8) == 0) {
      calls = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    }
  }

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Synthesize the stream once; the source database owns the interned
  // strings, so its records() span stays valid for every timed run.
  std::printf("synthesizing %zu calls...\n", calls);
  analysis::LogDatabase source(1);
  workload::LogSynthConfig config;
  config.total_calls = calls;
  workload::synthesize_logs(config, source);
  const std::span<const monitor::TraceRecord> records(source.records());
  std::printf(
      "=== sharded ingest: %zu records, %zu chains, %zu cores ===\n\n",
      records.size(), source.chains().size(), cores);

  const int reps = 3;
  std::vector<RunResult> runs;
  runs.push_back(run("oneshot", 1, 0, records, reps));
  const double baseline = runs[0].records_per_sec;
  print_result(runs[0], baseline);

  // Shard sweep, one-shot batches.
  std::vector<std::size_t> shard_counts{2, 4, cores};
  shard_counts.erase(
      std::remove_if(shard_counts.begin(), shard_counts.end(),
                     [&](std::size_t s) { return s <= 1 || s > 64; }),
      shard_counts.end());
  std::sort(shard_counts.begin(), shard_counts.end());
  shard_counts.erase(std::unique(shard_counts.begin(), shard_counts.end()),
                     shard_counts.end());
  for (const std::size_t s : shard_counts) {
    runs.push_back(run("oneshot", s, 0, records, reps));
    print_result(runs.back(), baseline);
  }

  // Batch-size sweep at native shards: epoch-sized drains vs one shot.
  for (const std::size_t batch : {std::size_t{8'192}, std::size_t{65'536}}) {
    if (batch >= records.size()) continue;
    runs.push_back(run("epochs", cores, batch, records, reps));
    print_result(runs.back(), baseline);
  }

  // Acceptance: shards=hardware_concurrency one-shot vs shards=1, on a
  // big-enough batch and enough cores for 3x to be physically possible.
  double native_rps = baseline;
  for (const auto& r : runs) {
    if (r.name == "oneshot" && r.shards == cores) native_rps = r.records_per_sec;
  }
  const double speedup = native_rps / baseline;
  const bool applicable = cores >= 4 && records.size() >= 1'000'000;
  const bool meets = speedup >= 3.0;
  std::printf("\nshards=%zu vs shards=1: %.2fx (3x target %s)\n", cores,
              speedup,
              !applicable ? "not applicable on this machine"
              : meets     ? "MET"
                          : "NOT met");

  write_json(json_path, cores, records.size(), runs, speedup, applicable,
             meets);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
