// E1 -- paper Table 1: event chaining patterns determine call structure.
//
// Prints the event sequences produced by the live probe protocol for the
// sibling and parent/child programs of Table 1 and verifies the analyzer
// recovers the right structure from each; benchmarks the per-probe cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/dscg.h"
#include "monitor/probes.h"
#include "monitor/tss.h"

namespace {

using namespace causeway;

monitor::MonitorRuntime make_runtime(monitor::ProbeMode mode) {
  return monitor::MonitorRuntime(
      monitor::DomainIdentity{"proc", "node", "x86"},
      monitor::MonitorConfig{true, mode}, ClockDomain{});
}

// Simulates one full synchronous call F at probe level.
void simulate_call(monitor::MonitorRuntime& rt, std::string_view fn) {
  monitor::StubProbes stub(&rt,
                           monitor::CallIdentity{"Table1::I", fn, 1},
                           monitor::CallKind::kSync);
  monitor::Ftl wire = stub.on_stub_start();
  monitor::SkelProbes skel(&rt,
                           monitor::CallIdentity{"Table1::I", fn, 1},
                           monitor::CallKind::kSync);
  skel.on_skel_start(wire);
  monitor::Ftl reply = skel.on_skel_end();
  stub.on_stub_end(reply);
}

// Simulates F calling G (nesting) at probe level.
void simulate_nested(monitor::MonitorRuntime& rt) {
  monitor::StubProbes f_stub(&rt, monitor::CallIdentity{"Table1::I", "F", 1},
                             monitor::CallKind::kSync);
  monitor::Ftl wire = f_stub.on_stub_start();
  monitor::SkelProbes f_skel(&rt, monitor::CallIdentity{"Table1::I", "F", 1},
                             monitor::CallKind::kSync);
  f_skel.on_skel_start(wire);
  simulate_call(rt, "G");  // issued from within F's body (same thread/TSS)
  monitor::Ftl reply = f_skel.on_skel_end();
  f_stub.on_stub_end(reply);
}

void print_pattern(const char* title, monitor::MonitorRuntime& rt) {
  std::printf("%s:\n  ", title);
  for (const auto& r : rt.store().snapshot()) {
    std::printf("%s.%s(%llu) ", std::string(r.function_name).c_str(),
                std::string(to_string(r.event)).c_str(),
                static_cast<unsigned long long>(r.seq));
  }
  std::printf("\n");
}

void report_table1() {
  std::printf("=== E1: event chaining patterns (paper Table 1) ===\n");
  {
    monitor::tss_clear();
    auto rt = make_runtime(monitor::ProbeMode::kCausalityOnly);
    simulate_call(rt, "F");
    simulate_call(rt, "G");
    print_pattern("sibling  { F(); G(); }", rt);

    analysis::LogDatabase db;
    monitor::Collector c;
    c.attach(&rt);
    db.ingest(c.collect());
    auto dscg = analysis::Dscg::build(db);
    std::printf("  -> reconstructed: %zu top-level calls, %zu anomalies "
                "(expect 2 siblings, 0)\n",
                dscg.roots()[0]->root->children.size(),
                dscg.anomaly_count());
  }
  {
    monitor::tss_clear();
    auto rt = make_runtime(monitor::ProbeMode::kCausalityOnly);
    simulate_nested(rt);
    print_pattern("nesting  { F() { G(); } }", rt);

    analysis::LogDatabase db;
    monitor::Collector c;
    c.attach(&rt);
    db.ingest(c.collect());
    auto dscg = analysis::Dscg::build(db);
    const auto& tops = dscg.roots()[0]->root->children;
    std::printf("  -> reconstructed: %zu top-level, %zu nested under F, "
                "%zu anomalies (expect 1, 1, 0)\n",
                tops.size(), tops[0]->children.size(), dscg.anomaly_count());
  }
  monitor::tss_clear();
}

void BM_ProbeQuadLatencyMode(benchmark::State& state) {
  auto rt = make_runtime(monitor::ProbeMode::kLatency);
  monitor::tss_clear();
  for (auto _ : state) {
    simulate_call(rt, "F");
  }
  state.SetItemsProcessed(state.iterations() * 4);  // four probes per call
  rt.store().clear();
}
BENCHMARK(BM_ProbeQuadLatencyMode);

void BM_ProbeQuadCpuMode(benchmark::State& state) {
  auto rt = make_runtime(monitor::ProbeMode::kCpu);
  monitor::tss_clear();
  for (auto _ : state) {
    simulate_call(rt, "F");
  }
  state.SetItemsProcessed(state.iterations() * 4);
  rt.store().clear();
}
BENCHMARK(BM_ProbeQuadCpuMode);

void BM_ProbeQuadCausalityOnly(benchmark::State& state) {
  auto rt = make_runtime(monitor::ProbeMode::kCausalityOnly);
  monitor::tss_clear();
  for (auto _ : state) {
    simulate_call(rt, "F");
  }
  state.SetItemsProcessed(state.iterations() * 4);
  rt.store().clear();
}
BENCHMARK(BM_ProbeQuadCausalityOnly);

}  // namespace

int main(int argc, char** argv) {
  report_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
