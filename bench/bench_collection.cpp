// Pipeline-cost bench: what the monitoring *infrastructure* costs outside
// the probes -- collecting scattered logs, encoding/decoding trace files,
// and database ingestion -- at the paper's commercial scale.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "analysis/dscg.h"
#include "analysis/trace_io.h"
#include "monitor/probes.h"
#include "monitor/tss.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;

// The 195k-call record stream; lives for the whole benchmark run so the
// CollectedLogs views built over it stay valid.
analysis::LogDatabase& scale_db() {
  static analysis::LogDatabase db = [] {
    analysis::LogDatabase fresh;
    workload::LogSynthConfig config;
    config.total_calls = 195'000;
    workload::synthesize_logs(config, fresh);
    return fresh;
  }();
  return db;
}

void BM_CollectorSnapshot(benchmark::State& state) {
  // A live store with 50k records (25k calls x stub pair).
  monitor::MonitorRuntime rt(
      monitor::DomainIdentity{"p", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kCausalityOnly},
      ClockDomain{});
  monitor::tss_clear();
  for (int i = 0; i < 25'000; ++i) {
    monitor::StubProbes probes(
        &rt, monitor::CallIdentity{"Bench::Iface", "op", 1},
        monitor::CallKind::kSync);
    probes.on_stub_start();
    probes.on_stub_end(std::nullopt);
  }
  monitor::Collector collector;
  collector.attach(&rt);
  for (auto _ : state) {
    monitor::CollectedLogs logs = collector.collect();
    benchmark::DoNotOptimize(logs);
  }
  state.counters["records"] = 50'000;
  monitor::tss_clear();
}
BENCHMARK(BM_CollectorSnapshot)->Unit(benchmark::kMillisecond);

void BM_TraceEncode(benchmark::State& state) {
  monitor::CollectedLogs logs;
  logs.records = scale_db().records();
  for (auto _ : state) {
    auto bytes = analysis::encode_trace(logs);
    benchmark::DoNotOptimize(bytes);
    state.counters["bytes"] = static_cast<double>(bytes.size());
  }
  state.counters["records"] = static_cast<double>(logs.records.size());
}
BENCHMARK(BM_TraceEncode)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_TraceDecode(benchmark::State& state) {
  monitor::CollectedLogs logs;
  logs.records = scale_db().records();
  const auto bytes = analysis::encode_trace(logs);
  for (auto _ : state) {
    analysis::LogDatabase db;
    const std::size_t n = analysis::decode_trace(bytes, db);
    benchmark::DoNotOptimize(n);
  }
  state.counters["bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_DatabaseIngest(benchmark::State& state) {
  monitor::CollectedLogs logs;
  logs.records = scale_db().records();
  for (auto _ : state) {
    analysis::LogDatabase db;
    db.ingest(logs);
    benchmark::DoNotOptimize(db);
  }
  state.counters["records"] = static_cast<double>(logs.records.size());
}
BENCHMARK(BM_DatabaseIngest)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_IncrementalEpochUpdate(benchmark::State& state) {
  // The streaming pipeline's analysis half: the same 195k-call stream
  // arrives as epoch batches; each batch is ingested incrementally and the
  // DSCG updated in place (dirty chains only, independent chains rebuilt in
  // parallel) instead of rebuilt from scratch.
  const auto& records = scale_db().records();
  const std::size_t epochs = static_cast<std::size_t>(state.range(0));
  const std::size_t span = (records.size() + epochs - 1) / epochs;
  for (auto _ : state) {
    analysis::LogDatabase db;
    analysis::Dscg dscg;
    for (std::size_t off = 0; off < records.size(); off += span) {
      const std::size_t n = std::min(span, records.size() - off);
      db.ingest_records(std::span(records).subspan(off, n));
      dscg.update(db);
    }
    benchmark::DoNotOptimize(dscg.call_count());
  }
  state.counters["records"] = static_cast<double>(records.size());
  state.counters["epochs"] = static_cast<double>(epochs);
}
BENCHMARK(BM_IncrementalEpochUpdate)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== monitoring pipeline costs at the 195k-call scale "
              "(collection, codec, ingest, incremental update) ===\n\n");
  // Console for humans plus machine-readable JSON, unless the caller
  // already chose an output destination.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_collection.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) std::printf("\nwrote BENCH_collection.json\n");
  return 0;
}
