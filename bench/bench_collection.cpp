// Pipeline-cost bench: what the monitoring *infrastructure* costs outside
// the probes -- collecting scattered logs, encoding/decoding trace files,
// and database ingestion -- at the paper's commercial scale.
#include <benchmark/benchmark.h>

#include "analysis/trace_io.h"
#include "monitor/probes.h"
#include "monitor/tss.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;

// The 195k-call record stream; lives for the whole benchmark run so the
// CollectedLogs views built over it stay valid.
analysis::LogDatabase& scale_db() {
  static analysis::LogDatabase db = [] {
    analysis::LogDatabase fresh;
    workload::LogSynthConfig config;
    config.total_calls = 195'000;
    workload::synthesize_logs(config, fresh);
    return fresh;
  }();
  return db;
}

void BM_CollectorSnapshot(benchmark::State& state) {
  // A live store with 50k records (25k calls x stub pair).
  monitor::MonitorRuntime rt(
      monitor::DomainIdentity{"p", "n", "x86"},
      monitor::MonitorConfig{true, monitor::ProbeMode::kCausalityOnly},
      ClockDomain{});
  monitor::tss_clear();
  for (int i = 0; i < 25'000; ++i) {
    monitor::StubProbes probes(
        &rt, monitor::CallIdentity{"Bench::Iface", "op", 1},
        monitor::CallKind::kSync);
    probes.on_stub_start();
    probes.on_stub_end(std::nullopt);
  }
  monitor::Collector collector;
  collector.attach(&rt);
  for (auto _ : state) {
    monitor::CollectedLogs logs = collector.collect();
    benchmark::DoNotOptimize(logs);
  }
  state.counters["records"] = 50'000;
  monitor::tss_clear();
}
BENCHMARK(BM_CollectorSnapshot)->Unit(benchmark::kMillisecond);

void BM_TraceEncode(benchmark::State& state) {
  monitor::CollectedLogs logs;
  logs.records = scale_db().records();
  for (auto _ : state) {
    auto bytes = analysis::encode_trace(logs);
    benchmark::DoNotOptimize(bytes);
    state.counters["bytes"] = static_cast<double>(bytes.size());
  }
  state.counters["records"] = static_cast<double>(logs.records.size());
}
BENCHMARK(BM_TraceEncode)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_TraceDecode(benchmark::State& state) {
  monitor::CollectedLogs logs;
  logs.records = scale_db().records();
  const auto bytes = analysis::encode_trace(logs);
  for (auto _ : state) {
    analysis::LogDatabase db;
    const std::size_t n = analysis::decode_trace(bytes, db);
    benchmark::DoNotOptimize(n);
  }
  state.counters["bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_DatabaseIngest(benchmark::State& state) {
  monitor::CollectedLogs logs;
  logs.records = scale_db().records();
  for (auto _ : state) {
    analysis::LogDatabase db;
    db.ingest(logs);
    benchmark::DoNotOptimize(db);
  }
  state.counters["records"] = static_cast<double>(logs.records.size());
}
BENCHMARK(BM_DatabaseIngest)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== monitoring pipeline costs at the 195k-call scale "
              "(collection, codec, ingest) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
