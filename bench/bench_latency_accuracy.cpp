// E3 -- PPS latency accuracy (paper Sec. 4).
//
// Paper: "we compared it with manual measurement ... With the configuration
// involved with 4 processes ... we observed that the automatic measurement
// and manual measurement were matched within 60%.  The collocated calls
// (with optimization turned off) tend to have larger difference compared
// with the remote calls."
//
// This bench runs the 4-process PPS in latency mode, takes the framework's
// overhead-corrected L(F) per target function, takes the manual caller-side
// measurement for the same functions, and prints the percentage difference
// -- remote and collocated(optimization off) rows separately.  The shape to
// check: every row well under the paper's 60% bound, and the
// collocated-opt-off rows showing the larger relative gap.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "analysis/dscg.h"
#include "analysis/latency.h"
#include "analysis/stats.h"
#include "monitor/tss.h"
#include "pps/pps_system.h"

namespace {

using namespace causeway;

struct Row {
  double manual_us{0};
  double automatic_us{0};
  double raw_us{0};  // L(F) + O_F: what a tool without the correction reports
  std::size_t samples{0};

  double diff_pct() const {
    if (manual_us <= 0) return 0;
    return 100.0 * (manual_us - automatic_us) / manual_us;
  }
  double raw_diff_pct() const {
    if (manual_us <= 0) return 0;
    return 100.0 * (manual_us - raw_us) / manual_us;
  }
};

std::map<std::string, Row> run_config(bool collocation_optimization,
                                      int jobs) {
  monitor::tss_clear();
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.topology = pps::PpsConfig::Topology::kFourProcess;
  config.collocation_optimization = collocation_optimization;
  config.cpu_scale = 1.0;
  pps::ManualProbes manual;
  pps::PpsSystem system(fabric, config, &manual);

  for (int i = 0; i < jobs; ++i) {
    system.submit_job(/*pages=*/2, /*dpi=*/300, /*color=*/true);
  }
  system.wait_quiescent();

  analysis::LogDatabase db;
  db.ingest(system.collect());
  auto dscg = analysis::Dscg::build(db);
  analysis::annotate_latency(dscg);

  // Collect automatic L(F) (and the uncorrected raw value -- the ablation
  // for the O_F overhead subtraction) per interface::function.
  std::map<std::string, std::vector<double>> automatic;
  std::map<std::string, std::vector<double>> raw;
  dscg.visit([&](const analysis::CallNode& node, int) {
    if (!node.latency) return;
    const std::string key = std::string(node.interface_name) +
                            "::" + std::string(node.function_name);
    automatic[key].push_back(static_cast<double>(*node.latency));
    raw[key].push_back(static_cast<double>(*node.raw_latency));
  });

  std::map<std::string, Row> rows;
  for (const char* key :
       {"PPS::JobQueue::submit", "PPS::Parser::parse",
        "PPS::LayoutEngine::layout", "PPS::Rasterizer::rasterize",
        "PPS::Compressor::compress", "PPS::FontService::resolve",
        "PPS::ColorConverter::convert"}) {
    const auto samples = manual.samples(key);
    auto it = automatic.find(key);
    if (samples.empty() || it == automatic.end()) continue;
    Row row;
    row.manual_us = manual.mean_wall(key) / 1e3;
    row.automatic_us = analysis::summarize(it->second).mean / 1e3;
    row.raw_us = analysis::summarize(raw[key]).mean / 1e3;
    row.samples = samples.size();
    rows[key] = row;
  }
  monitor::tss_clear();
  return rows;
}

void report(int jobs) {
  std::printf("=== E3: automatic (L(F), overhead-corrected) vs manual "
              "latency, 4-process PPS ===\n");
  std::printf("paper bound: matched within 60%%; collocated (optimization "
              "off) worse than remote\n\n");

  const auto remote = run_config(/*collocation_optimization=*/true, jobs);
  const auto loopback = run_config(/*collocation_optimization=*/false, jobs);

  std::printf("%-34s %5s %11s %11s %11s %8s %8s\n",
              "function (remote config)", "n", "manual us", "auto us",
              "raw us", "diff%", "rawdiff%");
  double worst_remote = 0;
  for (const auto& [key, row] : remote) {
    std::printf("%-34s %5zu %11.1f %11.1f %11.1f %7.1f%% %7.1f%%\n",
                key.c_str(), row.samples, row.manual_us, row.automatic_us,
                row.raw_us, row.diff_pct(), row.raw_diff_pct());
    worst_remote = std::max(worst_remote, std::abs(row.diff_pct()));
  }

  std::printf("\n%-34s %5s %11s %11s %11s %8s %8s\n",
              "function (collocation opt OFF)", "n", "manual us", "auto us",
              "raw us", "diff%", "rawdiff%");
  double worst_loopback = 0;
  for (const auto& [key, row] : loopback) {
    std::printf("%-34s %5zu %11.1f %11.1f %11.1f %7.1f%% %7.1f%%\n",
                key.c_str(), row.samples, row.manual_us, row.automatic_us,
                row.raw_us, row.diff_pct(), row.raw_diff_pct());
    worst_loopback = std::max(worst_loopback, std::abs(row.diff_pct()));
  }

  std::printf("\nworst-case |diff|: remote %.1f%%, optimization-off %.1f%% "
              "(paper bound: 60%%)\n\n",
              worst_remote, worst_loopback);
}

void BM_PpsSubmitLatencyInstrumented(benchmark::State& state) {
  monitor::tss_clear();
  orb::Fabric fabric;
  pps::PpsConfig config;
  config.topology = pps::PpsConfig::Topology::kFourProcess;
  config.cpu_scale = 0.2;
  pps::PpsSystem system(fabric, config);
  for (auto _ : state) {
    system.submit_job(1, 150, false);
  }
  monitor::tss_clear();
}
BENCHMARK(BM_PpsSubmitLatencyInstrumented)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5);

}  // namespace

int main(int argc, char** argv) {
  report(/*jobs=*/20);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
