// Trace-codec bench: encode/decode throughput and wire size, v3 (fixed
// 96-byte records) vs v4 (columnar delta/varint), on the E2 synthesizer's
// record stream chunked into epoch-sized segments like a streamed trace.
//
// Decode is timed on bytes written through TraceWriter -- so the v4 path
// exercises the directory trailer exactly as a real file read does.  Encode
// is timed per row under its own kernel pin (no row shares another row's
// measurement), best + median of reps, with throughput in records/s and
// wire GB/s.  The rows:
//
//   v3        encode_trace + decode_trace_segments, fixed-width records
//   v4rec     encode_trace_recmajor -- the frozen record-major writer
//             (byte-at-a-time varint loops), the baseline the 3x columnar
//             encode target is measured against; decode_trace_segments
//             under the widest kernel
//   v4        the columnar writer + decode_trace_segments, both under the
//             widest available kernel (AVX2/SSE/NEON/SWAR) -- kept so the
//             long-running v4-vs-v3 trajectory stays comparable
//   v4scalar  both sides pinned to the strict scalar reference kernel --
//             the decode baseline for the 3x column-decode target
//   v4col     the column-native pair: encode_trace_columns from decoded
//             ColumnBundles and decode_trace_columns, widest kernel --
//             what the publisher/collectd pipeline path runs
//
// Every v4 encode row is byte-compared against the record-major reference
// before timing: a kernel or writer change that altered the wire bytes
// aborts the bench rather than reporting a meaningless speedup.
// Database ingest is excluded: it would dilute the codec comparison.
//
// Acceptance shape: v4 wire size >= 35% smaller than v3, v4 decode >= 2x
// v3 (multi-core only -- the 2x rides on the trailer fanning segments out
// across the WorkerPool), v4col decode >= 3x v4scalar decode, and v4
// columnar encode >= 3x v4rec encode (both single-threaded: kernel +
// column-gather gains, no parallelism involved).
// Emits BENCH_trace_io.json in the working directory (CI invokes every
// bench from the repo root, so artifacts land at a stable repo-root path);
// override with --json=PATH, shrink with --calls=N, change the segment
// count with --segments=N.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace_io.h"
#include "common/wire.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

struct CodecResult {
  std::string name;
  std::string kernel;  // varint kernel the row's codec ran under
  std::size_t wire_bytes{0};
  double encode_seconds{0};         // best of reps
  double encode_seconds_median{0};  // median of reps
  double decode_seconds{0};         // best of reps
  double decode_seconds_median{0};  // median of reps
  std::size_t records{0};
  double encode_records_per_sec() const {
    return static_cast<double>(records) / encode_seconds;
  }
  double encode_mb_per_sec() const {
    return static_cast<double>(wire_bytes) / 1e6 / encode_seconds;
  }
  double encode_gb_per_sec() const { return encode_mb_per_sec() / 1e3; }
  double decode_records_per_sec() const {
    return static_cast<double>(records) / decode_seconds;
  }
  double decode_mb_per_sec() const {
    return static_cast<double>(wire_bytes) / 1e6 / decode_seconds;
  }
  double decode_gb_per_sec() const { return decode_mb_per_sec() / 1e3; }
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

enum class DecodePath { kRecords, kColumns };

// Times the decode of `bytes` (best + median of reps) under `kernel`,
// filling r.decode_*.  Restores the previously active kernel afterwards.
void time_decode(CodecResult& r, const std::vector<std::uint8_t>& bytes,
                 std::size_t records, int reps, DecodePath path,
                 VarintKernel kernel) {
  const VarintKernel previous = active_varint_kernel();
  force_varint_kernel(kernel);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    std::size_t decoded = 0;
    const auto t0 = Clock::now();
    if (path == DecodePath::kColumns) {
      const auto staged = analysis::decode_trace_columns(bytes);
      for (const auto& cols : staged) decoded += cols.count;
    } else {
      const auto staged = analysis::decode_trace_segments(bytes);
      for (const auto& bundle : staged) decoded += bundle.records.size();
    }
    const auto t1 = Clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
    if (decoded != records) {
      std::fprintf(stderr, "FATAL: %s decoded %zu of %zu records\n",
                   r.name.c_str(), decoded, records);
      std::exit(1);
    }
  }
  force_varint_kernel(previous);
  std::sort(times.begin(), times.end());
  r.decode_seconds = times.front();
  r.decode_seconds_median = times[times.size() / 2];
}

// Times `encode_all` (which returns total bytes produced) under `kernel`,
// best + median of reps, filling r.encode_* and r.kernel.
template <typename EncodeAll>
void time_encode(CodecResult& r, int reps, VarintKernel kernel,
                 EncodeAll&& encode_all) {
  const VarintKernel previous = active_varint_kernel();
  force_varint_kernel(kernel);
  r.kernel = to_string(kernel);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    const std::size_t produced = encode_all();
    const auto t1 = Clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
    if (produced == 0) std::exit(1);
  }
  force_varint_kernel(previous);
  std::sort(times.begin(), times.end());
  r.encode_seconds = times.front();
  r.encode_seconds_median = times[times.size() / 2];
}

// Materializes the on-disk byte stream once (untimed): TraceWriter output
// (directory trailer included), or -- with legacy_layout -- plain
// concatenated segments with no trailer, the shape every pre-v4 writer
// produced, so the v3 measurement exercises the sequential skim fallback a
// real legacy artifact forces on the reader.
std::vector<std::uint8_t> materialize_stream(
    const std::string& name, std::uint32_t version,
    const std::vector<monitor::CollectedLogs>& bundles, bool legacy_layout) {
  if (legacy_layout) {
    std::vector<std::uint8_t> bytes;
    for (const auto& bundle : bundles) {
      const auto segment = analysis::encode_trace(bundle, version);
      bytes.insert(bytes.end(), segment.begin(), segment.end());
    }
    return bytes;
  }
  const auto path = (std::filesystem::temp_directory_path() /
                     ("bench_trace_io_" + name + ".cwt"))
                        .string();
  {
    analysis::TraceWriter writer(path, version);
    for (const auto& bundle : bundles) writer.append(bundle);
    writer.close();
  }
  auto bytes = slurp(path);
  std::filesystem::remove(path);
  return bytes;
}

void print_result(const CodecResult& r) {
  std::printf(
      "%-8s %10zu B (%5.1f B/rec) | encode %7.3f s (med %7.3f) %9.0f rec/s "
      "%6.2f GB/s | decode %7.3f s (med %7.3f) %9.0f rec/s %6.2f GB/s "
      "[%s]\n",
      r.name.c_str(), r.wire_bytes,
      static_cast<double>(r.wire_bytes) / static_cast<double>(r.records),
      r.encode_seconds, r.encode_seconds_median, r.encode_records_per_sec(),
      r.encode_gb_per_sec(), r.decode_seconds, r.decode_seconds_median,
      r.decode_records_per_sec(), r.decode_gb_per_sec(), r.kernel.c_str());
}

void write_json(const std::string& path, std::size_t cores,
                std::size_t records, std::size_t segments,
                const std::vector<CodecResult>& runs,
                double size_reduction_pct, double decode_speedup,
                double column_speedup, double encode_speedup, bool meets_size,
                bool meets_decode, bool decode_applicable, bool meets_column,
                bool meets_encode) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  auto emit = [&](const CodecResult& r, const char* trailing) {
    char buf[768];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"kernel\": \"%s\", "
                  "\"wire_bytes\": %zu, "
                  "\"bytes_per_record\": %.2f, \"encode_seconds\": %.4f, "
                  "\"encode_seconds_median\": %.4f, "
                  "\"encode_records_per_sec\": %.0f, "
                  "\"encode_mb_per_sec\": %.1f, "
                  "\"encode_gb_per_sec\": %.3f, "
                  "\"decode_seconds\": %.4f, "
                  "\"decode_seconds_median\": %.4f, "
                  "\"decode_records_per_sec\": %.0f, "
                  "\"decode_mb_per_sec\": %.1f, "
                  "\"decode_gb_per_sec\": %.3f}%s\n",
                  r.name.c_str(), r.kernel.c_str(), r.wire_bytes,
                  static_cast<double>(r.wire_bytes) /
                      static_cast<double>(r.records),
                  r.encode_seconds, r.encode_seconds_median,
                  r.encode_records_per_sec(), r.encode_mb_per_sec(),
                  r.encode_gb_per_sec(), r.decode_seconds,
                  r.decode_seconds_median, r.decode_records_per_sec(),
                  r.decode_mb_per_sec(), r.decode_gb_per_sec(), trailing);
    out << buf;
  };
  out << "{\n"
      << "  \"bench\": \"bench_trace_io\",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"varint_kernel\": \""
      << to_string(active_varint_kernel()) << "\",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"segments\": " << segments << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    emit(runs[i], i + 1 < runs.size() ? "," : "");
  }
  char tail[640];
  std::snprintf(tail, sizeof tail,
                "  ],\n  \"v4_size_reduction_pct\": %.1f,\n"
                "  \"v4_decode_speedup\": %.2f,\n"
                "  \"v4_column_decode_speedup_vs_scalar\": %.2f,\n"
                "  \"v4_column_encode_speedup_vs_recmajor\": %.2f,\n"
                "  \"meets_35pct_size_target\": %s,\n"
                "  \"target_2x_decode_applicable\": %s,\n"
                "  \"meets_2x_decode_target\": %s,\n"
                "  \"meets_3x_column_decode_target\": %s,\n"
                "  \"meets_3x_column_encode_target\": %s\n}\n",
                size_reduction_pct, decode_speedup, column_speedup,
                encode_speedup, meets_size ? "true" : "false",
                decode_applicable ? "true" : "false",
                meets_decode ? "true" : "false",
                meets_column ? "true" : "false",
                meets_encode ? "true" : "false");
  out << tail;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_trace_io.json";
  std::size_t calls = 100'000;
  std::size_t segments = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calls=", 8) == 0) {
      calls = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--segments=", 11) == 0) {
      segments = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(argv[i] + 11)));
    }
  }

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Synthesize the stream once (the source database owns the interned
  // strings), then chunk it into epoch-sized bundles like a streamed run.
  std::printf("synthesizing %zu calls...\n", calls);
  analysis::LogDatabase source(1);
  workload::LogSynthConfig config;
  config.total_calls = calls;
  workload::synthesize_logs(config, source);
  const auto& records = source.records();
  const std::size_t per_segment =
      std::max<std::size_t>(1, (records.size() + segments - 1) / segments);
  std::vector<monitor::CollectedLogs> bundles;
  for (std::size_t off = 0; off < records.size(); off += per_segment) {
    monitor::CollectedLogs bundle;
    bundle.epoch = bundles.size() + 1;
    const std::size_t n = std::min(per_segment, records.size() - off);
    bundle.records.assign(records.begin() + static_cast<long>(off),
                          records.begin() + static_cast<long>(off + n));
    bundles.push_back(std::move(bundle));
  }
  const VarintKernel best_kernel = active_varint_kernel();
  std::printf(
      "=== trace codec: %zu records in %zu segments, %zu cores, "
      "kernel %s ===\n\n",
      records.size(), bundles.size(), cores,
      std::string(to_string(best_kernel)).c_str());

  const int reps = 5;
  std::vector<CodecResult> runs(5);

  // Per-segment encoders as timing closures (each re-encodes the full
  // stream serially, so encode rows compare codec work, not parallelism).
  auto encode_v3_all = [&] {
    std::size_t produced = 0;
    for (const auto& b : bundles) {
      produced += analysis::encode_trace(b, analysis::kTraceFormatV3).size();
    }
    return produced;
  };
  auto encode_recmajor_all = [&] {
    std::size_t produced = 0;
    for (const auto& b : bundles) {
      produced +=
          analysis::encode_trace_recmajor(b, analysis::kTraceFormatV4).size();
    }
    return produced;
  };
  auto encode_columnar_all = [&] {
    std::size_t produced = 0;
    for (const auto& b : bundles) {
      produced += analysis::encode_trace(b, analysis::kTraceFormatV4).size();
    }
    return produced;
  };

  CodecResult& v3 = runs[0];
  v3.name = "v3";
  v3.records = records.size();
  const auto v3_bytes = materialize_stream("v3", analysis::kTraceFormatV3,
                                           bundles, /*legacy_layout=*/true);
  v3.wire_bytes = v3_bytes.size();
  time_encode(v3, reps, best_kernel, encode_v3_all);
  time_decode(v3, v3_bytes, records.size(), reps, DecodePath::kRecords,
              best_kernel);
  print_result(v3);

  const auto v4_bytes = materialize_stream("v4", analysis::kTraceFormatV4,
                                           bundles, /*legacy_layout=*/false);

  // Byte-identity gate: the columnar writer and the frozen record-major
  // reference must agree on every segment before any speedup is reported.
  for (const auto& bundle : bundles) {
    if (analysis::encode_trace(bundle, analysis::kTraceFormatV4) !=
        analysis::encode_trace_recmajor(bundle, analysis::kTraceFormatV4)) {
      std::fprintf(stderr,
                   "FATAL: columnar v4 encode diverged from the record-major "
                   "reference\n");
      return 1;
    }
  }

  CodecResult& v4rec = runs[1];
  v4rec.name = "v4rec";
  v4rec.records = records.size();
  v4rec.wire_bytes = v4_bytes.size();
  time_encode(v4rec, reps, best_kernel, encode_recmajor_all);
  time_decode(v4rec, v4_bytes, records.size(), reps, DecodePath::kRecords,
              best_kernel);
  print_result(v4rec);

  CodecResult& v4 = runs[2];
  v4.name = "v4";
  v4.records = records.size();
  v4.wire_bytes = v4_bytes.size();
  time_encode(v4, reps, best_kernel, encode_columnar_all);
  time_decode(v4, v4_bytes, records.size(), reps, DecodePath::kRecords,
              best_kernel);
  print_result(v4);

  CodecResult& v4scalar = runs[3];
  v4scalar.name = "v4scalar";
  v4scalar.records = records.size();
  v4scalar.wire_bytes = v4_bytes.size();
  time_encode(v4scalar, reps, VarintKernel::kScalar, encode_columnar_all);
  time_decode(v4scalar, v4_bytes, records.size(), reps, DecodePath::kRecords,
              VarintKernel::kScalar);
  print_result(v4scalar);

  // The column-native pair: encode straight from decoded ColumnBundles
  // (the publisher/collectd path -- no record-major gather at all).
  CodecResult& v4col = runs[4];
  v4col.name = "v4col";
  v4col.records = records.size();
  v4col.wire_bytes = v4_bytes.size();
  const std::vector<analysis::ColumnBundle> column_bundles =
      analysis::decode_trace_columns(v4_bytes);
  time_encode(v4col, reps, best_kernel, [&] {
    std::size_t produced = 0;
    for (const auto& cols : column_bundles) {
      produced += analysis::encode_trace_columns(cols).size();
    }
    return produced;
  });
  time_decode(v4col, v4_bytes, records.size(), reps, DecodePath::kColumns,
              best_kernel);
  print_result(v4col);

  const double reduction =
      100.0 * (1.0 - static_cast<double>(v4.wire_bytes) /
                         static_cast<double>(v3.wire_bytes));
  const double speedup = v3.decode_seconds / v4.decode_seconds;
  const double column_speedup = v4scalar.decode_seconds / v4col.decode_seconds;
  const double encode_speedup = v4rec.encode_seconds / v4.encode_seconds;
  const bool meets_size = reduction >= 35.0;
  const bool meets_decode = speedup >= 2.0;
  const bool meets_column = column_speedup >= 3.0;
  const bool meets_encode = encode_speedup >= 3.0;
  // The 2x claim is about the directory trailer fanning segment decode out
  // across cores; a single-threaded host cannot express it (see header).
  // The 3x column claims (decode and encode) are single-threaded by
  // construction.
  const bool decode_applicable = cores >= 2;
  std::printf("\nv4 vs v3: %.1f%% smaller (35%% target %s), decode %.2fx "
              "(2x target %s%s)\n",
              reduction, meets_size ? "MET" : "NOT met", speedup,
              meets_decode ? "MET" : "NOT met",
              decode_applicable ? "" : "; n/a on 1 hardware thread");
  std::printf("v4col vs v4scalar: decode %.2fx (3x target %s), %.2f GB/s\n",
              column_speedup, meets_column ? "MET" : "NOT met",
              v4col.decode_gb_per_sec());
  std::printf("v4 columnar encode vs v4rec record-major: %.2fx "
              "(3x target %s), %.2f GB/s\n",
              encode_speedup, meets_encode ? "MET" : "NOT met",
              v4.encode_gb_per_sec());

  write_json(json_path, cores, records.size(), bundles.size(), runs,
             reduction, speedup, column_speedup, encode_speedup, meets_size,
             meets_decode, decode_applicable, meets_column, meets_encode);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
