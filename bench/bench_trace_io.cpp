// Trace-codec bench: encode/decode throughput and wire size, v3 (fixed
// 96-byte records) vs v4 (columnar delta/varint), on the E2 synthesizer's
// record stream chunked into epoch-sized segments like a streamed trace.
//
// Decode is timed on bytes written through TraceWriter -- so the v4 path
// exercises the directory trailer exactly as a real file read does -- and
// in three configurations:
//
//   v3        decode_trace_segments, the fixed-width record path
//   v4scalar  decode_trace_segments with the varint kernel pinned to the
//             strict scalar reference -- the byte-at-a-time record-major
//             decode this codebase shipped before the batch kernels, and
//             the baseline the 3x column-decode target is measured against
//   v4col     decode_trace_columns with the widest available kernel
//             (AVX2/SSE/NEON/SWAR): batched column decode, run expansion,
//             no record-major assembly -- what the ingest path runs
//
// (plus "v4": decode_trace_segments under the active kernel, kept so the
// long-running v4-vs-v3 trajectory stays comparable across bench history.)
// Database ingest is excluded: it would dilute the codec comparison.
//
// Acceptance shape: v4 wire size >= 35% smaller than v3, v4 decode >= 2x
// v3 (multi-core only -- the 2x rides on the trailer fanning segments out
// across the WorkerPool), and v4col decode >= 3x v4scalar on the same
// stream (single-threaded: kernel + zero-assembly gains, no parallelism
// involved).  Each timing reports best-of-reps and the median, so the
// JSON trajectory shows spread, not just the lucky run.
// Emits BENCH_trace_io.json in the working directory (CI invokes every
// bench from the repo root, so artifacts land at a stable repo-root path);
// override with --json=PATH, shrink with --calls=N, change the segment
// count with --segments=N.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace_io.h"
#include "common/wire.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

struct CodecResult {
  std::string name;
  std::string kernel;  // varint kernel the decode ran under
  std::size_t wire_bytes{0};
  double encode_seconds{0};
  double decode_seconds{0};         // best of reps
  double decode_seconds_median{0};  // median of reps
  std::size_t records{0};
  double encode_records_per_sec() const {
    return static_cast<double>(records) / encode_seconds;
  }
  double decode_records_per_sec() const {
    return static_cast<double>(records) / decode_seconds;
  }
  double decode_mb_per_sec() const {
    return static_cast<double>(wire_bytes) / 1e6 / decode_seconds;
  }
  double decode_gb_per_sec() const { return decode_mb_per_sec() / 1e3; }
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

enum class DecodePath { kRecords, kColumns };

// Times the decode of `bytes` (best + median of reps) under `kernel`,
// filling r.decode_*.  Restores the previously active kernel afterwards.
void time_decode(CodecResult& r, const std::vector<std::uint8_t>& bytes,
                 std::size_t records, int reps, DecodePath path,
                 VarintKernel kernel) {
  const VarintKernel previous = active_varint_kernel();
  force_varint_kernel(kernel);
  r.kernel = to_string(kernel);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    std::size_t decoded = 0;
    const auto t0 = Clock::now();
    if (path == DecodePath::kColumns) {
      const auto staged = analysis::decode_trace_columns(bytes);
      for (const auto& cols : staged) decoded += cols.count;
    } else {
      const auto staged = analysis::decode_trace_segments(bytes);
      for (const auto& bundle : staged) decoded += bundle.records.size();
    }
    const auto t1 = Clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
    if (decoded != records) {
      std::fprintf(stderr, "FATAL: %s decoded %zu of %zu records\n",
                   r.name.c_str(), decoded, records);
      std::exit(1);
    }
  }
  force_varint_kernel(previous);
  std::sort(times.begin(), times.end());
  r.decode_seconds = times.front();
  r.decode_seconds_median = times[times.size() / 2];
}

// Encodes the bundles segment-by-segment (timed, best of reps) and returns
// the on-disk byte stream: TraceWriter output (directory trailer included),
// or -- with legacy_layout -- plain concatenated segments with no trailer,
// the shape every pre-v4 writer produced, so the v3 measurement exercises
// the sequential skim fallback a real legacy artifact forces on the reader.
std::vector<std::uint8_t> encode_stream(
    CodecResult& r, std::uint32_t version,
    const std::vector<monitor::CollectedLogs>& bundles, int reps,
    bool legacy_layout) {
  double best_encode = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    std::size_t produced = 0;
    for (const auto& bundle : bundles) {
      produced += analysis::encode_trace(bundle, version).size();
    }
    const auto t1 = Clock::now();
    best_encode =
        std::min(best_encode, std::chrono::duration<double>(t1 - t0).count());
    if (produced == 0) std::exit(1);
  }
  r.encode_seconds = best_encode;

  std::vector<std::uint8_t> bytes;
  if (legacy_layout) {
    for (const auto& bundle : bundles) {
      const auto segment = analysis::encode_trace(bundle, version);
      bytes.insert(bytes.end(), segment.begin(), segment.end());
    }
  } else {
    const auto path = (std::filesystem::temp_directory_path() /
                       ("bench_trace_io_" + r.name + ".cwt"))
                          .string();
    {
      analysis::TraceWriter writer(path, version);
      for (const auto& bundle : bundles) writer.append(bundle);
      writer.close();
    }
    bytes = slurp(path);
    std::filesystem::remove(path);
  }
  r.wire_bytes = bytes.size();
  return bytes;
}

void print_result(const CodecResult& r) {
  std::printf(
      "%-8s %10zu B (%5.1f B/rec) | encode %7.3f s %9.0f rec/s | "
      "decode %7.3f s (med %7.3f) %9.0f rec/s %7.1f MB/s %6.2f GB/s "
      "[%s]\n",
      r.name.c_str(), r.wire_bytes,
      static_cast<double>(r.wire_bytes) / static_cast<double>(r.records),
      r.encode_seconds, r.encode_records_per_sec(), r.decode_seconds,
      r.decode_seconds_median, r.decode_records_per_sec(),
      r.decode_mb_per_sec(), r.decode_gb_per_sec(), r.kernel.c_str());
}

void write_json(const std::string& path, std::size_t cores,
                std::size_t records, std::size_t segments,
                const std::vector<CodecResult>& runs,
                double size_reduction_pct, double decode_speedup,
                double column_speedup, bool meets_size, bool meets_decode,
                bool decode_applicable, bool meets_column) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  auto emit = [&](const CodecResult& r, const char* trailing) {
    char buf[640];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"kernel\": \"%s\", "
                  "\"wire_bytes\": %zu, "
                  "\"bytes_per_record\": %.2f, \"encode_seconds\": %.4f, "
                  "\"encode_records_per_sec\": %.0f, "
                  "\"decode_seconds\": %.4f, "
                  "\"decode_seconds_median\": %.4f, "
                  "\"decode_records_per_sec\": %.0f, "
                  "\"decode_mb_per_sec\": %.1f, "
                  "\"decode_gb_per_sec\": %.3f}%s\n",
                  r.name.c_str(), r.kernel.c_str(), r.wire_bytes,
                  static_cast<double>(r.wire_bytes) /
                      static_cast<double>(r.records),
                  r.encode_seconds, r.encode_records_per_sec(),
                  r.decode_seconds, r.decode_seconds_median,
                  r.decode_records_per_sec(), r.decode_mb_per_sec(),
                  r.decode_gb_per_sec(), trailing);
    out << buf;
  };
  out << "{\n"
      << "  \"bench\": \"bench_trace_io\",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"varint_kernel\": \""
      << to_string(active_varint_kernel()) << "\",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"segments\": " << segments << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    emit(runs[i], i + 1 < runs.size() ? "," : "");
  }
  char tail[512];
  std::snprintf(tail, sizeof tail,
                "  ],\n  \"v4_size_reduction_pct\": %.1f,\n"
                "  \"v4_decode_speedup\": %.2f,\n"
                "  \"v4_column_decode_speedup_vs_scalar\": %.2f,\n"
                "  \"meets_35pct_size_target\": %s,\n"
                "  \"target_2x_decode_applicable\": %s,\n"
                "  \"meets_2x_decode_target\": %s,\n"
                "  \"meets_3x_column_decode_target\": %s\n}\n",
                size_reduction_pct, decode_speedup, column_speedup,
                meets_size ? "true" : "false",
                decode_applicable ? "true" : "false",
                meets_decode ? "true" : "false",
                meets_column ? "true" : "false");
  out << tail;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_trace_io.json";
  std::size_t calls = 100'000;
  std::size_t segments = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calls=", 8) == 0) {
      calls = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--segments=", 11) == 0) {
      segments = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(argv[i] + 11)));
    }
  }

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Synthesize the stream once (the source database owns the interned
  // strings), then chunk it into epoch-sized bundles like a streamed run.
  std::printf("synthesizing %zu calls...\n", calls);
  analysis::LogDatabase source(1);
  workload::LogSynthConfig config;
  config.total_calls = calls;
  workload::synthesize_logs(config, source);
  const auto& records = source.records();
  const std::size_t per_segment =
      std::max<std::size_t>(1, (records.size() + segments - 1) / segments);
  std::vector<monitor::CollectedLogs> bundles;
  for (std::size_t off = 0; off < records.size(); off += per_segment) {
    monitor::CollectedLogs bundle;
    bundle.epoch = bundles.size() + 1;
    const std::size_t n = std::min(per_segment, records.size() - off);
    bundle.records.assign(records.begin() + static_cast<long>(off),
                          records.begin() + static_cast<long>(off + n));
    bundles.push_back(std::move(bundle));
  }
  const VarintKernel best_kernel = active_varint_kernel();
  std::printf(
      "=== trace codec: %zu records in %zu segments, %zu cores, "
      "kernel %s ===\n\n",
      records.size(), bundles.size(), cores,
      std::string(to_string(best_kernel)).c_str());

  const int reps = 5;
  std::vector<CodecResult> runs(4);

  CodecResult& v3 = runs[0];
  v3.name = "v3";
  v3.records = records.size();
  const auto v3_bytes = encode_stream(v3, analysis::kTraceFormatV3, bundles,
                                      reps, /*legacy_layout=*/true);
  time_decode(v3, v3_bytes, records.size(), reps, DecodePath::kRecords,
              best_kernel);
  print_result(v3);

  CodecResult& v4 = runs[1];
  v4.name = "v4";
  v4.records = records.size();
  const auto v4_bytes = encode_stream(v4, analysis::kTraceFormatV4, bundles,
                                      reps, /*legacy_layout=*/false);
  time_decode(v4, v4_bytes, records.size(), reps, DecodePath::kRecords,
              best_kernel);
  print_result(v4);

  // The pre-kernel baseline and the new column path share v4's encoder and
  // byte stream; only the decode differs.
  CodecResult& v4scalar = runs[2];
  v4scalar.name = "v4scalar";
  v4scalar.records = records.size();
  v4scalar.encode_seconds = v4.encode_seconds;
  v4scalar.wire_bytes = v4.wire_bytes;
  time_decode(v4scalar, v4_bytes, records.size(), reps, DecodePath::kRecords,
              VarintKernel::kScalar);
  print_result(v4scalar);

  CodecResult& v4col = runs[3];
  v4col.name = "v4col";
  v4col.records = records.size();
  v4col.encode_seconds = v4.encode_seconds;
  v4col.wire_bytes = v4.wire_bytes;
  time_decode(v4col, v4_bytes, records.size(), reps, DecodePath::kColumns,
              best_kernel);
  print_result(v4col);

  const double reduction =
      100.0 * (1.0 - static_cast<double>(v4.wire_bytes) /
                         static_cast<double>(v3.wire_bytes));
  const double speedup = v3.decode_seconds / v4.decode_seconds;
  const double column_speedup = v4scalar.decode_seconds / v4col.decode_seconds;
  const bool meets_size = reduction >= 35.0;
  const bool meets_decode = speedup >= 2.0;
  const bool meets_column = column_speedup >= 3.0;
  // The 2x claim is about the directory trailer fanning segment decode out
  // across cores; a single-threaded host cannot express it (see header).
  // The 3x column claim is single-threaded by construction.
  const bool decode_applicable = cores >= 2;
  std::printf("\nv4 vs v3: %.1f%% smaller (35%% target %s), decode %.2fx "
              "(2x target %s%s)\n",
              reduction, meets_size ? "MET" : "NOT met", speedup,
              meets_decode ? "MET" : "NOT met",
              decode_applicable ? "" : "; n/a on 1 hardware thread");
  std::printf("v4col vs v4scalar: decode %.2fx (3x target %s), %.2f GB/s\n",
              column_speedup, meets_column ? "MET" : "NOT met",
              v4col.decode_gb_per_sec());

  write_json(json_path, cores, records.size(), bundles.size(), runs,
             reduction, speedup, column_speedup, meets_size, meets_decode,
             decode_applicable, meets_column);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
