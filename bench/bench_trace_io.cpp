// Trace-codec bench: encode/decode throughput and wire size, v3 (fixed
// 96-byte records) vs v4 (columnar delta/varint), on the E2 synthesizer's
// record stream chunked into epoch-sized segments like a streamed trace.
//
// Decode times the staging phase (decode_trace_segments: skim + parallel
// segment decode into self-contained bundles) on bytes written through
// TraceWriter -- so the v4 path exercises the directory trailer exactly as
// a real file read does.  Database ingest is excluded: it is format-
// independent and would dilute the codec comparison.
//
// Acceptance shape: v4 wire size >= 35% smaller than v3, and v4 decode
// throughput >= 2x v3.  The decode target rides on the directory trailer
// letting segment decode fan out across cores, so it is gated on
// target_2x_applicable (>= 2 hardware threads) the same way bench_ingest
// gates its 3x shard target: on a single-core host both codecs bottom out
// at the same staged-record memory-write floor (the fixed 96-byte v3
// record decodes in a handful of fixed-offset loads, so per-record parse
// compute does not separate them) and the ratio honestly reads ~1x.
// Emits BENCH_trace_io.json next to the stdout summary; override with
// --json=PATH, shrink with --calls=N, change the segment count with
// --segments=N.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace_io.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

struct CodecResult {
  std::string name;
  std::size_t wire_bytes{0};
  double encode_seconds{0};
  double decode_seconds{0};
  std::size_t records{0};
  double encode_records_per_sec() const {
    return static_cast<double>(records) / encode_seconds;
  }
  double decode_records_per_sec() const {
    return static_cast<double>(records) / decode_seconds;
  }
  double decode_mb_per_sec() const {
    return static_cast<double>(wire_bytes) / 1e6 / decode_seconds;
  }
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// Encodes the bundles segment-by-segment (timed, best of reps), writes the
// same stream through a TraceWriter, and times decode_trace_segments over
// the resulting file bytes (best of reps).  With legacy_layout the file is
// plain concatenated segments with no directory trailer -- the shape every
// pre-v4 writer produced -- so the v3 measurement exercises the sequential
// skim fallback a real legacy artifact forces on the reader.
CodecResult run(std::string name, std::uint32_t version,
                const std::vector<monitor::CollectedLogs>& bundles,
                std::size_t records, int reps, bool legacy_layout) {
  CodecResult r;
  r.name = std::move(name);
  r.records = records;

  double best_encode = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    std::size_t produced = 0;
    for (const auto& bundle : bundles) {
      produced += analysis::encode_trace(bundle, version).size();
    }
    const auto t1 = Clock::now();
    best_encode =
        std::min(best_encode, std::chrono::duration<double>(t1 - t0).count());
    if (produced == 0) std::exit(1);
  }
  r.encode_seconds = best_encode;

  std::vector<std::uint8_t> bytes;
  if (legacy_layout) {
    for (const auto& bundle : bundles) {
      const auto segment = analysis::encode_trace(bundle, version);
      bytes.insert(bytes.end(), segment.begin(), segment.end());
    }
  } else {
    const auto path = (std::filesystem::temp_directory_path() /
                       ("bench_trace_io_" + r.name + ".cwt"))
                          .string();
    {
      analysis::TraceWriter writer(path, version);
      for (const auto& bundle : bundles) writer.append(bundle);
      writer.close();
    }
    bytes = slurp(path);
    std::filesystem::remove(path);
  }
  r.wire_bytes = bytes.size();

  double best_decode = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    const auto staged = analysis::decode_trace_segments(bytes);
    const auto t1 = Clock::now();
    best_decode =
        std::min(best_decode, std::chrono::duration<double>(t1 - t0).count());
    std::size_t decoded = 0;
    for (const auto& bundle : staged) decoded += bundle.records.size();
    if (decoded != records) {
      std::fprintf(stderr, "FATAL: %s decoded %zu of %zu records\n",
                   r.name.c_str(), decoded, records);
      std::exit(1);
    }
  }
  r.decode_seconds = best_decode;
  return r;
}

void print_result(const CodecResult& r) {
  std::printf(
      "%-4s %10zu B (%5.1f B/rec) | encode %7.3f s %9.0f rec/s | "
      "decode %7.3f s %9.0f rec/s %7.1f MB/s\n",
      r.name.c_str(), r.wire_bytes,
      static_cast<double>(r.wire_bytes) / static_cast<double>(r.records),
      r.encode_seconds, r.encode_records_per_sec(), r.decode_seconds,
      r.decode_records_per_sec(), r.decode_mb_per_sec());
}

void write_json(const std::string& path, std::size_t cores,
                std::size_t records, std::size_t segments,
                const CodecResult& v3, const CodecResult& v4,
                double size_reduction_pct, double decode_speedup,
                bool meets_size, bool meets_decode, bool decode_applicable) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  auto emit = [&](const CodecResult& r, const char* trailing) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"wire_bytes\": %zu, "
                  "\"bytes_per_record\": %.2f, \"encode_seconds\": %.4f, "
                  "\"encode_records_per_sec\": %.0f, "
                  "\"decode_seconds\": %.4f, "
                  "\"decode_records_per_sec\": %.0f, "
                  "\"decode_mb_per_sec\": %.1f}%s\n",
                  r.name.c_str(), r.wire_bytes,
                  static_cast<double>(r.wire_bytes) /
                      static_cast<double>(r.records),
                  r.encode_seconds, r.encode_records_per_sec(),
                  r.decode_seconds, r.decode_records_per_sec(),
                  r.decode_mb_per_sec(), trailing);
    out << buf;
  };
  out << "{\n"
      << "  \"bench\": \"bench_trace_io\",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"segments\": " << segments << ",\n"
      << "  \"runs\": [\n";
  emit(v3, ",");
  emit(v4, "");
  char tail[384];
  std::snprintf(tail, sizeof tail,
                "  ],\n  \"v4_size_reduction_pct\": %.1f,\n"
                "  \"v4_decode_speedup\": %.2f,\n"
                "  \"meets_35pct_size_target\": %s,\n"
                "  \"target_2x_decode_applicable\": %s,\n"
                "  \"meets_2x_decode_target\": %s\n}\n",
                size_reduction_pct, decode_speedup,
                meets_size ? "true" : "false",
                decode_applicable ? "true" : "false",
                meets_decode ? "true" : "false");
  out << tail;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_trace_io.json";
  std::size_t calls = 100'000;
  std::size_t segments = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calls=", 8) == 0) {
      calls = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--segments=", 11) == 0) {
      segments = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(argv[i] + 11)));
    }
  }

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Synthesize the stream once (the source database owns the interned
  // strings), then chunk it into epoch-sized bundles like a streamed run.
  std::printf("synthesizing %zu calls...\n", calls);
  analysis::LogDatabase source(1);
  workload::LogSynthConfig config;
  config.total_calls = calls;
  workload::synthesize_logs(config, source);
  const auto& records = source.records();
  const std::size_t per_segment =
      std::max<std::size_t>(1, (records.size() + segments - 1) / segments);
  std::vector<monitor::CollectedLogs> bundles;
  for (std::size_t off = 0; off < records.size(); off += per_segment) {
    monitor::CollectedLogs bundle;
    bundle.epoch = bundles.size() + 1;
    const std::size_t n = std::min(per_segment, records.size() - off);
    bundle.records.assign(records.begin() + static_cast<long>(off),
                          records.begin() + static_cast<long>(off + n));
    bundles.push_back(std::move(bundle));
  }
  std::printf("=== trace codec: %zu records in %zu segments, %zu cores ===\n\n",
              records.size(), bundles.size(), cores);

  const int reps = 3;
  const CodecResult v3 = run("v3", analysis::kTraceFormatV3, bundles,
                             records.size(), reps, /*legacy_layout=*/true);
  print_result(v3);
  const CodecResult v4 = run("v4", analysis::kTraceFormatV4, bundles,
                             records.size(), reps, /*legacy_layout=*/false);
  print_result(v4);

  const double reduction =
      100.0 * (1.0 - static_cast<double>(v4.wire_bytes) /
                         static_cast<double>(v3.wire_bytes));
  const double speedup = v3.decode_seconds / v4.decode_seconds;
  const bool meets_size = reduction >= 35.0;
  const bool meets_decode = speedup >= 2.0;
  // The 2x claim is about the directory trailer fanning segment decode out
  // across cores; a single-threaded host cannot express it (see header).
  const bool decode_applicable = cores >= 2;
  std::printf("\nv4 vs v3: %.1f%% smaller (35%% target %s), decode %.2fx "
              "(2x target %s%s)\n",
              reduction, meets_size ? "MET" : "NOT met", speedup,
              meets_decode ? "MET" : "NOT met",
              decode_applicable ? "" : "; n/a on 1 hardware thread");

  write_json(json_path, cores, records.size(), bundles.size(), v3, v4,
             reduction, speedup, meets_size, meets_decode, decode_applicable);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
