// Query-engine bench: what the catalog buys and what compression costs.
//
// One synthesized logsynth stream is chunked into epoch-sized segments and
// written through StoreWriter twice -- an uncompressed v4 store and a
// --compress v5 store -- each rotated into ~16 sealed files.  Four rows:
//
//   full-scan v4     count + avg(latency) group by iface, no window: every
//                    file opens, every segment decodes.  The baseline.
//   pruned window    the same aggregation windowed to one middle file's
//                    catalog range: the planner must open only the files
//                    whose range intersects, so the row reports both the
//                    speedup and the opened/pruned counts.
//   pruned chain     count for a chain UUID no file contains: the bloom
//                    digest should prune (nearly) everything -- the
//                    metadata-only floor of query latency.
//   full-scan v5     the baseline query against the compressed store --
//                    the per-column inflate cost on the decode path.
//
// Before timing, the v4 and v5 full-scan CSV renderings are compared:
// compression changing a byte of query output aborts the bench rather
// than timing a wrong answer.
//
// Emits BENCH_query.json in the working directory (CI invokes every bench
// from the repo root); override with --json=PATH, shrink with --calls=N,
// reshape with --segments=N / --files=N / --reps=N.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/trace_io.h"
#include "common/compress.h"
#include "query/engine.h"
#include "query/parser.h"
#include "store/store.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

struct QueryRow {
  std::string name;
  double seconds{0};       // best-of-reps for one run of the query
  std::size_t files_total{0};
  std::size_t files_opened{0};
  std::size_t files_pruned{0};
  std::uint64_t spans_matched{0};
  double ms_per_query() const { return seconds * 1e3; }
};

QueryRow time_query(const std::string& name, const std::string& text,
                    const std::string& store_dir, int reps) {
  const query::Query q = query::parse_query(text);
  QueryRow row;
  row.name = name;
  row.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    const query::QueryResult result = query::run_query(q, {store_dir});
    const auto t1 = Clock::now();
    row.seconds =
        std::min(row.seconds, std::chrono::duration<double>(t1 - t0).count());
    row.files_total = result.stats.files_total;
    row.files_opened = result.stats.files_opened;
    row.files_pruned = result.stats.files_pruned;
    row.spans_matched = result.stats.spans_matched;
  }
  return row;
}

void print_row(const QueryRow& r) {
  std::printf("%-16s %9.2f ms/query | files %2zu/%-2zu opened "
              "(%zu pruned) | %llu spans\n",
              r.name.c_str(), r.ms_per_query(), r.files_opened,
              r.files_total, r.files_pruned,
              static_cast<unsigned long long>(r.spans_matched));
}

void write_json(const std::string& path, std::size_t cores,
                std::size_t records, const std::vector<QueryRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"bench_query\",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"compression_available\": "
      << (compression_available() ? "true" : "false") << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const QueryRow& r = rows[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ms_per_query\": %.3f, "
                  "\"files_total\": %zu, \"files_opened\": %zu, "
                  "\"files_pruned\": %zu, \"spans_matched\": %llu}%s\n",
                  r.name.c_str(), r.ms_per_query(), r.files_total,
                  r.files_opened, r.files_pruned,
                  static_cast<unsigned long long>(r.spans_matched),
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_query.json";
  std::size_t calls = 120'000;
  std::size_t segments = 64;
  std::size_t files = 16;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calls=", 8) == 0) {
      calls = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--segments=", 11) == 0) {
      segments = static_cast<std::size_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--files=", 8) == 0) {
      files = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    }
  }
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Synthesize once, chunk into epoch-sized segments like a streamed run.
  std::printf("synthesizing %zu calls...\n", calls);
  analysis::LogDatabase source(1);
  workload::LogSynthConfig config;
  config.total_calls = calls;
  workload::synthesize_logs(config, source);
  const auto& records = source.records();
  const std::size_t per_segment =
      std::max<std::size_t>(1, (records.size() + segments - 1) / segments);
  std::vector<monitor::CollectedLogs> bundles;
  for (std::size_t off = 0; off < records.size(); off += per_segment) {
    monitor::CollectedLogs bundle;
    bundle.epoch = bundles.size() + 1;
    const std::size_t n = std::min(per_segment, records.size() - off);
    bundle.records.assign(records.begin() + static_cast<long>(off),
                          records.begin() + static_cast<long>(off + n));
    // Shift each epoch onto its own timestamp plateau, like a long-running
    // system rotating over hours: sealed files then cover disjoint catalog
    // ranges, which is what gives a time window something to prune.
    const std::int64_t plateau =
        static_cast<std::int64_t>(bundle.epoch) * (1ll << 40);
    for (auto& record : bundle.records) {
      record.value_start += plateau;
      record.value_end += plateau;
    }
    bundles.push_back(std::move(bundle));
  }

  namespace fs = std::filesystem;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("bench_query_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  auto build_store = [&](const char* name, std::uint32_t format) {
    const std::string dir = (scratch / name).string();
    store::StoreOptions options;
    options.rotate_segments =
        std::max<std::size_t>(1, bundles.size() / std::max<std::size_t>(1, files));
    options.trace_format = format;
    store::StoreWriter writer(dir, options);
    for (const auto& b : bundles) writer.append(b);
    writer.close();
    return dir;
  };
  const std::string dir_v4 = build_store("v4", analysis::kTraceFormatV4);
  const std::string dir_v5 = build_store("v5", analysis::kTraceFormatV5);

  std::printf("=== query engine: %zu records, %zu segments -> %zu files, "
              "%zu cores, zlib %s ===\n\n",
              records.size(), bundles.size(),
              store::open_store(dir_v4).files.size(), cores,
              compression_available() ? "on" : "off");

  // Compression must never change a byte of query output.
  const char* kBaseline = "count, avg(latency) group by iface";
  {
    const query::Query q = query::parse_query(kBaseline);
    const std::string a = query::render_csv(query::run_query(q, {dir_v4}));
    const std::string b = query::render_csv(query::run_query(q, {dir_v5}));
    if (a != b) {
      std::fprintf(stderr,
                   "FATAL: v4 and v5 stores render different results\n");
      return 1;
    }
  }

  // A window covering one middle file's catalog range, for the pruned row.
  const store::StoreView view = store::open_store(dir_v4);
  const auto& mid = view.files[view.files.size() / 2].entry;
  const std::string windowed =
      std::string(kBaseline) + " since " + std::to_string(mid.min_ts) +
      " until " + std::to_string(mid.max_ts);
  const char* kAbsentChain =
      "count where chain == ffffffff-ffff-ffff-ffff-ffffffffffff";

  std::vector<QueryRow> rows;
  rows.push_back(time_query("full-scan v4", kBaseline, dir_v4, reps));
  print_row(rows.back());
  rows.push_back(time_query("pruned window", windowed, dir_v4, reps));
  print_row(rows.back());
  rows.push_back(time_query("pruned chain", kAbsentChain, dir_v4, reps));
  print_row(rows.back());
  rows.push_back(time_query("full-scan v5", kBaseline, dir_v5, reps));
  print_row(rows.back());

  const QueryRow& full = rows[0];
  const QueryRow& pruned = rows[1];
  if (pruned.files_opened >= pruned.files_total) {
    std::fprintf(stderr, "FATAL: windowed query pruned nothing "
                         "(%zu of %zu files opened)\n",
                 pruned.files_opened, pruned.files_total);
    return 1;
  }
  std::printf("\ncatalog speedup: %.2fx (window opens %zu of %zu files)\n",
              full.seconds / pruned.seconds, pruned.files_opened,
              pruned.files_total);

  write_json(json_path, cores, records.size(), rows);
  std::printf("wrote %s\n", json_path.c_str());
  fs::remove_all(scratch);
  return 0;
}
