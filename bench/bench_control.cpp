// Control-plane bench: what adaptive monitoring costs when it acts and
// when it doesn't.
//
// Two families:
//
//   reconfig    -- latency of one control-plane turn at the monitor tier:
//                  stage_control() on the collector plus the drain-boundary
//                  apply.  "stage" times the staging half alone (what the
//                  publisher's reader thread pays mid-epoch); "stage+apply"
//                  times the full epoch-boundary turnaround.
//
//   steady      -- per-call probe cost of a complete sync call (all four
//                  probes, fresh chain) at 1:1, 1-in-10 and 1-in-100 chain
//                  sampling.  Sampling suppresses at the probe, so deeper
//                  sampling should cost *less* per call -- this bench pins
//                  that the throttle actually relieves the monitored
//                  process rather than just thinning the wire.
//
// Emits BENCH_control.json next to the stdout summary; override with
// --json=PATH, shrink with --calls=N / --reconfigs=N.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "monitor/collector.h"
#include "monitor/probes.h"
#include "monitor/tss.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

struct RunResult {
  std::string name;
  double seconds{0};
  std::size_t ops{0};
  std::size_t records_kept{0};
  std::size_t records_suppressed{0};
  double ns_per_op() const {
    return seconds * 1e9 / static_cast<double>(ops);
  }
};

monitor::MonitorRuntime make_runtime(const char* process) {
  monitor::MonitorConfig config;
  config.enabled = true;
  config.mode = monitor::ProbeMode::kCausalityOnly;
  return monitor::MonitorRuntime(
      monitor::DomainIdentity{process, "node0", "x86"}, config,
      ClockDomain{});
}

constexpr monitor::CallIdentity kCall{"Bench::Iface", "f", 3};

// One complete sync call between two runtimes on a fresh chain -- the same
// four-probe shape the ORB's instrumented stubs and skeletons run.
inline void sync_call(monitor::MonitorRuntime& client,
                      monitor::MonitorRuntime& server) {
  monitor::tss_clear();
  monitor::StubProbes stub(&client, kCall, monitor::CallKind::kSync);
  const monitor::Ftl wire = stub.on_stub_start();
  monitor::SkelProbes skel(&server, kCall, monitor::CallKind::kSync);
  skel.on_skel_start(wire);
  const monitor::Ftl reply = skel.on_skel_end(monitor::CallOutcome::kOk);
  stub.on_stub_end(reply, monitor::CallOutcome::kOk);
}

// Latency of staging a control update and applying it at a drain boundary.
RunResult bench_reconfig(bool apply, std::size_t reconfigs) {
  auto client = make_runtime("procA");
  auto server = make_runtime("procB");
  monitor::Collector collector;
  collector.attach(&client);
  collector.attach(&server);

  RunResult r;
  r.name = apply ? "reconfig stage+apply" : "reconfig stage";
  r.ops = reconfigs;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < reconfigs; ++i) {
    monitor::ControlUpdate update;
    // Alternate so every apply is a real change, never a no-op.
    update.sample_rate_index =
        (i & 1) ? monitor::sample_rate_index_for(10) : std::uint8_t{0};
    collector.stage_control(update);
    if (apply) (void)collector.drain();
  }
  const auto t1 = Clock::now();
  if (!apply) (void)collector.drain();  // retire the backlog off the clock
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

// Per-call probe cost at a fixed sampling depth.
RunResult bench_steady(std::uint64_t rate, std::size_t calls) {
  auto client = make_runtime("procA");
  auto server = make_runtime("procB");
  monitor::Collector collector;
  collector.attach(&client);
  collector.attach(&server);
  monitor::ControlUpdate update;
  update.sample_rate_index = monitor::sample_rate_index_for(rate);
  collector.stage_control(update);
  (void)collector.drain();

  // Warm the stores (first ring growth off the clock).
  for (std::size_t i = 0; i < 64; ++i) sync_call(client, server);
  (void)collector.drain();

  RunResult r;
  char name[32];
  std::snprintf(name, sizeof name, "steady 1-in-%llu",
                static_cast<unsigned long long>(rate));
  r.name = name;
  r.ops = calls;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) sync_call(client, server);
  const auto t1 = Clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  const monitor::CollectedLogs logs = collector.drain();
  r.records_kept = logs.records.size();
  r.records_suppressed = logs.sampled_out;
  if (r.records_kept + r.records_suppressed != calls * 4) {
    std::fprintf(stderr, "FATAL: %s accounted %zu of %zu activations\n",
                 r.name.c_str(), r.records_kept + r.records_suppressed,
                 calls * 4);
    std::exit(1);
  }
  return r;
}

void print_result(const RunResult& r) {
  std::printf("%-22s %9zu ops | %7.3f s | %9.1f ns/op | kept %zu, "
              "suppressed %zu\n",
              r.name.c_str(), r.ops, r.seconds, r.ns_per_op(),
              r.records_kept, r.records_suppressed);
}

void write_json(const std::string& path, std::size_t cores,
                const std::vector<RunResult>& runs) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"bench_control\",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"seconds\": %.4f, "
                  "\"ops\": %zu, \"ns_per_op\": %.1f, "
                  "\"records_kept\": %zu, \"records_suppressed\": %zu}%s\n",
                  r.name.c_str(), r.seconds, r.ops, r.ns_per_op(),
                  r.records_kept, r.records_suppressed,
                  i + 1 < runs.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_control.json";
  std::size_t calls = 200'000;
  std::size_t reconfigs = 100'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calls=", 8) == 0) {
      calls = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--reconfigs=", 12) == 0) {
      reconfigs = static_cast<std::size_t>(std::atoll(argv[i] + 12));
    }
  }
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::printf("=== adaptive control plane: %zu reconfigs, %zu calls/depth, "
              "%zu cores ===\n\n",
              reconfigs, calls, cores);

  std::vector<RunResult> runs;
  runs.push_back(bench_reconfig(/*apply=*/false, reconfigs));
  print_result(runs.back());
  runs.push_back(bench_reconfig(/*apply=*/true, reconfigs));
  print_result(runs.back());
  for (const std::uint64_t rate : {1ull, 10ull, 100ull}) {
    runs.push_back(bench_steady(rate, calls));
    print_result(runs.back());
  }

  write_json(json_path, cores, runs);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
