// Transport bench: loopback throughput of the cross-process collection
// stream -- a publisher-side client streams handshake + pre-encoded v4
// segments into a real CollectorDaemon, and we measure how fast the
// daemon's poll loop frames them back out of the byte stream.  Each sink
// variant runs over both endpoint kinds: a Unix-domain socket and TCP
// loopback, so the cost of the cross-host fabric is visible next to the
// same-host baseline.
//
// Two sink variants separate the costs: "frame" counts segments as the
// demux hands them over (pure framing: poll, reads, probe_trace_block),
// "frame+decode" additionally decodes every segment into a bundle -- the
// work causeway-collectd does per segment before ingest.  Segment encode
// and database ingest are excluded; bench_trace_io and bench_ingest own
// those.
//
// Emits BENCH_transport.json next to the stdout summary; override with
// --json=PATH, shrink with --calls=N, change segmentation with
// --segments=N.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/trace_io.h"
#include "common/wire_io.h"
#include "transport/endpoint.h"
#include "transport/protocol.h"
#include "transport/subscriber.h"
#include "workload/logsynth.h"

namespace {

using namespace causeway;
using Clock = std::chrono::steady_clock;

struct CountingSink final : transport::DaemonSink {
  explicit CountingSink(bool decode) : decode_(decode) {}
  void on_segment(const transport::PeerInfo&,
                  std::span<const std::uint8_t> segment) override {
    bytes.fetch_add(segment.size(), std::memory_order_relaxed);
    if (decode_) {
      records.fetch_add(analysis::decode_trace_segment(segment).records.size(),
                        std::memory_order_relaxed);
    }
    segments.fetch_add(1, std::memory_order_relaxed);
  }
  void on_drop_notice(const transport::PeerInfo&,
                      const transport::DropNotice&) override {}
  std::atomic<std::size_t> segments{0};
  std::atomic<std::size_t> bytes{0};
  std::atomic<std::size_t> records{0};

 private:
  bool decode_;
};

struct RunResult {
  std::string name;
  double seconds{0};
  std::size_t wire_bytes{0};
  std::size_t records{0};
  double mb_per_sec() const {
    return static_cast<double>(wire_bytes) / 1e6 / seconds;
  }
  double records_per_sec() const {
    return static_cast<double>(records) / seconds;
  }
};

// One timed pass: fresh connection, handshake, stream every segment, wait
// for the daemon to finish framing them.  Best of `reps`.
RunResult run(std::string name, const std::string& listen_spec, bool decode,
              const std::vector<std::vector<std::uint8_t>>& segments,
              std::size_t total_records, std::size_t wire_bytes, int reps) {
  RunResult r;
  r.name = std::move(name);
  r.wire_bytes = wire_bytes;
  r.records = total_records;

  CountingSink sink(decode);
  transport::CollectorDaemon daemon({{listen_spec}}, sink);
  daemon.start();
  // Resolve the bound address once (TCP listens on an ephemeral port).
  const transport::EndpointAddress address = daemon.listen_addresses().front();

  transport::Handshake hello;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  hello.process_name = "bench-publisher";
  hello.trace_format = analysis::kTraceFormatDefault;
  const auto handshake = transport::encode_handshake(hello);

  double best = 1e100;
  std::size_t done = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    transport::StreamEndpoint endpoint =
        transport::connect_endpoint(address, 1000);
    if (!endpoint.valid()) {
      std::fprintf(stderr, "FATAL: connect %s failed\n",
                   address.to_string().c_str());
      std::exit(1);
    }
    endpoint.set_blocking(true);
    bool ok = io_write_full(endpoint.fd(), handshake.data(), handshake.size());
    for (const auto& segment : segments) {
      if (!ok) break;
      ok = io_write_full(endpoint.fd(), segment.data(), segment.size());
    }
    endpoint.close();
    if (!ok) {
      std::fprintf(stderr, "FATAL: socket write failed\n");
      std::exit(1);
    }
    done += segments.size();
    while (sink.segments.load(std::memory_order_relaxed) < done) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  daemon.stop();
  if (decode && sink.records.load() !=
                    total_records * static_cast<std::size_t>(reps)) {
    std::fprintf(stderr, "FATAL: %s decoded %zu of %zu records\n",
                 r.name.c_str(), sink.records.load(),
                 total_records * static_cast<std::size_t>(reps));
    std::exit(1);
  }
  r.seconds = best;
  return r;
}

void print_result(const RunResult& r) {
  std::printf("%-18s %10zu B | %7.3f s | %8.1f MB/s | %9.0f rec/s\n",
              r.name.c_str(), r.wire_bytes, r.seconds, r.mb_per_sec(),
              r.records_per_sec());
}

void write_json(const std::string& path, std::size_t cores,
                std::size_t records, std::size_t segments,
                std::size_t wire_bytes, const std::vector<RunResult>& runs) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"bench_transport\",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"segments\": " << segments << ",\n"
      << "  \"wire_bytes\": " << wire_bytes << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"seconds\": %.4f, "
                  "\"mb_per_sec\": %.1f, \"records_per_sec\": %.0f}%s\n",
                  runs[i].name.c_str(), runs[i].seconds, runs[i].mb_per_sec(),
                  runs[i].records_per_sec(),
                  i + 1 < runs.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_transport.json";
  std::size_t calls = 100'000;
  std::size_t segments = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calls=", 8) == 0) {
      calls = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--segments=", 11) == 0) {
      segments = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::atoll(argv[i] + 11)));
    }
  }

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Synthesize once, chunk into epoch-sized bundles, pre-encode every
  // segment -- the publisher side is free so the daemon is the bottleneck.
  std::printf("synthesizing %zu calls...\n", calls);
  analysis::LogDatabase source(1);
  workload::LogSynthConfig config;
  config.total_calls = calls;
  workload::synthesize_logs(config, source);
  const auto& records = source.records();
  const std::size_t per_segment =
      std::max<std::size_t>(1, (records.size() + segments - 1) / segments);
  std::vector<std::vector<std::uint8_t>> encoded;
  std::size_t wire_bytes = 0;
  for (std::size_t off = 0; off < records.size(); off += per_segment) {
    monitor::CollectedLogs bundle;
    bundle.epoch = encoded.size() + 1;
    const std::size_t n = std::min(per_segment, records.size() - off);
    bundle.records.assign(records.begin() + static_cast<long>(off),
                          records.begin() + static_cast<long>(off + n));
    encoded.push_back(analysis::encode_trace(bundle));
    wire_bytes += encoded.back().size();
  }
  const std::string unix_spec =
      "unix:" + (std::filesystem::temp_directory_path() /
                 ("bench_transport_" + std::to_string(::getpid()) + ".sock"))
                    .string();
  std::printf(
      "=== collection stream: %zu records in %zu segments (%zu B), "
      "%zu cores ===\n\n",
      records.size(), encoded.size(), wire_bytes, cores);

  const int reps = 3;
  std::vector<RunResult> results;
  const struct {
    const char* label;
    std::string spec;
  } transports[] = {
      {"unix", unix_spec},
      {"tcp", "tcp:127.0.0.1:0"},
  };
  for (const auto& transport : transports) {
    results.push_back(run(std::string("frame/") + transport.label,
                          transport.spec, /*decode=*/false, encoded,
                          records.size(), wire_bytes, reps));
    print_result(results.back());
    results.push_back(run(std::string("frame+decode/") + transport.label,
                          transport.spec, /*decode=*/true, encoded,
                          records.size(), wire_bytes, reps));
    print_result(results.back());
  }

  write_json(json_path, cores, records.size(), encoded.size(), wire_bytes,
             results);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
