// E7 -- monitoring overhead and interference (paper Sec. 2.1).
//
// The paper reduces interference by never activating latency and CPU probes
// simultaneously, and keeps probes lightweight (local records, no
// coordination).  This bench measures the end-to-end cost of a component
// call in four variants -- uninstrumented, causality-only, latency mode, CPU
// mode -- for both collocated and remote calls, on the live ORB with the
// synthetic workload's generic components.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "monitor/tss.h"
#include "orb/domain.h"
#include "orb/stubs.h"
#include "workload/synthetic.h"

namespace {

using namespace causeway;

struct CallRig {
  orb::Fabric fabric;
  std::unique_ptr<orb::ProcessDomain> server;
  std::unique_ptr<orb::ProcessDomain> client;
  orb::ObjectRef ref;
  bool instrumented;

  // Minimal leaf servant: unmarshals nothing, burns nothing.
  class Leaf final : public orb::Servant {
   public:
    explicit Leaf(bool instrumented) : instrumented_(instrumented) {}
    std::string_view interface_name() const override { return "Bench::Leaf"; }
    orb::DispatchResult dispatch(orb::DispatchContext& ctx,
                                 orb::MethodId method, WireCursor& in,
                                 WireBuffer& out) override {
      (void)method;
      orb::SkeletonGuard guard(
          ctx, monitor::CallIdentity{"Bench::Leaf", "noop", ctx.object_key},
          in, instrumented_);
      guard.body_end();
      guard.seal(out);
      return {};
    }

   private:
    bool instrumented_;
  };

  CallRig(monitor::ProbeMode mode, bool instrument, bool same_domain)
      : instrumented(instrument) {
    orb::DomainOptions server_opts;
    server_opts.process_name = "server";
    server_opts.monitor.mode = mode;
    server = std::make_unique<orb::ProcessDomain>(fabric, server_opts);
    if (same_domain) {
      client = nullptr;
    } else {
      orb::DomainOptions client_opts;
      client_opts.process_name = "client";
      client_opts.monitor.mode = mode;
      client = std::make_unique<orb::ProcessDomain>(fabric, client_opts);
    }
    ref = server->activate(std::make_shared<Leaf>(instrument));
  }

  orb::ProcessDomain& caller() { return client ? *client : *server; }

  void call() {
    orb::ClientCall call(caller(), ref, {"Bench::Leaf", "noop", 0, false},
                         instrumented);
    call.invoke();
  }
};

void run_variant(benchmark::State& state, monitor::ProbeMode mode,
                 bool instrument, bool collocated) {
  monitor::tss_clear();
  CallRig rig(mode, instrument, collocated);
  // Streaming drainer: gbench auto-iteration can outrun the bounded rings,
  // and an overflowing append is *cheaper* than a real one -- draining
  // concurrently keeps the measured probe path honest (and mirrors how a
  // live deployment runs).
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      rig.server->monitor_runtime().store().drain();
      if (rig.client) rig.client->monitor_runtime().store().drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto _ : state) {
    rig.call();
    // Keep chains short so the TSS slot does not accumulate one giant chain.
    monitor::tss_clear();
  }
  stop.store(true, std::memory_order_release);
  drainer.join();
  // Drop the remaining records outside the timed region.
  rig.server->monitor_runtime().store().clear();
  if (rig.client) rig.client->monitor_runtime().store().clear();
}

void BM_Collocated_Uninstrumented(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kLatency, false, true);
}
void BM_Collocated_CausalityOnly(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kCausalityOnly, true, true);
}
void BM_Collocated_LatencyMode(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kLatency, true, true);
}
void BM_Collocated_CpuMode(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kCpu, true, true);
}
void BM_Remote_Uninstrumented(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kLatency, false, false);
}
void BM_Remote_CausalityOnly(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kCausalityOnly, true, false);
}
void BM_Remote_LatencyMode(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kLatency, true, false);
}
void BM_Remote_CpuMode(benchmark::State& state) {
  run_variant(state, monitor::ProbeMode::kCpu, true, false);
}

BENCHMARK(BM_Collocated_Uninstrumented);
BENCHMARK(BM_Collocated_CausalityOnly);
BENCHMARK(BM_Collocated_LatencyMode);
BENCHMARK(BM_Collocated_CpuMode);
BENCHMARK(BM_Remote_Uninstrumented)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Remote_CausalityOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Remote_LatencyMode)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Remote_CpuMode)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== E7: probe overhead per component call ===\n"
      "shape to check: instrumented - uninstrumented = a few probe "
      "activations;\nlatency/CPU modes cost a little more than "
      "causality-only; remote dwarfs all probe cost\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
