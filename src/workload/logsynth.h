// Direct trace-record synthesis (no ORB in the loop).
//
// Experiment E2 measures the *analyzer*: the paper reports 28 minutes to
// compute the DSCG for a 195,000-call run of a 1 MLoC commercial system
// (801 methods, 155 interfaces, 176 components, 32 threads, 4 processes).
// Driving 195k real invocations just to time the analyzer would measure the
// ORB instead, so this generator emits the exact record stream such a run
// produces -- correct event patterns, sequence numbers, locality tags and
// monotonic per-process timestamps -- straight into a LogDatabase.
//
// The generator can also inject corruption (dropped / duplicated records)
// to exercise the analyzer's abnormal-transition recovery (E10).
#pragma once

#include <cstdint>

#include "analysis/database.h"

namespace causeway::workload {

struct LogSynthConfig {
  std::uint64_t seed{7};

  // Which behaviour dimension the synthesized probes "sampled": latency
  // streams carry per-process monotone timestamps, CPU streams carry
  // per-thread monotone CPU counters.
  monitor::ProbeMode mode{monitor::ProbeMode::kLatency};

  std::size_t total_calls{195'000};
  std::size_t methods{801};
  std::size_t interfaces{155};
  std::size_t components{176};
  std::size_t threads{32};
  std::size_t processes{4};

  std::size_t max_depth{8};
  std::size_t max_children{4};
  double oneway_fraction{0.05};

  // Fault injection: probability that an emitted record is dropped or
  // duplicated (both zero for clean logs).
  double drop_fraction{0.0};
  double duplicate_fraction{0.0};
};

struct LogSynthStats {
  std::size_t calls{0};
  std::size_t chains{0};
  std::size_t records{0};
  std::size_t dropped{0};
  std::size_t duplicated{0};
};

// Appends the synthesized stream to `db` (strings are interned by the
// database, so nothing here needs to outlive the call).
LogSynthStats synthesize_logs(const LogSynthConfig& config,
                              analysis::LogDatabase& db);

}  // namespace causeway::workload
