// Synthetic component system generator.
//
// Builds a deterministic multi-domain component application on the ORB: a
// configurable population of components implementing generated interfaces,
// each method executing calibrated CPU work and issuing a fixed script of
// child calls (sync / oneway, same- or cross-domain).  The script is a DAG
// over method *levels*, so every transaction terminates and its exact call
// count is known up front -- which is what lets benchmarks dial in the
// paper's commercial-system shape (176 components, 155 interfaces, 801
// methods, 32 threads, 4 processes, 195,000 calls) and sweep around it.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "monitor/collector.h"
#include "orb/domain.h"
#include "orb/stubs.h"

namespace causeway::workload {

struct SyntheticConfig {
  std::uint64_t seed{42};

  std::size_t domains{4};
  std::size_t components{16};
  std::size_t interfaces{8};
  std::size_t methods_per_interface{4};

  // Call-script shape.  Methods are assigned levels 0..levels-1; a method
  // may only call methods of strictly greater level, so scripts are finite.
  std::size_t levels{4};
  std::size_t max_children{3};
  double oneway_fraction{0.10};
  double same_domain_fraction{0.30};  // chance a child targets the caller's
                                      // domain (exercises collocation)

  Nanos cpu_per_call{20 * kNanosPerMicro};
  Nanos idle_per_call{0};

  orb::PolicyKind policy{orb::PolicyKind::kThreadPool};
  std::size_t pool_size{4};
  monitor::MonitorConfig monitor{};
  bool instrumented{true};
  bool collocation_optimization{true};
  Nanos link_latency{0};

  // Domains cycle through this many distinct processor types (the <C1..CM>
  // axes of the CPU analysis).
  std::size_t processor_kinds{1};
};

class SyntheticComponent;

class SyntheticSystem {
 public:
  SyntheticSystem(orb::Fabric& fabric, SyntheticConfig config);
  ~SyntheticSystem();
  SyntheticSystem(const SyntheticSystem&) = delete;
  SyntheticSystem& operator=(const SyntheticSystem&) = delete;

  // Component-boundary calls produced by one root transaction.
  std::size_t calls_per_transaction() const { return calls_per_transaction_; }

  // Drives one/many transactions from the client domain's calling thread.
  void run_transaction();
  void run_transactions(std::size_t n);

  // Drives `total` transactions from `threads` concurrent client threads
  // (each transaction still gets its own fresh causal chain).
  void run_transactions_concurrent(std::size_t total, std::size_t threads);

  // Blocks until the log volume stops growing (oneway cascades drained).
  void wait_quiescent(Nanos poll = 20 * kNanosPerMilli,
                      int stable_polls = 3) const;

  monitor::CollectedLogs collect() const;

  // Attaches every domain's runtime to `collector` (for streaming drains
  // driven by the caller; collect() is the one-shot offline form).
  void attach_collector(monitor::Collector& collector) const;

  // Reconfigures all domains' probes and clears their logs (a fresh
  // measurement pass on the same deployment).  Only call at quiescence.
  void set_probe_mode(monitor::ProbeMode mode);

  void shutdown();

  std::size_t domain_count() const { return domains_.size(); }
  orb::ProcessDomain& client_domain() { return *client_; }

  // --- used by SyntheticComponent ---
  struct ChildCall {
    std::size_t target_component{0};
    orb::MethodId method{0};
    bool oneway{false};
  };
  struct MethodPlan {
    std::string_view interface_name;
    std::string_view method_name;
    Nanos cpu{0};
    Nanos idle{0};
    std::vector<ChildCall> children;
  };

  const MethodPlan& plan(std::size_t component, orb::MethodId method) const;
  const orb::ObjectRef& component_ref(std::size_t component) const {
    return refs_[component];
  }
  bool instrumented() const { return config_.instrumented; }
  void issue_child_call(orb::ProcessDomain& from, const ChildCall& call);

 private:
  std::string_view intern(std::string s) {
    names_.push_back(std::move(s));
    return names_.back();
  }
  std::size_t expansion_size(std::size_t component, orb::MethodId method) const;

  SyntheticConfig config_;
  std::deque<std::string> names_;  // stable storage for record string_views

  std::vector<std::unique_ptr<orb::ProcessDomain>> domains_;
  std::unique_ptr<orb::ProcessDomain> client_;

  // plans_[component][method]
  std::vector<std::vector<MethodPlan>> plans_;
  std::vector<orb::ObjectRef> refs_;
  std::vector<std::size_t> component_domain_;
  std::size_t calls_per_transaction_{0};
  bool stopped_{false};
};

}  // namespace causeway::workload
