#include "workload/logsynth.h"

#include <deque>
#include <map>

#include "common/rng.h"
#include "common/strings.h"

namespace causeway::workload {
namespace {

using monitor::CallKind;
using monitor::EventKind;
using monitor::ProbeMode;
using monitor::TraceRecord;

struct Synth {
  const LogSynthConfig& config;
  analysis::LogDatabase& db;
  Xoshiro256 rng;
  LogSynthStats stats;

  std::deque<std::string> names;
  std::vector<std::string_view> iface_names;
  std::vector<std::string_view> method_names;
  std::vector<std::size_t> method_iface;     // method -> interface
  std::vector<std::size_t> component_iface;  // component -> interface
  std::vector<std::string_view> process_names;
  std::vector<std::int64_t> process_clock;  // monotonic per process
  std::map<std::pair<std::size_t, std::size_t>, std::int64_t>
      thread_cpu;  // monotonic per (process, thread) -- CPU mode

  std::vector<TraceRecord> batch;

  explicit Synth(const LogSynthConfig& c, analysis::LogDatabase& d)
      : config(c), db(d), rng(c.seed) {
    for (std::size_t i = 0; i < config.interfaces; ++i) {
      names.push_back(strf("Embedded::Iface%03zu", i));
      iface_names.push_back(names.back());
    }
    for (std::size_t m = 0; m < config.methods; ++m) {
      names.push_back(strf("op%03zu", m));
      method_names.push_back(names.back());
      method_iface.push_back(m % config.interfaces);
    }
    for (std::size_t c2 = 0; c2 < config.components; ++c2) {
      component_iface.push_back(c2 % config.interfaces);
    }
    for (std::size_t p = 0; p < config.processes; ++p) {
      names.push_back(strf("proc%zu", p));
      process_names.push_back(names.back());
      process_clock.push_back(
          static_cast<std::int64_t>(rng.uniform(1'000'000'000)));
    }
  }

  void emit(const TraceRecord& r) {
    ++stats.records;
    if (config.drop_fraction > 0 && rng.chance(config.drop_fraction)) {
      ++stats.dropped;
      return;
    }
    batch.push_back(r);
    if (config.duplicate_fraction > 0 &&
        rng.chance(config.duplicate_fraction)) {
      ++stats.duplicated;
      batch.push_back(r);
    }
    if (batch.size() >= 8192) flush();
  }

  void flush() {
    db.ingest_records(batch);
    batch.clear();
  }

  TraceRecord base_record(const Uuid& chain, std::uint64_t seq,
                          EventKind event, CallKind kind, std::size_t method,
                          std::size_t component, std::size_t process,
                          std::size_t thread) {
    TraceRecord r;
    r.chain = chain;
    r.seq = seq;
    r.event = event;
    r.kind = kind;
    r.interface_name = iface_names[method_iface[method]];
    r.function_name = method_names[method];
    r.object_key = component + 1;
    r.process_name = process_names[process];
    r.node_name = "embedded-node";
    r.processor_type = "pa-risc";
    r.thread_ordinal = thread;
    r.mode = config.mode;
    if (config.mode == ProbeMode::kCpu) {
      std::int64_t& cpu = thread_cpu[{process, thread}];
      r.value_start = cpu;
      cpu += static_cast<std::int64_t>(rng.uniform(400)) + 50;
      r.value_end = cpu;
    } else if (config.mode == ProbeMode::kLatency) {
      r.value_start = process_clock[process];
      process_clock[process] +=
          static_cast<std::int64_t>(rng.uniform(900)) + 100;
      r.value_end = process_clock[process];
    }
    return r;
  }

  // Emits one call (and its subtree) on `chain`; returns remaining budget.
  // caller_process/thread locate the stub-side records.
  void call(const Uuid& chain, std::uint64_t& seq, std::size_t depth,
            std::size_t caller_process, std::size_t caller_thread,
            std::size_t& budget) {
    if (budget == 0) return;
    --budget;
    ++stats.calls;

    const std::size_t method = rng.uniform(config.methods);
    const std::size_t component = rng.uniform(config.components);
    const std::size_t process = rng.uniform(config.processes);
    const std::size_t thread =
        1 + rng.uniform(std::max<std::size_t>(config.threads, 1));

    const bool oneway =
        depth > 0 && rng.chance(config.oneway_fraction);
    const bool collocated = !oneway && process == caller_process;
    const CallKind kind = oneway ? CallKind::kOneway
                          : collocated ? CallKind::kCollocated
                                       : CallKind::kSync;

    if (oneway) {
      // Parent chain sees only the stub pair; the callee side becomes a
      // fresh chain rooted at a skeleton event.
      const Uuid child_chain = Uuid::generate();
      TraceRecord ss = base_record(chain, ++seq, EventKind::kStubStart, kind,
                                   method, component, caller_process,
                                   caller_thread);
      ss.spawned_chain = child_chain;
      emit(ss);
      emit(base_record(chain, ++seq, EventKind::kStubEnd, kind, method,
                       component, caller_process, caller_thread));

      std::uint64_t child_seq = 0;
      ++stats.chains;
      emit(base_record(child_chain, ++child_seq, EventKind::kSkelStart, kind,
                       method, component, process, thread));
      subtree(child_chain, child_seq, depth + 1, process, thread, budget);
      emit(base_record(child_chain, ++child_seq, EventKind::kSkelEnd, kind,
                       method, component, process, thread));
      return;
    }

    const std::size_t body_process = collocated ? caller_process : process;
    const std::size_t body_thread = collocated ? caller_thread : thread;

    emit(base_record(chain, ++seq, EventKind::kStubStart, kind, method,
                     component, caller_process, caller_thread));
    emit(base_record(chain, ++seq, EventKind::kSkelStart, kind, method,
                     component, body_process, body_thread));
    subtree(chain, seq, depth + 1, body_process, body_thread, budget);
    emit(base_record(chain, ++seq, EventKind::kSkelEnd, kind, method,
                     component, body_process, body_thread));
    emit(base_record(chain, ++seq, EventKind::kStubEnd, kind, method,
                     component, caller_process, caller_thread));
  }

  void subtree(const Uuid& chain, std::uint64_t& seq, std::size_t depth,
               std::size_t process, std::size_t thread, std::size_t& budget) {
    if (depth >= config.max_depth || budget == 0) return;
    const std::size_t children = rng.uniform(config.max_children + 1);
    for (std::size_t i = 0; i < children && budget > 0; ++i) {
      call(chain, seq, depth, process, thread, budget);
    }
  }

  LogSynthStats run() {
    std::size_t budget = config.total_calls;
    while (budget > 0) {
      const Uuid chain = Uuid::generate();
      ++stats.chains;
      std::uint64_t seq = 0;
      const std::size_t client_process = rng.uniform(config.processes);
      const std::size_t client_thread =
          1 + rng.uniform(std::max<std::size_t>(config.threads, 1));
      // A transaction is a burst of top-level sibling calls on one chain.
      const std::size_t tops = 1 + rng.uniform(3);
      for (std::size_t i = 0; i < tops && budget > 0; ++i) {
        call(chain, seq, 0, client_process, client_thread, budget);
      }
    }
    flush();
    return stats;
  }
};

}  // namespace

LogSynthStats synthesize_logs(const LogSynthConfig& config,
                              analysis::LogDatabase& db) {
  return Synth(config, db).run();
}

}  // namespace causeway::workload
