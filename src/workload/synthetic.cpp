#include "workload/synthetic.h"

#include <thread>

#include "common/strings.h"
#include "common/work.h"
#include "monitor/tss.h"

namespace causeway::workload {
namespace {

const char* kProcessorKinds[] = {"pa-risc", "x86", "vxworks-ppc", "ia64"};

}  // namespace

// Generic servant: its behaviour is entirely table-driven by the system's
// method plans -- the component population can therefore reach arbitrary
// interface/method counts without code generation.
class SyntheticComponent final : public orb::Servant {
 public:
  SyntheticComponent(SyntheticSystem* system, std::size_t index,
                     std::string_view interface_name)
      : system_(system), index_(index), interface_name_(interface_name) {}

  std::string_view interface_name() const override { return interface_name_; }

  orb::DispatchResult dispatch(orb::DispatchContext& ctx,
                               orb::MethodId method, WireCursor& in,
                               WireBuffer& out) override {
    const SyntheticSystem::MethodPlan& plan = system_->plan(index_, method);
    orb::SkeletonGuard guard(
        ctx,
        monitor::CallIdentity{plan.interface_name, plan.method_name,
                              ctx.object_key},
        in, system_->instrumented());

    burn_cpu(plan.cpu / 2);
    for (const auto& child : plan.children) {
      system_->issue_child_call(*ctx.domain, child);
    }
    burn_cpu(plan.cpu - plan.cpu / 2);
    if (plan.idle > 0) idle_for(plan.idle);

    guard.body_end();
    guard.seal(out);
    return {};
  }

 private:
  SyntheticSystem* system_;
  std::size_t index_;
  std::string_view interface_name_;
};

SyntheticSystem::SyntheticSystem(orb::Fabric& fabric, SyntheticConfig config)
    : config_(config) {
  Xoshiro256 rng(config_.seed);

  if (config_.link_latency > 0) {
    fabric.set_default_latency(config_.link_latency);
  }

  // --- domains ---
  const std::size_t kinds =
      std::min<std::size_t>(std::max<std::size_t>(config_.processor_kinds, 1),
                            std::size(kProcessorKinds));
  for (std::size_t d = 0; d < config_.domains; ++d) {
    orb::DomainOptions opts;
    opts.process_name = strf("proc%zu", d);
    opts.node_name = strf("node%zu", d % kinds);
    opts.processor_type = kProcessorKinds[d % kinds];
    opts.monitor = config_.monitor;
    opts.policy = config_.policy;
    opts.pool_size = config_.pool_size;
    opts.collocation_optimization = config_.collocation_optimization;
    domains_.push_back(std::make_unique<orb::ProcessDomain>(fabric, opts));
  }
  {
    orb::DomainOptions opts;
    opts.process_name = "client";
    opts.node_name = "node-client";
    opts.processor_type = kProcessorKinds[0];
    opts.monitor = config_.monitor;
    opts.collocation_optimization = config_.collocation_optimization;
    client_ = std::make_unique<orb::ProcessDomain>(fabric, opts);
  }

  // --- interface/method naming and level assignment ---
  const std::size_t iface_count = std::max<std::size_t>(config_.interfaces, 1);
  const std::size_t mpi = std::max<std::size_t>(config_.methods_per_interface, 1);
  const std::size_t levels = std::max<std::size_t>(config_.levels, 1);
  std::vector<std::string_view> iface_names;
  iface_names.reserve(iface_count);
  for (std::size_t i = 0; i < iface_count; ++i) {
    iface_names.push_back(intern(strf("Synthetic::Iface%03zu", i)));
  }
  // method (i, m) has level (i*mpi + m) % levels; method (0,0) is level 0 and
  // serves as the transaction root.
  auto method_level = [&](std::size_t iface, std::size_t m) {
    return (iface * mpi + m) % levels;
  };

  // Candidate callee methods per level, as (interface, method) pairs.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> by_level(levels);
  for (std::size_t i = 0; i < iface_count; ++i) {
    for (std::size_t m = 0; m < mpi; ++m) {
      by_level[method_level(i, m)].push_back({i, m});
    }
  }

  // --- component placement ---
  const std::size_t comp_count = std::max<std::size_t>(config_.components, 1);
  std::vector<std::vector<std::size_t>> components_of_iface(iface_count);
  component_domain_.resize(comp_count);
  for (std::size_t c = 0; c < comp_count; ++c) {
    const std::size_t iface = c % iface_count;
    components_of_iface[iface].push_back(c);
    component_domain_[c] = c % config_.domains;
  }

  // --- per-component method plans ---
  plans_.resize(comp_count);
  for (std::size_t c = 0; c < comp_count; ++c) {
    const std::size_t iface = c % iface_count;
    plans_[c].resize(mpi);
    for (std::size_t m = 0; m < mpi; ++m) {
      MethodPlan& plan = plans_[c][m];
      plan.interface_name = iface_names[iface];
      plan.method_name = intern(strf("m%02zu", m));
      plan.cpu = config_.cpu_per_call;
      plan.idle = config_.idle_per_call;

      const std::size_t level = method_level(iface, m);
      if (level + 1 >= levels) continue;  // leaf level

      // The transaction root (component 0, method 0) always fans out, so a
      // transaction is never a single degenerate call.
      const bool is_root = (c == 0 && m == 0);
      std::size_t n_children =
          config_.max_children == 0 ? 0 : rng.uniform(config_.max_children + 1);
      if (is_root && config_.max_children > 0) {
        n_children = std::max<std::size_t>(n_children, config_.max_children);
      }
      for (std::size_t k = 0; k < n_children; ++k) {
        // Pick a strictly deeper level that has methods.
        const std::size_t child_level =
            level + 1 + rng.uniform(levels - level - 1);
        const auto& pool = by_level[child_level];
        if (pool.empty()) continue;
        const auto [ci, cm] = pool[rng.uniform(pool.size())];
        const auto& impls = components_of_iface[ci];
        if (impls.empty()) continue;

        ChildCall child;
        child.method = static_cast<orb::MethodId>(cm);
        child.oneway = rng.chance(config_.oneway_fraction);
        if (rng.chance(config_.same_domain_fraction)) {
          // Prefer an implementation living in the caller's domain.
          std::size_t pick = impls[rng.uniform(impls.size())];
          for (std::size_t attempt = 0; attempt < impls.size(); ++attempt) {
            const std::size_t candidate = impls[rng.uniform(impls.size())];
            if (component_domain_[candidate] == component_domain_[c]) {
              pick = candidate;
              break;
            }
          }
          child.target_component = pick;
        } else {
          child.target_component = impls[rng.uniform(impls.size())];
        }
        plan.children.push_back(child);
      }
    }
  }

  // --- activation ---
  refs_.reserve(comp_count);
  for (std::size_t c = 0; c < comp_count; ++c) {
    const std::size_t iface = c % iface_count;
    auto servant =
        std::make_shared<SyntheticComponent>(this, c, iface_names[iface]);
    refs_.push_back(domains_[component_domain_[c]]->activate(servant));
  }

  calls_per_transaction_ = expansion_size(0, 0);
}

SyntheticSystem::~SyntheticSystem() { shutdown(); }

void SyntheticSystem::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  client_->shutdown();
  for (auto& d : domains_) d->shutdown();
}

std::size_t SyntheticSystem::expansion_size(std::size_t component,
                                            orb::MethodId method) const {
  const MethodPlan& p = plans_[component][method];
  std::size_t n = 1;
  for (const auto& c : p.children) {
    n += expansion_size(c.target_component, c.method);
  }
  return n;
}

const SyntheticSystem::MethodPlan& SyntheticSystem::plan(
    std::size_t component, orb::MethodId method) const {
  return plans_[component][method];
}

void SyntheticSystem::issue_child_call(orb::ProcessDomain& from,
                                       const ChildCall& call) {
  const MethodPlan& target_plan =
      plans_[call.target_component][call.method];
  orb::MethodSpec spec{target_plan.interface_name, target_plan.method_name,
                       call.method, call.oneway};
  orb::ClientCall client(from, refs_[call.target_component], spec,
                         config_.instrumented);
  if (call.oneway) {
    client.invoke_oneway();
  } else {
    client.invoke();
  }
}

void SyntheticSystem::run_transaction() {
  monitor::ScopedFreshChain fresh;
  issue_child_call(*client_, ChildCall{0, 0, false});
}

void SyntheticSystem::run_transactions(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) run_transaction();
}

void SyntheticSystem::run_transactions_concurrent(std::size_t total,
                                                  std::size_t threads) {
  if (threads <= 1) {
    run_transactions(total);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    // Spread the remainder over the first workers.
    const std::size_t share = total / threads + (t < total % threads ? 1 : 0);
    workers.emplace_back([this, share] {
      for (std::size_t i = 0; i < share; ++i) run_transaction();
    });
  }
  for (auto& w : workers) w.join();
}

void SyntheticSystem::wait_quiescent(Nanos poll, int stable_polls) const {
  // Monotonic accepted+dropped totals: a concurrent streaming drain shrinks
  // size() but never these, so quiescence detection works while draining.
  auto total = [&] {
    auto count = [](const monitor::MonitorRuntime& rt) {
      return rt.store().appended() + rt.store().dropped();
    };
    std::uint64_t n = count(client_->monitor_runtime());
    for (const auto& d : domains_) n += count(d->monitor_runtime());
    return n;
  };
  std::uint64_t last = total();
  int stable = 0;
  while (stable < stable_polls) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(poll));
    const std::uint64_t now = total();
    stable = (now == last) ? stable + 1 : 0;
    last = now;
  }
}

void SyntheticSystem::set_probe_mode(monitor::ProbeMode mode) {
  config_.monitor.mode = mode;
  auto reconfigure = [&](orb::ProcessDomain& domain) {
    auto& rt = domain.monitor_runtime();
    rt.set_config({config_.monitor.enabled, mode});
    rt.store().clear();
  };
  reconfigure(*client_);
  for (auto& d : domains_) reconfigure(*d);
}

void SyntheticSystem::attach_collector(monitor::Collector& collector) const {
  collector.attach(&client_->monitor_runtime());
  for (const auto& d : domains_) collector.attach(&d->monitor_runtime());
}

monitor::CollectedLogs SyntheticSystem::collect() const {
  monitor::Collector collector;
  attach_collector(collector);
  return collector.collect();
}

}  // namespace causeway::workload
