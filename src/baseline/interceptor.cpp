#include "baseline/interceptor.h"

namespace causeway::baseline {

CorrelationResult correlate_by_time(
    const std::vector<AnchorRecord>& records) {
  CorrelationResult result;
  result.parent.assign(records.size(), std::nullopt);

  for (std::size_t i = 0; i < records.size(); ++i) {
    const AnchorRecord& child = records[i];
    std::optional<std::size_t> best;
    Nanos best_span = 0;
    for (std::size_t j = 0; j < records.size(); ++j) {
      if (j == i) continue;
      const AnchorRecord& parent = records[j];
      // The child's client-side activity must nest inside the candidate's
      // servant-side activity, on the same thread of the same process --
      // the only correlation signal an anchor-only interceptor has.
      if (parent.servant_process != child.client_process) continue;
      if (parent.servant_thread != child.client_thread) continue;
      if (parent.servant_pre <= child.client_pre &&
          child.client_post <= parent.servant_post) {
        const Nanos span = parent.servant_post - parent.servant_pre;
        if (!best || span < best_span) {
          best = j;
          best_span = span;
        }
      }
    }
    result.parent[i] = best;
    if (best) {
      ++result.resolved;
    } else {
      ++result.unresolved;
    }
  }
  return result;
}

}  // namespace causeway::baseline
