// Trace-Object propagation baseline (Universal Delegator [2] / BBN RSS [21]).
//
// The paper's related work carries a trace record that *concatenates* log
// information at every hop: "the TO concatenates log info during call
// progression and unavoidably introduces the barrier for the call chains
// that exceed tens of thousands calls."  This baseline implements exactly
// that growth so bench E6 can plot bytes-on-wire and propagation cost
// against chain depth, next to the constant-size FTL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/wire.h"

namespace causeway::baseline {

struct TraceHop {
  std::string interface_name;
  std::string function_name;
  std::uint64_t thread{0};
  Nanos timestamp{0};
};

struct TraceObject {
  std::vector<TraceHop> hops;

  // Appends one hop (what an interception layer does at each boundary).
  void add_hop(TraceHop hop) { hops.push_back(std::move(hop)); }

  void encode(WireBuffer& out) const;
  static TraceObject decode(WireCursor& in);

  std::size_t encoded_size() const;
};

}  // namespace causeway::baseline
