#include "baseline/trace_object.h"

namespace causeway::baseline {

void TraceObject::encode(WireBuffer& out) const {
  out.write_u32(static_cast<std::uint32_t>(hops.size()));
  for (const auto& h : hops) {
    out.write_string(h.interface_name);
    out.write_string(h.function_name);
    out.write_u64(h.thread);
    out.write_i64(h.timestamp);
  }
}

TraceObject TraceObject::decode(WireCursor& in) {
  TraceObject to;
  const std::uint32_t n = in.read_u32();
  to.hops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TraceHop h;
    h.interface_name = in.read_string();
    h.function_name = in.read_string();
    h.thread = in.read_u64();
    h.timestamp = in.read_i64();
    to.hops.push_back(std::move(h));
  }
  return to;
}

std::size_t TraceObject::encoded_size() const {
  WireBuffer b;
  encode(b);
  return b.size();
}

}  // namespace causeway::baseline
