// OVATION-like interceptor baseline: four timing anchors, no causality.
//
// OVATION "provides four different timing anchors: client pre/post-invoke,
// servant pre/post-invoke ... The major difference to our work is that it
// does not provide global causality capture.  As the result, for each method
// invocation ... the tool cannot determine how this particular invocation is
// related to the rest of method invocations" (paper Sec. 5).
//
// This baseline records anchor quadruples *without* UUID or event number and
// then tries the best available correlation heuristic -- time containment
// within the same thread -- to rebuild nesting.  Cross-thread edges are
// unresolvable in principle; same-thread edges become ambiguous as soon as
// concurrency or clock jitter appears.  Benchmarks count how many parent
// links it gets right vs the DSCG's ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

namespace causeway::baseline {

struct AnchorRecord {
  std::string function;
  std::uint64_t client_thread{0};
  std::uint64_t servant_thread{0};
  std::string client_process;
  std::string servant_process;
  Nanos client_pre{0};    // client pre-invoke
  Nanos servant_pre{0};   // servant pre-invoke
  Nanos servant_post{0};  // servant post-invoke
  Nanos client_post{0};   // client post-invoke
};

struct CorrelationResult {
  // records[i]'s inferred parent index, or nullopt.
  std::vector<std::optional<std::size_t>> parent;
  std::size_t resolved{0};
  std::size_t unresolved{0};  // no same-thread containing interval exists
};

// Infers nesting by interval containment: record j is i's parent candidate
// when i's client-side interval lies within j's servant-side interval on the
// same thread in the same process.  The tightest candidate wins.
CorrelationResult correlate_by_time(const std::vector<AnchorRecord>& records);

}  // namespace causeway::baseline
