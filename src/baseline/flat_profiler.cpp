#include "baseline/flat_profiler.h"

#include "common/cpu.h"

namespace causeway::baseline {
namespace {

struct Frame {
  std::string function;
  Nanos cpu_at_entry{0};
  Nanos child_cpu{0};
};

thread_local std::vector<Frame> t_stack;

}  // namespace

FlatProfiler::Scope::Scope(FlatProfiler& profiler, std::string_view function)
    : profiler_(profiler) {
  t_stack.push_back(Frame{std::string(function), thread_cpu_now_ns(), 0});
}

FlatProfiler::Scope::~Scope() {
  Frame frame = std::move(t_stack.back());
  t_stack.pop_back();
  const Nanos total = thread_cpu_now_ns() - frame.cpu_at_entry;
  const Nanos self = total - frame.child_cpu;
  std::string caller;
  if (!t_stack.empty()) {
    caller = t_stack.back().function;
    t_stack.back().child_cpu += total;
  }
  profiler_.record(caller, frame.function, self);
}

void FlatProfiler::record(const std::string& caller,
                          const std::string& callee, Nanos self_cpu) {
  std::lock_guard lock(mu_);
  arcs_[{caller, callee}] += 1;
  Entry& e = entries_[callee];
  e.function = callee;
  e.calls += 1;
  e.self_cpu += self_cpu;
}

std::vector<FlatProfiler::Entry> FlatProfiler::flat_profile() const {
  std::lock_guard lock(mu_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry);
  return out;
}

std::vector<FlatProfiler::Arc> FlatProfiler::arcs() const {
  std::lock_guard lock(mu_);
  std::vector<Arc> out;
  out.reserve(arcs_.size());
  for (const auto& [key, calls] : arcs_) {
    out.push_back({key.first, key.second, calls});
  }
  return out;
}

std::size_t FlatProfiler::orphan_roots() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, calls] : arcs_) {
    if (key.first.empty()) n += calls;
  }
  return n;
}

}  // namespace causeway::baseline
