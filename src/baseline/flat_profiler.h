// GPROF-like flat profiler baseline.
//
// "Execution profiler GPROF merely reports the callee-caller propagation of
// CPU utilization within the same thread context" (paper Sec. 1) and
// "maintains the relationship with call-depth of 1" (Sec. 3.1).  This
// baseline reproduces that behaviour: a thread-local shadow stack records
// caller->callee arcs of depth 1 with self-CPU attribution -- and, by
// construction, loses every arc that crosses a thread, process or processor
// boundary.  Benchmarks contrast its output with the DSCG on identical
// workloads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace causeway::baseline {

class FlatProfiler {
 public:
  // RAII frame: enters `function` on the calling thread's shadow stack.
  class Scope {
   public:
    Scope(FlatProfiler& profiler, std::string_view function);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FlatProfiler& profiler_;
  };

  struct Arc {
    std::string caller;  // "" for a root frame on its thread
    std::string callee;
    std::uint64_t calls{0};
  };

  struct Entry {
    std::string function;
    std::uint64_t calls{0};
    Nanos self_cpu{0};
  };

  std::vector<Entry> flat_profile() const;
  std::vector<Arc> arcs() const;

  // Arcs whose caller is "" -- frames whose true caller ran on another
  // thread/process and is therefore invisible to a gprof-style tool.
  std::size_t orphan_roots() const;

 private:
  friend class Scope;
  void record(const std::string& caller, const std::string& callee,
              Nanos self_cpu);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> arcs_;
  std::map<std::string, Entry> entries_;
};

}  // namespace causeway::baseline
