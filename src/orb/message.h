// GIOP-ish request/reply messages.
//
// Everything between domains travels as bytes: request and reply messages
// are marshaled with the same wire format user parameters use.  The monitor
// trailer (monitor/ftl.h) lives *inside* the request/reply payload, appended
// by instrumented stubs -- the message layer is deliberately unaware of it,
// which is exactly the paper's "no modification to the runtime
// infrastructure is necessary for the FTL's transportation".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/wire.h"

namespace causeway::orb {

using ObjectKey = std::uint64_t;
using MethodId = std::uint32_t;

enum class MessageKind : std::uint8_t { kRequest = 1, kReply = 2 };

enum class ReplyStatus : std::uint8_t {
  kOk = 0,
  kAppError = 1,        // IDL-declared user exception
  kObjectNotFound = 2,  // adapter has no servant under the key
  kSystemError = 3,     // servant threw something undeclared
};

struct RequestMessage {
  std::uint64_t call_id{0};
  std::string reply_to;          // requesting domain ("" for oneway)
  std::string connection;        // client endpoint identity, keys
                                 // thread-per-connection dispatch
  ObjectKey object_key{0};
  MethodId method_id{0};
  bool oneway{false};
  std::vector<std::uint8_t> payload;  // in/inout params [+ hidden trailer]

  std::vector<std::uint8_t> encode() const;
  static RequestMessage decode(const std::vector<std::uint8_t>& bytes);
};

struct ReplyMessage {
  std::uint64_t call_id{0};
  ReplyStatus status{ReplyStatus::kOk};
  std::string error_name;   // app-error repository name
  std::string error_text;
  std::vector<std::uint8_t> payload;  // out/inout/return [+ hidden trailer]

  std::vector<std::uint8_t> encode() const;
  static ReplyMessage decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace causeway::orb
