#include "orb/transport.h"

#include "common/rng.h"

namespace causeway::orb {

void Fabric::set_loss(double rate, std::uint64_t seed) {
  std::lock_guard lock(mu_);
  loss_rate_ = rate;
  loss_state_ = seed;
}

bool Fabric::send(const std::string& from, const std::string& to,
                  MessageKind kind, std::vector<std::uint8_t> bytes) {
  // Hash outside the lock; both lookups are heterogeneous, so the hot path
  // neither rehashes under the mutex nor builds temporary key strings.
  const LinkKeyView link{from, to, link_hash(from, to)};
  Inbox* inbox = nullptr;
  Nanos latency = 0;
  {
    std::lock_guard lock(mu_);
    auto it = inboxes_.find(to);
    if (it == inboxes_.end()) return false;
    inbox = it->second;
    auto lat = link_latency_.find(link);
    latency = (lat != link_latency_.end()) ? lat->second : default_latency_;
    if (loss_rate_ > 0.0) {
      SplitMix64 step(loss_state_);
      loss_state_ = step.next();
      const double draw =
          static_cast<double>(loss_state_ >> 11) * 0x1.0p-53;
      if (draw < loss_rate_) {
        ++messages_dropped_;
        return true;  // the sender cannot observe the loss
      }
    }
    bytes_sent_ += bytes.size();
  }
  Envelope env;
  env.from = from;
  env.to = to;
  env.kind = kind;
  env.bytes = std::move(bytes);
  env.deliver_at = steady_now_ns() + latency;
  return inbox->push(std::move(env));
}

}  // namespace causeway::orb
