#include "orb/domain.h"

#include <chrono>

#include "monitor/tss.h"
#include "orb/errors.h"

namespace causeway::orb {

namespace {

// Object keys are namespaced per domain *incarnation*: a reference minted by
// a previous life of "server" must not accidentally resolve against its
// restarted successor (real ORBs embed instance identity in the IOR).
std::uint64_t next_incarnation() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ProcessDomain::ProcessDomain(Fabric& fabric, DomainOptions options)
    : fabric_(fabric),
      options_(std::move(options)),
      monitor_(
          monitor::DomainIdentity{options_.process_name, options_.node_name,
                                  options_.processor_type},
          options_.monitor,
          ClockDomain(options_.clock_skew, options_.clock_drift_ppm)) {
  next_key_ = (next_incarnation() << 32) | 1;
  policy_ = make_policy(
      options_.policy, [this](RequestMessage msg) { serve(std::move(msg)); },
      options_.pool_size);
  fabric_.register_domain(name(), &inbox_);
  netd_ = std::thread([this] { netd_loop(); });
}

ProcessDomain::~ProcessDomain() { shutdown(); }

void ProcessDomain::shutdown() {
  if (stopped_.exchange(true)) return;
  fabric_.unregister_domain(name());
  inbox_.close();
  if (netd_.joinable()) netd_.join();
  policy_->shutdown();
  // Wake any caller still blocked on a reply that will never come.
  std::lock_guard lock(pending_mu_);
  for (auto& [id, call] : pending_) {
    std::lock_guard call_lock(call->mu);
    call->aborted = true;
    call->cv.notify_all();
  }
}

ObjectRef ProcessDomain::activate(std::shared_ptr<Servant> servant) {
  std::lock_guard lock(adapter_mu_);
  const ObjectKey key = next_key_++;
  ObjectRef ref{name(), key, std::string(servant->interface_name())};
  servants_[key] = std::move(servant);
  return ref;
}

void ProcessDomain::deactivate(ObjectKey key) {
  std::lock_guard lock(adapter_mu_);
  servants_.erase(key);
}

std::shared_ptr<Servant> ProcessDomain::find(ObjectKey key) const {
  std::lock_guard lock(adapter_mu_);
  auto it = servants_.find(key);
  return it == servants_.end() ? nullptr : it->second;
}

void ProcessDomain::netd_loop() {
  while (auto env = inbox_.pop()) {
    // Honor the link-latency deadline: this serializes delivery like a
    // single connection would.
    const Nanos now = steady_now_ns();
    if (env->deliver_at > now) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(env->deliver_at - now));
    }
    if (env->kind == MessageKind::kRequest) {
      policy_->submit(RequestMessage::decode(env->bytes));
    } else {
      ReplyMessage reply = ReplyMessage::decode(env->bytes);
      std::shared_ptr<PendingCall> call;
      {
        std::lock_guard lock(pending_mu_);
        auto it = pending_.find(reply.call_id);
        if (it != pending_.end()) {
          call = it->second;
          pending_.erase(it);
        }
      }
      if (call) {
        std::lock_guard lock(call->mu);
        call->reply = std::move(reply);
        call->cv.notify_all();
      }
    }
  }
}

void ProcessDomain::serve(RequestMessage msg) {
  // A dispatched thread must never inherit a chain from its previous call
  // (observation O2); instrumented skeletons overwrite the slot, but clear
  // it anyway so un-instrumented servants cannot leak stale chains either.
  monitor::tss_clear();

  ReplyMessage reply;
  reply.call_id = msg.call_id;

  auto servant = find(msg.object_key);
  if (!servant) {
    reply.status = ReplyStatus::kObjectNotFound;
    reply.error_text = "no servant under key";
  } else {
    DispatchContext ctx;
    ctx.kind = msg.oneway ? monitor::CallKind::kOneway
                          : monitor::CallKind::kSync;
    ctx.domain = this;
    ctx.object_key = msg.object_key;
    WireCursor in(msg.payload.data(), msg.payload.size());
    WireBuffer out;
    try {
      DispatchResult result = servant->dispatch(ctx, msg.method_id, in, out);
      reply.status = result.status;
      reply.error_name = std::move(result.error_name);
      reply.error_text = std::move(result.error_text);
      reply.payload = std::move(out).take();
    } catch (const std::exception& e) {
      // Skeletons convert application exceptions themselves; anything that
      // escapes is an infrastructure-level failure.
      reply.status = ReplyStatus::kSystemError;
      reply.error_text = e.what();
    }
  }

  if (!msg.oneway && !msg.reply_to.empty()) {
    fabric_.send(name(), msg.reply_to, MessageKind::kReply, reply.encode());
  }
}

ReplyMessage ProcessDomain::invoke_remote(const ObjectRef& ref,
                                          MethodId method,
                                          std::vector<std::uint8_t> payload) {
  if (stopped_.load()) throw TransportError("domain is shut down");

  auto call = std::make_shared<PendingCall>();
  const std::uint64_t call_id = next_call_id_.fetch_add(1);
  {
    std::lock_guard lock(pending_mu_);
    pending_[call_id] = call;
  }

  RequestMessage msg;
  msg.call_id = call_id;
  msg.reply_to = name();
  msg.connection =
      name() + "#" + std::to_string(monitor::this_thread_ordinal());
  msg.object_key = ref.key;
  msg.method_id = method;
  msg.oneway = false;
  msg.payload = std::move(payload);

  if (!fabric_.send(name(), ref.process, MessageKind::kRequest,
                    msg.encode())) {
    std::lock_guard lock(pending_mu_);
    pending_.erase(call_id);
    throw TransportError("peer '" + ref.process + "' unreachable");
  }

  std::unique_lock lock(call->mu);
  const bool done = call->cv.wait_for(
      lock, std::chrono::nanoseconds(options_.call_timeout),
      [&] { return call->reply.has_value() || call->aborted; });
  if (!done || !call->reply) {
    {
      std::lock_guard plock(pending_mu_);
      pending_.erase(call_id);
    }
    if (call->aborted) throw TransportError("domain shut down mid-call");
    throw TimeoutError("no reply from '" + ref.process + "'");
  }
  return std::move(*call->reply);
}

void ProcessDomain::invoke_oneway(const ObjectRef& ref, MethodId method,
                                  std::vector<std::uint8_t> payload) {
  if (stopped_.load()) throw TransportError("domain is shut down");

  RequestMessage msg;
  msg.call_id = next_call_id_.fetch_add(1);
  msg.reply_to.clear();
  msg.connection =
      name() + "#" + std::to_string(monitor::this_thread_ordinal());
  msg.object_key = ref.key;
  msg.method_id = method;
  msg.oneway = true;
  msg.payload = std::move(payload);

  if (!fabric_.send(name(), ref.process, MessageKind::kRequest,
                    msg.encode())) {
    throw TransportError("peer '" + ref.process + "' unreachable");
  }
}

ReplyMessage ProcessDomain::invoke_collocated(
    const ObjectRef& ref, MethodId method,
    std::vector<std::uint8_t> payload) {
  ReplyMessage reply;
  auto servant = find(ref.key);
  if (!servant) {
    reply.status = ReplyStatus::kObjectNotFound;
    reply.error_text = "no servant under key";
    return reply;
  }
  DispatchContext ctx;
  ctx.kind = monitor::CallKind::kCollocated;
  ctx.domain = this;
  ctx.object_key = ref.key;
  WireCursor in(payload.data(), payload.size());
  WireBuffer out;
  try {
    DispatchResult result = servant->dispatch(ctx, method, in, out);
    reply.status = result.status;
    reply.error_name = std::move(result.error_name);
    reply.error_text = std::move(result.error_text);
    reply.payload = std::move(out).take();
  } catch (const std::exception& e) {
    reply.status = ReplyStatus::kSystemError;
    reply.error_text = e.what();
  }
  return reply;
}

}  // namespace causeway::orb
