// ORB error taxonomy.
//
// Remote invocations can fail in the application (a `raises` exception
// declared in IDL), in the object adapter (no such object), or in the
// infrastructure (transport down, timeout).  Stubs surface all three as
// C++ exceptions, mirroring the CORBA user/system exception split.
#pragma once

#include <stdexcept>
#include <string>

namespace causeway::orb {

class OrbError : public std::runtime_error {
 public:
  explicit OrbError(const std::string& what) : std::runtime_error(what) {}
};

// A user exception declared with `raises(...)` in IDL.  Generated stubs
// rethrow these with the exception's repository name preserved.
class AppError : public OrbError {
 public:
  AppError(std::string name, const std::string& message)
      : OrbError(name + ": " + message), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class ObjectNotFound : public OrbError {
 public:
  using OrbError::OrbError;
};

class TransportError : public OrbError {
 public:
  using OrbError::OrbError;
};

class TimeoutError : public OrbError {
 public:
  using OrbError::OrbError;
};

}  // namespace causeway::orb
