// ProcessDomain: a simulated process hosting an ORB instance.
//
// The paper's experiments partition an application into processes spread
// over HPUX / Windows NT / VxWorks hosts.  A ProcessDomain reproduces one
// such process inside this address space:
//
//   * its own object adapter (servant registry) and dispatch policy;
//   * its own I/O thread draining the transport inbox and honoring link
//     latency;
//   * its own monitor runtime: local log store, probe mode, and -- key to the
//     paper's "no global clock synchronization" claim -- its own skewed,
//     drifting clock domain;
//   * a node identity (processor name + type) so CPU propagation can be
//     reported per processor type (the <C1..CM> vectors of Sec. 3.2).
//
// Domains exchange *bytes only* through the Fabric; nothing else is shared.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.h"
#include "monitor/runtime.h"
#include "orb/message.h"
#include "orb/policies.h"
#include "orb/servant.h"
#include "orb/transport.h"

namespace causeway::orb {

struct DomainOptions {
  std::string process_name;
  std::string node_name{"node0"};
  std::string processor_type{"generic-x86"};

  monitor::MonitorConfig monitor{};

  // Hostile-by-default clock divergence is opt-in; tests and benches set it.
  Nanos clock_skew{0};
  double clock_drift_ppm{0.0};

  PolicyKind policy{PolicyKind::kThreadPool};
  std::size_t pool_size{4};

  // When true, calls to objects in this same domain bypass the transport
  // (stub invokes the skeleton directly; probes 1+2 and 3+4 degenerate into
  // adjacent pairs).  When false, even local calls take the loopback wire --
  // the paper's "optimization turned off" configuration.
  bool collocation_optimization{true};

  Nanos call_timeout{30 * kNanosPerSecond};
};

class ProcessDomain {
 public:
  ProcessDomain(Fabric& fabric, DomainOptions options);
  ~ProcessDomain();
  ProcessDomain(const ProcessDomain&) = delete;
  ProcessDomain& operator=(const ProcessDomain&) = delete;

  const std::string& name() const { return options_.process_name; }
  const DomainOptions& options() const { return options_; }
  Fabric& fabric() { return fabric_; }
  monitor::MonitorRuntime& monitor_runtime() { return monitor_; }

  // --- object adapter ---

  // Activates a servant under a fresh key and returns its reference.
  ObjectRef activate(std::shared_ptr<Servant> servant);
  void deactivate(ObjectKey key);
  std::shared_ptr<Servant> find(ObjectKey key) const;

  // --- invocation engine (used by the stub support layer) ---

  bool is_collocated(const ObjectRef& ref) const {
    return ref.process == name() && options_.collocation_optimization;
  }

  // Sends a request and blocks for the reply.  Throws TransportError /
  // TimeoutError on infrastructure failure.
  ReplyMessage invoke_remote(const ObjectRef& ref, MethodId method,
                             std::vector<std::uint8_t> payload);

  // Fire-and-forget; returns once the request is handed to the fabric.
  void invoke_oneway(const ObjectRef& ref, MethodId method,
                     std::vector<std::uint8_t> payload);

  // Direct in-process dispatch (collocation optimization path).
  ReplyMessage invoke_collocated(const ObjectRef& ref, MethodId method,
                                 std::vector<std::uint8_t> payload);

  // Stops accepting traffic, drains dispatchers, joins all threads.
  // Idempotent; the destructor calls it.
  void shutdown();

 private:
  void netd_loop();
  void serve(RequestMessage msg);

  struct PendingCall {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<ReplyMessage> reply;
    bool aborted{false};
  };

  Fabric& fabric_;
  DomainOptions options_;
  monitor::MonitorRuntime monitor_;

  mutable std::mutex adapter_mu_;
  std::map<ObjectKey, std::shared_ptr<Servant>> servants_;
  ObjectKey next_key_{1};

  Inbox inbox_;
  std::unique_ptr<DispatchPolicy> policy_;
  std::thread netd_;

  std::mutex pending_mu_;
  std::map<std::uint64_t, std::shared_ptr<PendingCall>> pending_;
  std::atomic<std::uint64_t> next_call_id_{1};

  std::atomic<bool> stopped_{false};
};

}  // namespace causeway::orb
