#include "orb/stubs.h"

#include "monitor/ftl.h"

namespace causeway::orb {
namespace {

monitor::CallKind decide_kind(const ProcessDomain& local, const ObjectRef& ref,
                              const MethodSpec& m) {
  if (m.oneway) return monitor::CallKind::kOneway;  // always cross-thread
  if (ref.process == local.name() && local.options().collocation_optimization) {
    return monitor::CallKind::kCollocated;
  }
  return monitor::CallKind::kSync;
}

}  // namespace

ClientCall::ClientCall(ProcessDomain& local, const ObjectRef& ref,
                       const MethodSpec& m, bool instrumented)
    : local_(local),
      ref_(ref),
      method_(m),
      kind_(decide_kind(local, ref, m)),
      probes_(instrumented ? &local.monitor_runtime() : nullptr,
              monitor::CallIdentity{m.interface_name, m.method_name, ref.key},
              kind_) {}

WireCursor ClientCall::invoke() {
  // Probe 1, then the hidden trailer rides at the end of the payload.
  const monitor::Ftl ftl = probes_.on_stub_start();
  if (ftl.valid()) monitor::append_ftl_trailer(request_, ftl);

  ReplyMessage reply =
      kind_ == monitor::CallKind::kCollocated
          ? local_.invoke_collocated(ref_, method_.id, request_.bytes())
          : local_.invoke_remote(ref_, method_.id, request_.bytes());

  reply_payload_ = std::move(reply.payload);
  WireCursor cursor(reply_payload_.data(), reply_payload_.size());
  const std::optional<monitor::Ftl> reply_ftl =
      monitor::peel_ftl_trailer(cursor);

  // Probe 4 fires even when the call failed in the application: the
  // skeleton logged probes 2/3 on the exceptional path too, and the chain
  // must stay continuous.  The reply status doubles as semantics capture.
  monitor::CallOutcome outcome = monitor::CallOutcome::kOk;
  if (reply.status == ReplyStatus::kAppError) {
    outcome = monitor::CallOutcome::kAppError;
  } else if (reply.status != ReplyStatus::kOk) {
    outcome = monitor::CallOutcome::kSystemError;
  }
  probes_.on_stub_end(reply_ftl, outcome);

  switch (reply.status) {
    case ReplyStatus::kOk:
      return cursor;
    case ReplyStatus::kAppError:
      // Typed rethrow is the generated stub's job: the payload carries the
      // marshaled exception members.
      app_error_ = true;
      app_error_name_ = std::move(reply.error_name);
      app_error_text_ = std::move(reply.error_text);
      return cursor;
    case ReplyStatus::kObjectNotFound:
      throw ObjectNotFound(reply.error_text);
    case ReplyStatus::kSystemError:
      throw OrbError("system error from peer: " + reply.error_text);
  }
  throw OrbError("corrupt reply status");
}

void ClientCall::invoke_oneway() {
  const monitor::Ftl child_ftl = probes_.on_stub_start();
  if (child_ftl.valid()) monitor::append_ftl_trailer(request_, child_ftl);
  local_.invoke_oneway(ref_, method_.id, request_.bytes());
  probes_.on_stub_end_oneway();
}

SkeletonGuard::SkeletonGuard(DispatchContext& ctx,
                             const monitor::CallIdentity& identity,
                             WireCursor& in, bool instrumented)
    : probes_(instrumented && ctx.domain
                  ? &ctx.domain->monitor_runtime()
                  : nullptr,
              identity, ctx.kind),
      instrumented_(instrumented) {
  // Peel regardless of our own instrumentation so a plain skeleton facing an
  // instrumented caller still hands clean parameters to user code.
  std::optional<monitor::Ftl> request_ftl = monitor::peel_ftl_trailer(in);
  if (instrumented_) probes_.on_skel_start(request_ftl);
}

void SkeletonGuard::body_end(monitor::CallOutcome outcome) {
  if (body_ended_ || !instrumented_) return;
  body_ended_ = true;
  reply_ftl_ = probes_.on_skel_end(outcome);
}

void SkeletonGuard::seal(WireBuffer& out) {
  if (!instrumented_) return;
  body_end();
  if (reply_ftl_.valid()) monitor::append_ftl_trailer(out, reply_ftl_);
}

}  // namespace causeway::orb
