// Server-side request dispatch policies.
//
// The paper (citing Schmidt [18]) considers thread-per-request,
// thread-per-connection and thread pooling, and argues causality tracing
// stays correct under all of them because of two observations:
//
//   O1: a physical thread is dedicated to an incoming call until that call
//       finishes -- it is never suspended to serve another call mid-flight;
//   O2: each time a (possibly reclaimed) thread is activated for a new call,
//       it is refreshed with that call's latest FTL.
//
// All three policies below uphold O1 by construction; O2 is upheld by
// SkelProbes::on_skel_start overwriting the TSS on every dispatch.  The COM
// STA apartment (com/apartment.h) deliberately violates O1 and needs channel
// hooks -- reproducing the paper's contrast.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "orb/message.h"

namespace causeway::orb {

enum class PolicyKind : std::uint8_t {
  kThreadPerRequest = 0,
  kThreadPerConnection = 1,
  kThreadPool = 2,
};

constexpr std::string_view to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kThreadPerRequest: return "thread-per-request";
    case PolicyKind::kThreadPerConnection: return "thread-per-connection";
    case PolicyKind::kThreadPool: return "thread-pool";
  }
  return "?";
}

// Serves one already-decoded request on the calling thread.
using ServeFn = std::function<void(RequestMessage)>;

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;
  virtual void submit(RequestMessage msg) = 0;
  // Blocks until all in-flight work is finished and workers are joined.
  virtual void shutdown() = 0;
};

// One short-lived thread per incoming request, reclaimed by the OS.
class ThreadPerRequestPolicy : public DispatchPolicy {
 public:
  explicit ThreadPerRequestPolicy(ServeFn serve) : serve_(std::move(serve)) {}
  ~ThreadPerRequestPolicy() override { shutdown(); }

  void submit(RequestMessage msg) override;
  void shutdown() override;

 private:
  ServeFn serve_;
  std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t active_{0};
  bool stopping_{false};
};

// One long-lived thread per client connection, reclaimed by the ORB.
class ThreadPerConnectionPolicy : public DispatchPolicy {
 public:
  explicit ThreadPerConnectionPolicy(ServeFn serve)
      : serve_(std::move(serve)) {}
  ~ThreadPerConnectionPolicy() override { shutdown(); }

  void submit(RequestMessage msg) override;
  void shutdown() override;

  std::size_t connection_count() const {
    std::lock_guard lock(mu_);
    return workers_.size();
  }

 private:
  struct Worker {
    BlockingQueue<RequestMessage> queue;
    std::thread thread;
  };

  ServeFn serve_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Worker>> workers_;
  bool stopping_{false};
};

// Fixed pool of worker threads over a shared queue.
class ThreadPoolPolicy : public DispatchPolicy {
 public:
  ThreadPoolPolicy(ServeFn serve, std::size_t workers);
  ~ThreadPoolPolicy() override { shutdown(); }

  void submit(RequestMessage msg) override;
  void shutdown() override;

 private:
  ServeFn serve_;
  BlockingQueue<RequestMessage> queue_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
};

std::unique_ptr<DispatchPolicy> make_policy(PolicyKind kind, ServeFn serve,
                                            std::size_t pool_size);

}  // namespace causeway::orb
