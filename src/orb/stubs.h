// Stub/skeleton support library.
//
// Generated stubs and skeletons (idlc) and hand-written components (the
// synthetic workload, tests) are thin: marshaling in, unmarshaling out.  The
// two classes here carry everything else --
//
//   ClientCall      the client half: picks the path (remote / oneway /
//                   collocated), runs probes 1 and 4 when instrumented,
//                   appends/peels the hidden FTL trailer, converts reply
//                   status into exceptions.
//
//   SkeletonGuard   the server half: peels the request trailer, runs probes
//                   2 and 3, seals the reply with the updated trailer.
//
// `instrumented` is a constructor argument because the paper's IDL compiler
// decides instrumentation at *generation* time (a back-end compilation
// flag); idlc emits `true` or `false` as a literal into the generated code.
#pragma once

#include <optional>
#include <string_view>

#include "common/wire.h"
#include "monitor/probes.h"
#include "orb/domain.h"
#include "orb/errors.h"
#include "orb/servant.h"

namespace causeway::orb {

struct MethodSpec {
  std::string_view interface_name;
  std::string_view method_name;
  MethodId id{0};
  bool oneway{false};
};

class ClientCall {
 public:
  ClientCall(ProcessDomain& local, const ObjectRef& ref, const MethodSpec& m,
             bool instrumented);

  // Marshal in/inout parameters into this buffer before invoking.
  WireBuffer& request() { return request_; }

  monitor::CallKind kind() const { return kind_; }

  // Synchronous (also collocated) invocation.  Returns a cursor over the
  // reply payload, valid while this ClientCall lives.  Throws
  // ObjectNotFound / OrbError on infrastructure-level reply status and
  // TransportError / TimeoutError on transport failure.  IDL-declared
  // application exceptions do NOT throw here: has_app_error() is set and
  // the cursor is positioned over the marshaled exception members, so the
  // generated stub can reconstruct and rethrow the typed exception.
  WireCursor invoke();

  void invoke_oneway();

  bool has_app_error() const { return app_error_; }
  const std::string& app_error_name() const { return app_error_name_; }
  const std::string& app_error_text() const { return app_error_text_; }

 private:
  ProcessDomain& local_;
  const ObjectRef& ref_;
  MethodSpec method_;
  monitor::CallKind kind_;
  monitor::StubProbes probes_;
  WireBuffer request_;
  std::vector<std::uint8_t> reply_payload_;
  bool app_error_{false};
  std::string app_error_name_;
  std::string app_error_text_;
};

class SkeletonGuard {
 public:
  // Runs probe 2 (skeleton start): peels the FTL trailer off `in` -- the
  // user unmarshaling code then sees exactly the declared parameters -- and
  // refreshes the thread's TSS with the incoming chain.
  SkeletonGuard(DispatchContext& ctx, const monitor::CallIdentity& identity,
                WireCursor& in, bool instrumented);

  // Probe 3: call immediately after the user implementation returns (on both
  // the normal and the exceptional path, with the observed outcome).
  // Idempotent: the first call wins.
  void body_end(monitor::CallOutcome outcome = monitor::CallOutcome::kOk);

  // Appends the updated FTL trailer after the reply payload is marshaled.
  // Calls body_end() first if the skeleton forgot to.
  void seal(WireBuffer& out);

 private:
  monitor::SkelProbes probes_;
  bool instrumented_;
  bool body_ended_{false};
  monitor::Ftl reply_ftl_;
};

}  // namespace causeway::orb
