#include "orb/policies.h"

namespace causeway::orb {

void ThreadPerRequestPolicy::submit(RequestMessage msg) {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    ++active_;
  }
  std::thread([this, msg = std::move(msg)]() mutable {
    serve_(std::move(msg));
    {
      std::lock_guard lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }).detach();
}

void ThreadPerRequestPolicy::shutdown() {
  std::unique_lock lock(mu_);
  stopping_ = true;
  idle_cv_.wait(lock, [&] { return active_ == 0; });
}

void ThreadPerConnectionPolicy::submit(RequestMessage msg) {
  Worker* worker = nullptr;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    auto& slot = workers_[msg.connection];
    if (!slot) {
      slot = std::make_unique<Worker>();
      Worker* w = slot.get();
      w->thread = std::thread([this, w] {
        while (auto item = w->queue.pop()) serve_(std::move(*item));
      });
    }
    worker = slot.get();
  }
  worker->queue.push(std::move(msg));
}

void ThreadPerConnectionPolicy::shutdown() {
  std::map<std::string, std::unique_ptr<Worker>> workers;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    workers.swap(workers_);
  }
  for (auto& [name, worker] : workers) {
    worker->queue.close();
    if (worker->thread.joinable()) worker->thread.join();
  }
}

ThreadPoolPolicy::ThreadPoolPolicy(ServeFn serve, std::size_t workers)
    : serve_(std::move(serve)) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] {
      while (auto item = queue_.pop()) serve_(std::move(*item));
    });
  }
}

void ThreadPoolPolicy::submit(RequestMessage msg) { queue_.push(std::move(msg)); }

void ThreadPoolPolicy::shutdown() {
  std::call_once(shutdown_once_, [&] {
    queue_.close();
    for (auto& t : workers_) {
      if (t.joinable()) t.join();
    }
  });
}

std::unique_ptr<DispatchPolicy> make_policy(PolicyKind kind, ServeFn serve,
                                            std::size_t pool_size) {
  switch (kind) {
    case PolicyKind::kThreadPerRequest:
      return std::make_unique<ThreadPerRequestPolicy>(std::move(serve));
    case PolicyKind::kThreadPerConnection:
      return std::make_unique<ThreadPerConnectionPolicy>(std::move(serve));
    case PolicyKind::kThreadPool:
      return std::make_unique<ThreadPoolPolicy>(std::move(serve), pool_size);
  }
  return nullptr;
}

}  // namespace causeway::orb
