#include "orb/message.h"

namespace causeway::orb {

std::vector<std::uint8_t> RequestMessage::encode() const {
  WireBuffer b;
  b.write_u64(call_id);
  b.write_string(reply_to);
  b.write_string(connection);
  b.write_u64(object_key);
  b.write_u32(method_id);
  b.write_bool(oneway);
  b.write_bytes(payload);
  return std::move(b).take();
}

RequestMessage RequestMessage::decode(const std::vector<std::uint8_t>& bytes) {
  WireCursor c(bytes.data(), bytes.size());
  RequestMessage m;
  m.call_id = c.read_u64();
  m.reply_to = c.read_string();
  m.connection = c.read_string();
  m.object_key = c.read_u64();
  m.method_id = c.read_u32();
  m.oneway = c.read_bool();
  m.payload = c.read_bytes();
  return m;
}

std::vector<std::uint8_t> ReplyMessage::encode() const {
  WireBuffer b;
  b.write_u64(call_id);
  b.write_u8(static_cast<std::uint8_t>(status));
  b.write_string(error_name);
  b.write_string(error_text);
  b.write_bytes(payload);
  return std::move(b).take();
}

ReplyMessage ReplyMessage::decode(const std::vector<std::uint8_t>& bytes) {
  WireCursor c(bytes.data(), bytes.size());
  ReplyMessage m;
  m.call_id = c.read_u64();
  m.status = static_cast<ReplyStatus>(c.read_u8());
  m.error_name = c.read_string();
  m.error_text = c.read_string();
  m.payload = c.read_bytes();
  return m;
}

}  // namespace causeway::orb
