// In-memory inter-domain transport fabric.
//
// The paper deploys processes across HPUX, Windows NT and VxWorks hosts; the
// reproduction runs every "process" as a ProcessDomain inside one OS process
// and connects them through this fabric.  What is preserved:
//
//   * byte-level exchange -- only encoded messages cross the boundary, so a
//     domain can never share pointers, clocks or TSS with a peer;
//   * asymmetric, configurable link latency (deliver-at timestamps honored
//     by the receiving domain's I/O thread);
//   * unreachable peers fail the send like a broken TCP connection would.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/queue.h"
#include "orb/message.h"

namespace causeway::orb {

struct Envelope {
  std::string from;
  std::string to;
  MessageKind kind{MessageKind::kRequest};
  std::vector<std::uint8_t> bytes;
  Nanos deliver_at{0};  // host steady-clock deadline (link latency)
};

using Inbox = BlockingQueue<Envelope>;

// Directional link key with its hash precomputed at insert time, so the hot
// send path never rehashes (and, via the transparent view below, never
// allocates a pair of temporary strings the way the old
// map<pair<string,string>> lookup did).
struct LinkKey {
  std::string from;
  std::string to;
  std::size_t hash;
};

struct LinkKeyView {
  std::string_view from;
  std::string_view to;
  std::size_t hash;
};

inline std::size_t link_hash(std::string_view from, std::string_view to) {
  const std::size_t h = std::hash<std::string_view>{}(from);
  return h ^ (std::hash<std::string_view>{}(to) + 0x9e3779b97f4a7c15ull +
              (h << 6) + (h >> 2));
}

struct LinkKeyHash {
  using is_transparent = void;
  std::size_t operator()(const LinkKey& k) const { return k.hash; }
  std::size_t operator()(const LinkKeyView& k) const { return k.hash; }
};

struct LinkKeyEq {
  using is_transparent = void;
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a.from == b.from && a.to == b.to;
  }
};

// Transparent string hashing for the inbox table (lookups take string or
// string_view without conversion).
struct NameHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

class Fabric {
 public:
  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Applied to every link without an explicit override.
  void set_default_latency(Nanos latency) {
    std::lock_guard lock(mu_);
    default_latency_ = latency;
  }

  // Directional override for the from->to link.
  void set_link_latency(const std::string& from, const std::string& to,
                        Nanos latency) {
    std::lock_guard lock(mu_);
    LinkKey key{from, to, link_hash(from, to)};
    auto it = link_latency_.find(key);
    if (it != link_latency_.end()) {
      it->second = latency;
    } else {
      link_latency_.emplace(std::move(key), latency);
    }
  }

  void register_domain(const std::string& name, Inbox* inbox) {
    std::lock_guard lock(mu_);
    inboxes_[name] = inbox;
  }

  void unregister_domain(const std::string& name) {
    std::lock_guard lock(mu_);
    inboxes_.erase(name);
  }

  // False if the destination is unknown/closed (peer crashed or shut down).
  bool send(const std::string& from, const std::string& to, MessageKind kind,
            std::vector<std::uint8_t> bytes);

  // Total bytes ever pushed through the fabric; benchmarks use this to
  // compare FTL (constant) vs Trace-Object (growing) overhead on the wire.
  std::uint64_t bytes_sent() const {
    std::lock_guard lock(mu_);
    return bytes_sent_;
  }

  // Fault injection: silently lose this fraction of messages (UDP-style --
  // the sender cannot tell; a lost request surfaces as a client timeout, a
  // lost reply likewise).  Deterministic per seed.  Rate 0 disables.
  void set_loss(double rate, std::uint64_t seed = 1);

  std::uint64_t messages_dropped() const {
    std::lock_guard lock(mu_);
    return messages_dropped_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Inbox*, NameHash, std::equal_to<>> inboxes_;
  std::unordered_map<LinkKey, Nanos, LinkKeyHash, LinkKeyEq> link_latency_;
  Nanos default_latency_{0};
  std::uint64_t bytes_sent_{0};
  double loss_rate_{0.0};
  std::uint64_t loss_state_{1};
  std::uint64_t messages_dropped_{0};
};

}  // namespace causeway::orb
