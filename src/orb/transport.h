// In-memory inter-domain transport fabric.
//
// The paper deploys processes across HPUX, Windows NT and VxWorks hosts; the
// reproduction runs every "process" as a ProcessDomain inside one OS process
// and connects them through this fabric.  What is preserved:
//
//   * byte-level exchange -- only encoded messages cross the boundary, so a
//     domain can never share pointers, clocks or TSS with a peer;
//   * asymmetric, configurable link latency (deliver-at timestamps honored
//     by the receiving domain's I/O thread);
//   * unreachable peers fail the send like a broken TCP connection would.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/queue.h"
#include "orb/message.h"

namespace causeway::orb {

struct Envelope {
  std::string from;
  std::string to;
  MessageKind kind{MessageKind::kRequest};
  std::vector<std::uint8_t> bytes;
  Nanos deliver_at{0};  // host steady-clock deadline (link latency)
};

using Inbox = BlockingQueue<Envelope>;

class Fabric {
 public:
  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Applied to every link without an explicit override.
  void set_default_latency(Nanos latency) {
    std::lock_guard lock(mu_);
    default_latency_ = latency;
  }

  // Directional override for the from->to link.
  void set_link_latency(const std::string& from, const std::string& to,
                        Nanos latency) {
    std::lock_guard lock(mu_);
    link_latency_[{from, to}] = latency;
  }

  void register_domain(const std::string& name, Inbox* inbox) {
    std::lock_guard lock(mu_);
    inboxes_[name] = inbox;
  }

  void unregister_domain(const std::string& name) {
    std::lock_guard lock(mu_);
    inboxes_.erase(name);
  }

  // False if the destination is unknown/closed (peer crashed or shut down).
  bool send(const std::string& from, const std::string& to, MessageKind kind,
            std::vector<std::uint8_t> bytes);

  // Total bytes ever pushed through the fabric; benchmarks use this to
  // compare FTL (constant) vs Trace-Object (growing) overhead on the wire.
  std::uint64_t bytes_sent() const {
    std::lock_guard lock(mu_);
    return bytes_sent_;
  }

  // Fault injection: silently lose this fraction of messages (UDP-style --
  // the sender cannot tell; a lost request surfaces as a client timeout, a
  // lost reply likewise).  Deterministic per seed.  Rate 0 disables.
  void set_loss(double rate, std::uint64_t seed = 1);

  std::uint64_t messages_dropped() const {
    std::lock_guard lock(mu_);
    return messages_dropped_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Inbox*> inboxes_;
  std::map<std::pair<std::string, std::string>, Nanos> link_latency_;
  Nanos default_latency_{0};
  std::uint64_t bytes_sent_{0};
  double loss_rate_{0.0};
  std::uint64_t loss_state_{1};
  std::uint64_t messages_dropped_{0};
};

}  // namespace causeway::orb
