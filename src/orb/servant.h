// Servant base class and dispatch context.
//
// A servant is the implementation-side object the object adapter activates.
// Generated skeletons derive from Servant, unmarshal the request payload,
// up-call the user implementation and marshal the reply.  Instrumented
// skeletons additionally peel the hidden FTL trailer and run probes 2/3 --
// the Servant interface itself, like the rest of the ORB, knows nothing
// about monitoring.
#pragma once

#include <string>
#include <string_view>

#include "common/wire.h"
#include "monitor/events.h"
#include "orb/message.h"

namespace causeway::orb {

class ProcessDomain;

struct DispatchContext {
  // How the call arrived: sync, oneway, or collocated (in-process with the
  // optimization on, where probes 1+2 / 3+4 degenerate into adjacent pairs).
  monitor::CallKind kind{monitor::CallKind::kSync};
  ProcessDomain* domain{nullptr};  // hosting domain
  ObjectKey object_key{0};         // key the adapter dispatched to
};

// Result of one dispatch; maps onto the reply message.
struct DispatchResult {
  ReplyStatus status{ReplyStatus::kOk};
  std::string error_name;
  std::string error_text;
};

class Servant {
 public:
  virtual ~Servant() = default;

  virtual std::string_view interface_name() const = 0;

  // Handles one invocation.  `in` is positioned at the request payload
  // (possibly with a hidden trailer at the end, which plain skeletons simply
  // never read); `out` receives the reply payload.  Application exceptions
  // must be converted to DispatchResult, not thrown across this boundary.
  virtual DispatchResult dispatch(DispatchContext& ctx, MethodId method,
                                  WireCursor& in, WireBuffer& out) = 0;
};

// Location-transparent object reference.
struct ObjectRef {
  std::string process;  // hosting domain name
  ObjectKey key{0};
  std::string interface_name;

  bool valid() const { return !process.empty(); }
};

}  // namespace causeway::orb
