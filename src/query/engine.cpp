#include "query/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>

#include "analysis/trace_io.h"
#include "monitor/record.h"
#include "store/store.h"

namespace causeway::query {

namespace {

using analysis::ColumnBundle;
using analysis::TraceIoError;
using monitor::CallKind;
using monitor::CallOutcome;
using monitor::EventKind;
using monitor::ProbeMode;

// One call event, detached from its segment: strings are views into pools
// the executor keeps alive for the whole run.
struct Ev {
  std::uint64_t seq{0};
  std::int64_t vstart{0}, vend{0};
  std::string_view iface, func, process, node, type;
  std::uint64_t object_key{0};
  EventKind event{};
  CallKind kind{};
  CallOutcome outcome{};
  ProbeMode mode{};
};

// A completed call -- the query row.
struct Span {
  Uuid chain;
  std::string_view iface, func, process, node, type;
  std::uint64_t object_key{0};
  CallKind kind{};
  CallOutcome outcome{};
  std::int64_t open_ts{0};   // opening record's value_start
  std::int64_t close_ts{0};  // closing record's value_start
  // close.value_start - open.value_end (latency.cpp's raw latency), only
  // when both paired records sampled in latency mode.
  std::optional<std::int64_t> latency;
};

// The chain == UUID a matching span *must* carry, if the expression forces
// one: a predicate under `or` or `not` forces nothing, under `and` any
// branch's requirement holds for the whole conjunction.
std::optional<Uuid> required_chain(const Expr* e) {
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case Expr::Kind::kPred:
      if (e->pred.field == Field::kChain && e->pred.op == Op::kEq) {
        return e->pred.chain;
      }
      return std::nullopt;
    case Expr::Kind::kAnd:
      for (const auto& arg : e->args) {
        if (const auto chain = required_chain(arg.get())) return chain;
      }
      return std::nullopt;
    case Expr::Kind::kOr:
    case Expr::Kind::kNot:
      return std::nullopt;
  }
  return std::nullopt;
}

bool compare_i64(std::int64_t lhs, Op op, std::int64_t rhs) {
  switch (op) {
    case Op::kEq: return lhs == rhs;
    case Op::kNe: return lhs != rhs;
    case Op::kLt: return lhs < rhs;
    case Op::kLe: return lhs <= rhs;
    case Op::kGt: return lhs > rhs;
    case Op::kGe: return lhs >= rhs;
    case Op::kMatch: return false;  // parser rejects
  }
  return false;
}

bool compare_text(std::string_view lhs, Op op, std::string_view rhs) {
  switch (op) {
    case Op::kEq: return lhs == rhs;
    case Op::kNe: return lhs != rhs;
    case Op::kMatch: return lhs.find(rhs) != std::string_view::npos;
    default: return false;  // parser rejects
  }
}

bool eval_pred(const Predicate& p, const Span& s) {
  switch (p.field) {
    case Field::kIface: return compare_text(s.iface, p.op, p.text);
    case Field::kFunc: return compare_text(s.func, p.op, p.text);
    case Field::kProcess: return compare_text(s.process, p.op, p.text);
    case Field::kNode: return compare_text(s.node, p.op, p.text);
    case Field::kType: return compare_text(s.type, p.op, p.text);
    case Field::kOutcome:
      return compare_text(monitor::to_string(s.outcome), p.op, p.text);
    case Field::kKind:
      return compare_text(monitor::to_string(s.kind), p.op, p.text);
    case Field::kObject:
      return compare_i64(static_cast<std::int64_t>(s.object_key), p.op,
                         p.number);
    case Field::kChain:
      return p.op == Op::kEq ? s.chain == p.chain : !(s.chain == p.chain);
    case Field::kTs: return compare_i64(s.open_ts, p.op, p.number);
    case Field::kLatency:
      // A span without a latency sample (causality-only mode, or an
      // unpaired probe) matches no latency predicate.
      return s.latency && compare_i64(*s.latency, p.op, p.number);
  }
  return false;
}

bool eval_expr(const Expr* e, const Span& s) {
  if (e == nullptr) return true;
  switch (e->kind) {
    case Expr::Kind::kPred: return eval_pred(e->pred, s);
    case Expr::Kind::kAnd:
      for (const auto& arg : e->args) {
        if (!eval_expr(arg.get(), s)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const auto& arg : e->args) {
        if (eval_expr(arg.get(), s)) return true;
      }
      return false;
    case Expr::Kind::kNot: return !eval_expr(e->args[0].get(), s);
  }
  return false;
}

// ---------------------------------------------------------------------------
// Event gathering

struct Gather {
  // Insertion-ordered per-chain event lists: iterate chains in first-seen
  // order so runs are deterministic regardless of hash seeding.
  std::unordered_map<Uuid, std::size_t> chain_index;
  std::vector<std::pair<Uuid, std::vector<Ev>>> chains;
  // Keeps every decoded segment's string pool alive for the Ev views.
  std::vector<std::shared_ptr<std::deque<std::string>>> pools;

  std::vector<Ev>& events_for(const Uuid& chain) {
    auto [it, inserted] = chain_index.emplace(chain, chains.size());
    if (inserted) chains.emplace_back(chain, std::vector<Ev>{});
    return chains[it->second].second;
  }
};

void gather_bundle(Gather& g, const ColumnBundle& cols) {
  g.pools.push_back(cols.strings);
  std::size_t row = 0;
  for (const auto& run : cols.runs) {
    auto& events = g.events_for(run.chain);
    for (std::uint64_t k = 0; k < run.length; ++k, ++row) {
      Ev ev;
      ev.seq = cols.seq[row];
      ev.vstart = cols.value_start[row];
      ev.vend = cols.value_end[row];
      ev.iface = cols.table[cols.iface[row]];
      ev.func = cols.table[cols.func[row]];
      ev.process = cols.table[cols.process[row]];
      ev.node = cols.table[cols.node[row]];
      ev.type = cols.table[cols.type[row]];
      ev.object_key = cols.object_key[row];
      const std::uint8_t f1 = cols.flags1[row];
      ev.event = static_cast<EventKind>(f1 & 7);
      ev.kind = static_cast<CallKind>((f1 >> 3) & 3);
      ev.outcome = static_cast<CallOutcome>((f1 >> 5) & 3);
      ev.mode = static_cast<ProbeMode>(cols.flags2[row] & 3);
      events.push_back(ev);
    }
  }
}

void gather_logs(Gather& g, const monitor::CollectedLogs& logs) {
  g.pools.push_back(logs.strings);
  for (const auto& r : logs.records) {
    Ev ev;
    ev.seq = r.seq;
    ev.vstart = r.value_start;
    ev.vend = r.value_end;
    ev.iface = r.interface_name;
    ev.func = r.function_name;
    ev.process = r.process_name;
    ev.node = r.node_name;
    ev.type = r.processor_type;
    ev.object_key = r.object_key;
    ev.event = r.event;
    ev.kind = r.kind;
    ev.outcome = r.outcome;
    ev.mode = r.mode;
    g.events_for(r.chain).push_back(ev);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceIoError("cannot open trace file '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceIoError("read error on '" + path + "'");
  return bytes;
}

// Decodes every segment of one trace file into the gather, counting into
// `stats`.  Handles any readable format version per segment.
void scan_file(const std::string& path, Gather& g, QueryStats& stats) {
  const auto bytes = read_file(path);
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::size_t length = 0;
    bool is_segment = false;
    if (!analysis::probe_trace_block(
            std::span<const std::uint8_t>(bytes).subspan(offset), length,
            is_segment)) {
      throw TraceIoError("incomplete segment in '" + path +
                         "' (run causeway-analyze --reindex)");
    }
    if (is_segment) {
      const auto segment =
          std::span<const std::uint8_t>(bytes).subspan(offset, length);
      const std::uint32_t version =
          static_cast<std::uint32_t>(segment[4]) |
          static_cast<std::uint32_t>(segment[5]) << 8 |
          static_cast<std::uint32_t>(segment[6]) << 16 |
          static_cast<std::uint32_t>(segment[7]) << 24;
      if (version >= analysis::kTraceFormatV4) {
        const ColumnBundle cols =
            analysis::decode_trace_segment_columns(segment);
        stats.records_scanned += cols.count;
        gather_bundle(g, cols);
      } else {
        const monitor::CollectedLogs logs =
            analysis::decode_trace_segment(segment);
        stats.records_scanned += logs.records.size();
        gather_logs(g, logs);
      }
      stats.segments_decoded += 1;
    }
    offset += length;
  }
  stats.files_opened += 1;
}

// ---------------------------------------------------------------------------
// Span pairing (call_tree.cpp's ChainParser, minus the tree)

void emit_span(std::vector<Span>& out, const Uuid& chain, const Ev& open,
               const std::optional<Ev>& skel_open,
               const std::optional<Ev>& skel_close,
               const std::optional<Ev>& close) {
  Span s;
  s.chain = chain;
  s.iface = open.iface;
  s.func = open.func;
  s.process = open.process;
  s.node = open.node;
  s.type = open.type;
  s.object_key = open.object_key;
  s.kind = open.kind;
  const Ev& last = close ? *close : *skel_close;
  s.outcome = last.outcome;
  s.open_ts = open.vstart;
  s.close_ts = last.vstart;
  // Which record pair bounds the latency window mirrors latency.cpp: the
  // stub pair for sync and stub-side oneway, the skeleton pair for
  // collocated calls and skeleton-rooted (spawned-side) frames.
  const Ev* first = &open;
  const Ev* second = &last;
  if (open.kind == CallKind::kCollocated && close) {
    if (skel_open && skel_close) {
      first = &*skel_open;
      second = &*skel_close;
    } else {
      first = nullptr;  // collocated call with no skeleton pair: no latency
    }
  }
  if (first != nullptr && first->mode == ProbeMode::kLatency &&
      second->mode == ProbeMode::kLatency) {
    s.latency = second->vstart - first->vend;
  }
  out.push_back(s);
}

void pair_chain(const Uuid& chain, std::vector<Ev>& events,
                std::vector<Span>& out) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) { return a.seq < b.seq; });
  struct Frame {
    Ev open;  // stub_start, or skel_start for a skeleton-rooted frame
    bool has_stub{false};
    std::optional<Ev> skel_open, skel_close;
  };
  std::vector<Frame> stack;
  auto matches = [&](const Ev& ev) {
    return !stack.empty() && stack.back().open.iface == ev.iface &&
           stack.back().open.func == ev.func;
  };
  for (const Ev& ev : events) {
    switch (ev.event) {
      case EventKind::kStubStart:
        stack.push_back(Frame{ev, true, std::nullopt, std::nullopt});
        break;
      case EventKind::kSkelStart:
        if (stack.empty()) {
          // Skeleton-rooted: spawned side of a oneway, or an
          // uninstrumented caller.
          stack.push_back(Frame{ev, false, ev, std::nullopt});
        } else if (!stack.back().skel_open && matches(ev)) {
          stack.back().skel_open = ev;
        }
        // else: anomalous record; the DSCG reports those, a query skips.
        break;
      case EventKind::kSkelEnd:
        if (!stack.empty() && stack.back().skel_open &&
            !stack.back().skel_close && matches(ev)) {
          stack.back().skel_close = ev;
          if (!stack.back().has_stub) {
            Frame f = std::move(stack.back());
            stack.pop_back();
            emit_span(out, chain, f.open, f.skel_open, f.skel_close,
                      std::nullopt);
          }
        }
        break;
      case EventKind::kStubEnd:
        if (!stack.empty() && stack.back().has_stub && matches(ev)) {
          Frame f = std::move(stack.back());
          stack.pop_back();
          emit_span(out, chain, f.open, f.skel_open, f.skel_close, ev);
        }
        break;
    }
  }
  // Frames still open (chain cut at a file tail) produce no spans.
}

// ---------------------------------------------------------------------------
// Aggregation

struct GroupAcc {
  std::uint64_t count{0};
  std::vector<std::int64_t> latencies;
};

std::string group_key(const Query& q, const Span& s) {
  if (!q.group_by) return {};
  switch (*q.group_by) {
    case Field::kIface: return std::string(s.iface);
    case Field::kFunc: return std::string(s.func);
    case Field::kProcess: return std::string(s.process);
    case Field::kNode: return std::string(s.node);
    case Field::kType: return std::string(s.type);
    case Field::kOutcome: return std::string(monitor::to_string(s.outcome));
    case Field::kKind: return std::string(monitor::to_string(s.kind));
    default: return {};  // parser only admits the above
  }
}

// Nearest-rank percentile over a sorted vector.
std::int64_t percentile(const std::vector<std::int64_t>& sorted, int pct) {
  const std::size_t n = sorted.size();
  std::size_t rank = (n * static_cast<std::size_t>(pct) + 99) / 100;
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

std::optional<double> aggregate(AggFunc f, const GroupAcc& acc,
                                const std::vector<std::int64_t>& sorted) {
  if (f == AggFunc::kCount) return static_cast<double>(acc.count);
  if (sorted.empty()) return std::nullopt;
  switch (f) {
    case AggFunc::kSum: {
      double sum = 0;
      for (const std::int64_t v : sorted) sum += static_cast<double>(v);
      return sum;
    }
    case AggFunc::kAvg: {
      double sum = 0;
      for (const std::int64_t v : sorted) sum += static_cast<double>(v);
      return sum / static_cast<double>(sorted.size());
    }
    case AggFunc::kMin: return static_cast<double>(sorted.front());
    case AggFunc::kMax: return static_cast<double>(sorted.back());
    case AggFunc::kP50: return static_cast<double>(percentile(sorted, 50));
    case AggFunc::kP95: return static_cast<double>(percentile(sorted, 95));
    case AggFunc::kP99: return static_cast<double>(percentile(sorted, 99));
    case AggFunc::kCount: break;  // handled above
  }
  return std::nullopt;
}

std::string format_value(const std::optional<double>& v) {
  if (!v) return "-";
  const double d = *v;
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", d);
  return buf;
}

}  // namespace

QueryResult run_query(const Query& q,
                      const std::vector<std::string>& inputs) {
  QueryResult result;
  const std::optional<Uuid> need_chain = required_chain(q.where.get());
  const std::int64_t since =
      q.since.value_or(std::numeric_limits<std::int64_t>::min());
  const std::int64_t until =
      q.until.value_or(std::numeric_limits<std::int64_t>::max());
  const bool windowed = q.since.has_value() || q.until.has_value();

  Gather gather;
  for (const std::string& input : inputs) {
    if (store::is_store_directory(input)) {
      const store::StoreView view = store::open_store(input);
      for (const auto& file : view.files) {
        result.stats.files_total += 1;
        if (file.indexed) {
          bool pruned = !file.entry.has_records();
          if (windowed && !file.entry.overlaps_time(since, until)) {
            pruned = true;
          }
          if (need_chain && !file.entry.may_contain_chain(*need_chain)) {
            pruned = true;
          }
          if (pruned) {
            result.stats.files_pruned += 1;
            continue;
          }
        }
        scan_file(file.path, gather, result.stats);
      }
    } else {
      result.stats.files_total += 1;
      scan_file(input, gather, result.stats);
    }
  }

  std::vector<Span> spans;
  for (auto& [chain, events] : gather.chains) {
    pair_chain(chain, events, spans);
  }
  result.stats.spans_total = spans.size();

  std::map<std::string, GroupAcc> groups;
  for (const Span& s : spans) {
    // The window clauses bound the whole span: it opens at or after
    // `since` and closes at or before `until` -- the invariant that makes
    // both catalog prune directions exact, not approximate.
    if (s.open_ts < since || s.close_ts > until) continue;
    if (!eval_expr(q.where.get(), s)) continue;
    result.stats.spans_matched += 1;
    GroupAcc& acc = groups[group_key(q, s)];
    acc.count += 1;
    if (s.latency) acc.latencies.push_back(*s.latency);
  }

  if (q.group_by) {
    result.columns.push_back(std::string(to_string(*q.group_by)));
  }
  for (const AggFunc f : q.aggs) {
    result.columns.push_back(std::string(to_string(f)));
  }
  // A global (ungrouped) query always yields one row, even over nothing.
  if (!q.group_by && groups.empty()) groups.emplace("", GroupAcc{});
  for (auto& [key, acc] : groups) {
    std::sort(acc.latencies.begin(), acc.latencies.end());
    QueryResult::Row row;
    row.group = key;
    for (const AggFunc f : q.aggs) {
      row.values.push_back(aggregate(f, acc, acc.latencies));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string render_text(const QueryResult& r) {
  // Column widths sized to content so the table reads aligned.
  std::vector<std::size_t> widths(r.columns.size());
  for (std::size_t c = 0; c < r.columns.size(); ++c) {
    widths[c] = r.columns[c].size();
  }
  std::vector<std::vector<std::string>> cells;
  for (const auto& row : r.rows) {
    std::vector<std::string> line;
    if (r.columns.size() == row.values.size() + 1) {
      line.push_back(row.group);
    }
    for (const auto& v : row.values) line.push_back(format_value(v));
    for (std::size_t c = 0; c < line.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  for (std::size_t c = 0; c < r.columns.size(); ++c) {
    if (c) out += "  ";
    out += r.columns[c];
    out.append(widths[c] - r.columns[c].size(), ' ');
  }
  out += '\n';
  for (const auto& line : cells) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      if (c) out += "  ";
      out += line[c];
      if (c + 1 < line.size()) out.append(widths[c] - line[c].size(), ' ');
    }
    out += '\n';
  }
  return out;
}

std::string render_csv(const QueryResult& r) {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (const char c : s) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < r.columns.size(); ++c) {
    if (c) out += ',';
    out += escape(r.columns[c]);
  }
  out += '\n';
  for (const auto& row : r.rows) {
    std::vector<std::string> line;
    if (r.columns.size() == row.values.size() + 1) {
      line.push_back(row.group);
    }
    for (const auto& v : row.values) line.push_back(format_value(v));
    for (std::size_t c = 0; c < line.size(); ++c) {
      if (c) out += ',';
      out += escape(line[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace causeway::query
