// Tokenizer and recursive-descent parser for the query DSL.
//
//   query   := agg (',' agg)* clause*
//   agg     := 'count' | ('sum'|'avg'|'min'|'max'|'p50'|'p95'|'p99')
//              '(' 'latency' ')'
//   clause  := 'where' or | 'group' 'by' field | 'since' number
//            | 'until' number
//   or      := and ('or' and)*
//   and     := unary ('and' unary)*
//   unary   := 'not' unary | '(' or ')' | pred
//   pred    := field op value
//   op      := '==' | '!=' | '<' | '<=' | '>' | '>=' | '=~'
//   field   := 'iface'|'interface'|'func'|'function'|'process'|'node'
//            | 'type'|'object'|'chain'|'latency'|'ts'|'outcome'|'kind'
//   value   := word | quoted string | number | uuid
//   number  := ['-'] digits ('ns'|'us'|'ms'|'s')?     (always stored in ns)
//
// Full reference with examples: docs/QUERY.md.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "query/ast.h"

namespace causeway::query {

// Parse/lex failure; the message names the offset and what was expected.
class QueryError : public std::runtime_error {
 public:
  QueryError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

struct Token {
  enum class Kind {
    kWord,    // identifier / bare value / number / uuid
    kString,  // quoted ('...' or "..."), quotes stripped
    kOp,      // == != < <= > >= =~
    kLParen,
    kRParen,
    kComma,
    kEnd,
  };
  Kind kind{Kind::kEnd};
  std::string text;
  std::size_t pos{0};  // byte offset into the source
};

// Splits `source` into tokens (always ends with a kEnd token).  Throws
// QueryError on characters that cannot start a token or an unterminated
// quoted string.
std::vector<Token> tokenize(std::string_view source);

// Parses one complete query.  Throws QueryError on malformed input.
Query parse_query(std::string_view source);

}  // namespace causeway::query
