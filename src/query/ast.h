// Typed AST for the causeway query DSL (grammar in docs/QUERY.md).
//
// A query is a list of aggregations over *spans* -- completed calls
// reconstructed by stack-pairing each chain's call events, the same pairing
// the DSCG builder performs (analysis/call_tree.cpp) minus the tree: a
// span's latency is `close.value_start - open.value_end`, exactly the raw
// latency of analysis/latency.cpp -- optionally filtered by a boolean
// predicate expression, grouped by a field, and bounded by a time window.
// The window clauses (`since`/`until`) are separate from `where` because
// they are what the planner may prune whole files with via the catalog's
// min/max timestamp ranges; a `chain ==` predicate that is required (not
// under `or`/`not`) prunes via the catalog's chain digest the same way.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"

namespace causeway::query {

enum class Field {
  kIface,    // interface name
  kFunc,     // function name
  kProcess,  // client-side process name (the span's opening record)
  kNode,     // node name
  kType,     // processor type
  kObject,   // object key (numeric)
  kChain,    // chain UUID
  kLatency,  // raw span latency, ns (numeric; absent outside latency mode)
  kTs,       // span open timestamp, ns (numeric)
  kOutcome,  // ok | app_error | system_error
  kKind,     // sync | oneway | collocated
};

enum class Op {
  kEq,     // ==
  kNe,     // !=
  kLt,     // <
  kLe,     // <=
  kGt,     // >
  kGe,     // >=
  kMatch,  // =~  (substring, string fields only)
};

// One comparison.  Which value member is live depends on the field's type;
// the parser guarantees the combination is valid (string fields only take
// ==/!=/=~, numeric fields only take ordering ops, chain only ==/!=).
struct Predicate {
  Field field{};
  Op op{};
  std::string text;         // string fields, outcome/kind names
  std::int64_t number{0};   // numeric fields (latency/ts in ns, object key)
  Uuid chain;               // chain field
};

struct Expr {
  enum class Kind { kPred, kAnd, kOr, kNot };
  Kind kind{Kind::kPred};
  Predicate pred;                            // kPred
  std::vector<std::unique_ptr<Expr>> args;   // kAnd/kOr: 2+, kNot: 1
};

enum class AggFunc {
  kCount,  // spans matched (no argument)
  kSum,    // of latency, ns
  kAvg,
  kMin,
  kMax,
  kP50,    // nearest-rank percentiles
  kP95,
  kP99,
};

struct Query {
  std::vector<AggFunc> aggs;            // at least one
  std::unique_ptr<Expr> where;          // null = match everything
  std::optional<Field> group_by;        // string-valued fields, kind, outcome
  std::optional<std::int64_t> since;    // spans opening at ts >= since
  std::optional<std::int64_t> until;    // and closing at ts <= until
};

std::string_view to_string(Field f);
std::string_view to_string(AggFunc f);

}  // namespace causeway::query
