// Query planner + executor.
//
// Inputs are store directories (store/store.h) and/or plain trace files.
// For a store, the planner consults the catalog before opening anything:
// a file whose timestamp range misses the query's since/until window, or
// whose chain digest rules out a *required* `chain ==` predicate (one not
// weakened by `or`/`not`), is pruned -- never read, never decoded.  The
// QueryStats counters expose exactly that, so tests can assert pruning
// happened rather than trust that it did.
//
// Execution decodes each opened file segment by segment (column-form for
// v4/v5, record-major for v2/v3), gathers call events per chain *across*
// files -- rotation can split a chain mid-call, and catalog order keeps
// sealed files in write order -- sorts each chain by event number, and
// stack-pairs open/close events into spans (the call_tree.cpp pairing,
// minus the tree).  Aggregations then run over the spans that pass the
// window and `where` filters.  Results are deterministic: group rows are
// emitted in sorted key order, and percentiles are nearest-rank over the
// fully sorted latency vector, so shard count, compression, and varint
// kernel never change a byte of output.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "query/ast.h"

namespace causeway::query {

struct QueryStats {
  std::size_t files_total{0};      // candidate files across all inputs
  std::size_t files_pruned{0};     // skipped via the catalog
  std::size_t files_opened{0};     // read and decoded
  std::size_t segments_decoded{0};
  std::uint64_t records_scanned{0};
  std::uint64_t spans_total{0};    // completed spans reconstructed
  std::uint64_t spans_matched{0};  // passed window + where
};

struct QueryResult {
  // One column per aggregation, preceded by the group field when grouping.
  std::vector<std::string> columns;
  struct Row {
    std::string group;  // empty when the query has no group by
    // One value per aggregation; nullopt when undefined (latency stats
    // over zero latency-mode spans).
    std::vector<std::optional<double>> values;
  };
  std::vector<Row> rows;  // sorted by group key
  QueryStats stats;
};

// Runs `q` over the inputs.  Throws analysis::TraceIoError on missing or
// corrupt inputs (including a stale store catalog) and QueryError never --
// parsing already happened.
QueryResult run_query(const Query& q,
                      const std::vector<std::string>& inputs);

// Deterministic renderings shared by causeway-query and the tests.
std::string render_text(const QueryResult& r);
std::string render_csv(const QueryResult& r);

}  // namespace causeway::query
