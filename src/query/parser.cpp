#include "query/parser.h"

#include <cctype>

namespace causeway::query {

namespace {

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == ':' || c == '/' || c == '-';
}

bool string_field(Field f) {
  switch (f) {
    case Field::kIface:
    case Field::kFunc:
    case Field::kProcess:
    case Field::kNode:
    case Field::kType:
    case Field::kOutcome:
    case Field::kKind:
      return true;
    default:
      return false;
  }
}

bool numeric_field(Field f) {
  return f == Field::kObject || f == Field::kLatency || f == Field::kTs;
}

// 'where'-clause field names.  interface/iface and function/func are
// accepted as synonyms to match report column headings.
std::optional<Field> field_from(std::string_view word) {
  if (word == "iface" || word == "interface") return Field::kIface;
  if (word == "func" || word == "function") return Field::kFunc;
  if (word == "process") return Field::kProcess;
  if (word == "node") return Field::kNode;
  if (word == "type") return Field::kType;
  if (word == "object") return Field::kObject;
  if (word == "chain") return Field::kChain;
  if (word == "latency") return Field::kLatency;
  if (word == "ts") return Field::kTs;
  if (word == "outcome") return Field::kOutcome;
  if (word == "kind") return Field::kKind;
  return std::nullopt;
}

std::optional<AggFunc> agg_from(std::string_view word) {
  if (word == "count") return AggFunc::kCount;
  if (word == "sum") return AggFunc::kSum;
  if (word == "avg") return AggFunc::kAvg;
  if (word == "min") return AggFunc::kMin;
  if (word == "max") return AggFunc::kMax;
  if (word == "p50") return AggFunc::kP50;
  if (word == "p95") return AggFunc::kP95;
  if (word == "p99") return AggFunc::kP99;
  return std::nullopt;
}

// ['-'] digits + optional ns/us/ms/s suffix, normalized to nanoseconds.
std::optional<std::int64_t> parse_number(std::string_view word) {
  std::size_t i = 0;
  const bool negative = !word.empty() && word[0] == '-';
  if (negative) i = 1;
  std::int64_t value = 0;
  std::size_t digits = 0;
  for (; i < word.size(); ++i) {
    const char c = word[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + (c - '0');
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  const std::string_view unit = word.substr(i);
  std::int64_t scale = 1;
  if (unit.empty() || unit == "ns") {
    scale = 1;
  } else if (unit == "us") {
    scale = 1000;
  } else if (unit == "ms") {
    scale = 1000000;
  } else if (unit == "s") {
    scale = 1000000000;
  } else {
    return std::nullopt;
  }
  value *= scale;
  return negative ? -value : value;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  Query parse() {
    Query q;
    q.aggs.push_back(parse_agg());
    while (accept(Token::Kind::kComma)) q.aggs.push_back(parse_agg());
    while (peek().kind != Token::Kind::kEnd) {
      const Token& t = peek();
      if (t.kind != Token::Kind::kWord) {
        throw QueryError("expected a clause keyword", t.pos);
      }
      if (t.text == "where") {
        if (q.where) throw QueryError("duplicate 'where' clause", t.pos);
        next();
        q.where = parse_or();
      } else if (t.text == "group") {
        if (q.group_by) throw QueryError("duplicate 'group by' clause", t.pos);
        next();
        expect_word("by");
        q.group_by = parse_group_field();
      } else if (t.text == "since") {
        if (q.since) throw QueryError("duplicate 'since' clause", t.pos);
        next();
        q.since = parse_time_bound();
      } else if (t.text == "until") {
        if (q.until) throw QueryError("duplicate 'until' clause", t.pos);
        next();
        q.until = parse_time_bound();
      } else {
        throw QueryError("unknown clause '" + t.text + "'", t.pos);
      }
    }
    if (q.since && q.until && *q.since > *q.until) {
      throw QueryError("empty time window: since > until", 0);
    }
    return q;
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  const Token& next() { return tokens_[index_++]; }

  bool accept(Token::Kind kind) {
    if (peek().kind != kind) return false;
    next();
    return true;
  }

  void expect_word(std::string_view word) {
    const Token& t = next();
    if (t.kind != Token::Kind::kWord || t.text != word) {
      throw QueryError("expected '" + std::string(word) + "'", t.pos);
    }
  }

  AggFunc parse_agg() {
    const Token& t = next();
    if (t.kind != Token::Kind::kWord) {
      throw QueryError("expected an aggregation", t.pos);
    }
    const auto agg = agg_from(t.text);
    if (!agg) throw QueryError("unknown aggregation '" + t.text + "'", t.pos);
    if (*agg == AggFunc::kCount) return *agg;
    // The latency functions take their argument explicitly so future fields
    // slot in without grammar surgery.
    const Token& open = next();
    if (open.kind != Token::Kind::kLParen) {
      throw QueryError("expected '(' after '" + t.text + "'", open.pos);
    }
    expect_word("latency");
    const Token& close = next();
    if (close.kind != Token::Kind::kRParen) {
      throw QueryError("expected ')'", close.pos);
    }
    return *agg;
  }

  Field parse_group_field() {
    const Token& t = next();
    if (t.kind != Token::Kind::kWord) {
      throw QueryError("expected a field to group by", t.pos);
    }
    const auto field = field_from(t.text);
    if (!field || !string_field(*field)) {
      throw QueryError("cannot group by '" + t.text + "'", t.pos);
    }
    return *field;
  }

  std::int64_t parse_time_bound() {
    const Token& t = next();
    if (t.kind != Token::Kind::kWord) {
      throw QueryError("expected a timestamp", t.pos);
    }
    const auto value = parse_number(t.text);
    if (!value) throw QueryError("malformed timestamp '" + t.text + "'", t.pos);
    return *value;
  }

  std::unique_ptr<Expr> parse_or() {
    auto left = parse_and();
    while (peek().kind == Token::Kind::kWord && peek().text == "or") {
      next();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kOr;
      node->args.push_back(std::move(left));
      node->args.push_back(parse_and());
      left = std::move(node);
    }
    return left;
  }

  std::unique_ptr<Expr> parse_and() {
    auto left = parse_unary();
    while (peek().kind == Token::Kind::kWord && peek().text == "and") {
      next();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kAnd;
      node->args.push_back(std::move(left));
      node->args.push_back(parse_unary());
      left = std::move(node);
    }
    return left;
  }

  std::unique_ptr<Expr> parse_unary() {
    if (peek().kind == Token::Kind::kWord && peek().text == "not") {
      next();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->args.push_back(parse_unary());
      return node;
    }
    if (accept(Token::Kind::kLParen)) {
      auto inner = parse_or();
      const Token& close = next();
      if (close.kind != Token::Kind::kRParen) {
        throw QueryError("expected ')'", close.pos);
      }
      return inner;
    }
    return parse_predicate();
  }

  std::unique_ptr<Expr> parse_predicate() {
    const Token& ft = next();
    if (ft.kind != Token::Kind::kWord) {
      throw QueryError("expected a field name", ft.pos);
    }
    const auto field = field_from(ft.text);
    if (!field) throw QueryError("unknown field '" + ft.text + "'", ft.pos);
    const Token& ot = next();
    if (ot.kind != Token::Kind::kOp) {
      throw QueryError("expected a comparison operator", ot.pos);
    }
    Op op;
    if (ot.text == "==") {
      op = Op::kEq;
    } else if (ot.text == "!=") {
      op = Op::kNe;
    } else if (ot.text == "<") {
      op = Op::kLt;
    } else if (ot.text == "<=") {
      op = Op::kLe;
    } else if (ot.text == ">") {
      op = Op::kGt;
    } else if (ot.text == ">=") {
      op = Op::kGe;
    } else {
      op = Op::kMatch;
    }
    const Token& vt = next();
    if (vt.kind != Token::Kind::kWord && vt.kind != Token::Kind::kString) {
      throw QueryError("expected a value", vt.pos);
    }

    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kPred;
    node->pred.field = *field;
    node->pred.op = op;
    if (*field == Field::kChain) {
      if (op != Op::kEq && op != Op::kNe) {
        throw QueryError("chain supports only == and !=", ot.pos);
      }
      const auto uuid = Uuid::parse(vt.text);
      if (!uuid) throw QueryError("malformed chain UUID", vt.pos);
      node->pred.chain = *uuid;
    } else if (numeric_field(*field)) {
      if (op == Op::kMatch) {
        throw QueryError("'=~' applies to string fields only", ot.pos);
      }
      const auto value = parse_number(vt.text);
      if (!value) {
        throw QueryError("malformed number '" + vt.text + "'", vt.pos);
      }
      node->pred.number = *value;
    } else {
      if (op != Op::kEq && op != Op::kNe && op != Op::kMatch) {
        throw QueryError("ordering operators apply to numeric fields only",
                         ot.pos);
      }
      node->pred.text = vt.text;
    }
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t index_{0};
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (c == '(') {
      tokens.push_back({Token::Kind::kLParen, "(", start});
      ++i;
    } else if (c == ')') {
      tokens.push_back({Token::Kind::kRParen, ")", start});
      ++i;
    } else if (c == ',') {
      tokens.push_back({Token::Kind::kComma, ",", start});
      ++i;
    } else if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string text;
      while (i < source.size() && source[i] != quote) text += source[i++];
      if (i == source.size()) {
        throw QueryError("unterminated string", start);
      }
      ++i;  // closing quote
      tokens.push_back({Token::Kind::kString, std::move(text), start});
    } else if (c == '=' || c == '!' || c == '<' || c == '>') {
      std::string text(1, c);
      ++i;
      if (i < source.size() && (source[i] == '=' || source[i] == '~')) {
        text += source[i++];
      }
      if (text != "==" && text != "!=" && text != "<" && text != "<=" &&
          text != ">" && text != ">=" && text != "=~") {
        throw QueryError("malformed operator '" + text + "'", start);
      }
      tokens.push_back({Token::Kind::kOp, std::move(text), start});
    } else if (word_char(c)) {
      std::string text;
      while (i < source.size() && word_char(source[i])) text += source[i++];
      tokens.push_back({Token::Kind::kWord, std::move(text), start});
    } else {
      throw QueryError(std::string("unexpected character '") + c + "'", start);
    }
  }
  tokens.push_back({Token::Kind::kEnd, "", source.size()});
  return tokens;
}

Query parse_query(std::string_view source) {
  return Parser(source).parse();
}

std::string_view to_string(Field f) {
  switch (f) {
    case Field::kIface: return "iface";
    case Field::kFunc: return "func";
    case Field::kProcess: return "process";
    case Field::kNode: return "node";
    case Field::kType: return "type";
    case Field::kObject: return "object";
    case Field::kChain: return "chain";
    case Field::kLatency: return "latency";
    case Field::kTs: return "ts";
    case Field::kOutcome: return "outcome";
    case Field::kKind: return "kind";
  }
  return "?";
}

std::string_view to_string(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum(latency)";
    case AggFunc::kAvg: return "avg(latency)";
    case AggFunc::kMin: return "min(latency)";
    case AggFunc::kMax: return "max(latency)";
    case AggFunc::kP50: return "p50(latency)";
    case AggFunc::kP95: return "p95(latency)";
    case AggFunc::kP99: return "p99(latency)";
  }
  return "?";
}

}  // namespace causeway::query
