// Recursive-descent parser for the IDL subset (see ast.h for the grammar).
#pragma once

#include <stdexcept>
#include <string>

#include "idl/ast.h"
#include "idl/token.h"

namespace causeway::idl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line, int column)
      : std::runtime_error(what + " at " + std::to_string(line) + ":" +
                           std::to_string(column)),
        line(line),
        column(column) {}
  int line;
  int column;
};

// Parses a full IDL source (lexes internally). Throws LexError/ParseError.
SpecDef parse(std::string_view source);

}  // namespace causeway::idl
