// Semantic analysis for the IDL subset.
//
// Builds a symbol table over all modules, resolves scoped type references
// (innermost enclosing scope outward, then absolute), and enforces:
//   * unique symbol names per scope, unique operation/param/member names;
//   * named parameter/member/return types resolve to structs;
//   * raises(...) entries resolve to exceptions;
//   * oneway operations return void, take only `in` params, raise nothing
//     (the CORBA rules the paper's asynchronous-call discussion relies on).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "idl/ast.h"

namespace causeway::idl {

enum class SymbolKind {
  kStruct,
  kException,
  kEnum,
  kTypedef,
  kInterface,
  kModule,
};

// Kinds usable as parameter/member/return data types.
constexpr bool is_data_kind(SymbolKind k) {
  return k == SymbolKind::kStruct || k == SymbolKind::kEnum ||
         k == SymbolKind::kTypedef;
}

class SymbolTable {
 public:
  static SymbolTable build(const SpecDef& spec);

  // Resolves `ref` (e.g. {"Point"} or {"Geo","Point"}) as seen from inside
  // `scope` (e.g. {"PPS","Internal"}).  Returns the fully-qualified name
  // ("PPS::Point") and kind, or nullopt.
  std::optional<std::pair<std::string, SymbolKind>> resolve(
      const std::vector<std::string>& ref,
      const std::vector<std::string>& scope) const;

  bool contains(const std::string& fq_name) const {
    return symbols_.contains(fq_name);
  }

  // For a fully-qualified typedef name: its aliased type and the scope it
  // was declared in (needed to resolve the alias's own named references).
  struct TypedefInfo {
    Type aliased;
    std::vector<std::string> scope;
  };
  const TypedefInfo* typedef_info(const std::string& fq_name) const {
    auto it = typedefs_.find(fq_name);
    return it == typedefs_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, SymbolKind> symbols_;
  std::map<std::string, TypedefInfo> typedefs_;
};

// Returns human-readable error messages; empty means the spec is valid.
std::vector<std::string> check(const SpecDef& spec);

// Helper shared with codegen: "A::B::C" from a path.
std::string join_path(const std::vector<std::string>& path);

}  // namespace causeway::idl
