#include "idl/lexer.h"

#include <array>
#include <cctype>

namespace causeway::idl {
namespace {

constexpr std::array<std::string_view, 22> kKeywords = {
    "module", "interface", "struct",  "exception", "oneway",
    "in",     "out",       "inout",   "raises",    "sequence",
    "void",   "boolean",   "octet",   "short",     "long",
    "float",  "double",    "string",  "unsigned",  "const",
    "enum",   "typedef",
};

bool is_keyword(std::string_view word) {
  for (auto kw : kKeywords) {
    if (kw == word) return true;
  }
  return false;
}

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_trivia();
      Token t = next();
      const bool eof = t.kind == TokenKind::kEof;
      tokens.push_back(std::move(t));
      if (eof) return tokens;
    }
  }

 private:
  void skip_trivia() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (at_end()) return;
      if (peek() == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        const int start_line = line_, start_col = col_;
        advance();
        advance();
        for (;;) {
          if (at_end()) {
            throw LexError("unterminated block comment", start_line,
                           start_col);
          }
          if (peek() == '*' && pos_ + 1 < src_.size() &&
              src_[pos_ + 1] == '/') {
            advance();
            advance();
            break;
          }
          advance();
        }
        continue;
      }
      return;
    }
  }

  Token next() {
    Token t;
    t.line = line_;
    t.column = col_;
    if (at_end()) {
      t.kind = TokenKind::kEof;
      return t;
    }
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string number;
      bool seen_dot = false;
      while (!at_end() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              (peek() == '.' && !seen_dot))) {
        seen_dot |= (peek() == '.');
        number += peek();
        advance();
      }
      t.kind = TokenKind::kNumber;
      t.text = std::move(number);
      return t;
    }
    if (c == '"') {
      advance();
      std::string text;
      for (;;) {
        if (at_end()) {
          throw LexError("unterminated string literal", t.line, t.column);
        }
        const char ch = peek();
        if (ch == '"') {
          advance();
          break;
        }
        if (ch == '\\') {
          advance();
          if (at_end()) {
            throw LexError("unterminated escape", t.line, t.column);
          }
          const char esc = peek();
          text += (esc == 'n') ? '\n' : (esc == 't') ? '\t' : esc;
          advance();
          continue;
        }
        text += ch;
        advance();
      }
      t.kind = TokenKind::kStringLit;
      t.text = std::move(text);
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (!at_end() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        word += peek();
        advance();
      }
      t.kind = is_keyword(word) ? TokenKind::kKeyword : TokenKind::kIdentifier;
      t.text = std::move(word);
      return t;
    }
    switch (c) {
      case '{': advance(); t.kind = TokenKind::kLBrace; t.text = "{"; return t;
      case '}': advance(); t.kind = TokenKind::kRBrace; t.text = "}"; return t;
      case '(': advance(); t.kind = TokenKind::kLParen; t.text = "("; return t;
      case ')': advance(); t.kind = TokenKind::kRParen; t.text = ")"; return t;
      case '<': advance(); t.kind = TokenKind::kLAngle; t.text = "<"; return t;
      case '>': advance(); t.kind = TokenKind::kRAngle; t.text = ">"; return t;
      case ';': advance(); t.kind = TokenKind::kSemicolon; t.text = ";"; return t;
      case ',': advance(); t.kind = TokenKind::kComma; t.text = ","; return t;
      case '=': advance(); t.kind = TokenKind::kEquals; t.text = "="; return t;
      case '-': advance(); t.kind = TokenKind::kMinus; t.text = "-"; return t;
      case ':':
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == ':') {
          advance();
          advance();
          t.kind = TokenKind::kScope;
          t.text = "::";
          return t;
        }
        throw LexError("stray ':'", line_, col_);
      default:
        throw LexError(std::string("illegal character '") + c + "'", line_,
                       col_);
    }
  }

  bool at_end() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }
  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_{0};
  int line_{1};
  int col_{1};
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Scanner(source).run();
}

}  // namespace causeway::idl
