// C++ code generation: the paper's "IDL compiler automates the necessary
// stub and skeleton instrumentation".
//
// For each interface Foo the generator emits:
//   * `class Foo`          -- the abstract C++ interface (implemented by user
//                             servants and by the generated proxy);
//   * `class FooProxy`     -- the stub: marshals parameters, invokes through
//                             orb::ClientCall, reconstructs typed exceptions;
//   * `class FooSkeleton`  -- the skeleton: unmarshals, up-calls the user
//                             implementation, marshals the reply;
//   * `activate_Foo(...)`  -- convenience: wrap an implementation in its
//                             skeleton and activate it in a domain.
// plus value structs / exceptions with wire_write / wire_read overloads.
//
// `instrumented` reproduces the paper's back-end compilation flag: when set,
// the emitted stubs/skeletons construct their ClientCall / SkeletonGuard
// with instrumentation enabled -- the probes fire and the hidden FTL trailer
// rides on every payload.  When clear, the generated code is byte-for-byte
// monitoring-free.  User-written implementation code is identical either
// way, which is the paper's central transparency claim.
#pragma once

#include <string>

#include "idl/ast.h"

namespace causeway::idl {

// Which runtime the generated stubs/skeletons bind to.  The paper modifies
// one IDL compiler to serve both CORBA and COM ("for both CORBA and COM
// applications, our IDL compiler is modified to accommodate such
// instrumentation demand"); idlc mirrors that with a back-end switch.
enum class TargetRuntime {
  kOrb,   // CORBA-like: ProcessDomain / ClientCall / Servant
  kCom,   // COM-like: ComRuntime / ComCall / ComServant (apartments)
  kBoth,  // one pass emitting bindings for both runtimes side by side --
          // FooProxy/FooSkeleton and FooComProxy/FooComSkeleton share the
          // abstract interface and value types, so a hybrid application can
          // host one implementation behind either (or both) infrastructures
};

struct CodegenOptions {
  bool instrumented{false};
  TargetRuntime runtime{TargetRuntime::kOrb};
  std::string basename{"generated"};  // include path stem for the header
};

struct GeneratedCode {
  std::string header;
  std::string source;
};

// Precondition: check(spec) returned no errors.
GeneratedCode generate(const SpecDef& spec, const CodegenOptions& options);

}  // namespace causeway::idl
