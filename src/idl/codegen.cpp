#include "idl/codegen.h"

#include <cassert>

#include "common/strings.h"
#include "idl/sema.h"

namespace causeway::idl {
namespace {

std::string cpp_primitive(PrimitiveKind kind) {
  switch (kind) {
    case PrimitiveKind::kVoid: return "void";
    case PrimitiveKind::kBoolean: return "bool";
    case PrimitiveKind::kOctet: return "std::uint8_t";
    case PrimitiveKind::kShort: return "std::int16_t";
    case PrimitiveKind::kLong: return "std::int32_t";
    case PrimitiveKind::kLongLong: return "std::int64_t";
    case PrimitiveKind::kUShort: return "std::uint16_t";
    case PrimitiveKind::kULong: return "std::uint32_t";
    case PrimitiveKind::kULongLong: return "std::uint64_t";
    case PrimitiveKind::kFloat: return "float";
    case PrimitiveKind::kDouble: return "double";
    case PrimitiveKind::kString: return "std::string";
  }
  return "void";
}

// Per-runtime vocabulary: the generated code differs only in which support
// classes it binds to; the marshaling protocol is shared.
struct RuntimeNames {
  const char* proxy_suffix;
  const char* call_class;       // client-side call helper
  const char* method_spec;
  const char* guard_class;      // server-side probe guard
  const char* servant_base;
  const char* dispatch_result;
  const char* dispatch_context;
  const char* method_id;
  const char* status_app_error;
  const char* status_system_error;
  const char* generic_error;    // thrown for unmatched app errors
  const char* object_key_expr;  // identity key inside dispatch
  const char* oneway_invoke;    // fire-and-forget call method
};

constexpr RuntimeNames kOrbNames = {
    "Proxy",
    "causeway::orb::ClientCall",
    "causeway::orb::MethodSpec",
    "causeway::orb::SkeletonGuard",
    "causeway::orb::Servant",
    "causeway::orb::DispatchResult",
    "causeway::orb::DispatchContext",
    "causeway::orb::MethodId",
    "causeway::orb::ReplyStatus::kAppError",
    "causeway::orb::ReplyStatus::kSystemError",
    "causeway::orb::AppError",
    "ctx.object_key",
    "invoke_oneway",
};

constexpr RuntimeNames kComNames = {
    "ComProxy",
    "causeway::com::ComCall",
    "causeway::com::ComMethodSpec",
    "causeway::com::ComSkelGuard",
    "causeway::com::ComServant",
    "causeway::com::ComDispatchResult",
    "causeway::com::ComDispatchContext",
    "causeway::com::MethodId",
    "causeway::com::CallStatus::kAppError",
    "causeway::com::CallStatus::kSystemError",
    "causeway::com::ComError",
    "ctx.object_id",
    "invoke_post",
};

class Generator {
 public:
  Generator(const SpecDef& spec, const CodegenOptions& options)
      : spec_(spec),
        options_(options),
        com_(options.runtime == TargetRuntime::kCom),
        names_(com_ ? kComNames : kOrbNames),
        table_(SymbolTable::build(spec)) {}

  GeneratedCode run() {
    emit_header_prologue();
    emit_source_prologue();
    for (const auto& mod : spec_.modules) emit_module(*mod);
    hdr_ += "\n";
    return {std::move(hdr_), std::move(src_)};
  }

 private:
  bool com() const { return com_; }

  // Selects which runtime's vocabulary the proxy/skeleton emitters use
  // (kBoth emits one pass per runtime).
  void select_runtime(bool com) {
    com_ = com;
    names_ = com ? kComNames : kOrbNames;
  }

  // --- type rendering ---

  std::string cpp_type(const Type& t) const {
    switch (t.kind) {
      case Type::Kind::kPrimitive:
        return cpp_primitive(t.primitive);
      case Type::Kind::kSequence:
        return "std::vector<" + cpp_type(*t.element) + ">";
      case Type::Kind::kNamed: {
        auto hit = table_.resolve(t.name, scope_);
        assert(hit && "sema must run before codegen");
        return "::" + hit->first;
      }
    }
    return "void";
  }

  // By-value for non-string primitives and enums, resolving typedef chains
  // to their ultimate target (each hop re-resolved in its defining scope).
  bool pass_by_value(const Type& t) const {
    return pass_by_value_in(t, scope_);
  }

  bool pass_by_value_in(const Type& t,
                        const std::vector<std::string>& scope) const {
    if (t.kind == Type::Kind::kPrimitive) {
      return t.primitive != PrimitiveKind::kString;
    }
    if (t.kind == Type::Kind::kNamed) {
      auto hit = table_.resolve(t.name, scope);
      if (!hit) return false;
      if (hit->second == SymbolKind::kEnum) return true;
      if (hit->second == SymbolKind::kTypedef) {
        const auto* info = table_.typedef_info(hit->first);
        return info && pass_by_value_in(info->aliased, info->scope);
      }
    }
    return false;
  }

  std::string param_sig(const Param& p) const {
    const std::string type = cpp_type(p.type);
    if (p.direction == ParamDirection::kIn) {
      return pass_by_value(p.type) ? type + " " + p.name
                                   : "const " + type + "& " + p.name;
    }
    return type + "& " + p.name;  // out / inout
  }

  std::string op_signature(const Operation& op, const std::string& qualifier =
                                                    "") const {
    std::string sig = cpp_type(op.return_type) + " " + qualifier + op.name + "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i > 0) sig += ", ";
      sig += param_sig(op.params[i]);
    }
    sig += ")";
    return sig;
  }

  std::string qualified(const std::string& name) const {
    return join_path(scope_) + "::" + name;
  }

  const char* instr() const {
    return options_.instrumented ? "true" : "false";
  }

  // --- file skeletons ---

  const char* runtime_banner() const {
    switch (options_.runtime) {
      case TargetRuntime::kOrb: return "";
      case TargetRuntime::kCom: return " --runtime=com";
      case TargetRuntime::kBoth: return " --runtime=both";
    }
    return "";
  }

  void emit_header_prologue() {
    hdr_ += "// Generated by idlc";
    hdr_ += options_.instrumented ? " --instrument" : "";
    hdr_ += runtime_banner();
    hdr_ += ". DO NOT EDIT.\n#pragma once\n\n";
    hdr_ +=
        "#include <cstdint>\n#include <memory>\n#include <string>\n"
        "#include <string_view>\n#include <vector>\n\n"
        "#include \"common/wire_io.h\"\n";
    if (options_.runtime != TargetRuntime::kOrb) {
      hdr_ += "#include \"com/apartment.h\"\n"
              "#include \"com/servant.h\"\n"
              "#include \"com/stubs.h\"\n";
    }
    if (options_.runtime != TargetRuntime::kCom) {
      hdr_ += "#include \"orb/domain.h\"\n"
              "#include \"orb/errors.h\"\n"
              "#include \"orb/servant.h\"\n"
              "#include \"orb/stubs.h\"\n";
    }
  }

  void emit_source_prologue() {
    src_ += "// Generated by idlc";
    src_ += options_.instrumented ? " --instrument" : "";
    src_ += runtime_banner();
    src_ += ". DO NOT EDIT.\n";
    src_ += "#include \"" + options_.basename + ".causeway.h\"\n";
  }

  // --- declarations ---

  void emit_module(const ModuleDef& mod) {
    scope_.push_back(mod.name);
    hdr_ += "\nnamespace " + mod.name + " {\n";
    src_ += "\nnamespace " + mod.name + " {\n";
    for (const auto& [kind, index] : mod.order) {
      switch (kind) {
        case DefKind::kEnum: emit_enum(mod.enums[index]); break;
        case DefKind::kTypedef: emit_typedef(mod.typedefs[index]); break;
        case DefKind::kConst: emit_const(mod.consts[index]); break;
        case DefKind::kStruct: {
          const auto& s = mod.structs[index];
          emit_struct(s.name, s.members, false);
          break;
        }
        case DefKind::kException: {
          const auto& e = mod.exceptions[index];
          emit_struct(e.name, e.members, true);
          break;
        }
        case DefKind::kInterface: emit_interface(mod.interfaces[index]); break;
        case DefKind::kModule: emit_module(*mod.submodules[index]); break;
      }
    }
    hdr_ += "\n}  // namespace " + mod.name + "\n";
    src_ += "\n}  // namespace " + mod.name + "\n";
    scope_.pop_back();
  }

  void emit_enum(const EnumDef& def) {
    hdr_ += "\nenum class " + def.name + " : std::uint32_t {\n";
    for (const auto& e : def.enumerators) {
      hdr_ += "  " + e + ",\n";
    }
    hdr_ += "};\n";
    hdr_ += "inline void wire_write(causeway::WireBuffer& b, " + def.name +
            " v) { b.write_u32(static_cast<std::uint32_t>(v)); }\n";
    hdr_ += "inline void wire_read(causeway::WireCursor& c, " + def.name +
            "& v) { v = static_cast<" + def.name + ">(c.read_u32()); }\n";
  }

  void emit_typedef(const TypedefDef& def) {
    hdr_ += "\nusing " + def.name + " = " + cpp_type(def.aliased) + ";\n";
  }

  void emit_const(const ConstDef& def) {
    switch (def.literal_kind) {
      case ConstDef::LiteralKind::kNumber:
        hdr_ += "\ninline constexpr " + cpp_type(def.type) + " " + def.name +
                " = " + def.number_text + ";\n";
        break;
      case ConstDef::LiteralKind::kString: {
        std::string escaped;
        for (char c : def.string_value) {
          switch (c) {
            case '"': escaped += "\\\""; break;
            case '\\': escaped += "\\\\"; break;
            case '\n': escaped += "\\n"; break;
            case '\t': escaped += "\\t"; break;
            default: escaped += c;
          }
        }
        hdr_ += "\ninline constexpr std::string_view " + def.name + " = \"" +
                escaped + "\";\n";
        break;
      }
      case ConstDef::LiteralKind::kBoolean:
        hdr_ += "\ninline constexpr bool " + def.name +
                (def.bool_value ? " = true;\n" : " = false;\n");
        break;
    }
  }

  void emit_struct(const std::string& name, const std::vector<Member>& members,
                   bool is_exception) {
    hdr_ += "\nstruct " + name + " {\n";
    for (const auto& m : members) {
      hdr_ += "  " + cpp_type(m.type) + " " + m.name + "{};\n";
    }
    if (is_exception) {
      hdr_ += "  static constexpr std::string_view kRepoName = \"" +
              qualified(name) + "\";\n";
    }
    hdr_ += "};\n";
    hdr_ += "void wire_write(causeway::WireBuffer& b, const " + name +
            "& v);\n";
    hdr_ += "void wire_read(causeway::WireCursor& c, " + name + "& v);\n";

    src_ += "\nvoid wire_write(causeway::WireBuffer& b, const " + name +
            "& v) {\n  using causeway::wire_write;\n";
    for (const auto& m : members) {
      src_ += "  wire_write(b, v." + m.name + ");\n";
    }
    src_ += "  (void)b; (void)v;\n}\n";
    src_ += "void wire_read(causeway::WireCursor& c, " + name +
            "& v) {\n  using causeway::wire_read;\n";
    for (const auto& m : members) {
      src_ += "  wire_read(c, v." + m.name + ");\n";
    }
    src_ += "  (void)c; (void)v;\n}\n";
  }

  void emit_interface(const InterfaceDef& iface) {
    const std::string repo = qualified(iface.name);

    // Abstract interface.
    hdr_ += "\nclass " + iface.name + " {\n public:\n";
    hdr_ += "  virtual ~" + iface.name + "() = default;\n";
    hdr_ += "  static constexpr std::string_view kRepoName = \"" + repo +
            "\";\n";
    for (const auto& op : iface.operations) {
      hdr_ += "  virtual " + op_signature(op) + " = 0;\n";
    }
    hdr_ += "};\n";

    if (options_.runtime == TargetRuntime::kBoth) {
      for (const bool com_pass : {false, true}) {
        select_runtime(com_pass);
        emit_proxy(iface);
        emit_skeleton(iface);
        emit_activation(iface);
      }
      select_runtime(false);
    } else {
      emit_proxy(iface);
      emit_skeleton(iface);
      emit_activation(iface);
    }
  }

  void emit_activation(const InterfaceDef& iface) {
    if (com()) {
      hdr_ += "\ninline causeway::com::ComObjectId register_" + iface.name +
              "(\n    causeway::com::ComRuntime& runtime, "
              "causeway::com::ApartmentId apartment,\n    std::shared_ptr<" +
              iface.name +
              "> impl) {\n  return runtime.register_object(\n      apartment, "
              "causeway::com::ComPtr<causeway::com::ComServant>(\n          "
              "new " + iface.name + "ComSkeleton(std::move(impl))));\n}\n";
    } else {
      hdr_ += "\ninline causeway::orb::ObjectRef activate_" + iface.name +
              "(\n    causeway::orb::ProcessDomain& domain, std::shared_ptr<" +
              iface.name +
              "> impl) {\n  return domain.activate(std::make_shared<" +
              iface.name + "Skeleton>(std::move(impl)));\n}\n";
    }
  }

  void emit_proxy(const InterfaceDef& iface) {
    const std::string cls = iface.name + names_.proxy_suffix;
    hdr_ += "\nclass " + cls + " final : public " + iface.name +
            " {\n public:\n";
    if (com()) {
      hdr_ += "  " + cls +
              "(causeway::com::ComRuntime& runtime, "
              "causeway::com::ComObjectId target)\n      : runtime_(&runtime),"
              " target_(target) {}\n";
    } else {
      hdr_ += "  " + cls +
              "(causeway::orb::ProcessDomain& domain, "
              "causeway::orb::ObjectRef ref)\n      : domain_(&domain), "
              "ref_(std::move(ref)) {}\n";
    }
    for (const auto& op : iface.operations) {
      hdr_ += "  " + op_signature(op) + " override;\n";
    }
    if (com()) {
      hdr_ += "  causeway::com::ComObjectId target() const { return "
              "target_; }\n";
      hdr_ += " private:\n  causeway::com::ComRuntime* runtime_;\n"
              "  causeway::com::ComObjectId target_;\n};\n";
    } else {
      hdr_ += "  const causeway::orb::ObjectRef& ref() const { return "
              "ref_; }\n";
      hdr_ += " private:\n  causeway::orb::ProcessDomain* domain_;\n"
              "  causeway::orb::ObjectRef ref_;\n};\n";
    }

    for (std::size_t op_index = 0; op_index < iface.operations.size();
         ++op_index) {
      emit_proxy_method(iface, iface.operations[op_index],
                        static_cast<std::uint32_t>(op_index));
    }
  }

  void emit_proxy_method(const InterfaceDef& iface, const Operation& op,
                         std::uint32_t method_id) {
    const std::string cls = iface.name + names_.proxy_suffix;

    src_ += "\n" + op_signature(op, cls + "::") + " {\n";
    src_ += "  using causeway::wire_write;\n  using causeway::wire_read;\n";
    src_ += strf("  %s _call(%s,\n      %s{\"%s\", \"%s\", %uu, %s},\n"
                 "      /*instrumented=*/%s);\n",
                 names_.call_class,
                 com() ? "*runtime_, target_" : "*domain_, ref_",
                 names_.method_spec, qualified(iface.name).c_str(),
                 op.name.c_str(), method_id, op.oneway ? "true" : "false",
                 instr());
    src_ += "  auto& _req = _call.request();\n  (void)_req;\n";
    for (const auto& p : op.params) {
      if (p.direction != ParamDirection::kOut) {
        src_ += "  wire_write(_req, " + p.name + ");\n";
      }
    }

    if (op.oneway) {
      src_ += strf("  _call.%s();\n}\n", names_.oneway_invoke);
      return;
    }

    src_ += "  causeway::WireCursor _reply = _call.invoke();\n"
            "  (void)_reply;\n";
    // Typed application-exception reconstruction.
    src_ += "  if (_call.has_app_error()) {\n";
    for (const auto& raised : op.raises) {
      auto hit = table_.resolve(raised, scope_);
      assert(hit);
      const std::string ex = "::" + hit->first;
      src_ += "    if (_call.app_error_name() == " + ex +
              "::kRepoName) {\n      " + ex +
              " _ex;\n      wire_read(_reply, _ex);\n      throw _ex;\n"
              "    }\n";
    }
    if (com()) {
      src_ += strf("    throw %s(_call.app_error_name() + \": \" + "
                   "_call.app_error_text());\n  }\n",
                   names_.generic_error);
    } else {
      src_ += strf("    throw %s(_call.app_error_name(), "
                   "_call.app_error_text());\n  }\n",
                   names_.generic_error);
    }

    if (!op.return_type.is_void()) {
      src_ += "  " + cpp_type(op.return_type) +
              " _ret{};\n  wire_read(_reply, _ret);\n";
    }
    for (const auto& p : op.params) {
      if (p.direction != ParamDirection::kIn) {
        src_ += "  wire_read(_reply, " + p.name + ");\n";
      }
    }
    if (!op.return_type.is_void()) src_ += "  return _ret;\n";
    src_ += "}\n";
  }

  void emit_skeleton(const InterfaceDef& iface) {
    const std::string cls =
        iface.name + (com() ? "ComSkeleton" : "Skeleton");
    const std::string dispatch_name = com() ? "com_dispatch" : "dispatch";

    hdr_ += strf("\nclass %s final : public %s {\n public:\n", cls.c_str(),
                 names_.servant_base);
    hdr_ += "  explicit " + cls + "(std::shared_ptr<" + iface.name +
            "> impl) : impl_(std::move(impl)) {}\n";
    hdr_ += "  std::string_view interface_name() const override { return "
            "\"" + qualified(iface.name) + "\"; }\n";
    hdr_ += strf("  %s %s(\n      %s& ctx, %s method,\n"
                 "      causeway::WireCursor& in, causeway::WireBuffer& out) "
                 "override;\n",
                 names_.dispatch_result, dispatch_name.c_str(),
                 names_.dispatch_context, names_.method_id);
    hdr_ += " private:\n";
    for (const auto& op : iface.operations) {
      hdr_ += strf("  %s _dispatch_%s(\n      %s& ctx, "
                   "causeway::WireCursor& in,\n      causeway::WireBuffer& "
                   "out);\n",
                   names_.dispatch_result, op.name.c_str(),
                   names_.dispatch_context);
    }
    hdr_ += "  std::shared_ptr<" + iface.name + "> impl_;\n};\n";

    // dispatch switch
    src_ += strf("\n%s %s::%s(\n    %s& ctx, %s method,\n"
                 "    causeway::WireCursor& in, causeway::WireBuffer& out) "
                 "{\n  switch (method) {\n",
                 names_.dispatch_result, cls.c_str(), dispatch_name.c_str(),
                 names_.dispatch_context, names_.method_id);
    for (std::size_t op_index = 0; op_index < iface.operations.size();
         ++op_index) {
      src_ += strf("    case %zuu: return _dispatch_%s(ctx, in, out);\n",
                   op_index, iface.operations[op_index].name.c_str());
    }
    src_ += strf("  }\n  %s _r;\n  _r.status = %s;\n"
                 "  _r.error_text = \"unknown method id\";\n  return _r;\n}\n",
                 names_.dispatch_result, names_.status_system_error);

    for (const auto& op : iface.operations) emit_skeleton_method(iface, op);
  }

  void emit_skeleton_method(const InterfaceDef& iface, const Operation& op) {
    const std::string cls =
        iface.name + (com() ? "ComSkeleton" : "Skeleton");

    src_ += strf("\n%s %s::_dispatch_%s(\n    %s& ctx, "
                 "causeway::WireCursor& in,\n    causeway::WireBuffer& out) "
                 "{\n",
                 names_.dispatch_result, cls.c_str(), op.name.c_str(),
                 names_.dispatch_context);
    src_ += "  using causeway::wire_write;\n  using causeway::wire_read;\n"
            "  (void)out;\n";
    src_ += strf(
        "  %s _guard(\n      ctx, causeway::monitor::CallIdentity{\"%s\", "
        "\"%s\", %s},\n      in, /*instrumented=*/%s);\n",
        names_.guard_class, qualified(iface.name).c_str(), op.name.c_str(),
        names_.object_key_expr, instr());
    src_ += strf("  %s _r;\n", names_.dispatch_result);

    // Unmarshal in/inout, declare out.
    for (const auto& p : op.params) {
      src_ += "  " + cpp_type(p.type) + " " + p.name + "{};\n";
      if (p.direction != ParamDirection::kOut) {
        src_ += "  wire_read(in, " + p.name + ");\n";
      }
    }

    // Invoke the user implementation.
    std::string call = "impl_->" + op.name + "(";
    for (std::size_t i = 0; i < op.params.size(); ++i) {
      if (i > 0) call += ", ";
      call += op.params[i].name;
    }
    call += ")";

    src_ += "  try {\n";
    if (op.return_type.is_void()) {
      src_ += "    " + call + ";\n    _guard.body_end();\n";
    } else {
      src_ += "    " + cpp_type(op.return_type) + " _ret = " + call +
              ";\n    _guard.body_end();\n    wire_write(out, _ret);\n";
    }
    for (const auto& p : op.params) {
      if (p.direction != ParamDirection::kIn) {
        src_ += "    wire_write(out, " + p.name + ");\n";
      }
    }
    src_ += "  }";

    for (const auto& raised : op.raises) {
      auto hit = table_.resolve(raised, scope_);
      assert(hit);
      const std::string ex = "::" + hit->first;
      src_ += " catch (const " + ex +
              "& _ex) {\n    _guard.body_end("
              "causeway::monitor::CallOutcome::kAppError);\n";
      src_ += strf("    _r.status = %s;\n", names_.status_app_error);
      src_ += "    _r.error_name = std::string(" + ex + "::kRepoName);\n"
              "    _r.error_text = \"application exception\";\n"
              "    wire_write(out, _ex);\n  }";
    }
    src_ += " catch (const std::exception& _e) {\n    _guard.body_end("
            "causeway::monitor::CallOutcome::kSystemError);\n";
    src_ += strf("    _r.status = %s;\n", names_.status_system_error);
    src_ += "    _r.error_text = _e.what();\n  }\n";
    src_ += "  _guard.seal(out);\n  return _r;\n}\n";
  }

  const SpecDef& spec_;
  const CodegenOptions& options_;
  bool com_;
  RuntimeNames names_;
  SymbolTable table_;
  std::vector<std::string> scope_;
  std::string hdr_;
  std::string src_;
};

}  // namespace

GeneratedCode generate(const SpecDef& spec, const CodegenOptions& options) {
  return Generator(spec, options).run();
}

}  // namespace causeway::idl
