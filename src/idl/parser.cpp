#include "idl/parser.h"

#include "idl/lexer.h"

namespace causeway::idl {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SpecDef run() {
    SpecDef spec;
    while (!at(TokenKind::kEof)) {
      expect_keyword("module");
      spec.modules.push_back(parse_module());
    }
    return spec;
  }

 private:
  std::unique_ptr<ModuleDef> parse_module() {
    auto mod = std::make_unique<ModuleDef>();
    mod->line = peek().line;
    mod->name = expect_ident("module name");
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) {
      if (peek().is_keyword("module")) {
        advance();
        mod->order.emplace_back(DefKind::kModule, mod->submodules.size());
        mod->submodules.push_back(parse_module());
      } else if (peek().is_keyword("struct")) {
        advance();
        mod->order.emplace_back(DefKind::kStruct, mod->structs.size());
        mod->structs.push_back(parse_struct());
      } else if (peek().is_keyword("exception")) {
        advance();
        mod->order.emplace_back(DefKind::kException, mod->exceptions.size());
        mod->exceptions.push_back(parse_exception());
      } else if (peek().is_keyword("enum")) {
        advance();
        mod->order.emplace_back(DefKind::kEnum, mod->enums.size());
        mod->enums.push_back(parse_enum());
      } else if (peek().is_keyword("typedef")) {
        advance();
        mod->order.emplace_back(DefKind::kTypedef, mod->typedefs.size());
        mod->typedefs.push_back(parse_typedef());
      } else if (peek().is_keyword("const")) {
        advance();
        mod->order.emplace_back(DefKind::kConst, mod->consts.size());
        mod->consts.push_back(parse_const());
      } else if (peek().is_keyword("interface")) {
        advance();
        mod->order.emplace_back(DefKind::kInterface, mod->interfaces.size());
        mod->interfaces.push_back(parse_interface());
      } else {
        fail("expected module/struct/exception/interface");
      }
    }
    expect(TokenKind::kRBrace, "'}'");
    expect(TokenKind::kSemicolon, "';'");
    return mod;
  }

  StructDef parse_struct() {
    StructDef def;
    def.line = peek().line;
    def.name = expect_ident("struct name");
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) def.members.push_back(parse_member());
    expect(TokenKind::kRBrace, "'}'");
    expect(TokenKind::kSemicolon, "';'");
    return def;
  }

  ExceptionDef parse_exception() {
    ExceptionDef def;
    def.line = peek().line;
    def.name = expect_ident("exception name");
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) def.members.push_back(parse_member());
    expect(TokenKind::kRBrace, "'}'");
    expect(TokenKind::kSemicolon, "';'");
    return def;
  }

  EnumDef parse_enum() {
    EnumDef def;
    def.line = peek().line;
    def.name = expect_ident("enum name");
    expect(TokenKind::kLBrace, "'{'");
    for (;;) {
      def.enumerators.push_back(expect_ident("enumerator"));
      if (at(TokenKind::kComma)) {
        advance();
        if (at(TokenKind::kRBrace)) break;  // tolerate trailing comma
        continue;
      }
      break;
    }
    expect(TokenKind::kRBrace, "'}'");
    expect(TokenKind::kSemicolon, "';'");
    return def;
  }

  TypedefDef parse_typedef() {
    TypedefDef def;
    def.line = peek().line;
    def.aliased = parse_type();
    if (def.aliased.is_void()) fail("cannot typedef void");
    def.name = expect_ident("typedef name");
    expect(TokenKind::kSemicolon, "';'");
    return def;
  }

  ConstDef parse_const() {
    ConstDef def;
    def.line = peek().line;
    def.type = parse_type();
    if (def.type.is_void()) fail("cannot declare a void constant");
    def.name = expect_ident("constant name");
    expect(TokenKind::kEquals, "'='");

    bool negative = false;
    if (at(TokenKind::kMinus)) {
      negative = true;
      advance();
    }
    const Token& lit = peek();
    if (lit.kind == TokenKind::kNumber) {
      def.literal_kind = ConstDef::LiteralKind::kNumber;
      def.number_text = (negative ? "-" : "") + lit.text;
      advance();
    } else if (lit.kind == TokenKind::kStringLit) {
      if (negative) fail("'-' before a string literal");
      def.literal_kind = ConstDef::LiteralKind::kString;
      def.string_value = lit.text;
      advance();
    } else if (lit.is_ident() &&
               (lit.text == "TRUE" || lit.text == "FALSE")) {
      if (negative) fail("'-' before a boolean literal");
      def.literal_kind = ConstDef::LiteralKind::kBoolean;
      def.bool_value = (lit.text == "TRUE");
      advance();
    } else {
      fail("expected a literal (number, \"string\", TRUE or FALSE)");
    }
    expect(TokenKind::kSemicolon, "';'");
    return def;
  }

  Member parse_member() {
    Member m;
    m.line = peek().line;
    m.type = parse_type();
    if (m.type.is_void()) fail("struct member cannot be void");
    m.name = expect_ident("member name");
    expect(TokenKind::kSemicolon, "';'");
    return m;
  }

  InterfaceDef parse_interface() {
    InterfaceDef def;
    def.line = peek().line;
    def.name = expect_ident("interface name");
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) def.operations.push_back(parse_operation());
    expect(TokenKind::kRBrace, "'}'");
    expect(TokenKind::kSemicolon, "';'");
    return def;
  }

  Operation parse_operation() {
    Operation op;
    op.line = peek().line;
    if (peek().is_keyword("oneway")) {
      op.oneway = true;
      advance();
    }
    op.return_type = parse_type();
    op.name = expect_ident("operation name");
    expect(TokenKind::kLParen, "'('");
    if (!at(TokenKind::kRParen)) {
      for (;;) {
        op.params.push_back(parse_param());
        if (at(TokenKind::kComma)) {
          advance();
          continue;
        }
        break;
      }
    }
    expect(TokenKind::kRParen, "')'");
    if (peek().is_keyword("raises")) {
      advance();
      expect(TokenKind::kLParen, "'('");
      for (;;) {
        op.raises.push_back(parse_scoped_name());
        if (at(TokenKind::kComma)) {
          advance();
          continue;
        }
        break;
      }
      expect(TokenKind::kRParen, "')'");
    }
    expect(TokenKind::kSemicolon, "';'");
    return op;
  }

  Param parse_param() {
    Param p;
    p.line = peek().line;
    if (peek().is_keyword("in")) {
      p.direction = ParamDirection::kIn;
    } else if (peek().is_keyword("out")) {
      p.direction = ParamDirection::kOut;
    } else if (peek().is_keyword("inout")) {
      p.direction = ParamDirection::kInOut;
    } else {
      fail("expected parameter direction (in/out/inout)");
    }
    advance();
    p.type = parse_type();
    if (p.type.is_void()) fail("parameter cannot be void");
    p.name = expect_ident("parameter name");
    return p;
  }

  Type parse_type() {
    Type t;
    const Token& tok = peek();
    if (tok.is_keyword("void")) { advance(); t.primitive = PrimitiveKind::kVoid; return t; }
    if (tok.is_keyword("boolean")) { advance(); t.primitive = PrimitiveKind::kBoolean; return t; }
    if (tok.is_keyword("octet")) { advance(); t.primitive = PrimitiveKind::kOctet; return t; }
    if (tok.is_keyword("float")) { advance(); t.primitive = PrimitiveKind::kFloat; return t; }
    if (tok.is_keyword("double")) { advance(); t.primitive = PrimitiveKind::kDouble; return t; }
    if (tok.is_keyword("string")) { advance(); t.primitive = PrimitiveKind::kString; return t; }
    if (tok.is_keyword("short")) { advance(); t.primitive = PrimitiveKind::kShort; return t; }
    if (tok.is_keyword("long")) {
      advance();
      if (peek().is_keyword("long")) {
        advance();
        t.primitive = PrimitiveKind::kLongLong;
      } else {
        t.primitive = PrimitiveKind::kLong;
      }
      return t;
    }
    if (tok.is_keyword("unsigned")) {
      advance();
      if (peek().is_keyword("short")) {
        advance();
        t.primitive = PrimitiveKind::kUShort;
      } else if (peek().is_keyword("long")) {
        advance();
        if (peek().is_keyword("long")) {
          advance();
          t.primitive = PrimitiveKind::kULongLong;
        } else {
          t.primitive = PrimitiveKind::kULong;
        }
      } else {
        fail("expected 'short' or 'long' after 'unsigned'");
      }
      return t;
    }
    if (tok.is_keyword("sequence")) {
      advance();
      expect(TokenKind::kLAngle, "'<'");
      t.kind = Type::Kind::kSequence;
      t.element = std::make_shared<Type>(parse_type());
      if (t.element->is_void()) fail("sequence element cannot be void");
      expect(TokenKind::kRAngle, "'>'");
      return t;
    }
    if (tok.is_ident()) {
      t.kind = Type::Kind::kNamed;
      t.name = parse_scoped_name();
      return t;
    }
    fail("expected a type");
    return t;  // unreachable
  }

  std::vector<std::string> parse_scoped_name() {
    std::vector<std::string> path;
    path.push_back(expect_ident("name"));
    while (at(TokenKind::kScope)) {
      advance();
      path.push_back(expect_ident("name after '::'"));
    }
    return path;
  }

  // --- token plumbing ---
  const Token& peek() const { return tokens_[pos_]; }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }

  void expect(TokenKind kind, const char* what) {
    if (!at(kind)) fail(std::string("expected ") + what);
    advance();
  }

  void expect_keyword(const char* kw) {
    if (!peek().is_keyword(kw)) fail(std::string("expected '") + kw + "'");
    advance();
  }

  std::string expect_ident(const char* what) {
    if (!peek().is_ident()) fail(std::string("expected ") + what);
    std::string name = peek().text;
    advance();
    return name;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " (got '" + peek().text + "')", peek().line,
                     peek().column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_{0};
};

}  // namespace

SpecDef parse(std::string_view source) {
  return Parser(lex(source)).run();
}

}  // namespace causeway::idl
