// Token stream for the IDL front end.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace causeway::idl {

enum class TokenKind : std::uint8_t {
  kIdentifier,
  kKeyword,      // module, interface, struct, exception, oneway, in, out,
                 // inout, raises, sequence, void, and the primitive types
  kNumber,       // integer or floating literal (text preserved verbatim)
  kStringLit,    // "..." with \\ and \" escapes resolved
  kLBrace,       // {
  kRBrace,       // }
  kLParen,       // (
  kRParen,       // )
  kLAngle,       // <
  kRAngle,       // >
  kSemicolon,    // ;
  kComma,        // ,
  kEquals,       // =
  kMinus,        // -
  kScope,        // ::
  kEof,
};

struct Token {
  TokenKind kind{TokenKind::kEof};
  std::string text;
  int line{1};
  int column{1};

  bool is_keyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool is_ident() const { return kind == TokenKind::kIdentifier; }
};

}  // namespace causeway::idl
