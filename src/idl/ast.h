// Abstract syntax tree for the IDL subset.
//
// Supported: nested modules, structs, exceptions, enums, typedefs,
// interfaces with synchronous and `oneway` operations, in/out/inout
// parameters, primitive types (boolean, octet, short, long, long long,
// unsigned variants, float, double, string), bounded-free sequence<T>, and
// scoped type references.  Deliberately out of scope (as in the paper):
// DII/DSI, interface inheritance, unions, arrays, `any`.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace causeway::idl {

enum class PrimitiveKind {
  kVoid,
  kBoolean,
  kOctet,
  kShort,
  kLong,
  kLongLong,
  kUShort,
  kULong,
  kULongLong,
  kFloat,
  kDouble,
  kString,
};

struct Type {
  enum class Kind { kPrimitive, kSequence, kNamed } kind{Kind::kPrimitive};
  PrimitiveKind primitive{PrimitiveKind::kVoid};
  std::shared_ptr<Type> element;   // kSequence
  std::vector<std::string> name;   // kNamed: possibly-scoped path

  bool is_void() const {
    return kind == Kind::kPrimitive && primitive == PrimitiveKind::kVoid;
  }
};

struct Member {
  Type type;
  std::string name;
  int line{0};
};

struct StructDef {
  std::string name;
  std::vector<Member> members;
  int line{0};
};

struct ExceptionDef {
  std::string name;
  std::vector<Member> members;
  int line{0};
};

struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;
  int line{0};
};

struct ConstDef {
  enum class LiteralKind { kNumber, kString, kBoolean };

  Type type;  // primitive only (including string/boolean)
  std::string name;
  LiteralKind literal_kind{LiteralKind::kNumber};
  std::string number_text;   // verbatim digits, with optional leading '-'
  std::string string_value;  // unescaped
  bool bool_value{false};
  int line{0};
};

struct TypedefDef {
  std::string name;
  Type aliased;
  int line{0};
};

enum class ParamDirection { kIn, kOut, kInOut };

struct Param {
  ParamDirection direction{ParamDirection::kIn};
  Type type;
  std::string name;
  int line{0};
};

struct Operation {
  bool oneway{false};
  Type return_type;
  std::string name;
  std::vector<Param> params;
  std::vector<std::vector<std::string>> raises;  // scoped exception names
  int line{0};
};

struct InterfaceDef {
  std::string name;
  std::vector<Operation> operations;
  int line{0};
};

enum class DefKind {
  kStruct,
  kException,
  kEnum,
  kTypedef,
  kConst,
  kInterface,
  kModule,
};

struct ModuleDef {
  std::string name;
  std::vector<StructDef> structs;
  std::vector<ExceptionDef> exceptions;
  std::vector<EnumDef> enums;
  std::vector<TypedefDef> typedefs;
  std::vector<ConstDef> consts;
  std::vector<InterfaceDef> interfaces;
  std::vector<std::unique_ptr<ModuleDef>> submodules;
  // Declaration order: (kind, index into that kind's vector).  C++ emission
  // must follow it -- a typedef may reference the struct declared above it.
  std::vector<std::pair<DefKind, std::size_t>> order;
  int line{0};
};

// One parsed .idl file: a sequence of top-level modules.
struct SpecDef {
  std::vector<std::unique_ptr<ModuleDef>> modules;
};

}  // namespace causeway::idl
