// IDL lexer: identifiers, keywords, punctuation, // and /* */ comments.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "idl/token.h"

namespace causeway::idl {

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, int line, int column)
      : std::runtime_error(what + " at " + std::to_string(line) + ":" +
                           std::to_string(column)),
        line(line),
        column(column) {}
  int line;
  int column;
};

// Tokenizes the whole source; throws LexError on illegal characters or
// unterminated comments.  The final token is always kEof.
std::vector<Token> lex(std::string_view source);

}  // namespace causeway::idl
