#include "idl/sema.h"

#include <set>

#include "common/strings.h"

namespace causeway::idl {

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += "::";
    out += path[i];
  }
  return out;
}

namespace {

void index_module(const ModuleDef& mod, std::vector<std::string>& scope,
                  std::map<std::string, SymbolKind>& symbols,
                  std::map<std::string, SymbolTable::TypedefInfo>& typedefs) {
  scope.push_back(mod.name);
  symbols.emplace(join_path(scope), SymbolKind::kModule);
  const std::string prefix = join_path(scope) + "::";
  for (const auto& s : mod.structs) {
    symbols.emplace(prefix + s.name, SymbolKind::kStruct);
  }
  for (const auto& e : mod.exceptions) {
    symbols.emplace(prefix + e.name, SymbolKind::kException);
  }
  for (const auto& e : mod.enums) {
    symbols.emplace(prefix + e.name, SymbolKind::kEnum);
  }
  for (const auto& t : mod.typedefs) {
    symbols.emplace(prefix + t.name, SymbolKind::kTypedef);
    typedefs.emplace(prefix + t.name,
                     SymbolTable::TypedefInfo{t.aliased, scope});
  }
  for (const auto& i : mod.interfaces) {
    symbols.emplace(prefix + i.name, SymbolKind::kInterface);
  }
  for (const auto& sub : mod.submodules) {
    index_module(*sub, scope, symbols, typedefs);
  }
  scope.pop_back();
}

}  // namespace

SymbolTable SymbolTable::build(const SpecDef& spec) {
  SymbolTable table;
  std::vector<std::string> scope;
  for (const auto& mod : spec.modules) {
    index_module(*mod, scope, table.symbols_, table.typedefs_);
  }
  return table;
}

std::optional<std::pair<std::string, SymbolKind>> SymbolTable::resolve(
    const std::vector<std::string>& ref,
    const std::vector<std::string>& scope) const {
  const std::string suffix = join_path(ref);
  // Innermost enclosing scope outward...
  for (std::size_t depth = scope.size(); depth > 0; --depth) {
    std::vector<std::string> prefix(scope.begin(),
                                    scope.begin() + static_cast<long>(depth));
    const std::string candidate = join_path(prefix) + "::" + suffix;
    auto it = symbols_.find(candidate);
    if (it != symbols_.end()) return std::make_pair(candidate, it->second);
  }
  // ...then absolute.
  auto it = symbols_.find(suffix);
  if (it != symbols_.end()) return std::make_pair(suffix, it->second);
  return std::nullopt;
}

namespace {

class Checker {
 public:
  explicit Checker(const SpecDef& spec)
      : spec_(spec), table_(SymbolTable::build(spec)) {}

  std::vector<std::string> run() {
    std::set<std::string> top_names;
    for (const auto& mod : spec_.modules) {
      if (!top_names.insert(mod->name).second) {
        error(mod->line, "duplicate module '" + mod->name + "'");
      }
      check_module(*mod);
    }
    return std::move(errors_);
  }

 private:
  void check_module(const ModuleDef& mod) {
    scope_.push_back(mod.name);
    std::set<std::string> names;
    auto claim = [&](const std::string& name, int line) {
      if (!names.insert(name).second) {
        error(line, "duplicate definition '" + name + "' in module '" +
                        join_path(scope_) + "'");
      }
    };
    for (const auto& s : mod.structs) {
      claim(s.name, s.line);
      check_members(s.members, "struct " + s.name);
    }
    for (const auto& e : mod.exceptions) {
      claim(e.name, e.line);
      check_members(e.members, "exception " + e.name);
    }
    for (const auto& e : mod.enums) {
      claim(e.name, e.line);
      std::set<std::string> enumerators;
      if (e.enumerators.empty()) {
        error(e.line, "enum '" + e.name + "' has no enumerators");
      }
      for (const auto& value : e.enumerators) {
        if (!enumerators.insert(value).second) {
          error(e.line, "duplicate enumerator '" + value + "' in enum '" +
                            e.name + "'");
        }
      }
    }
    for (const auto& t : mod.typedefs) {
      claim(t.name, t.line);
      check_data_type(t.aliased, t.line, "typedef " + t.name);
    }
    for (const auto& c : mod.consts) {
      claim(c.name, c.line);
      check_const(c);
    }
    for (const auto& i : mod.interfaces) {
      claim(i.name, i.line);
      check_interface(i);
    }
    for (const auto& sub : mod.submodules) {
      claim(sub->name, sub->line);
      check_module(*sub);
    }
    scope_.pop_back();
  }

  void check_members(const std::vector<Member>& members,
                     const std::string& context) {
    std::set<std::string> names;
    for (const auto& m : members) {
      if (!names.insert(m.name).second) {
        error(m.line, "duplicate member '" + m.name + "' in " + context);
      }
      check_data_type(m.type, m.line, context);
    }
  }

  void check_interface(const InterfaceDef& iface) {
    std::set<std::string> op_names;
    for (const auto& op : iface.operations) {
      const std::string context = iface.name + "::" + op.name;
      if (!op_names.insert(op.name).second) {
        error(op.line, "duplicate operation '" + context + "'");
      }
      if (!op.return_type.is_void()) {
        check_data_type(op.return_type, op.line, context);
      }
      std::set<std::string> param_names;
      for (const auto& p : op.params) {
        if (!param_names.insert(p.name).second) {
          error(p.line, "duplicate parameter '" + p.name + "' in " + context);
        }
        check_data_type(p.type, p.line, context);
        if (op.oneway && p.direction != ParamDirection::kIn) {
          error(p.line, "oneway operation '" + context +
                            "' may only take 'in' parameters");
        }
      }
      if (op.oneway && !op.return_type.is_void()) {
        error(op.line, "oneway operation '" + context + "' must return void");
      }
      if (op.oneway && !op.raises.empty()) {
        error(op.line,
              "oneway operation '" + context + "' may not raise exceptions");
      }
      for (const auto& raised : op.raises) {
        auto hit = table_.resolve(raised, scope_);
        if (!hit) {
          error(op.line, "unresolved exception '" + join_path(raised) +
                             "' in raises clause of " + context);
        } else if (hit->second != SymbolKind::kException) {
          error(op.line, "'" + hit->first + "' in raises clause of " +
                             context + " is not an exception");
        }
      }
    }
  }

  void check_const(const ConstDef& c) {
    const std::string context = "const " + c.name;
    if (c.type.kind != Type::Kind::kPrimitive) {
      error(c.line, context + " must have a primitive type");
      return;
    }
    const bool is_string = c.type.primitive == PrimitiveKind::kString;
    const bool is_bool = c.type.primitive == PrimitiveKind::kBoolean;
    switch (c.literal_kind) {
      case ConstDef::LiteralKind::kNumber:
        if (is_string || is_bool) {
          error(c.line, context + ": numeric literal for a non-numeric type");
        }
        break;
      case ConstDef::LiteralKind::kString:
        if (!is_string) {
          error(c.line, context + ": string literal for a non-string type");
        }
        break;
      case ConstDef::LiteralKind::kBoolean:
        if (!is_bool) {
          error(c.line, context + ": boolean literal for a non-boolean type");
        }
        break;
    }
  }

  void check_data_type(const Type& type, int line,
                       const std::string& context) {
    switch (type.kind) {
      case Type::Kind::kPrimitive:
        return;
      case Type::Kind::kSequence:
        check_data_type(*type.element, line, context);
        return;
      case Type::Kind::kNamed: {
        auto hit = table_.resolve(type.name, scope_);
        if (!hit) {
          error(line, "unresolved type '" + join_path(type.name) + "' in " +
                          context);
        } else if (!is_data_kind(hit->second)) {
          error(line, "'" + hit->first + "' used as a data type in " +
                          context + " but it is not a struct/enum/typedef");
        }
        return;
      }
    }
  }

  void error(int line, const std::string& message) {
    errors_.push_back(strf("line %d: %s", line, message.c_str()));
  }

  const SpecDef& spec_;
  SymbolTable table_;
  std::vector<std::string> scope_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> check(const SpecDef& spec) {
  return Checker(spec).run();
}

}  // namespace causeway::idl
