#include "store/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

namespace causeway::store {

namespace fs = std::filesystem;
using analysis::TraceIoError;

namespace {

constexpr char kCurrentFileName[] = "current.cwt";

std::string sealed_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "store-%06llu.cwt",
                static_cast<unsigned long long>(index));
  return buf;
}

// store-NNNNNN.cwt -> NNNNNN; nullopt for anything else (current.cwt,
// foreign .cwt files a user copied in are indexed but never renumbered).
std::optional<std::uint64_t> sealed_index(const std::string& name) {
  constexpr std::string_view prefix = "store-";
  constexpr std::string_view suffix = ".cwt";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw TraceIoError("cannot open trace file '" + path.string() + "'");
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw TraceIoError("read error on '" + path.string() + "'");
  }
  return bytes;
}

void fold_record(CatalogEntry& e, std::uint64_t epoch, const Uuid& chain,
                 std::int64_t start, std::int64_t end) {
  e.records += 1;
  e.min_epoch = std::min(e.min_epoch, epoch);
  e.max_epoch = std::max(e.max_epoch, epoch);
  e.min_ts = std::min(e.min_ts, start);
  e.max_ts = std::max(e.max_ts, std::max(start, end));
  e.chains.insert(chain);
}

void fold_bundle(CatalogEntry& e, const analysis::ColumnBundle& cols) {
  e.segments += 1;
  if (cols.count == 0) return;
  e.min_epoch = std::min(e.min_epoch, cols.epoch);
  e.max_epoch = std::max(e.max_epoch, cols.epoch);
  for (const auto& run : cols.runs) e.chains.insert(run.chain);
  e.records += cols.count;
  for (std::size_t i = 0; i < cols.count; ++i) {
    e.min_ts = std::min(e.min_ts, cols.value_start[i]);
    e.max_ts =
        std::max(e.max_ts, std::max(cols.value_start[i], cols.value_end[i]));
  }
}

void fold_logs(CatalogEntry& e, const monitor::CollectedLogs& logs) {
  e.segments += 1;
  for (const auto& r : logs.records) {
    fold_record(e, logs.epoch, r.chain, r.value_start, r.value_end);
  }
}

// Reads a (repaired, trailer-terminated) trace file and computes its
// catalog entry from scratch: walk block extents, decode each segment --
// column-form for v4/v5, record-major for v2/v3 -- and fold the stats.
CatalogEntry stat_file(const fs::path& path) {
  CatalogEntry entry;
  entry.file = path.filename().string();
  const auto bytes = read_file(path);
  entry.bytes = bytes.size();
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::size_t length = 0;
    bool is_segment = false;
    if (!analysis::probe_trace_block(
            std::span<const std::uint8_t>(bytes).subspan(offset), length,
            is_segment)) {
      throw TraceIoError("incomplete segment in store file '" +
                         path.string() + "' (run causeway-analyze --reindex)");
    }
    if (is_segment) {
      const auto segment =
          std::span<const std::uint8_t>(bytes).subspan(offset, length);
      // Version word sits after the 4-byte magic in every format.
      const std::uint32_t version =
          static_cast<std::uint32_t>(segment[4]) |
          static_cast<std::uint32_t>(segment[5]) << 8 |
          static_cast<std::uint32_t>(segment[6]) << 16 |
          static_cast<std::uint32_t>(segment[7]) << 24;
      if (version >= analysis::kTraceFormatV4) {
        fold_bundle(entry, analysis::decode_trace_segment_columns(segment));
      } else {
        fold_logs(entry, analysis::decode_trace_segment(segment));
      }
    }
    offset += length;
  }
  return entry;
}

const CatalogEntry* find_entry(const Catalog& catalog,
                               const std::string& file) {
  for (const auto& e : catalog.entries) {
    if (e.file == file) return &e;
  }
  return nullptr;
}

}  // namespace

StoreWriter::StoreWriter(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.trace_format != analysis::kTraceFormatV4 &&
      options_.trace_format != analysis::kTraceFormatV5) {
    throw TraceIoError("store requires a columnar trace format (v4 or v5)");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw TraceIoError("cannot create store directory '" + dir_ +
                       "': " + ec.message());
  }
  // Recover whatever a previous writer left behind (including sealing a
  // leftover current.cwt) so this writer starts from a consistent catalog.
  reindex_store(dir_);
  catalog_ = load_catalog(dir_).value_or(Catalog{});
  for (const auto& e : catalog_.entries) {
    if (const auto idx = sealed_index(e.file)) {
      next_index_ = std::max(next_index_, *idx + 1);
    }
  }
}

StoreWriter::~StoreWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() surfaces errors.
  }
}

void StoreWriter::ensure_open() {
  if (closed_) throw TraceIoError("store writer is closed");
  if (writer_) return;
  const fs::path current = fs::path(dir_) / kCurrentFileName;
  writer_ = std::make_unique<analysis::TraceWriter>(
      current.string(), options_.trace_format, options_.checkpoint_every);
  pending_ = CatalogEntry{};
}

void StoreWriter::append(const monitor::CollectedLogs& logs) {
  ensure_open();
  writer_->append(logs);
  fold_logs(pending_, logs);
  records_ += logs.records.size();
  segments_ += 1;
  maybe_rotate();
}

void StoreWriter::append(const analysis::ColumnBundle& cols) {
  ensure_open();
  writer_->append(cols);
  fold_bundle(pending_, cols);
  records_ += cols.count;
  segments_ += 1;
  maybe_rotate();
}

void StoreWriter::append_encoded(std::span<const std::uint8_t> segment) {
  ensure_open();
  // Decode first: a malformed segment must not reach the file, and the
  // catalog stats need the records anyway.  The wire format of the incoming
  // segment may differ from the store's own (a v4 publisher feeding a v5
  // store); append_encoded persists the bytes verbatim either way.
  const std::uint32_t version = segment.size() >= 8
                                    ? (static_cast<std::uint32_t>(segment[4]) |
                                       static_cast<std::uint32_t>(segment[5])
                                           << 8 |
                                       static_cast<std::uint32_t>(segment[6])
                                           << 16 |
                                       static_cast<std::uint32_t>(segment[7])
                                           << 24)
                                    : 0;
  std::uint64_t count = 0;
  if (version >= analysis::kTraceFormatV4) {
    const auto cols = analysis::decode_trace_segment_columns(segment);
    fold_bundle(pending_, cols);
    count = cols.count;
  } else {
    const auto logs = analysis::decode_trace_segment(segment);
    fold_logs(pending_, logs);
    count = logs.records.size();
  }
  writer_->append_encoded(segment);
  records_ += count;
  segments_ += 1;
  maybe_rotate();
}

void StoreWriter::maybe_rotate() {
  if (!writer_) return;
  const bool by_bytes = writer_->bytes_written() >= options_.rotate_bytes;
  const bool by_segments = options_.rotate_segments > 0 &&
                           writer_->segments() >= options_.rotate_segments;
  if (by_bytes || by_segments) seal_current();
}

void StoreWriter::rotate() {
  if (closed_) throw TraceIoError("store writer is closed");
  seal_current();
}

void StoreWriter::seal_current() {
  if (!writer_ || writer_->segments() == 0) return;
  writer_->close();
  const fs::path current = fs::path(dir_) / kCurrentFileName;
  const std::string name = sealed_name(next_index_);
  const fs::path sealed = fs::path(dir_) / name;
  std::error_code ec;
  fs::rename(current, sealed, ec);
  if (ec) {
    throw TraceIoError("cannot seal '" + current.string() +
                       "': " + ec.message());
  }
  writer_.reset();
  next_index_ += 1;
  pending_.file = name;
  pending_.bytes = fs::file_size(sealed, ec);
  if (ec) {
    throw TraceIoError("cannot stat '" + sealed.string() +
                       "': " + ec.message());
  }
  catalog_.entries.push_back(std::move(pending_));
  pending_ = CatalogEntry{};
  save_catalog(dir_, catalog_);
}

void StoreWriter::close() {
  if (closed_) return;
  seal_current();
  if (writer_) {
    // Open but empty: close and remove the zero-segment file.
    writer_->close();
    writer_.reset();
    std::error_code ec;
    fs::remove(fs::path(dir_) / kCurrentFileName, ec);
  }
  closed_ = true;
}

bool is_store_directory(const std::string& path) {
  std::error_code ec;
  return fs::is_directory(path, ec);
}

StoreReindexResult reindex_store(const std::string& dir) {
  if (!is_store_directory(dir)) {
    throw TraceIoError("'" + dir + "' is not a store directory");
  }
  StoreReindexResult result;
  // A corrupt catalog is exactly what --reindex repairs: treat it as
  // absent and rebuild from the files.
  std::optional<Catalog> loaded;
  try {
    loaded = load_catalog(dir);
  } catch (const TraceIoError&) {
    loaded = std::nullopt;
  }
  const bool had_catalog = loaded.has_value();
  Catalog old_catalog = loaded ? *std::move(loaded) : Catalog{};

  // Everything that should be indexed: sealed files already on disk, plus
  // a leftover current.cwt (repaired and sealed under the next number).
  std::vector<std::string> sealed_files;
  std::uint64_t next_index = 1;
  bool have_current = false;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (!de.is_regular_file()) continue;
    const std::string name = de.path().filename().string();
    if (name == kCurrentFileName) {
      have_current = true;
      continue;
    }
    if (de.path().extension() != ".cwt") continue;
    sealed_files.push_back(name);
    if (const auto idx = sealed_index(name)) {
      next_index = std::max(next_index, *idx + 1);
    }
  }

  if (have_current) {
    const fs::path current = fs::path(dir) / kCurrentFileName;
    const auto repair = analysis::reindex_trace_file(current.string());
    result.truncated_bytes += repair.truncated_bytes;
    result.used_checkpoint |= repair.used_checkpoint;
    if (repair.segments == 0) {
      // Nothing survived (crash before the first complete segment): the
      // empty file carries no data worth a catalog entry.
      std::error_code ec;
      fs::remove(current, ec);
    } else {
      const std::string name = sealed_name(next_index);
      std::error_code ec;
      fs::rename(current, fs::path(dir) / name, ec);
      if (ec) {
        throw TraceIoError("cannot seal '" + current.string() +
                           "': " + ec.message());
      }
      sealed_files.push_back(name);
      result.sealed_current = true;
      result.files_repaired += 1;
    }
  }

  std::sort(sealed_files.begin(), sealed_files.end());
  Catalog rebuilt;
  for (const std::string& name : sealed_files) {
    const fs::path path = fs::path(dir) / name;
    std::error_code ec;
    const std::uint64_t size = fs::file_size(path, ec);
    const CatalogEntry* known = ec ? nullptr : find_entry(old_catalog, name);
    if (known != nullptr && known->bytes == size) {
      // The catalog already describes this file at its current size --
      // trust it and skip the decode.
      rebuilt.entries.push_back(*known);
      result.files_indexed += 1;
      continue;
    }
    // Unknown or misdescribed: repair the file (appends a trailer and
    // truncates a torn tail if the writer crashed mid-append), then restat.
    const auto repair = analysis::reindex_trace_file(path.string());
    result.truncated_bytes += repair.truncated_bytes;
    result.used_checkpoint |= repair.used_checkpoint;
    rebuilt.entries.push_back(stat_file(path));
    result.files_indexed += 1;
    result.files_repaired += 1;
  }
  result.dropped_entries = static_cast<std::size_t>(std::count_if(
      old_catalog.entries.begin(), old_catalog.entries.end(),
      [&](const CatalogEntry& e) {
        return find_entry(rebuilt, e.file) == nullptr;
      }));

  const bool changed =
      !had_catalog || rebuilt.entries.size() != old_catalog.entries.size() ||
      result.files_repaired > 0 || result.dropped_entries > 0 ||
      !std::equal(rebuilt.entries.begin(), rebuilt.entries.end(),
                  old_catalog.entries.begin(),
                  [](const CatalogEntry& a, const CatalogEntry& b) {
                    return a.file == b.file && a.bytes == b.bytes;
                  });
  result.catalog_rewritten = changed;
  if (changed) save_catalog(dir, rebuilt);
  return result;
}

StoreView open_store(const std::string& dir) {
  if (!is_store_directory(dir)) {
    throw TraceIoError("'" + dir + "' is not a store directory");
  }
  StoreView view;
  view.directory = dir;
  const auto catalog = load_catalog(dir);
  if (catalog) {
    for (const auto& e : catalog->entries) {
      const fs::path path = fs::path(dir) / e.file;
      std::error_code ec;
      const std::uint64_t size = fs::file_size(path, ec);
      if (ec) {
        throw TraceIoError("store catalog lists missing file '" +
                           path.string() +
                           "' (run causeway-analyze --reindex)");
      }
      if (size != e.bytes) {
        throw TraceIoError("store catalog is stale for '" + path.string() +
                           "' (run causeway-analyze --reindex)");
      }
      view.files.push_back(StoreFile{path.string(), e, true});
    }
  }
  // The live file (writer running, or crashed before recovery) has no
  // catalog entry; surface it so readers always scan it.
  const fs::path current = fs::path(dir) / kCurrentFileName;
  std::error_code ec;
  if (fs::is_regular_file(current, ec)) {
    StoreFile live;
    live.path = current.string();
    live.entry.file = kCurrentFileName;
    live.indexed = false;
    view.files.push_back(std::move(live));
  }
  return view;
}

}  // namespace causeway::store
