// The store catalog: one small index file (`catalog.cwc`) describing every
// sealed trace file in a store directory, so a query can decide which files
// to open without touching them.
//
// Per sealed file the catalog keeps byte size and segment/record counts
// (cheap sanity + progress accounting), the min/max record timestamp (the
// value_start/value_end range, for time-window pruning), the epoch range,
// and a bloom-style digest of every chain UUID that appears in the file
// (for chain-equality pruning: "digest says no" is definitive, "digest says
// maybe" costs one file open).  Entries are ordered; the writer appends as
// it seals.
//
// The catalog is advisory-but-checked: the source of truth is always the
// trace files themselves.  Readers validate an entry's byte size against
// the file on disk before trusting its ranges, so a stale or hand-edited
// catalog surfaces as a clean TraceIoError pointing at `--reindex`, never
// as silently wrong query results.  Writes go through a temp file + rename
// so a crash mid-update leaves the previous catalog intact.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"

namespace causeway::store {

// 8192-bit bloom filter over chain UUIDs, 4 probes derived from the UUID's
// own random bits (no extra hashing pass needed).  At ~1k distinct chains
// per sealed file the false-positive rate is ~2%; at 4k it degrades toward
// "open the file", never toward a wrong answer.
struct ChainDigest {
  static constexpr std::size_t kWords = 128;  // 128 x u64 = 8192 bits

  std::array<std::uint64_t, kWords> words{};

  void insert(const Uuid& chain);
  bool may_contain(const Uuid& chain) const;
  bool empty() const;
};

struct CatalogEntry {
  std::string file;  // name relative to the store directory
  std::uint64_t bytes{0};
  std::uint64_t segments{0};
  std::uint64_t records{0};
  std::uint64_t min_epoch{std::numeric_limits<std::uint64_t>::max()};
  std::uint64_t max_epoch{0};
  // Record timestamp range over value_start/value_end; min > max means the
  // file holds no records (possible but unusual).
  std::int64_t min_ts{std::numeric_limits<std::int64_t>::max()};
  std::int64_t max_ts{std::numeric_limits<std::int64_t>::min()};
  ChainDigest chains;

  bool has_records() const { return records > 0; }

  // Pruning predicates ("maybe" answers are true).  The window is closed;
  // pass the numeric limits for an unbounded side.
  bool overlaps_time(std::int64_t since, std::int64_t until) const;
  bool may_contain_chain(const Uuid& chain) const;
};

struct Catalog {
  std::vector<CatalogEntry> entries;

  std::uint64_t total_records() const;

  // Serialized form ("CWCC" magic, version, entries, "CWCE" end mark).
  std::vector<std::uint8_t> encode() const;
  static Catalog decode(std::span<const std::uint8_t> bytes);
};

inline constexpr char kCatalogFileName[] = "catalog.cwc";

// Loads `dir`/catalog.cwc.  nullopt when the file does not exist (a store
// that never sealed, or a pre-catalog directory -- callers fall back to
// directory listing + reindex).  Throws analysis::TraceIoError on a
// malformed catalog.
std::optional<Catalog> load_catalog(const std::string& dir);

// Atomically replaces `dir`/catalog.cwc (temp file + rename).  Throws
// analysis::TraceIoError on I/O failure.
void save_catalog(const std::string& dir, const Catalog& catalog);

}  // namespace causeway::store
