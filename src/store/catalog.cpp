#include "store/catalog.h"

#include <filesystem>
#include <fstream>

#include "analysis/trace_io.h"
#include "common/wire.h"

namespace causeway::store {

using analysis::TraceIoError;

namespace {

constexpr std::uint32_t kCatalogMagic = 0x43574343;  // "CWCC"
constexpr std::uint32_t kCatalogEnd = 0x43574345;    // "CWCE"
constexpr std::uint32_t kCatalogVersion = 1;

// Four 13-bit probes (8192 bits) straight out of the UUID's 128 random
// bits -- chains are generated uniformly, so no re-hash is needed.
std::array<std::uint32_t, 4> probes(const Uuid& chain) {
  return {static_cast<std::uint32_t>(chain.hi & 8191),
          static_cast<std::uint32_t>((chain.hi >> 13) & 8191),
          static_cast<std::uint32_t>(chain.lo & 8191),
          static_cast<std::uint32_t>((chain.lo >> 13) & 8191)};
}

}  // namespace

void ChainDigest::insert(const Uuid& chain) {
  for (const std::uint32_t bit : probes(chain)) {
    words[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
}

bool ChainDigest::may_contain(const Uuid& chain) const {
  for (const std::uint32_t bit : probes(chain)) {
    if ((words[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

bool ChainDigest::empty() const {
  for (const std::uint64_t w : words) {
    if (w != 0) return false;
  }
  return true;
}

bool CatalogEntry::overlaps_time(std::int64_t since, std::int64_t until) const {
  if (!has_records()) return false;
  return max_ts >= since && min_ts <= until;
}

bool CatalogEntry::may_contain_chain(const Uuid& chain) const {
  return chains.may_contain(chain);
}

std::uint64_t Catalog::total_records() const {
  std::uint64_t total = 0;
  for (const auto& e : entries) total += e.records;
  return total;
}

std::vector<std::uint8_t> Catalog::encode() const {
  WireBuffer out;
  out.write_u32(kCatalogMagic);
  out.write_u32(kCatalogVersion);
  out.write_varint(entries.size());
  for (const auto& e : entries) {
    out.write_varint(e.file.size());
    out.append_raw({reinterpret_cast<const std::uint8_t*>(e.file.data()),
                    e.file.size()});
    out.write_varint(e.bytes);
    out.write_varint(e.segments);
    out.write_varint(e.records);
    out.write_varint(e.min_epoch);
    out.write_varint(e.max_epoch);
    out.write_svarint(e.min_ts);
    out.write_svarint(e.max_ts);
    out.write_varint(ChainDigest::kWords);
    for (const std::uint64_t w : e.chains.words) out.write_u64(w);
  }
  out.write_u32(kCatalogEnd);
  return std::move(out).take();
}

Catalog Catalog::decode(std::span<const std::uint8_t> bytes) {
  try {
    WireCursor in(bytes);
    if (in.read_u32() != kCatalogMagic) {
      throw TraceIoError("not a causeway store catalog");
    }
    if (in.read_u32() != kCatalogVersion) {
      throw TraceIoError("unsupported store catalog version");
    }
    Catalog catalog;
    const std::uint64_t count = in.read_varint();
    if (count > in.remaining()) throw WireError("wire underflow");
    catalog.entries.resize(static_cast<std::size_t>(count));
    for (auto& e : catalog.entries) {
      e.file = std::string(
          in.read_view(static_cast<std::size_t>(in.read_varint())));
      if (e.file.empty() ||
          e.file.find('/') != std::string::npos ||
          e.file.find('\\') != std::string::npos || e.file == "." ||
          e.file == "..") {
        throw TraceIoError("store catalog entry has an unsafe file name");
      }
      e.bytes = in.read_varint();
      e.segments = in.read_varint();
      e.records = in.read_varint();
      e.min_epoch = in.read_varint();
      e.max_epoch = in.read_varint();
      e.min_ts = in.read_svarint();
      e.max_ts = in.read_svarint();
      const std::uint64_t words = in.read_varint();
      if (words != ChainDigest::kWords) {
        throw TraceIoError("unsupported store catalog digest size");
      }
      for (auto& w : e.chains.words) w = in.read_u64();
    }
    if (in.read_u32() != kCatalogEnd || in.remaining() != 0) {
      throw TraceIoError("corrupt store catalog");
    }
    return catalog;
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt store catalog: ") + e.what());
  }
}

std::optional<Catalog> load_catalog(const std::string& dir) {
  const std::filesystem::path path =
      std::filesystem::path(dir) / kCatalogFileName;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw TraceIoError("read error on '" + path.string() + "'");
  }
  return Catalog::decode(bytes);
}

void save_catalog(const std::string& dir, const Catalog& catalog) {
  const std::filesystem::path path =
      std::filesystem::path(dir) / kCatalogFileName;
  const std::filesystem::path tmp = path.string() + ".tmp";
  const auto bytes = catalog.encode();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw TraceIoError("short write to '" + tmp.string() + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw TraceIoError("cannot replace '" + path.string() +
                       "': " + ec.message());
  }
}

}  // namespace causeway::store
