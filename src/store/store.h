// The durable trace store: collectd's merged output as a retention-managed
// directory instead of one unbounded `.cwt` (DESIGN.md Sec. 16).
//
// Layout of a store directory:
//
//   store-000001.cwt   sealed trace files, each a complete closed trace
//   store-000002.cwt   (directory trailer + interior checkpoints)
//   ...
//   current.cwt        the live file the writer is appending to (absent
//                      once the writer closed cleanly)
//   catalog.cwc        the multi-file index (store/catalog.h)
//
// StoreWriter appends segments to current.cwt through a checkpointing
// TraceWriter and *seals* it -- close, rename to the next store-NNNNNN
// name, append a catalog entry, rewrite the catalog atomically -- whenever
// the size/segment rotation threshold trips.  Every sealed file is an
// ordinary trace file: every existing reader (causeway-analyze, TraceTail,
// decode_trace) works on it unmodified.
//
// Crash safety is recovery-by-construction: whatever step a crash lands in
// (mid-append, closed-but-unrenamed, renamed-but-uncataloged),
// reindex_store() -- run explicitly via `causeway-analyze --reindex DIR` or
// implicitly by the StoreWriter constructor -- repairs every file via the
// checkpoint-aware reindex_trace_file, seals a leftover current.cwt, drops
// catalog entries whose file vanished, re-indexes files the catalog missed
// or misdescribes, and rewrites the catalog.  At most the unsealed tail
// past the live file's last checkpoint is lost.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/trace_io.h"
#include "store/catalog.h"

namespace causeway::store {

struct StoreOptions {
  // Seal current.cwt when its on-disk size reaches this many bytes.
  std::uint64_t rotate_bytes{64ull << 20};
  // Also seal after this many segments (0 = size-only rotation).
  std::uint64_t rotate_segments{0};
  // Segment format for the files this writer produces: v4, or v5 for
  // per-column compression (store/catalog stay format-agnostic).
  std::uint32_t trace_format{analysis::kTraceFormatDefault};
  // Interior directory checkpoints in the live file, every N segments --
  // what bounds the re-skim after a crash.  0 disables.
  std::size_t checkpoint_every{16};
};

class StoreWriter {
 public:
  // Opens (creating if needed) `dir` as a store.  An existing store is
  // recovered first -- exactly reindex_store() -- so a writer restarted
  // over a crashed directory starts from a consistent catalog.  Throws
  // analysis::TraceIoError on I/O failure or corruption.
  explicit StoreWriter(std::string dir, StoreOptions options = {});
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  // Appends one segment (same forms TraceWriter accepts), updating the
  // live file's pending catalog stats, and rotates if a threshold tripped.
  void append(const monitor::CollectedLogs& logs);
  void append(const analysis::ColumnBundle& cols);
  void append_encoded(std::span<const std::uint8_t> segment);

  // Seals current.cwt now (no-op when it holds no segments).
  void rotate();

  // Seals whatever is pending and writes the final catalog.  Idempotent;
  // the destructor calls it, swallowing errors.
  void close();

  const std::string& directory() const { return dir_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t segments() const { return segments_; }
  std::size_t files_sealed() const { return catalog_.entries.size(); }

 private:
  void ensure_open();
  void accumulate(std::uint64_t epoch, const Uuid& chain, std::int64_t start,
                  std::int64_t end);
  void note_bundle(const analysis::ColumnBundle& cols);
  void maybe_rotate();
  void seal_current();

  std::string dir_;
  StoreOptions options_;
  Catalog catalog_;
  std::unique_ptr<analysis::TraceWriter> writer_;
  CatalogEntry pending_;  // stats for the live file
  std::uint64_t next_index_{1};
  std::uint64_t records_{0};
  std::uint64_t segments_{0};
  bool closed_{false};
};

// Whole-directory crash repair + catalog rebuild (see file header).
struct StoreReindexResult {
  std::size_t files_indexed{0};    // sealed files now described by the catalog
  std::size_t files_repaired{0};   // files that needed reindex/truncate/restat
  std::size_t dropped_entries{0};  // catalog entries whose file vanished
  std::uint64_t truncated_bytes{0};
  bool sealed_current{false};      // a leftover current.cwt was sealed
  bool used_checkpoint{false};     // any repair resumed from a checkpoint
  bool catalog_rewritten{false};   // catalog.cwc was replaced
};
StoreReindexResult reindex_store(const std::string& dir);

// True when `path` looks like a store directory (exists and is a
// directory) -- how `causeway-analyze --reindex` and `causeway-query` tell
// a store from a plain trace file.
bool is_store_directory(const std::string& path);

// A validated read view: the catalog's entries joined with the files on
// disk.  Every entry is checked against the file's actual size; a missing
// or size-mismatched file throws analysis::TraceIoError naming the file
// and pointing at `causeway-analyze --reindex` -- a lying catalog must
// never silently skew query results.  A live current.cwt (writer still
// running or crashed) is surfaced as an extra un-indexed file with no
// entry stats, which a reader must always scan.
struct StoreFile {
  std::string path;       // absolute/openable path
  CatalogEntry entry;     // stats (zeroed for the live file)
  bool indexed{true};     // false: current.cwt, no catalog entry
};
struct StoreView {
  std::string directory;
  std::vector<StoreFile> files;
};
StoreView open_store(const std::string& dir);

}  // namespace causeway::store
