#include "common/work.h"

#include <chrono>
#include <thread>

#include "common/cpu.h"

namespace causeway {

std::uint64_t churn(std::uint64_t seed, std::uint64_t rounds) {
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x += 0x9e3779b97f4a7c15ull;
  }
  return x;
}

void burn_cpu(Nanos cpu_ns) {
  if (cpu_ns <= 0) return;
  const Nanos start = thread_cpu_now_ns();
  const Nanos deadline = start + cpu_ns;
  std::uint64_t sink = 0x12345678u;
  // Check the thread CPU clock only every few microseconds of work; the
  // clock_gettime call itself costs CPU, which is fine -- it is still CPU
  // attributed to this thread.
  while (thread_cpu_now_ns() < deadline) {
    sink = churn(sink, 512);
  }
  // Publish the sink so the loop cannot be optimized away.
  volatile std::uint64_t publish = sink;
  (void)publish;
}

void idle_for(Nanos wall_ns) {
  if (wall_ns <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(wall_ns));
}

}  // namespace causeway
