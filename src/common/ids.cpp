#include "common/ids.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <random>

#include "common/rng.h"

namespace causeway {
namespace {

std::mutex g_uuid_mu;
SplitMix64 g_uuid_rng{std::random_device{}()};  // NOLINT: seeded once at start

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void set_uuid_seed(std::uint64_t seed) {
  std::lock_guard lock(g_uuid_mu);
  g_uuid_rng = SplitMix64{seed};
}

Uuid Uuid::generate() {
  std::lock_guard lock(g_uuid_mu);
  Uuid u{g_uuid_rng.next(), g_uuid_rng.next()};
  if (u.is_nil()) u.lo = 1;  // nil is reserved for "no chain yet"
  return u;
}

std::string Uuid::to_string() const {
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xffff),
                static_cast<unsigned>(hi & 0xffff),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xffffffffffffull));
  return std::string(buf, 36);
}

std::optional<Uuid> Uuid::parse(std::string_view text) {
  if (text.size() != 36) return std::nullopt;
  Uuid out;
  std::uint64_t* word = &out.hi;
  int bits = 0;
  for (std::size_t i = 0; i < 36; ++i) {
    const bool dash_slot = (i == 8 || i == 13 || i == 18 || i == 23);
    if (dash_slot) {
      if (text[i] != '-') return std::nullopt;
      continue;
    }
    const int v = hex_value(text[i]);
    if (v < 0) return std::nullopt;
    *word = (*word << 4) | static_cast<std::uint64_t>(v);
    bits += 4;
    if (bits == 64) word = &out.lo;
  }
  return out;
}

}  // namespace causeway
