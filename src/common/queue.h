// Blocking multi-producer multi-consumer queue with close semantics.
//
// This is the delivery primitive under every simulated transport endpoint,
// apartment message loop and thread-pool dispatcher.  pop() blocks until an
// item arrives or the queue is closed *and* drained, which gives clean
// shutdown: close the queue, join the consumers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace causeway {

template <typename T>
class BlockingQueue {
 public:
  // Returns false if the queue is closed (item dropped).
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_{false};
};

}  // namespace causeway
