// Time sources and per-"process" clock domains.
//
// The paper stresses that all runtime behaviour is "recorded individually by
// probes without coordination and global clock synchronization".  To make
// that property load-bearing rather than incidental, every simulated process
// domain reads time through its own ClockDomain, which applies a fixed skew
// and a drift rate to the host monotonic clock.  Analysis must only ever
// difference timestamps taken inside one domain -- tests inject hostile skews
// to prove it does.
#pragma once

#include <cstdint>

namespace causeway {

// Nanoseconds.  Signed so differences are natural.
using Nanos = std::int64_t;

inline constexpr Nanos kNanosPerMicro = 1'000;
inline constexpr Nanos kNanosPerMilli = 1'000'000;
inline constexpr Nanos kNanosPerSecond = 1'000'000'000;

// Host monotonic clock, nanoseconds since an arbitrary epoch.
Nanos steady_now_ns();

// A per-process virtual clock: reading = skew + (1 + drift) * monotonic.
// Skews of minutes and drifts of hundreds of ppm are fair game; both are
// invisible to a correct analyzer.
class ClockDomain {
 public:
  ClockDomain() = default;
  ClockDomain(Nanos skew, double drift_ppm)
      : skew_(skew), drift_factor_(1.0 + drift_ppm * 1e-6) {}

  Nanos now() const {
    const Nanos t = steady_now_ns();
    return skew_ + static_cast<Nanos>(static_cast<double>(t) * drift_factor_);
  }

  Nanos skew() const { return skew_; }

 private:
  Nanos skew_{0};
  double drift_factor_{1.0};
};

}  // namespace causeway
