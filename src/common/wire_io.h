// Overload-based marshal/unmarshal adapters.
//
// Generated stubs/skeletons (idlc) marshal parameters through the uniform
// wire_write / wire_read vocabulary; user-defined IDL structs get generated
// overloads in their own namespace, which ADL picks up -- so
// sequence<MyStruct> works with the same template below.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/wire.h"

namespace causeway {

inline void wire_write(WireBuffer& b, bool v) { b.write_bool(v); }
inline void wire_write(WireBuffer& b, std::uint8_t v) { b.write_u8(v); }
inline void wire_write(WireBuffer& b, std::int16_t v) {
  b.write_u16(static_cast<std::uint16_t>(v));
}
inline void wire_write(WireBuffer& b, std::uint16_t v) { b.write_u16(v); }
inline void wire_write(WireBuffer& b, std::uint32_t v) { b.write_u32(v); }
inline void wire_write(WireBuffer& b, std::uint64_t v) { b.write_u64(v); }
inline void wire_write(WireBuffer& b, std::int32_t v) { b.write_i32(v); }
inline void wire_write(WireBuffer& b, std::int64_t v) { b.write_i64(v); }
inline void wire_write(WireBuffer& b, float v) {
  b.write_u32(std::bit_cast<std::uint32_t>(v));
}
inline void wire_write(WireBuffer& b, double v) { b.write_f64(v); }
inline void wire_write(WireBuffer& b, const std::string& v) {
  b.write_string(v);
}

inline void wire_read(WireCursor& c, bool& v) { v = c.read_bool(); }
inline void wire_read(WireCursor& c, std::uint8_t& v) { v = c.read_u8(); }
inline void wire_read(WireCursor& c, std::int16_t& v) {
  v = static_cast<std::int16_t>(c.read_u16());
}
inline void wire_read(WireCursor& c, std::uint16_t& v) { v = c.read_u16(); }
inline void wire_read(WireCursor& c, std::uint32_t& v) { v = c.read_u32(); }
inline void wire_read(WireCursor& c, std::uint64_t& v) { v = c.read_u64(); }
inline void wire_read(WireCursor& c, std::int32_t& v) { v = c.read_i32(); }
inline void wire_read(WireCursor& c, std::int64_t& v) { v = c.read_i64(); }
inline void wire_read(WireCursor& c, float& v) {
  v = std::bit_cast<float>(c.read_u32());
}
inline void wire_read(WireCursor& c, double& v) { v = c.read_f64(); }
inline void wire_read(WireCursor& c, std::string& v) { v = c.read_string(); }

template <typename T>
void wire_write(WireBuffer& b, const std::vector<T>& v) {
  b.write_u32(static_cast<std::uint32_t>(v.size()));
  for (const T& item : v) wire_write(b, item);
}

template <typename T>
void wire_read(WireCursor& c, std::vector<T>& v) {
  const std::uint32_t n = c.read_u32();
  v.clear();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    T item{};
    wire_read(c, item);
    v.push_back(std::move(item));
  }
}

}  // namespace causeway
