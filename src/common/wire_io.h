// Overload-based marshal/unmarshal adapters, plus the POSIX I/O loops the
// byte-moving layers share.
//
// Generated stubs/skeletons (idlc) marshal parameters through the uniform
// wire_write / wire_read vocabulary; user-defined IDL structs get generated
// overloads in their own namespace, which ADL picks up -- so
// sequence<MyStruct> works with the same template below.
//
// The io_* helpers at the bottom are the one place EINTR and short
// transfers are handled: every raw read()/write()/send() in the repo (the
// trace reader's mmap fallback, the cross-process collection transport)
// goes through them, so a signal landing mid-transfer can never truncate a
// frame or surface as a spurious error.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define CAUSEWAY_HAS_POSIX_IO 1
#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/wire.h"

namespace causeway {

inline void wire_write(WireBuffer& b, bool v) { b.write_bool(v); }
inline void wire_write(WireBuffer& b, std::uint8_t v) { b.write_u8(v); }
inline void wire_write(WireBuffer& b, std::int16_t v) {
  b.write_u16(static_cast<std::uint16_t>(v));
}
inline void wire_write(WireBuffer& b, std::uint16_t v) { b.write_u16(v); }
inline void wire_write(WireBuffer& b, std::uint32_t v) { b.write_u32(v); }
inline void wire_write(WireBuffer& b, std::uint64_t v) { b.write_u64(v); }
inline void wire_write(WireBuffer& b, std::int32_t v) { b.write_i32(v); }
inline void wire_write(WireBuffer& b, std::int64_t v) { b.write_i64(v); }
inline void wire_write(WireBuffer& b, float v) {
  b.write_u32(std::bit_cast<std::uint32_t>(v));
}
inline void wire_write(WireBuffer& b, double v) { b.write_f64(v); }
inline void wire_write(WireBuffer& b, const std::string& v) {
  b.write_string(v);
}

inline void wire_read(WireCursor& c, bool& v) { v = c.read_bool(); }
inline void wire_read(WireCursor& c, std::uint8_t& v) { v = c.read_u8(); }
inline void wire_read(WireCursor& c, std::int16_t& v) {
  v = static_cast<std::int16_t>(c.read_u16());
}
inline void wire_read(WireCursor& c, std::uint16_t& v) { v = c.read_u16(); }
inline void wire_read(WireCursor& c, std::uint32_t& v) { v = c.read_u32(); }
inline void wire_read(WireCursor& c, std::uint64_t& v) { v = c.read_u64(); }
inline void wire_read(WireCursor& c, std::int32_t& v) { v = c.read_i32(); }
inline void wire_read(WireCursor& c, std::int64_t& v) { v = c.read_i64(); }
inline void wire_read(WireCursor& c, float& v) {
  v = std::bit_cast<float>(c.read_u32());
}
inline void wire_read(WireCursor& c, double& v) { v = c.read_f64(); }
inline void wire_read(WireCursor& c, std::string& v) { v = c.read_string(); }

template <typename T>
void wire_write(WireBuffer& b, const std::vector<T>& v) {
  b.write_u32(static_cast<std::uint32_t>(v.size()));
  for (const T& item : v) wire_write(b, item);
}

template <typename T>
void wire_read(WireCursor& c, std::vector<T>& v) {
  const std::uint32_t n = c.read_u32();
  v.clear();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    T item{};
    wire_read(c, item);
    v.push_back(std::move(item));
  }
}

#if defined(CAUSEWAY_HAS_POSIX_IO)

// One read(), EINTR-retried.  Returns bytes read (0 at EOF), or -1 with
// errno set (EAGAIN/EWOULDBLOCK pass through for non-blocking callers).
inline long io_read_some(int fd, void* buf, std::size_t n) {
  for (;;) {
    const auto r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return static_cast<long>(r);
  }
}

// One send() (MSG_NOSIGNAL: a peer that vanished is an EPIPE errno, never a
// process-killing signal), EINTR-retried.  Works on any fd via write() when
// send() reports ENOTSOCK -- so callers can treat files and sockets alike.
inline long io_write_some(int fd, const void* buf, std::size_t n) {
#if defined(MSG_NOSIGNAL)
  for (;;) {
    const auto r = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (r >= 0) return static_cast<long>(r);
    if (errno == ENOTSOCK) break;
    if (errno != EINTR) return static_cast<long>(r);
  }
#endif
  for (;;) {
    const auto r = ::write(fd, buf, n);
    if (r >= 0 || errno != EINTR) return static_cast<long>(r);
  }
}

// Reads exactly `n` bytes, looping over short reads.  Returns the byte
// count actually read: `n` on success, less when EOF arrived first, -1 on
// error.  The fd must be blocking.
inline long io_read_full(int fd, void* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const long r = io_read_some(fd, static_cast<std::uint8_t*>(buf) + done,
                                n - done);
    if (r < 0) return -1;
    if (r == 0) break;
    done += static_cast<std::size_t>(r);
  }
  return static_cast<long>(done);
}

// Writes exactly `n` bytes, looping over short writes.  Returns true on
// success, false on error (errno set).  The fd must be blocking.
inline bool io_write_full(int fd, const void* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const long r = io_write_some(
        fd, static_cast<const std::uint8_t*>(buf) + done, n - done);
    if (r < 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

#endif  // CAUSEWAY_HAS_POSIX_IO

}  // namespace causeway
