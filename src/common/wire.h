// Wire-format buffers: the marshaling substrate shared by the ORB, the
// COM-like runtime, the bridge and the instrumented stubs/skeletons.
//
// Encoding is a compact little-endian CDR-ish format: fixed-width integers,
// IEEE doubles, length-prefixed strings/byte blobs, and LEB128 varints
// (plain and zig-zag) for the columnar trace format.  WireBuffer writes,
// WireCursor reads with strict bounds checking (malformed input raises
// WireError; it never reads out of bounds, and overlong varints -- more
// than ten bytes, or value bits beyond 64 -- are rejected, not wrapped).
//
// The instrumented stubs append the FTL as a *trailer* ([payload][FTL][magic])
// so the runtime below never needs to know monitoring exists -- see
// monitor/ftl.h.  WireCursor::truncate() is what lets a skeleton peel such a
// trailer off before handing the payload to user unmarshaling code.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace causeway {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// The batch column decoders (WireCursor::read_varint_column and friends)
// and encoders (WireBuffer::write_varint_column and friends) dispatch to
// one of these kernels, resolved once per process: the widest variant the
// build compiled in (CAUSEWAY_SIMD) *and* the CPU supports, overridable
// with CAUSEWAY_KERNEL=scalar|swar|sse|avx2|neon or force_varint_kernel()
// (tests and benches pin variants to compare them).  Every kernel decodes
// the same bytes to the same values and raises the same WireError text at
// the same byte -- the strict scalar decoder is the single source of truth
// that every fast path falls back to for anything but well-formed
// in-bounds runs.  On the write side the contract is even simpler: LEB128
// is canonical, so every kernel emits byte-identical output.
enum class VarintKernel : std::uint8_t {
  kScalar = 0,  // one strict LEB128 decode per value (the reference)
  kSwar = 1,    // 8-byte word-at-a-time, portable C++
  kSse = 2,     // 16-byte blocks (SSE4.1), x86-64 only
  kAvx2 = 3,    // 32-byte blocks (AVX2), x86-64 only
  kNeon = 4,    // 16-byte blocks, AArch64 only
};

std::string_view to_string(VarintKernel kernel);

// True when the kernel is compiled in and the running CPU supports it
// (kScalar and kSwar always are).
bool varint_kernel_available(VarintKernel kernel);

// The kernel batch decodes currently dispatch to.
VarintKernel active_varint_kernel();

// Pins the dispatch (kernel must be available; throws WireError otherwise).
// Tests use this to run the same decode under every variant.
void force_varint_kernel(VarintKernel kernel);

namespace wire_detail {

// Strict LEB128 decode -- THE definition of what this codebase accepts.
// WireCursor::read_varint and every batch kernel's non-fast-path route
// through here, so truncation ("wire underflow") and overlong rejection
// ("varint overlong") behave and read identically no matter which kernel
// decoded the surrounding column.
inline std::uint64_t decode_varint_strict(const std::uint8_t* data,
                                          std::size_t end, std::size_t& pos) {
  // Fast path: single-byte values dominate delta/id columns.
  if (pos < end && data[pos] < 0x80) return data[pos++];
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (end - pos < 1) throw WireError("wire underflow");
    const std::uint8_t byte = data[pos++];
    if (shift == 63 && byte > 1) throw WireError("varint overlong");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw WireError("varint overlong");
}

}  // namespace wire_detail

// Zig-zag mapping: small-magnitude signed values (deltas between nearly
// equal samples) become small unsigned values, which the varint coder then
// stores in one or two bytes.
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

// In-place batched transforms over whole columns -- the delta/zig-zag
// passes the v4 codec runs before varint emission (encode) and after
// varint decode.  Dispatched like the varint kernels (AVX2 when active,
// scalar otherwise), but every variant is exact integer math, so results
// are bit-identical under every kernel -- the differential test enforces
// it.  All arithmetic is two's-complement wrapping (done in uint64), never
// signed overflow.
//
//   zigzag_encode_column  each int64 (carried as its uint64 bit pattern)
//                         becomes its zig-zag mapping
//   zigzag_decode_column  the inverse, over freshly decoded raw varints
//   delta_encode_column   values[i] -= values[i-1] (values[0] kept): the
//                         difference column the v4 writer stores
//   prefix_sum_column     the inverse: wrapping inclusive prefix sum over
//                         a decoded delta column
void zigzag_encode_column(std::uint64_t* values, std::size_t n);
void zigzag_decode_column(std::int64_t* values, std::size_t n);
void delta_encode_column(std::uint64_t* values, std::size_t n);
void prefix_sum_column(std::int64_t* values, std::size_t n);

class WireBuffer {
 public:
  WireBuffer() = default;
  explicit WireBuffer(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_u16(std::uint16_t v) { write_le(v); }
  void write_u32(std::uint32_t v) { write_le(v); }
  void write_u64(std::uint64_t v) { write_le(v); }
  void write_i32(std::int32_t v) { write_le(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_le(static_cast<std::uint64_t>(v)); }

  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write_le(bits);
  }

  // LEB128: seven value bits per byte, high bit = continuation.  At most
  // ten bytes for a full 64-bit value.
  void write_varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void write_svarint(std::int64_t v) { write_varint(zigzag_encode(v)); }

  // Bulk LEB128 encode: appends exactly the bytes n write_varint() calls
  // would, but batched through the active varint kernel -- runs of short
  // values pack a word (SWAR) or a vector register (SSE/AVX2/NEON) at a
  // time into a size-bounded scratch block before landing in the buffer.
  // LEB128 is canonical (each value has exactly one encoding), so kernel
  // choice can never change the bytes; the differential test and the
  // forced-kernel ctest legs enforce it.  Defined in wire.cpp.
  void write_varint_column(const std::uint64_t* values, std::size_t n);

  // Bulk zig-zag encode: n svarints (no delta folding; callers own the
  // delta transform because run boundaries reset it).
  void write_svarint_column(const std::int64_t* values, std::size_t n);

  void write_string(std::string_view s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  void write_bytes(std::span<const std::uint8_t> b) {
    write_u32(static_cast<std::uint32_t>(b.size()));
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  // Appends raw bytes with no length prefix (used for trailers and for
  // splicing one buffer into another).
  void append_raw(std::span<const std::uint8_t> b) {
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  // Patches a u64 written earlier (e.g. a frame-length word reserved before
  // the frame body was encoded).  The eight bytes must already exist.
  void overwrite_u64(std::size_t offset, std::uint64_t v) {
    if (offset + sizeof(v) > bytes_.size()) {
      throw WireError("overwrite past end of buffer");
    }
    for (std::size_t i = 0; i < sizeof(v); ++i) {
      bytes_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  void reserve(std::size_t n) { bytes_.reserve(n); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  void clear() { bytes_.clear(); }

 private:
  template <typename T>
  void write_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

class WireCursor {
 public:
  WireCursor(const std::uint8_t* data, std::size_t size)
      : data_(data), end_(size) {}
  explicit WireCursor(std::span<const std::uint8_t> s)
      : WireCursor(s.data(), s.size()) {}
  explicit WireCursor(const WireBuffer& b)
      : WireCursor(b.bytes().data(), b.bytes().size()) {}

  std::uint8_t read_u8() { return read_le<std::uint8_t>(); }
  bool read_bool() { return read_u8() != 0; }
  std::uint16_t read_u16() { return read_le<std::uint16_t>(); }
  std::uint32_t read_u32() { return read_le<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_le<std::uint64_t>(); }
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }

  double read_f64() {
    const std::uint64_t bits = read_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Strict LEB128 decode: throws WireError on truncation (continuation bit
  // set at the end of input) and on overlong encodings -- an eleventh byte,
  // or a tenth byte carrying value bits beyond the 64th.
  std::uint64_t read_varint() {
    return wire_detail::decode_varint_strict(data_, end_, pos_);
  }

  std::int64_t read_svarint() { return zigzag_decode(read_varint()); }

  // Bulk LEB128 decode: exactly `n` varints into out[0..n), equivalent to n
  // read_varint() calls but dispatched to the active batch kernel (SWAR /
  // SSE / AVX2 / NEON), which decodes runs of short varints a word or a
  // vector register at a time.  Bounds handling and error text are
  // byte-identical to the scalar loop by construction: fast paths only
  // consume well-formed in-bounds runs, everything else (truncation,
  // overlong encodings, 9-10 byte values) routes through the shared strict
  // decoder.  Defined in wire.cpp.
  void read_varint_column(std::uint64_t* out, std::size_t n);

  // Bulk zig-zag decode: n svarints into out[0..n) (no delta accumulation;
  // callers own the prefix-sum because run boundaries reset it).
  void read_svarint_column(std::int64_t* out, std::size_t n);

  std::string read_string() {
    const std::uint32_t n = read_u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  // Zero-copy view of the next `n` bytes; valid only while the underlying
  // storage (e.g. an mmap) lives.  Callers that outlive it must copy.
  std::string_view read_view(std::size_t n) {
    require(n);
    const char* p = reinterpret_cast<const char*>(data_ + pos_);
    pos_ += n;
    return {p, n};
  }

  std::vector<std::uint8_t> read_bytes() {
    const std::uint32_t n = read_u32();
    require(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  std::size_t remaining() const { return end_ - pos_; }
  std::size_t position() const { return pos_; }

  // Advances past `n` bytes without materializing them (bounds-checked).
  // Lets a reader skim a frame's extent -- e.g. locating trace-segment
  // boundaries before decoding the segments in parallel.
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  // Shrinks the readable window to `new_end` absolute bytes; used to peel a
  // fixed-size trailer off the end of a payload.
  void truncate(std::size_t new_end) {
    if (new_end < pos_ || new_end > end_) {
      throw WireError("truncate outside readable window");
    }
    end_ = new_end;
  }

  // Peeks `n` bytes ending at the current window end without consuming.
  std::span<const std::uint8_t> peek_tail(std::size_t n) const {
    if (remaining() < n) throw WireError("peek_tail past start");
    return {data_ + end_ - n, n};
  }

  std::span<const std::uint8_t> rest() const {
    return {data_ + pos_, end_ - pos_};
  }

 private:
  void require(std::size_t n) const {
    if (end_ - pos_ < n) throw WireError("wire underflow");
  }

  template <typename T>
  T read_le() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t pos_{0};
  std::size_t end_;
};

// --- Column blocks (trace format v5) ---------------------------------------
//
// A column block wraps one column's encoded payload so it can optionally
// travel deflated:
//
//   u8 codec                  0 = raw, 1 = deflate
//   codec 0: varint len,      then len payload bytes verbatim
//   codec 1: varint raw_len   (exact decoded payload size),
//            varint comp_len, then comp_len raw-deflate bytes
//
// The decoded length always rides in the header, so inflation is
// bounds-checked: the reader allocates exactly raw_len bytes, and a stream
// that decodes to anything else is rejected.  `max_decoded` is the caller's
// structural bound (e.g. 10 bytes per varint times the record count) -- a
// block advertising more than the column could possibly hold is rejected
// before any allocation, killing decompression-bomb inputs cheaply.

inline constexpr std::uint8_t kColumnCodecRaw = 0;
inline constexpr std::uint8_t kColumnCodecDeflate = 1;

// Appends `payload` as one column block.  When `try_deflate` is set and the
// build has zlib, stores the deflated form if it is smaller (payloads under
// ~tens of bytes never are; deflate_bytes already refuses non-wins), raw
// otherwise -- so the output is always the smaller of the two forms and
// decodes identically either way.
void write_column_block(WireBuffer& out, std::span<const std::uint8_t> payload,
                        bool try_deflate);

// Reads one column block, returning a view of the decoded payload: directly
// into the input for raw blocks (zero-copy), into `scratch` (resized) for
// deflated ones.  The view is invalidated by the next call that reuses
// `scratch`.  Throws WireError on truncation, an unknown codec, a decoded
// size above `max_decoded`, or a deflate stream that is corrupt or does not
// decode to exactly the advertised size.
std::span<const std::uint8_t> read_column_block(
    WireCursor& in, std::size_t max_decoded, std::vector<std::uint8_t>& scratch);

}  // namespace causeway
