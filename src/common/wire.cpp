// Batch varint column kernels (see wire.h for the dispatch contract).
//
// The v4 trace codec stores whole columns of LEB128 varints: seq deltas,
// string ids, ordinals, zig-zag timestamps.  Decoding them one strict
// read_varint() at a time is a chain of data-dependent branches per byte;
// these kernels instead classify a whole word (SWAR) or vector register
// (SSE/AVX2/NEON) of input at once.  The dominant shape in real columns --
// runs of single-byte values -- decodes at a load/widen/store per block.
// Mixed regions fall back a level at a time (vector -> SWAR -> strict
// scalar), and *every* non-fast-path byte sequence ends in
// wire_detail::decode_varint_strict, so truncation and overlong rejection
// are decided by exactly one piece of code no matter which kernel ran.
//
// Variant selection: the widest compiled-in (CAUSEWAY_SIMD) kernel the CPU
// reports at runtime, overridable via CAUSEWAY_KERNEL or
// force_varint_kernel().  All variants are bit-exact by construction; the
// differential test (wire_kernel_test) enforces it over adversarial input.
#include "common/wire.h"

#include <atomic>
#include <bit>
#include <cstdlib>

#include "common/compress.h"

#if !defined(CAUSEWAY_SIMD)
#define CAUSEWAY_SIMD 0
#endif

#if CAUSEWAY_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CAUSEWAY_KERNEL_X86 1
#include <immintrin.h>
#else
#define CAUSEWAY_KERNEL_X86 0
#endif

#if CAUSEWAY_SIMD && defined(__aarch64__)
#define CAUSEWAY_KERNEL_NEON 1
#include <arm_neon.h>
#else
#define CAUSEWAY_KERNEL_NEON 0
#endif

namespace causeway {
namespace {

constexpr std::uint64_t kContMask = 0x8080808080808080ULL;

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;  // SWAR math below assumes little-endian byte order
}

// Compacts the low 7 bits of each of the 8 bytes of `x` (continuation bits
// already cleared) into one 56-bit value: byte k's payload moves from bit
// 8k to bit 7k.  Three shift-mask rounds, no per-byte loop.
constexpr std::uint64_t compact7x8(std::uint64_t x) {
  x = (x & 0x007f007f007f007fULL) | ((x & 0x7f007f007f007f00ULL) >> 1);
  x = (x & 0x00003fff00003fffULL) | ((x & 0x3fff00003fff0000ULL) >> 2);
  x = (x & 0x000000000fffffffULL) | ((x & 0x0fffffff00000000ULL) >> 4);
  return x;
}

// Inverse of compact7x8: spreads the low 8 groups of 7 bits of `x` across
// the 8 bytes of the result -- group k's payload moves from bit 7k to bit
// 8k, leaving every byte's high (continuation) bit clear.  Three
// shift-mask rounds, no per-byte loop.
constexpr std::uint64_t expand7x8(std::uint64_t x) {
  x = (x & 0x000000000fffffffULL) | ((x << 4) & 0x0fffffff00000000ULL);
  x = (x & 0x00003fff00003fffULL) | ((x << 2) & 0x3fff00003fff0000ULL);
  x = (x & 0x007f007f007f007fULL) | ((x << 1) & 0x7f007f007f007f00ULL);
  return x;
}

// Encodes one value, branchless for encodings up to 8 bytes (values below
// 2^56): the length comes straight from the bit width, expand7x8 spreads
// the payload, and the continuation bits land in one word OR.  9-10 byte
// values take the plain loop.  Requires 10 bytes of headroom at `p`; the
// column writers size their scratch to guarantee it.
inline std::uint8_t* encode_one_swar(std::uint64_t v, std::uint8_t* p) {
  if (v < 0x80) {
    *p = static_cast<std::uint8_t>(v);
    return p + 1;
  }
  if (v < (1ULL << 56)) {
    const auto bits = static_cast<unsigned>(64 - std::countl_zero(v));
    const unsigned len = (bits + 6) / 7;  // 2..8
    const std::uint64_t x = expand7x8(v) | (kContMask >> (8 * (9 - len)));
    std::memcpy(p, &x, sizeof(x));
    return p + len;
  }
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

// The strict reference encoder: n write_varint() loops, nothing else.  The
// canonical definition every fast path must (and, LEB128 being canonical,
// can only) reproduce byte for byte.
std::size_t encode_column_scalar(const std::uint64_t* values, std::size_t n,
                                 std::uint8_t* out) {
  std::uint8_t* p = out;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = values[i];
    while (v >= 0x80) {
      *p++ = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    *p++ = static_cast<std::uint8_t>(v);
  }
  return static_cast<std::size_t>(p - out);
}

// Portable word-at-a-time encoder; also the mixed-region and tail handler
// for every vector encode kernel.  Eight single-byte values pack into one
// word store; everything else goes through the branch-light single-value
// path above.
std::size_t encode_column_swar(const std::uint64_t* values, std::size_t n,
                               std::uint8_t* out) {
  std::uint8_t* p = out;
  std::size_t i = 0;
  while (n - i >= 8) {
    const std::uint64_t m = values[i] | values[i + 1] | values[i + 2] |
                            values[i + 3] | values[i + 4] | values[i + 5] |
                            values[i + 6] | values[i + 7];
    if (m < 0x80) {
      const std::uint64_t w =
          values[i] | (values[i + 1] << 8) | (values[i + 2] << 16) |
          (values[i + 3] << 24) | (values[i + 4] << 32) |
          (values[i + 5] << 40) | (values[i + 6] << 48) |
          (values[i + 7] << 56);
      std::memcpy(p, &w, sizeof(w));
      p += 8;
      i += 8;
      continue;
    }
    p = encode_one_swar(values[i++], p);
  }
  for (; i < n; ++i) p = encode_one_swar(values[i], p);
  return static_cast<std::size_t>(p - out);
}

// Portable word-at-a-time kernel; also the mixed-region and tail handler
// for every vector kernel.  Decodes exactly `n` values.  Fast paths only
// consume byte runs that are provably complete and in bounds; anything
// else -- the last <9 bytes of the window, varints longer than 8 bytes --
// goes through the strict decoder, which owns all error behavior.
void column_swar(const std::uint8_t* data, std::size_t end, std::size_t& pos,
                 std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    if (end - pos < 9) {
      for (; i < n; ++i) {
        out[i] = wire_detail::decode_varint_strict(data, end, pos);
      }
      return;
    }
    const std::uint64_t w = load_le64(data + pos);
    const std::uint64_t cont = w & kContMask;
    if (cont == 0) {
      // Eight single-byte values (or however many the column still needs).
      const std::size_t take = std::min<std::size_t>(8, n - i);
      for (std::size_t k = 0; k < take; ++k) out[i + k] = (w >> (8 * k)) & 0xff;
      pos += take;
      i += take;
      continue;
    }
    const unsigned first_cont =
        static_cast<unsigned>(std::countr_zero(cont)) / 8;
    if (first_cont > 0) {
      // Single-byte values up to the first multi-byte varint.
      const std::size_t take = std::min<std::size_t>(first_cont, n - i);
      for (std::size_t k = 0; k < take; ++k) out[i + k] = (w >> (8 * k)) & 0xff;
      pos += take;
      i += take;
      continue;
    }
    // A multi-byte varint starts at the window head.
    const std::uint64_t stops = ~w & kContMask;
    if (stops == 0) {
      // Longer than the window (9-10 byte values, or overlong garbage):
      // strict decode decides.
      out[i++] = wire_detail::decode_varint_strict(data, end, pos);
      continue;
    }
    const unsigned len =
        static_cast<unsigned>(std::countr_zero(stops)) / 8 + 1;  // 2..8
    std::uint64_t x = w;
    if (len < 8) x &= ~0ULL >> (8 * (8 - len));
    out[i++] = compact7x8(x & ~kContMask);
    pos += len;
  }
}

void column_scalar(const std::uint8_t* data, std::size_t end,
                   std::size_t& pos, std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = wire_detail::decode_varint_strict(data, end, pos);
  }
}

#if CAUSEWAY_KERNEL_X86

__attribute__((target("sse4.1"))) void column_sse(const std::uint8_t* data,
                                                  std::size_t end,
                                                  std::size_t& pos,
                                                  std::uint64_t* out,
                                                  std::size_t n) {
  std::size_t i = 0;
  while (n - i >= 16 && end - pos >= 17) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    if (_mm_movemask_epi8(v) == 0) {
      // 16 single-byte values: widen u8 -> u64 entirely in registers (no
      // extra memory loads, so the 17-byte bound is the only one needed).
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 0),
                       _mm_cvtepu8_epi64(v));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 2)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 4)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 6),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 6)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 8)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 10),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 10)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 12)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 14),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 14)));
      pos += 16;
      i += 16;
      continue;
    }
    // Mixed block: let the SWAR path chew a handful, then retry vectorized.
    const std::size_t chunk = std::min<std::size_t>(8, n - i);
    column_swar(data, end, pos, out + i, chunk);
    i += chunk;
  }
  column_swar(data, end, pos, out + i, n - i);
}

__attribute__((target("avx2"))) void column_avx2(const std::uint8_t* data,
                                                 std::size_t end,
                                                 std::size_t& pos,
                                                 std::uint64_t* out,
                                                 std::size_t n) {
  std::size_t i = 0;
  while (n - i >= 32 && end - pos >= 33) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
    if (_mm256_movemask_epi8(v) == 0) {
      const __m128i lo = _mm256_castsi256_si128(v);
      const __m128i hi = _mm256_extracti128_si256(v, 1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 0),
                          _mm256_cvtepu8_epi64(lo));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 4)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 12),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 12)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 16),
                          _mm256_cvtepu8_epi64(hi));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 20),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 4)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 24),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 28),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 12)));
      pos += 32;
      i += 32;
      continue;
    }
    const std::size_t chunk = std::min<std::size_t>(8, n - i);
    column_swar(data, end, pos, out + i, chunk);
    i += chunk;
  }
  column_swar(data, end, pos, out + i, n - i);
}

// 16 values at a time: when a whole block is single-byte (the dominant
// column shape), three levels of packs narrow the sixteen u64 lanes to
// sixteen contiguous bytes -- one store replaces sixteen byte appends.
// packus saturation never fires (every lane is < 0x80), and the pack tree
// leaves the bytes in order: pairs of (value, 0) bytes re-read as u16
// lanes between levels.  Mixed blocks hand 8 values to the SWAR path and
// retry vectorized.
__attribute__((target("sse4.1"))) std::size_t encode_column_sse(
    const std::uint64_t* values, std::size_t n, std::uint8_t* out) {
  std::uint8_t* p = out;
  std::size_t i = 0;
  const __m128i high = _mm_set1_epi64x(~0x7fLL);
  while (n - i >= 16) {
    const auto* src = reinterpret_cast<const __m128i*>(values + i);
    const __m128i r0 = _mm_loadu_si128(src + 0);
    const __m128i r1 = _mm_loadu_si128(src + 1);
    const __m128i r2 = _mm_loadu_si128(src + 2);
    const __m128i r3 = _mm_loadu_si128(src + 3);
    const __m128i r4 = _mm_loadu_si128(src + 4);
    const __m128i r5 = _mm_loadu_si128(src + 5);
    const __m128i r6 = _mm_loadu_si128(src + 6);
    const __m128i r7 = _mm_loadu_si128(src + 7);
    const __m128i all = _mm_or_si128(
        _mm_or_si128(_mm_or_si128(r0, r1), _mm_or_si128(r2, r3)),
        _mm_or_si128(_mm_or_si128(r4, r5), _mm_or_si128(r6, r7)));
    if (_mm_testz_si128(all, high)) {
      const __m128i s0 = _mm_packus_epi32(r0, r1);
      const __m128i s1 = _mm_packus_epi32(r2, r3);
      const __m128i s2 = _mm_packus_epi32(r4, r5);
      const __m128i s3 = _mm_packus_epi32(r6, r7);
      const __m128i t0 = _mm_packus_epi16(s0, s1);
      const __m128i t1 = _mm_packus_epi16(s2, s3);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                       _mm_packus_epi16(t0, t1));
      p += 16;
      i += 16;
      continue;
    }
    const std::size_t stop = i + 8;
    for (; i < stop; ++i) p = encode_one_swar(values[i], p);
  }
  for (; i < n; ++i) p = encode_one_swar(values[i], p);
  return static_cast<std::size_t>(p - out);
}

// 32 values at a time.  Same pack tree as SSE, but AVX2 packs are
// per-128-bit-lane, which leaves the bytes lane-scrambled; one qword
// permute plus one in-lane byte shuffle restores v0..v31 order before the
// single 32-byte store.
__attribute__((target("avx2"))) std::size_t encode_column_avx2(
    const std::uint64_t* values, std::size_t n, std::uint8_t* out) {
  std::uint8_t* p = out;
  std::size_t i = 0;
  const __m256i high = _mm256_set1_epi64x(~0x7fLL);
  const __m256i unscramble = _mm256_setr_epi8(
      0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15,
      0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15);
  while (n - i >= 32) {
    const auto* src = reinterpret_cast<const __m256i*>(values + i);
    const __m256i r0 = _mm256_loadu_si256(src + 0);
    const __m256i r1 = _mm256_loadu_si256(src + 1);
    const __m256i r2 = _mm256_loadu_si256(src + 2);
    const __m256i r3 = _mm256_loadu_si256(src + 3);
    const __m256i r4 = _mm256_loadu_si256(src + 4);
    const __m256i r5 = _mm256_loadu_si256(src + 5);
    const __m256i r6 = _mm256_loadu_si256(src + 6);
    const __m256i r7 = _mm256_loadu_si256(src + 7);
    const __m256i all = _mm256_or_si256(
        _mm256_or_si256(_mm256_or_si256(r0, r1), _mm256_or_si256(r2, r3)),
        _mm256_or_si256(_mm256_or_si256(r4, r5), _mm256_or_si256(r6, r7)));
    if (_mm256_testz_si256(all, high)) {
      const __m256i s0 = _mm256_packus_epi32(r0, r1);
      const __m256i s1 = _mm256_packus_epi32(r2, r3);
      const __m256i s2 = _mm256_packus_epi32(r4, r5);
      const __m256i s3 = _mm256_packus_epi32(r6, r7);
      const __m256i t0 = _mm256_packus_epi16(s0, s1);
      const __m256i t1 = _mm256_packus_epi16(s2, s3);
      __m256i u = _mm256_packus_epi16(t0, t1);
      u = _mm256_permute4x64_epi64(u, _MM_SHUFFLE(3, 1, 2, 0));
      u = _mm256_shuffle_epi8(u, unscramble);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), u);
      p += 32;
      i += 32;
      continue;
    }
    const std::size_t stop = i + 8;
    for (; i < stop; ++i) p = encode_one_swar(values[i], p);
  }
  for (; i < n; ++i) p = encode_one_swar(values[i], p);
  return static_cast<std::size_t>(p - out);
}

// Column transform passes, AVX2 variants (exact integer ops -- identical
// results to the scalar loops by construction).

__attribute__((target("avx2"))) void zigzag_encode_avx2(std::uint64_t* v,
                                                        std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    auto* pv = reinterpret_cast<__m256i*>(v + i);
    const __m256i x = _mm256_loadu_si256(pv);
    // Arithmetic >>63 (all-ones for negatives) via 0 - logical >>63.
    const __m256i sign = _mm256_sub_epi64(zero, _mm256_srli_epi64(x, 63));
    _mm256_storeu_si256(pv, _mm256_xor_si256(_mm256_slli_epi64(x, 1), sign));
  }
  for (; i < n; ++i) v[i] = (v[i] << 1) ^ (0ULL - (v[i] >> 63));
}

__attribute__((target("avx2"))) void zigzag_decode_avx2(std::uint64_t* v,
                                                        std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    auto* pv = reinterpret_cast<__m256i*>(v + i);
    const __m256i z = _mm256_loadu_si256(pv);
    const __m256i neg = _mm256_sub_epi64(zero, _mm256_and_si256(z, one));
    _mm256_storeu_si256(pv, _mm256_xor_si256(_mm256_srli_epi64(z, 1), neg));
  }
  for (; i < n; ++i) v[i] = (v[i] >> 1) ^ (0ULL - (v[i] & 1));
}

// In-place difference column, walked from the high end so every load reads
// not-yet-overwritten input.
__attribute__((target("avx2"))) void delta_encode_avx2(std::uint64_t* v,
                                                       std::size_t n) {
  std::size_t j = n;
  while (j >= 5) {
    j -= 4;
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + j));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + j - 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + j),
                        _mm256_sub_epi64(x, y));
  }
  for (std::size_t k = j; k-- > 1;) v[k] -= v[k - 1];
}

// Wrapping inclusive prefix sum: in-lane shift-add, a broadcast of lane
// 0's total into lane 1, and a running-total broadcast carried between
// vectors.
__attribute__((target("avx2"))) void prefix_sum_avx2(std::uint64_t* v,
                                                     std::size_t n) {
  __m256i carry = _mm256_setzero_si256();  // running total in every lane
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    auto* pv = reinterpret_cast<__m256i*>(v + i);
    __m256i x = _mm256_loadu_si256(pv);
    x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
    // Add lane0's pair-total (element 1) into both elements of lane 1.
    const __m256i bridge = _mm256_blend_epi32(
        zero, _mm256_permute4x64_epi64(x, _MM_SHUFFLE(1, 1, 1, 1)), 0xf0);
    x = _mm256_add_epi64(_mm256_add_epi64(x, bridge), carry);
    _mm256_storeu_si256(pv, x);
    carry = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  if (i < n) {
    std::uint64_t acc = i == 0 ? 0 : v[i - 1];
    for (; i < n; ++i) {
      acc += v[i];
      v[i] = acc;
    }
  }
}

#endif  // CAUSEWAY_KERNEL_X86

#if CAUSEWAY_KERNEL_NEON

void column_neon(const std::uint8_t* data, std::size_t end, std::size_t& pos,
                 std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  while (n - i >= 16 && end - pos >= 17) {
    const uint8x16_t v = vld1q_u8(data + pos);
    if (vmaxvq_u8(v) < 0x80) {
      const uint16x8_t lo16 = vmovl_u8(vget_low_u8(v));
      const uint16x8_t hi16 = vmovl_u8(vget_high_u8(v));
      const uint32x4_t a = vmovl_u16(vget_low_u16(lo16));
      const uint32x4_t b = vmovl_u16(vget_high_u16(lo16));
      const uint32x4_t c = vmovl_u16(vget_low_u16(hi16));
      const uint32x4_t d = vmovl_u16(vget_high_u16(hi16));
      vst1q_u64(out + i + 0, vmovl_u32(vget_low_u32(a)));
      vst1q_u64(out + i + 2, vmovl_u32(vget_high_u32(a)));
      vst1q_u64(out + i + 4, vmovl_u32(vget_low_u32(b)));
      vst1q_u64(out + i + 6, vmovl_u32(vget_high_u32(b)));
      vst1q_u64(out + i + 8, vmovl_u32(vget_low_u32(c)));
      vst1q_u64(out + i + 10, vmovl_u32(vget_high_u32(c)));
      vst1q_u64(out + i + 12, vmovl_u32(vget_low_u32(d)));
      vst1q_u64(out + i + 14, vmovl_u32(vget_high_u32(d)));
      pos += 16;
      i += 16;
      continue;
    }
    const std::size_t chunk = std::min<std::size_t>(8, n - i);
    column_swar(data, end, pos, out + i, chunk);
    i += chunk;
  }
  column_swar(data, end, pos, out + i, n - i);
}

// 16 values per iteration: an all-single-byte block narrows u64 -> u32 ->
// u16 -> u8 through the vmovn chain (order-preserving) into one 16-byte
// store; mixed blocks hand 8 values to the SWAR path and retry.
std::size_t encode_column_neon(const std::uint64_t* values, std::size_t n,
                               std::uint8_t* out) {
  std::uint8_t* p = out;
  std::size_t i = 0;
  while (n - i >= 16) {
    const uint64x2_t r0 = vld1q_u64(values + i + 0);
    const uint64x2_t r1 = vld1q_u64(values + i + 2);
    const uint64x2_t r2 = vld1q_u64(values + i + 4);
    const uint64x2_t r3 = vld1q_u64(values + i + 6);
    const uint64x2_t r4 = vld1q_u64(values + i + 8);
    const uint64x2_t r5 = vld1q_u64(values + i + 10);
    const uint64x2_t r6 = vld1q_u64(values + i + 12);
    const uint64x2_t r7 = vld1q_u64(values + i + 14);
    const uint64x2_t all = vorrq_u64(
        vorrq_u64(vorrq_u64(r0, r1), vorrq_u64(r2, r3)),
        vorrq_u64(vorrq_u64(r4, r5), vorrq_u64(r6, r7)));
    if ((vgetq_lane_u64(all, 0) | vgetq_lane_u64(all, 1)) < 0x80) {
      const uint32x4_t a = vcombine_u32(vmovn_u64(r0), vmovn_u64(r1));
      const uint32x4_t b = vcombine_u32(vmovn_u64(r2), vmovn_u64(r3));
      const uint32x4_t c = vcombine_u32(vmovn_u64(r4), vmovn_u64(r5));
      const uint32x4_t d = vcombine_u32(vmovn_u64(r6), vmovn_u64(r7));
      const uint16x8_t lo = vcombine_u16(vmovn_u32(a), vmovn_u32(b));
      const uint16x8_t hi = vcombine_u16(vmovn_u32(c), vmovn_u32(d));
      vst1q_u8(p, vcombine_u8(vmovn_u16(lo), vmovn_u16(hi)));
      p += 16;
      i += 16;
      continue;
    }
    const std::size_t stop = i + 8;
    for (; i < stop; ++i) p = encode_one_swar(values[i], p);
  }
  for (; i < n; ++i) p = encode_one_swar(values[i], p);
  return static_cast<std::size_t>(p - out);
}

#endif  // CAUSEWAY_KERNEL_NEON

bool kernel_compiled(VarintKernel kernel) {
  switch (kernel) {
    case VarintKernel::kScalar:
      return true;
    case VarintKernel::kSwar:
      // The word-at-a-time math assumes little-endian byte order.
      return std::endian::native == std::endian::little;
    case VarintKernel::kSse:
    case VarintKernel::kAvx2:
      return CAUSEWAY_KERNEL_X86 != 0;
    case VarintKernel::kNeon:
      return CAUSEWAY_KERNEL_NEON != 0;
  }
  return false;
}

// 255 = unresolved; resolution is idempotent, so the benign first-use race
// just resolves twice to the same answer.
std::atomic<std::uint8_t> g_kernel{255};

bool parse_kernel_name(std::string_view name, VarintKernel& out) {
  if (name == "scalar") {
    out = VarintKernel::kScalar;
  } else if (name == "swar") {
    out = VarintKernel::kSwar;
  } else if (name == "sse") {
    out = VarintKernel::kSse;
  } else if (name == "avx2") {
    out = VarintKernel::kAvx2;
  } else if (name == "neon") {
    out = VarintKernel::kNeon;
  } else {
    return false;
  }
  return true;
}

VarintKernel resolve_kernel() {
  if (const char* env = std::getenv("CAUSEWAY_KERNEL")) {
    VarintKernel forced;
    if (parse_kernel_name(env, forced) && varint_kernel_available(forced)) {
      return forced;
    }
    // Unknown or unavailable names fall through to auto-selection: a config
    // written for one host must not break decode on another.
  }
  constexpr VarintKernel preference[] = {
      VarintKernel::kAvx2, VarintKernel::kSse, VarintKernel::kNeon,
      VarintKernel::kSwar};
  for (const VarintKernel k : preference) {
    if (varint_kernel_available(k)) return k;
  }
  return VarintKernel::kScalar;
}

}  // namespace

std::string_view to_string(VarintKernel kernel) {
  switch (kernel) {
    case VarintKernel::kScalar: return "scalar";
    case VarintKernel::kSwar: return "swar";
    case VarintKernel::kSse: return "sse";
    case VarintKernel::kAvx2: return "avx2";
    case VarintKernel::kNeon: return "neon";
  }
  return "?";
}

bool varint_kernel_available(VarintKernel kernel) {
  if (!kernel_compiled(kernel)) return false;
#if CAUSEWAY_KERNEL_X86
  if (kernel == VarintKernel::kAvx2) return __builtin_cpu_supports("avx2");
  if (kernel == VarintKernel::kSse) return __builtin_cpu_supports("sse4.1");
#endif
  return true;
}

VarintKernel active_varint_kernel() {
  const std::uint8_t k = g_kernel.load(std::memory_order_relaxed);
  if (k == 255) {
    const VarintKernel resolved = resolve_kernel();
    g_kernel.store(static_cast<std::uint8_t>(resolved),
                   std::memory_order_relaxed);
    return resolved;
  }
  return static_cast<VarintKernel>(k);
}

void force_varint_kernel(VarintKernel kernel) {
  if (!varint_kernel_available(kernel)) {
    throw WireError("varint kernel unavailable: " +
                    std::string(to_string(kernel)));
  }
  g_kernel.store(static_cast<std::uint8_t>(kernel),
                 std::memory_order_relaxed);
}

void WireCursor::read_varint_column(std::uint64_t* out, std::size_t n) {
  if (n == 0) return;
  switch (active_varint_kernel()) {
#if CAUSEWAY_KERNEL_X86
    case VarintKernel::kAvx2:
      column_avx2(data_, end_, pos_, out, n);
      return;
    case VarintKernel::kSse:
      column_sse(data_, end_, pos_, out, n);
      return;
#endif
#if CAUSEWAY_KERNEL_NEON
    case VarintKernel::kNeon:
      column_neon(data_, end_, pos_, out, n);
      return;
#endif
    case VarintKernel::kSwar:
      column_swar(data_, end_, pos_, out, n);
      return;
    default:
      column_scalar(data_, end_, pos_, out, n);
      return;
  }
}

void WireCursor::read_svarint_column(std::int64_t* out, std::size_t n) {
  // Decode raw varints in place (int64/uint64 alias legally), then zig-zag
  // in one batched pass.
  auto* raw = reinterpret_cast<std::uint64_t*>(out);
  read_varint_column(raw, n);
  zigzag_decode_column(out, n);
}

namespace {

// Write-side dispatch: encodes `n` values into `out` (which must have
// 10*n bytes of headroom) and returns the bytes written.
std::size_t encode_column_dispatch(const std::uint64_t* values, std::size_t n,
                                   std::uint8_t* out) {
  switch (active_varint_kernel()) {
#if CAUSEWAY_KERNEL_X86
    case VarintKernel::kAvx2:
      return encode_column_avx2(values, n, out);
    case VarintKernel::kSse:
      return encode_column_sse(values, n, out);
#endif
#if CAUSEWAY_KERNEL_NEON
    case VarintKernel::kNeon:
      return encode_column_neon(values, n, out);
#endif
    case VarintKernel::kSwar:
      return encode_column_swar(values, n, out);
    default:
      return encode_column_scalar(values, n, out);
  }
}

// True when the AVX2 transform-pass variants should run: the active kernel
// is AVX2 (which varint_kernel_available already gated on CPU support).
bool use_avx2_passes() {
#if CAUSEWAY_KERNEL_X86
  return active_varint_kernel() == VarintKernel::kAvx2;
#else
  return false;
#endif
}

constexpr std::size_t kEncodeChunk = 512;  // values per scratch block

}  // namespace

void WireBuffer::write_varint_column(const std::uint64_t* values,
                                     std::size_t n) {
  // Size-bounded scratch: encode a chunk into a stack block sized for the
  // 10-byte worst case, then append only the bytes produced.  Keeps the
  // kernels free to overwrite 8/16/32-byte blocks without ever touching
  // the buffer's tail bookkeeping.
  std::uint8_t scratch[kEncodeChunk * 10];
  while (n > 0) {
    const std::size_t take = n < kEncodeChunk ? n : kEncodeChunk;
    const std::size_t written = encode_column_dispatch(values, take, scratch);
    bytes_.insert(bytes_.end(), scratch, scratch + written);
    values += take;
    n -= take;
  }
}

void WireBuffer::write_svarint_column(const std::int64_t* values,
                                      std::size_t n) {
  std::uint64_t zz[kEncodeChunk];
  std::uint8_t scratch[kEncodeChunk * 10];
  while (n > 0) {
    const std::size_t take = n < kEncodeChunk ? n : kEncodeChunk;
    std::memcpy(zz, values, take * sizeof(std::uint64_t));
    zigzag_encode_column(zz, take);
    const std::size_t written = encode_column_dispatch(zz, take, scratch);
    bytes_.insert(bytes_.end(), scratch, scratch + written);
    values += take;
    n -= take;
  }
}

void zigzag_encode_column(std::uint64_t* values, std::size_t n) {
#if CAUSEWAY_KERNEL_X86
  if (use_avx2_passes()) {
    zigzag_encode_avx2(values, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = (values[i] << 1) ^ (0ULL - (values[i] >> 63));
  }
}

void zigzag_decode_column(std::int64_t* values, std::size_t n) {
  auto* v = reinterpret_cast<std::uint64_t*>(values);
#if CAUSEWAY_KERNEL_X86
  if (use_avx2_passes()) {
    zigzag_decode_avx2(v, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) v[i] = (v[i] >> 1) ^ (0ULL - (v[i] & 1));
}

void delta_encode_column(std::uint64_t* values, std::size_t n) {
#if CAUSEWAY_KERNEL_X86
  if (use_avx2_passes()) {
    delta_encode_avx2(values, n);
    return;
  }
#endif
  for (std::size_t i = n; i-- > 1;) values[i] -= values[i - 1];
}

void prefix_sum_column(std::int64_t* values, std::size_t n) {
  auto* v = reinterpret_cast<std::uint64_t*>(values);
#if CAUSEWAY_KERNEL_X86
  if (use_avx2_passes()) {
    prefix_sum_avx2(v, n);
    return;
  }
#endif
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += v[i];
    v[i] = acc;
  }
}

// --- Column blocks (trace format v5) ---------------------------------------

void write_column_block(WireBuffer& out, std::span<const std::uint8_t> payload,
                        bool try_deflate) {
  // Tiny payloads can't win: deflate's own framing eats the savings, and
  // the attempt itself costs a codec setup per column.
  constexpr std::size_t kDeflateFloor = 64;
  if (try_deflate && payload.size() >= kDeflateFloor) {
    if (auto deflated = deflate_bytes(payload)) {
      out.write_u8(kColumnCodecDeflate);
      out.write_varint(payload.size());
      out.write_varint(deflated->size());
      out.append_raw(*deflated);
      return;
    }
  }
  out.write_u8(kColumnCodecRaw);
  out.write_varint(payload.size());
  out.append_raw(payload);
}

std::span<const std::uint8_t> read_column_block(
    WireCursor& in, std::size_t max_decoded,
    std::vector<std::uint8_t>& scratch) {
  const std::uint8_t codec = in.read_u8();
  if (codec == kColumnCodecRaw) {
    const std::uint64_t len = in.read_varint();
    if (len > max_decoded) throw WireError("column block too large");
    const std::string_view v = in.read_view(static_cast<std::size_t>(len));
    return {reinterpret_cast<const std::uint8_t*>(v.data()), v.size()};
  }
  if (codec != kColumnCodecDeflate) {
    throw WireError("unknown column block codec");
  }
  const std::uint64_t raw_len = in.read_varint();
  const std::uint64_t comp_len = in.read_varint();
  // Reject before allocating: a block cannot legitimately decode to more
  // than the column's structural maximum, and raw deflate tops out around
  // 1032:1, so a huge raw_len over a tiny stream is always hostile.
  if (raw_len > max_decoded) throw WireError("column block too large");
  const std::string_view comp = in.read_view(static_cast<std::size_t>(comp_len));
  try {
    inflate_bytes(
        {reinterpret_cast<const std::uint8_t*>(comp.data()), comp.size()},
        static_cast<std::size_t>(raw_len), scratch);
  } catch (const CompressError& e) {
    throw WireError(e.what());
  }
  return {scratch.data(), scratch.size()};
}

}  // namespace causeway
