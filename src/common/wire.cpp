#include "common/wire.h"

// Header-only today (the varint coders sit in the header so the columnar
// trace codec can inline them); this TU anchors the library.
namespace causeway {}
