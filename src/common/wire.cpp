// Batch varint column kernels (see wire.h for the dispatch contract).
//
// The v4 trace codec stores whole columns of LEB128 varints: seq deltas,
// string ids, ordinals, zig-zag timestamps.  Decoding them one strict
// read_varint() at a time is a chain of data-dependent branches per byte;
// these kernels instead classify a whole word (SWAR) or vector register
// (SSE/AVX2/NEON) of input at once.  The dominant shape in real columns --
// runs of single-byte values -- decodes at a load/widen/store per block.
// Mixed regions fall back a level at a time (vector -> SWAR -> strict
// scalar), and *every* non-fast-path byte sequence ends in
// wire_detail::decode_varint_strict, so truncation and overlong rejection
// are decided by exactly one piece of code no matter which kernel ran.
//
// Variant selection: the widest compiled-in (CAUSEWAY_SIMD) kernel the CPU
// reports at runtime, overridable via CAUSEWAY_KERNEL or
// force_varint_kernel().  All variants are bit-exact by construction; the
// differential test (wire_kernel_test) enforces it over adversarial input.
#include "common/wire.h"

#include <atomic>
#include <bit>
#include <cstdlib>

#if !defined(CAUSEWAY_SIMD)
#define CAUSEWAY_SIMD 0
#endif

#if CAUSEWAY_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CAUSEWAY_KERNEL_X86 1
#include <immintrin.h>
#else
#define CAUSEWAY_KERNEL_X86 0
#endif

#if CAUSEWAY_SIMD && defined(__aarch64__)
#define CAUSEWAY_KERNEL_NEON 1
#include <arm_neon.h>
#else
#define CAUSEWAY_KERNEL_NEON 0
#endif

namespace causeway {
namespace {

constexpr std::uint64_t kContMask = 0x8080808080808080ULL;

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;  // SWAR math below assumes little-endian byte order
}

// Compacts the low 7 bits of each of the 8 bytes of `x` (continuation bits
// already cleared) into one 56-bit value: byte k's payload moves from bit
// 8k to bit 7k.  Three shift-mask rounds, no per-byte loop.
constexpr std::uint64_t compact7x8(std::uint64_t x) {
  x = (x & 0x007f007f007f007fULL) | ((x & 0x7f007f007f007f00ULL) >> 1);
  x = (x & 0x00003fff00003fffULL) | ((x & 0x3fff00003fff0000ULL) >> 2);
  x = (x & 0x000000000fffffffULL) | ((x & 0x0fffffff00000000ULL) >> 4);
  return x;
}

// Portable word-at-a-time kernel; also the mixed-region and tail handler
// for every vector kernel.  Decodes exactly `n` values.  Fast paths only
// consume byte runs that are provably complete and in bounds; anything
// else -- the last <9 bytes of the window, varints longer than 8 bytes --
// goes through the strict decoder, which owns all error behavior.
void column_swar(const std::uint8_t* data, std::size_t end, std::size_t& pos,
                 std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    if (end - pos < 9) {
      for (; i < n; ++i) {
        out[i] = wire_detail::decode_varint_strict(data, end, pos);
      }
      return;
    }
    const std::uint64_t w = load_le64(data + pos);
    const std::uint64_t cont = w & kContMask;
    if (cont == 0) {
      // Eight single-byte values (or however many the column still needs).
      const std::size_t take = std::min<std::size_t>(8, n - i);
      for (std::size_t k = 0; k < take; ++k) out[i + k] = (w >> (8 * k)) & 0xff;
      pos += take;
      i += take;
      continue;
    }
    const unsigned first_cont =
        static_cast<unsigned>(std::countr_zero(cont)) / 8;
    if (first_cont > 0) {
      // Single-byte values up to the first multi-byte varint.
      const std::size_t take = std::min<std::size_t>(first_cont, n - i);
      for (std::size_t k = 0; k < take; ++k) out[i + k] = (w >> (8 * k)) & 0xff;
      pos += take;
      i += take;
      continue;
    }
    // A multi-byte varint starts at the window head.
    const std::uint64_t stops = ~w & kContMask;
    if (stops == 0) {
      // Longer than the window (9-10 byte values, or overlong garbage):
      // strict decode decides.
      out[i++] = wire_detail::decode_varint_strict(data, end, pos);
      continue;
    }
    const unsigned len =
        static_cast<unsigned>(std::countr_zero(stops)) / 8 + 1;  // 2..8
    std::uint64_t x = w;
    if (len < 8) x &= ~0ULL >> (8 * (8 - len));
    out[i++] = compact7x8(x & ~kContMask);
    pos += len;
  }
}

void column_scalar(const std::uint8_t* data, std::size_t end,
                   std::size_t& pos, std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = wire_detail::decode_varint_strict(data, end, pos);
  }
}

#if CAUSEWAY_KERNEL_X86

__attribute__((target("sse4.1"))) void column_sse(const std::uint8_t* data,
                                                  std::size_t end,
                                                  std::size_t& pos,
                                                  std::uint64_t* out,
                                                  std::size_t n) {
  std::size_t i = 0;
  while (n - i >= 16 && end - pos >= 17) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    if (_mm_movemask_epi8(v) == 0) {
      // 16 single-byte values: widen u8 -> u64 entirely in registers (no
      // extra memory loads, so the 17-byte bound is the only one needed).
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 0),
                       _mm_cvtepu8_epi64(v));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 2)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 4)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 6),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 6)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 8)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 10),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 10)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 12)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 14),
                       _mm_cvtepu8_epi64(_mm_srli_si128(v, 14)));
      pos += 16;
      i += 16;
      continue;
    }
    // Mixed block: let the SWAR path chew a handful, then retry vectorized.
    const std::size_t chunk = std::min<std::size_t>(8, n - i);
    column_swar(data, end, pos, out + i, chunk);
    i += chunk;
  }
  column_swar(data, end, pos, out + i, n - i);
}

__attribute__((target("avx2"))) void column_avx2(const std::uint8_t* data,
                                                 std::size_t end,
                                                 std::size_t& pos,
                                                 std::uint64_t* out,
                                                 std::size_t n) {
  std::size_t i = 0;
  while (n - i >= 32 && end - pos >= 33) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
    if (_mm256_movemask_epi8(v) == 0) {
      const __m128i lo = _mm256_castsi256_si128(v);
      const __m128i hi = _mm256_extracti128_si256(v, 1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 0),
                          _mm256_cvtepu8_epi64(lo));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 4)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 12),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 12)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 16),
                          _mm256_cvtepu8_epi64(hi));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 20),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 4)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 24),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 28),
                          _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 12)));
      pos += 32;
      i += 32;
      continue;
    }
    const std::size_t chunk = std::min<std::size_t>(8, n - i);
    column_swar(data, end, pos, out + i, chunk);
    i += chunk;
  }
  column_swar(data, end, pos, out + i, n - i);
}

#endif  // CAUSEWAY_KERNEL_X86

#if CAUSEWAY_KERNEL_NEON

void column_neon(const std::uint8_t* data, std::size_t end, std::size_t& pos,
                 std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  while (n - i >= 16 && end - pos >= 17) {
    const uint8x16_t v = vld1q_u8(data + pos);
    if (vmaxvq_u8(v) < 0x80) {
      const uint16x8_t lo16 = vmovl_u8(vget_low_u8(v));
      const uint16x8_t hi16 = vmovl_u8(vget_high_u8(v));
      const uint32x4_t a = vmovl_u16(vget_low_u16(lo16));
      const uint32x4_t b = vmovl_u16(vget_high_u16(lo16));
      const uint32x4_t c = vmovl_u16(vget_low_u16(hi16));
      const uint32x4_t d = vmovl_u16(vget_high_u16(hi16));
      vst1q_u64(out + i + 0, vmovl_u32(vget_low_u32(a)));
      vst1q_u64(out + i + 2, vmovl_u32(vget_high_u32(a)));
      vst1q_u64(out + i + 4, vmovl_u32(vget_low_u32(b)));
      vst1q_u64(out + i + 6, vmovl_u32(vget_high_u32(b)));
      vst1q_u64(out + i + 8, vmovl_u32(vget_low_u32(c)));
      vst1q_u64(out + i + 10, vmovl_u32(vget_high_u32(c)));
      vst1q_u64(out + i + 12, vmovl_u32(vget_low_u32(d)));
      vst1q_u64(out + i + 14, vmovl_u32(vget_high_u32(d)));
      pos += 16;
      i += 16;
      continue;
    }
    const std::size_t chunk = std::min<std::size_t>(8, n - i);
    column_swar(data, end, pos, out + i, chunk);
    i += chunk;
  }
  column_swar(data, end, pos, out + i, n - i);
}

#endif  // CAUSEWAY_KERNEL_NEON

bool kernel_compiled(VarintKernel kernel) {
  switch (kernel) {
    case VarintKernel::kScalar:
      return true;
    case VarintKernel::kSwar:
      // The word-at-a-time math assumes little-endian byte order.
      return std::endian::native == std::endian::little;
    case VarintKernel::kSse:
    case VarintKernel::kAvx2:
      return CAUSEWAY_KERNEL_X86 != 0;
    case VarintKernel::kNeon:
      return CAUSEWAY_KERNEL_NEON != 0;
  }
  return false;
}

// 255 = unresolved; resolution is idempotent, so the benign first-use race
// just resolves twice to the same answer.
std::atomic<std::uint8_t> g_kernel{255};

bool parse_kernel_name(std::string_view name, VarintKernel& out) {
  if (name == "scalar") {
    out = VarintKernel::kScalar;
  } else if (name == "swar") {
    out = VarintKernel::kSwar;
  } else if (name == "sse") {
    out = VarintKernel::kSse;
  } else if (name == "avx2") {
    out = VarintKernel::kAvx2;
  } else if (name == "neon") {
    out = VarintKernel::kNeon;
  } else {
    return false;
  }
  return true;
}

VarintKernel resolve_kernel() {
  if (const char* env = std::getenv("CAUSEWAY_KERNEL")) {
    VarintKernel forced;
    if (parse_kernel_name(env, forced) && varint_kernel_available(forced)) {
      return forced;
    }
    // Unknown or unavailable names fall through to auto-selection: a config
    // written for one host must not break decode on another.
  }
  constexpr VarintKernel preference[] = {
      VarintKernel::kAvx2, VarintKernel::kSse, VarintKernel::kNeon,
      VarintKernel::kSwar};
  for (const VarintKernel k : preference) {
    if (varint_kernel_available(k)) return k;
  }
  return VarintKernel::kScalar;
}

}  // namespace

std::string_view to_string(VarintKernel kernel) {
  switch (kernel) {
    case VarintKernel::kScalar: return "scalar";
    case VarintKernel::kSwar: return "swar";
    case VarintKernel::kSse: return "sse";
    case VarintKernel::kAvx2: return "avx2";
    case VarintKernel::kNeon: return "neon";
  }
  return "?";
}

bool varint_kernel_available(VarintKernel kernel) {
  if (!kernel_compiled(kernel)) return false;
#if CAUSEWAY_KERNEL_X86
  if (kernel == VarintKernel::kAvx2) return __builtin_cpu_supports("avx2");
  if (kernel == VarintKernel::kSse) return __builtin_cpu_supports("sse4.1");
#endif
  return true;
}

VarintKernel active_varint_kernel() {
  const std::uint8_t k = g_kernel.load(std::memory_order_relaxed);
  if (k == 255) {
    const VarintKernel resolved = resolve_kernel();
    g_kernel.store(static_cast<std::uint8_t>(resolved),
                   std::memory_order_relaxed);
    return resolved;
  }
  return static_cast<VarintKernel>(k);
}

void force_varint_kernel(VarintKernel kernel) {
  if (!varint_kernel_available(kernel)) {
    throw WireError("varint kernel unavailable: " +
                    std::string(to_string(kernel)));
  }
  g_kernel.store(static_cast<std::uint8_t>(kernel),
                 std::memory_order_relaxed);
}

void WireCursor::read_varint_column(std::uint64_t* out, std::size_t n) {
  if (n == 0) return;
  switch (active_varint_kernel()) {
#if CAUSEWAY_KERNEL_X86
    case VarintKernel::kAvx2:
      column_avx2(data_, end_, pos_, out, n);
      return;
    case VarintKernel::kSse:
      column_sse(data_, end_, pos_, out, n);
      return;
#endif
#if CAUSEWAY_KERNEL_NEON
    case VarintKernel::kNeon:
      column_neon(data_, end_, pos_, out, n);
      return;
#endif
    case VarintKernel::kSwar:
      column_swar(data_, end_, pos_, out, n);
      return;
    default:
      column_scalar(data_, end_, pos_, out, n);
      return;
  }
}

void WireCursor::read_svarint_column(std::int64_t* out, std::size_t n) {
  // Decode raw varints in place (int64/uint64 alias legally), then zig-zag
  // in a second pass the compiler vectorizes.
  auto* raw = reinterpret_cast<std::uint64_t*>(out);
  read_varint_column(raw, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = zigzag_decode(raw[i]);
}

}  // namespace causeway
