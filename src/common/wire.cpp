#include "common/wire.h"

// Header-only today; this TU anchors the library and keeps the door open for
// out-of-line growth (e.g. varint encodings) without touching every client.
namespace causeway {}
