// Thin deflate/inflate wrappers for the trace store's per-column
// compression (trace format v5, DESIGN.md Sec. 16).
//
// The codec is raw deflate (no zlib/gzip header) because every compressed
// block in a .cwt already carries its own exact decoded length in the
// column-block header -- framing twice would waste bytes on every column.
// Inflation is bounds-checked both ways: the output buffer is sized to the
// advertised decoded length up front (never grown from attacker-controlled
// input), and a stream that decodes short, decodes long, or leaves input
// unconsumed is rejected.
//
// zlib is an optional dependency.  Builds without it keep these symbols:
// compression_available() reports false, deflate_bytes() returns nullopt
// (callers fall back to raw storage or refuse to write v5), and
// inflate_bytes() throws CompressError only when a deflated block is
// actually encountered.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace causeway {

class CompressError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// True when the build has zlib and deflated columns can be both written and
// read.
bool compression_available();

// Compresses `input` with raw deflate.  Returns nullopt when compression is
// unavailable in this build or the deflated form would not be smaller than
// the input (callers store raw in that case, so an incompressible column
// never pays the codec tax twice).
std::optional<std::vector<std::uint8_t>> deflate_bytes(
    std::span<const std::uint8_t> input);

// Inflates a raw-deflate stream that must decode to exactly `decoded_size`
// bytes into `out` (resized by this call).  Throws CompressError on a
// malformed stream, a size mismatch in either direction, trailing
// unconsumed input, or when this build lacks zlib.
void inflate_bytes(std::span<const std::uint8_t> input,
                   std::size_t decoded_size, std::vector<std::uint8_t>& out);

}  // namespace causeway
