// One `--version` banner for every causeway tool.
//
// Mixed-version fleets are real: a v4-era causeway-record publishing into a
// v5-era collectd, a store written on one host queried on another.  The
// first diagnostic question is always "which trace formats and which
// transport protocol does this binary speak", so every tool answers it the
// same way, from the same constants the codecs themselves use -- nothing
// here is a second copy that can drift.
#pragma once

#include <string>
#include <string_view>

#include "analysis/trace_io.h"
#include "common/compress.h"
#include "transport/protocol.h"

namespace causeway {

// The suite version, bumped with the trace/protocol surface (minor tracks
// the trace format generation).
inline constexpr std::string_view kCausewayVersion = "0.5.0";

// Multi-line banner for `--version`: tool + suite version, readable and
// writable trace-format ranges, transport protocol range, and whether this
// build can deflate v5 columns.
inline std::string version_banner(std::string_view tool) {
  std::string out;
  out += tool;
  out += " (causeway) ";
  out += kCausewayVersion;
  out += "\ntrace formats: read v";
  out += std::to_string(analysis::kTraceFormatMinReadable);
  out += "-v";
  out += std::to_string(analysis::kTraceFormatMaxReadable);
  out += ", write v";
  out += std::to_string(analysis::kTraceFormatV3);
  out += "-v";
  out += std::to_string(analysis::kTraceFormatV5);
  out += " (default v";
  out += std::to_string(analysis::kTraceFormatDefault);
  out += ")\ntransport protocol: v";
  out += std::to_string(transport::kProtocolVersion);
  out += " (accepts v";
  out += std::to_string(transport::kMinProtocolVersion);
  out += "+)\ncolumn compression (v5): ";
  out += compression_available() ? "zlib" : "unavailable in this build";
  out += "\n";
  return out;
}

}  // namespace causeway
