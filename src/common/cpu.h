// Per-thread CPU accounting.
//
// The paper's CPU characterization samples per-thread cumulative CPU
// consumption at each probe (available on HPUX 11; here via
// CLOCK_THREAD_CPUTIME_ID).  Differences of two samples on the same thread
// give the CPU burned in between, regardless of how many other threads ran.
#pragma once

#include "common/clock.h"

namespace causeway {

// Cumulative CPU time consumed by the calling thread, in nanoseconds.
Nanos thread_cpu_now_ns();

}  // namespace causeway
