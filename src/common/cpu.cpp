#include "common/cpu.h"

#include <ctime>

namespace causeway {

Nanos thread_cpu_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<Nanos>(ts.tv_sec) * kNanosPerSecond + ts.tv_nsec;
}

}  // namespace causeway
