#include "common/compress.h"

#if CAUSEWAY_HAS_ZLIB
#include <zlib.h>
#endif

namespace causeway {

#if CAUSEWAY_HAS_ZLIB

bool compression_available() { return true; }

std::optional<std::vector<std::uint8_t>> deflate_bytes(
    std::span<const std::uint8_t> input) {
  z_stream zs{};
  // windowBits -15: raw deflate, no zlib header/checksum -- the column
  // block header already carries the exact decoded length.
  if (deflateInit2(&zs, Z_DEFAULT_COMPRESSION, Z_DEFLATED, -15, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    return std::nullopt;
  }

  std::vector<std::uint8_t> out;
  out.resize(deflateBound(&zs, static_cast<uLong>(input.size())));
  zs.next_in = const_cast<Bytef*>(input.data());
  zs.avail_in = static_cast<uInt>(input.size());
  zs.next_out = out.data();
  zs.avail_out = static_cast<uInt>(out.size());

  const int rc = deflate(&zs, Z_FINISH);
  const std::size_t produced = zs.total_out;
  deflateEnd(&zs);
  if (rc != Z_STREAM_END) return std::nullopt;
  if (produced >= input.size()) return std::nullopt;  // not worth storing
  out.resize(produced);
  return out;
}

void inflate_bytes(std::span<const std::uint8_t> input,
                   std::size_t decoded_size, std::vector<std::uint8_t>& out) {
  out.resize(decoded_size);

  z_stream zs{};
  if (inflateInit2(&zs, -15) != Z_OK) {
    throw CompressError("inflate init failed");
  }
  zs.next_in = const_cast<Bytef*>(input.data());
  zs.avail_in = static_cast<uInt>(input.size());
  zs.next_out = out.data();
  zs.avail_out = static_cast<uInt>(out.size());

  const int rc = inflate(&zs, Z_FINISH);
  const std::size_t produced = zs.total_out;
  const std::size_t consumed = zs.total_in;
  inflateEnd(&zs);

  // Z_FINISH with an exact-size output buffer must land precisely on
  // Z_STREAM_END having eaten the whole input; anything else -- truncated
  // stream, stream that wants more output, garbage bytes -- is corruption.
  if (rc != Z_STREAM_END || produced != decoded_size ||
      consumed != input.size()) {
    throw CompressError("corrupt deflate stream in compressed column");
  }
}

#else  // !CAUSEWAY_HAS_ZLIB

bool compression_available() { return false; }

std::optional<std::vector<std::uint8_t>> deflate_bytes(
    std::span<const std::uint8_t>) {
  return std::nullopt;
}

void inflate_bytes(std::span<const std::uint8_t>, std::size_t,
                   std::vector<std::uint8_t>&) {
  throw CompressError(
      "this build lacks zlib: cannot inflate a compressed trace column");
}

#endif

}  // namespace causeway
