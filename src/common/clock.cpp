#include "common/clock.h"

#include <chrono>

namespace causeway {

Nanos steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace causeway
