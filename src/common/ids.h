// 128-bit universally unique identifiers.
//
// The paper's causality capture hinges on a "Function Universally Unique
// Identifier" (Function UUID) annotated onto every causal chain and
// propagated system-wide.  Uuid is that identifier: 128 random bits with
// value semantics, hashing, ordering and a canonical 8-4-4-4-12 hex
// rendering.
//
// Generation is thread-safe and, when seeded via `set_uuid_seed`, fully
// deterministic -- tests and benchmarks rely on reproducible chains.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace causeway {

struct Uuid {
  std::uint64_t hi{0};
  std::uint64_t lo{0};

  constexpr bool is_nil() const { return hi == 0 && lo == 0; }

  friend constexpr bool operator==(const Uuid&, const Uuid&) = default;
  friend constexpr auto operator<=>(const Uuid&, const Uuid&) = default;

  // Canonical lower-case "xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx" form.
  std::string to_string() const;

  // Parses the canonical form produced by to_string(); nullopt on any
  // malformed input (wrong length, misplaced dashes, non-hex digits).
  static std::optional<Uuid> parse(std::string_view text);

  // Fresh random identifier (thread-safe).
  static Uuid generate();
};

// Re-seeds the process-wide UUID stream.  Call at the start of a test or
// benchmark for reproducible identifiers; never required for correctness.
void set_uuid_seed(std::uint64_t seed);

}  // namespace causeway

template <>
struct std::hash<causeway::Uuid> {
  std::size_t operator()(const causeway::Uuid& u) const noexcept {
    // hi/lo are already uniformly random; fold them.
    return static_cast<std::size_t>(u.hi ^ (u.lo * 0x9e3779b97f4a7c15ull));
  }
};
