// Small deterministic random number generators.
//
// Workload generation and test sweeps need reproducible randomness that is
// independent of the standard library's unspecified distributions, so the
// project carries its own SplitMix64 (seeding / cheap streams) and
// xoshiro256** (bulk generation).
#pragma once

#include <cstdint>

namespace causeway {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n) { return next() % n; }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double real01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return real01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace causeway
