// Synthetic work for component implementations.
//
// The paper's experiments run real component bodies (parsing, rasterizing,
// ...).  Our reproduction replaces those bodies with calibrated synthetic
// work: `burn_cpu` consumes a requested amount of *per-thread CPU time*
// (verified against CLOCK_THREAD_CPUTIME_ID, so it is robust to preemption
// on a loaded single-core host), and `idle_for` models I/O-ish waiting that
// costs latency but no CPU.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace causeway {

// Spins until the calling thread has consumed ~cpu_ns additional CPU time.
void burn_cpu(Nanos cpu_ns);

// Blocks the calling thread for ~wall_ns without consuming CPU.
void idle_for(Nanos wall_ns);

// A deterministic integer mixing workload: `rounds` rounds over `seed`.
// Returns the folded value so the optimizer cannot delete the loop.
std::uint64_t churn(std::uint64_t seed, std::uint64_t rounds);

}  // namespace causeway
