// String helpers: printf-style formatting (libstdc++ 12 lacks std::format)
// and small joining/escaping utilities used by the exporters.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace causeway {

// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Escapes &, <, >, " for XML attribute/text contexts.
std::string xml_escape(std::string_view s);

// Escapes ", \ and control characters for JSON string contexts.
std::string json_escape(std::string_view s);

}  // namespace causeway
