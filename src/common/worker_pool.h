// A small persistent worker pool for the analysis tier's data-parallel
// phases.
//
// Several analysis stages fan independent work items over threads: the DSCG
// rebuilds dirty chains in parallel, the sharded LogDatabase ingests record
// partitions in parallel, and the trace reader decodes complete segments in
// parallel.  Before this pool each site spawned (and joined) fresh
// std::threads per batch, which is wasteful at streaming cadence -- a drain
// epoch can arrive every few milliseconds, and thread creation alone costs
// a meaningful fraction of that budget.
//
// WorkerPool keeps the threads alive across batches.  parallel_for(n, fn)
// runs fn(0..n-1) with the calling thread participating, distributes items
// via one shared atomic cursor (items are expected to be coarse -- a chain
// rebuild, a shard partition, a trace segment), and returns when every item
// finished.  The first exception a worker catches is rethrown on the
// caller.  Calls are serialized: concurrent parallel_for invocations queue
// behind one another rather than interleave, which keeps the pool safe to
// share process-wide (WorkerPool::shared()).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace causeway {

class WorkerPool {
 public:
  // The process-wide pool: hardware_concurrency - 1 helper threads (the
  // caller is the final worker), started lazily on first use.
  static WorkerPool& shared();

  explicit WorkerPool(std::size_t helper_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Helpers + the calling thread.
  std::size_t concurrency() const { return helpers_.size() + 1; }

  // Runs fn(i) for every i in [0, n), caller participating.  Returns when
  // all n items completed; rethrows the first exception any item threw.
  // Serialized against concurrent calls.  Never call from inside a pool
  // item (it would deadlock on the call lock).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void helper_loop();
  void run_slice(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::vector<std::thread> helpers_;

  std::mutex call_mu_;  // serializes parallel_for invocations

  std::mutex mu_;  // guards the job slot below
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t job_id_{0};
  const std::function<void(std::size_t)>* fn_{nullptr};
  std::size_t n_{0};
  std::size_t running_{0};
  bool stop_{false};
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
};

}  // namespace causeway
