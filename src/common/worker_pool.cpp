#include "common/worker_pool.h"

#include <algorithm>
#include <atomic>

namespace causeway {

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool([] {
    const std::size_t hw = std::thread::hardware_concurrency();
    // Cap: past ~16 threads the analysis phases are memory-bound, and the
    // pool must stay polite inside bigger hosts running many processes.
    const std::size_t capped = std::clamp<std::size_t>(hw, 1, 16);
    return capped - 1;
  }());
  return pool;
}

WorkerPool::WorkerPool(std::size_t helper_threads) {
  helpers_.reserve(helper_threads);
  for (std::size_t i = 0; i < helper_threads; ++i) {
    helpers_.emplace_back([this] { helper_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : helpers_) t.join();
}

void WorkerPool::run_slice(const std::function<void(std::size_t)>& fn,
                           std::size_t n) {
  for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WorkerPool::helper_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      fn = fn_;
      n = n_;
    }
    run_slice(*fn, n);
    {
      std::lock_guard lock(mu_);
      if (--running_ == 0) cv_done_.notify_all();
    }
  }
}

void WorkerPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (helpers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard call_lock(call_mu_);
  error_ = nullptr;
  next_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    fn_ = &fn;
    n_ = n;
    running_ = helpers_.size();
    ++job_id_;
  }
  cv_start_.notify_all();
  run_slice(fn, n);
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return running_ == 0; });
  }
  if (error_) std::rethrow_exception(error_);
}

}  // namespace causeway
