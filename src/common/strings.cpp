#include "common/strings.h"

#include <cstdio>

namespace causeway {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace causeway
