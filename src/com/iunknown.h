// Minimal COM object model: IUnknown-style intrusive reference counting and
// string-keyed QueryInterface.
//
// The paper's second runtime is "an embedded infrastructure similar to COM"
// [11].  This module reproduces the parts its monitoring story depends on:
// component objects living in apartments, ORPC-style cross-apartment calls,
// and (in apartment.h) the single-threaded apartment's message-loop
// reentrancy that breaks observation O1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <utility>

namespace causeway::com {

using HResult = std::int32_t;
inline constexpr HResult kOk = 0;
inline constexpr HResult kNoInterface = -2147467262;  // E_NOINTERFACE
inline constexpr HResult kFail = -2147467259;         // E_FAIL

class IUnknown {
 public:
  virtual ~IUnknown() = default;

  // String-keyed QueryInterface; derived classes chain to the base.
  virtual HResult query_interface(std::string_view iid, void** out) {
    if (iid == "IUnknown") {
      *out = this;
      add_ref();
      return kOk;
    }
    *out = nullptr;
    return kNoInterface;
  }

  std::uint32_t add_ref() {
    return refs_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::uint32_t release() {
    const std::uint32_t left =
        refs_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (left == 0) delete this;
    return left;
  }

 protected:
  IUnknown() = default;

 private:
  std::atomic<std::uint32_t> refs_{1};
};

// Intrusive smart pointer over IUnknown-derived types.
template <typename T>
class ComPtr {
 public:
  ComPtr() = default;
  // Adopts an existing reference (the conventional "attach" construction).
  explicit ComPtr(T* raw) : ptr_(raw) {}

  ComPtr(const ComPtr& other) : ptr_(other.ptr_) {
    if (ptr_) ptr_->add_ref();
  }
  ComPtr(ComPtr&& other) noexcept : ptr_(std::exchange(other.ptr_, nullptr)) {}

  ComPtr& operator=(ComPtr other) noexcept {
    std::swap(ptr_, other.ptr_);
    return *this;
  }

  ~ComPtr() {
    if (ptr_) ptr_->release();
  }

  T* get() const { return ptr_; }
  T* operator->() const { return ptr_; }
  T& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  template <typename... Args>
  static ComPtr make(Args&&... args) {
    return ComPtr(new T(std::forward<Args>(args)...));
  }

 private:
  T* ptr_{nullptr};
};

}  // namespace causeway::com
