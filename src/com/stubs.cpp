#include "com/stubs.h"

#include "monitor/ftl.h"
#include "monitor/runtime.h"
#include "monitor/tss.h"

namespace causeway::com {

monitor::CallKind ComCall::decide_kind(ComRuntime& runtime, ComObjectId target,
                                       const ComMethodSpec& m) {
  if (m.post) return monitor::CallKind::kOneway;
  auto entry = runtime.find_object(target);
  if (entry && entry->apartment == Apartment::current()) {
    return monitor::CallKind::kCollocated;
  }
  return monitor::CallKind::kSync;
}

ComCall::ComCall(ComRuntime& runtime, ComObjectId target,
                 const ComMethodSpec& m, bool instrumented)
    : runtime_(runtime),
      target_(target),
      method_(m),
      kind_(decide_kind(runtime, target, m)),
      probes_(instrumented ? runtime.monitor() : nullptr,
              monitor::CallIdentity{m.interface_name, m.method_name, target},
              kind_) {}

WireCursor ComCall::invoke() {
  const monitor::Ftl ftl = probes_.on_stub_start();
  if (ftl.valid()) monitor::append_ftl_trailer(request_, ftl);

  OrpcReply reply = runtime_.call(target_, method_.id, request_.bytes());

  reply_payload_ = std::move(reply.payload);
  WireCursor cursor(reply_payload_.data(), reply_payload_.size());
  std::optional<monitor::Ftl> probe4_source = monitor::peel_ftl_trailer(cursor);
  if (!runtime_.strict_inout_ftl()) {
    // Legacy COM stub: probe 4 trusts the thread slot instead of the inout
    // FTL.  Correct only as long as the channel hooks restored the slot
    // after any nested dispatch this thread served while blocked.
    const monitor::Ftl slot = monitor::tss_get();
    probe4_source =
        slot.valid() ? std::optional<monitor::Ftl>(slot) : std::nullopt;
  }
  monitor::CallOutcome outcome = monitor::CallOutcome::kOk;
  if (reply.status == CallStatus::kAppError) {
    outcome = monitor::CallOutcome::kAppError;
  } else if (reply.status != CallStatus::kOk) {
    outcome = monitor::CallOutcome::kSystemError;
  }
  probes_.on_stub_end(probe4_source, outcome);

  switch (reply.status) {
    case CallStatus::kOk:
      return cursor;
    case CallStatus::kAppError:
      app_error_ = true;
      app_error_name_ = std::move(reply.error_name);
      app_error_text_ = std::move(reply.error_text);
      return cursor;
    case CallStatus::kNoObject:
      throw ComError("no such object");
    case CallStatus::kSystemError:
      throw ComError("system error: " + reply.error_text);
  }
  throw ComError("corrupt reply status");
}

void ComCall::invoke_post() {
  const monitor::Ftl child_ftl = probes_.on_stub_start();
  if (child_ftl.valid()) monitor::append_ftl_trailer(request_, child_ftl);
  runtime_.post(target_, method_.id, request_.bytes());
  probes_.on_stub_end_oneway();
}

ComSkelGuard::ComSkelGuard(ComDispatchContext& ctx,
                           const monitor::CallIdentity& identity,
                           WireCursor& in, bool instrumented)
    : probes_(instrumented && ctx.runtime ? ctx.runtime->monitor() : nullptr,
              identity, ctx.kind),
      instrumented_(instrumented) {
  std::optional<monitor::Ftl> request_ftl = monitor::peel_ftl_trailer(in);
  if (instrumented_) probes_.on_skel_start(request_ftl);
}

void ComSkelGuard::body_end(monitor::CallOutcome outcome) {
  if (body_ended_ || !instrumented_) return;
  body_ended_ = true;
  reply_ftl_ = probes_.on_skel_end(outcome);
}

void ComSkelGuard::seal(WireBuffer& out) {
  if (!instrumented_) return;
  body_end();
  if (reply_ftl_.valid()) monitor::append_ftl_trailer(out, reply_ftl_);
}

}  // namespace causeway::com
