// COM-side servant interface and dispatch context.
//
// Mirrors orb::Servant deliberately -- the same wire vocabulary on both
// runtimes is what lets the CORBA/COM bridge forward payloads (with the
// hidden FTL trailer intact) byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/wire.h"
#include "com/iunknown.h"
#include "monitor/events.h"

namespace causeway::com {

using ComObjectId = std::uint64_t;
using MethodId = std::uint32_t;

enum class CallStatus : std::uint8_t {
  kOk = 0,
  kAppError = 1,
  kNoObject = 2,
  kSystemError = 3,
};

struct ComDispatchResult {
  CallStatus status{CallStatus::kOk};
  std::string error_name;
  std::string error_text;
};

class ComRuntime;

struct ComDispatchContext {
  monitor::CallKind kind{monitor::CallKind::kSync};
  ComRuntime* runtime{nullptr};
  ComObjectId object_id{0};
};

class ComServant : public IUnknown {
 public:
  virtual std::string_view interface_name() const = 0;
  virtual ComDispatchResult com_dispatch(ComDispatchContext& ctx,
                                         MethodId method, WireCursor& in,
                                         WireBuffer& out) = 0;
};

}  // namespace causeway::com
