// Apartments and the ORPC channel.
//
// The COM-like runtime hosts component objects in apartments:
//
//   STA  one dedicated thread runs a message loop over the apartment queue.
//        An outbound blocking call from an STA thread *pumps*: while waiting
//        for its reply it keeps dispatching incoming requests.  This is the
//        paper's crucial observation -- "the apartment thread T can switch
//        to serve another incoming call C2 when the call C1 that T is
//        serving issues an outbound call C3 and suffers blocking" -- i.e.
//        observation O1 does NOT hold, and without countermeasures the
//        causal chains of C1 and C2 intertwine in the thread's TSS.
//
//   MTA  a small pool dispatches requests directly; O1 holds as in the ORB.
//
// The countermeasure is the *channel hook* (paper Sec. 2.2/2.3: "only a very
// limited amount of instrumentation before and after call sending and
// dispatching is required to the COM infrastructure"): every nested dispatch
// saves the thread's FTL slot on entry and restores it on exit
// (monitor::FtlSaver).  ComRuntime::set_channel_hooks(false) disables them,
// reproducing the chain-mingling failure the paper warns about -- tests and
// bench E8 exercise both settings.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "com/servant.h"

namespace causeway::monitor {
class MonitorRuntime;
}

namespace causeway::com {

using ApartmentId = std::uint32_t;

struct OrpcReply {
  CallStatus status{CallStatus::kOk};
  std::string error_name;
  std::string error_text;
  std::vector<std::uint8_t> payload;
};

// Completion cell for callers that can block on a condition variable
// (MTA workers and plain threads).
struct ReplyToken {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<OrpcReply> reply;

  void set(OrpcReply r) {
    {
      std::lock_guard lock(mu);
      reply = std::move(r);
    }
    cv.notify_all();
  }
  OrpcReply wait() {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return reply.has_value(); });
    return std::move(*reply);
  }
};

class StaApartment;

struct OrpcEnvelope {
  enum class Kind : std::uint8_t { kRequest, kReply } kind{Kind::kRequest};

  // request
  std::uint64_t call_id{0};
  ComObjectId object{0};
  MethodId method{0};
  bool post{false};  // fire-and-forget (COM-side oneway)
  std::vector<std::uint8_t> payload;

  // reply routing: exactly one of these is set for non-post requests
  std::shared_ptr<ReplyToken> token;
  StaApartment* reply_to_sta{nullptr};

  // reply
  OrpcReply reply;
};

class Apartment {
 public:
  Apartment(ApartmentId id, ComRuntime& runtime) : id_(id), runtime_(runtime) {}
  virtual ~Apartment() = default;

  ApartmentId id() const { return id_; }

  // Enqueues an envelope for this apartment's thread(s).
  virtual void submit(OrpcEnvelope env) = 0;
  virtual void shutdown() = 0;

  // The apartment the calling thread currently executes in, or null.
  static Apartment* current();

 protected:
  void dispatch_request(OrpcEnvelope& env);

  class ScopedCurrent {
   public:
    explicit ScopedCurrent(Apartment* a);
    ~ScopedCurrent();

   private:
    Apartment* previous_;
  };

  ApartmentId id_;
  ComRuntime& runtime_;
};

class StaApartment final : public Apartment {
 public:
  StaApartment(ApartmentId id, ComRuntime& runtime);
  ~StaApartment() override;

  void submit(OrpcEnvelope env) override;
  void shutdown() override;

  // Blocks the calling STA thread until the reply for `call_id` arrives,
  // dispatching (pumping) any incoming requests in the meantime.  Must be
  // called on this apartment's thread.
  OrpcReply pump_until_reply(std::uint64_t call_id);

 private:
  void loop();

  BlockingQueue<OrpcEnvelope> queue_;
  std::map<std::uint64_t, OrpcReply> stashed_replies_;
  std::thread thread_;
};

class MtaApartment final : public Apartment {
 public:
  MtaApartment(ApartmentId id, ComRuntime& runtime, std::size_t workers);
  ~MtaApartment() override;

  void submit(OrpcEnvelope env) override;
  void shutdown() override;

 private:
  BlockingQueue<OrpcEnvelope> queue_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
};

// The COM runtime: object registry, apartments, ORPC call engine.
class ComRuntime {
 public:
  explicit ComRuntime(monitor::MonitorRuntime* monitor,
                      bool channel_hooks = true)
      : monitor_(monitor), channel_hooks_(channel_hooks) {}
  ~ComRuntime();
  ComRuntime(const ComRuntime&) = delete;
  ComRuntime& operator=(const ComRuntime&) = delete;

  ApartmentId create_sta();
  ApartmentId create_mta(std::size_t workers = 2);

  // Registers a servant in an apartment; the runtime holds one reference.
  ComObjectId register_object(ApartmentId apartment, ComPtr<ComServant> obj);
  void revoke_object(ComObjectId id);

  // ORPC call engine.  Same-apartment calls dispatch directly on the caller
  // thread (the collocated case); cross-apartment calls queue and block
  // (pumping if the caller is an STA thread).
  OrpcReply call(ComObjectId target, MethodId method,
                 std::vector<std::uint8_t> payload);
  void post(ComObjectId target, MethodId method,
            std::vector<std::uint8_t> payload);

  // Direct dispatch used by apartments and the collocated path.
  OrpcReply dispatch_now(ComObjectId target, MethodId method,
                         const std::vector<std::uint8_t>& payload,
                         monitor::CallKind kind);

  monitor::MonitorRuntime* monitor() const { return monitor_; }

  bool channel_hooks_enabled() const { return channel_hooks_; }
  void set_channel_hooks(bool enabled) { channel_hooks_ = enabled; }

  // Strict mode (default) transports the FTL as a true inout parameter: the
  // reply trailer carries it back and probe 4 continues from it, so the stub
  // itself latches its chain -- synchronous calls self-heal even across STA
  // multiplexing.  Legacy mode models the paper's pre-fix COM
  // instrumentation, where probe 4 trusts the thread's TSS slot: under STA
  // reentrancy that slot may hold *another* call's chain, and only the
  // channel hooks (save/restore around nested dispatches) keep the chains
  // from mingling.  Tests and bench E8 run all four combinations.
  bool strict_inout_ftl() const { return strict_inout_ftl_; }
  void set_strict_inout_ftl(bool strict) { strict_inout_ftl_ = strict; }

  void shutdown();

  struct ObjectEntry {
    Apartment* apartment{nullptr};
    ComPtr<ComServant> servant;
  };
  std::optional<ObjectEntry> find_object(ComObjectId id) const;

 private:
  monitor::MonitorRuntime* monitor_;
  std::atomic<bool> channel_hooks_;
  std::atomic<bool> strict_inout_ftl_{true};

  mutable std::mutex mu_;
  std::map<ApartmentId, std::unique_ptr<Apartment>> apartments_;
  std::map<ComObjectId, ObjectEntry> objects_;
  ApartmentId next_apartment_{1};
  ComObjectId next_object_{1};
  std::atomic<std::uint64_t> next_call_{1};
  bool stopped_{false};
};

}  // namespace causeway::com
