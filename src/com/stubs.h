// COM-side proxy/stub support with monitoring probes.
//
// Mirrors orb/stubs.h for the COM runtime: ComCall is the client half
// (probes 1/4, FTL trailer, typed status), ComSkelGuard the server half
// (probes 2/3, trailer peel/seal).  The paper instruments COM proxies and
// stubs through the same IDL-compiler route as CORBA; here COM components
// are hand-written against these helpers, which keeps the probe protocol
// byte-identical across both runtimes -- a requirement for the bridge.
#pragma once

#include <optional>
#include <string_view>

#include "common/wire.h"
#include "com/apartment.h"
#include "com/servant.h"
#include "monitor/probes.h"

namespace causeway::com {

struct ComMethodSpec {
  std::string_view interface_name;
  std::string_view method_name;
  MethodId id{0};
  bool post{false};  // COM-side fire-and-forget (oneway analogue)
};

class ComError : public std::runtime_error {
 public:
  explicit ComError(const std::string& what) : std::runtime_error(what) {}
};

class ComCall {
 public:
  // Whether the call will be same-apartment (collocated) cannot be known
  // before routing; the probe kind is chosen from the runtime's registry.
  ComCall(ComRuntime& runtime, ComObjectId target, const ComMethodSpec& m,
          bool instrumented);

  WireBuffer& request() { return request_; }

  // Synchronous invocation; throws ComError on infrastructure failure.
  // Application errors set has_app_error() as in orb::ClientCall.
  WireCursor invoke();
  void invoke_post();

  bool has_app_error() const { return app_error_; }
  const std::string& app_error_name() const { return app_error_name_; }
  const std::string& app_error_text() const { return app_error_text_; }

 private:
  static monitor::CallKind decide_kind(ComRuntime& runtime, ComObjectId target,
                                       const ComMethodSpec& m);

  ComRuntime& runtime_;
  ComObjectId target_;
  ComMethodSpec method_;
  monitor::CallKind kind_;
  monitor::StubProbes probes_;
  WireBuffer request_;
  std::vector<std::uint8_t> reply_payload_;
  bool app_error_{false};
  std::string app_error_name_;
  std::string app_error_text_;
};

class ComSkelGuard {
 public:
  ComSkelGuard(ComDispatchContext& ctx, const monitor::CallIdentity& identity,
               WireCursor& in, bool instrumented);

  void body_end(monitor::CallOutcome outcome = monitor::CallOutcome::kOk);
  void seal(WireBuffer& out);

 private:
  monitor::SkelProbes probes_;
  bool instrumented_;
  bool body_ended_{false};
  monitor::Ftl reply_ftl_;
};

}  // namespace causeway::com
