#include "com/apartment.h"

#include "monitor/tss.h"

namespace causeway::com {
namespace {

thread_local Apartment* t_current_apartment = nullptr;

}  // namespace

Apartment* Apartment::current() { return t_current_apartment; }

Apartment::ScopedCurrent::ScopedCurrent(Apartment* a)
    : previous_(t_current_apartment) {
  t_current_apartment = a;
}

Apartment::ScopedCurrent::~ScopedCurrent() {
  t_current_apartment = previous_;
}

void Apartment::dispatch_request(OrpcEnvelope& env) {
  // The channel hook: save/restore the thread's FTL slot around the
  // dispatch so that when an STA thread multiplexes between blocked calls,
  // each call resumes with its own chain (paper Sec. 2.2).  Without the
  // hook the nested call's FTL is left behind and chains intertwine.
  std::optional<monitor::FtlSaver> hook;
  if (runtime_.channel_hooks_enabled()) hook.emplace();

  OrpcReply reply = runtime_.dispatch_now(
      env.object, env.method, env.payload,
      env.post ? monitor::CallKind::kOneway : monitor::CallKind::kSync);
  if (env.post) return;

  if (env.reply_to_sta != nullptr) {
    OrpcEnvelope back;
    back.kind = OrpcEnvelope::Kind::kReply;
    back.call_id = env.call_id;
    back.reply = std::move(reply);
    env.reply_to_sta->submit(std::move(back));
  } else if (env.token) {
    env.token->set(std::move(reply));
  }
}

// --- STA ---

StaApartment::StaApartment(ApartmentId id, ComRuntime& runtime)
    : Apartment(id, runtime) {
  thread_ = std::thread([this] { loop(); });
}

StaApartment::~StaApartment() { shutdown(); }

void StaApartment::submit(OrpcEnvelope env) { queue_.push(std::move(env)); }

void StaApartment::shutdown() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void StaApartment::loop() {
  ScopedCurrent scope(this);
  while (auto env = queue_.pop()) {
    if (env->kind == OrpcEnvelope::Kind::kRequest) {
      dispatch_request(*env);
    }
    // Replies reaching the top-level loop have no waiter anymore; drop.
  }
}

OrpcReply StaApartment::pump_until_reply(std::uint64_t call_id) {
  for (;;) {
    // A nested frame may have stashed our reply while we were dispatching.
    if (auto it = stashed_replies_.find(call_id);
        it != stashed_replies_.end()) {
      OrpcReply r = std::move(it->second);
      stashed_replies_.erase(it);
      return r;
    }
    auto env = queue_.pop();
    if (!env) {
      OrpcReply dead;
      dead.status = CallStatus::kSystemError;
      dead.error_text = "apartment shut down while waiting for reply";
      return dead;
    }
    if (env->kind == OrpcEnvelope::Kind::kReply) {
      if (env->call_id == call_id) return std::move(env->reply);
      stashed_replies_[env->call_id] = std::move(env->reply);
      continue;
    }
    // This is the O1 violation: we are *inside* call C1's frame, and the
    // apartment thread switches to serve incoming call C2.
    dispatch_request(*env);
  }
}

// --- MTA ---

MtaApartment::MtaApartment(ApartmentId id, ComRuntime& runtime,
                           std::size_t workers)
    : Apartment(id, runtime) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] {
      ScopedCurrent scope(this);
      while (auto env = queue_.pop()) {
        if (env->kind == OrpcEnvelope::Kind::kRequest) {
          // MTA workers never pump: a worker is dedicated to its call until
          // completion, so O1 holds and the hook is technically redundant;
          // it still runs for uniformity with the STA path.
          dispatch_request(*env);
        }
      }
    });
  }
}

MtaApartment::~MtaApartment() { shutdown(); }

void MtaApartment::submit(OrpcEnvelope env) { queue_.push(std::move(env)); }

void MtaApartment::shutdown() {
  std::call_once(shutdown_once_, [&] {
    queue_.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  });
}

// --- runtime ---

ComRuntime::~ComRuntime() { shutdown(); }

void ComRuntime::shutdown() {
  std::map<ApartmentId, std::unique_ptr<Apartment>> apartments;
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    apartments.swap(apartments_);
    objects_.clear();
  }
  for (auto& [id, apt] : apartments) apt->shutdown();
}

ApartmentId ComRuntime::create_sta() {
  std::lock_guard lock(mu_);
  const ApartmentId id = next_apartment_++;
  apartments_[id] = std::make_unique<StaApartment>(id, *this);
  return id;
}

ApartmentId ComRuntime::create_mta(std::size_t workers) {
  std::lock_guard lock(mu_);
  const ApartmentId id = next_apartment_++;
  apartments_[id] = std::make_unique<MtaApartment>(id, *this, workers);
  return id;
}

ComObjectId ComRuntime::register_object(ApartmentId apartment,
                                        ComPtr<ComServant> obj) {
  std::lock_guard lock(mu_);
  auto it = apartments_.find(apartment);
  if (it == apartments_.end()) return 0;
  const ComObjectId id = next_object_++;
  objects_[id] = ObjectEntry{it->second.get(), std::move(obj)};
  return id;
}

void ComRuntime::revoke_object(ComObjectId id) {
  std::lock_guard lock(mu_);
  objects_.erase(id);
}

std::optional<ComRuntime::ObjectEntry> ComRuntime::find_object(
    ComObjectId id) const {
  std::lock_guard lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

OrpcReply ComRuntime::dispatch_now(ComObjectId target, MethodId method,
                                   const std::vector<std::uint8_t>& payload,
                                   monitor::CallKind kind) {
  OrpcReply reply;
  auto entry = find_object(target);
  if (!entry) {
    reply.status = CallStatus::kNoObject;
    reply.error_text = "no such object";
    return reply;
  }
  ComDispatchContext ctx;
  ctx.kind = kind;
  ctx.runtime = this;
  ctx.object_id = target;
  WireCursor in(payload.data(), payload.size());
  WireBuffer out;
  try {
    ComDispatchResult r = entry->servant->com_dispatch(ctx, method, in, out);
    reply.status = r.status;
    reply.error_name = std::move(r.error_name);
    reply.error_text = std::move(r.error_text);
    reply.payload = std::move(out).take();
  } catch (const std::exception& e) {
    reply.status = CallStatus::kSystemError;
    reply.error_text = e.what();
  }
  return reply;
}

OrpcReply ComRuntime::call(ComObjectId target, MethodId method,
                           std::vector<std::uint8_t> payload) {
  auto entry = find_object(target);
  if (!entry) {
    OrpcReply reply;
    reply.status = CallStatus::kNoObject;
    reply.error_text = "no such object";
    return reply;
  }

  Apartment* caller = Apartment::current();
  if (entry->apartment == caller) {
    // Same apartment: direct call on this thread, no marshaling hop --
    // the COM analogue of the collocated case.
    return dispatch_now(target, method, payload,
                        monitor::CallKind::kCollocated);
  }

  OrpcEnvelope env;
  env.kind = OrpcEnvelope::Kind::kRequest;
  env.call_id = next_call_.fetch_add(1);
  env.object = target;
  env.method = method;
  env.payload = std::move(payload);

  if (auto* sta = dynamic_cast<StaApartment*>(caller)) {
    env.reply_to_sta = sta;
    const std::uint64_t call_id = env.call_id;
    entry->apartment->submit(std::move(env));
    return sta->pump_until_reply(call_id);
  }

  env.token = std::make_shared<ReplyToken>();
  auto token = env.token;
  entry->apartment->submit(std::move(env));
  return token->wait();
}

void ComRuntime::post(ComObjectId target, MethodId method,
                      std::vector<std::uint8_t> payload) {
  auto entry = find_object(target);
  if (!entry) return;
  OrpcEnvelope env;
  env.kind = OrpcEnvelope::Kind::kRequest;
  env.call_id = next_call_.fetch_add(1);
  env.object = target;
  env.method = method;
  env.post = true;
  env.payload = std::move(payload);
  entry->apartment->submit(std::move(env));
}

}  // namespace causeway::com
