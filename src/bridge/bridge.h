// Bidirectional CORBA/COM bridging.
//
// Paper Sec. 2.3: "as long as the bi-directional CORBA-COM bridge is aware
// of the extra FTL data hidden in the instrumented calls, and delivers it
// from the caller's domain to the callee's domain, causality will seamlessly
// propagate across the boundary, and continue to advance in the other
// domain."
//
// Both runtimes share the wire vocabulary, so the *FTL-aware* bridge is a
// byte-level forwarder: the hidden trailer rides through untouched and the
// chain keeps advancing on the far side.  The *naive* variant strips
// anything it does not recognize from the payload -- the behaviour of a
// bridge that is NOT aware of the FTL -- and reproduces exactly the failure
// the paper warns about: the far side starts a fresh, unlinked chain.
// Benchmarks and tests run both variants.
#pragma once

#include <string>
#include <string_view>

#include "com/apartment.h"
#include "orb/domain.h"
#include "orb/servant.h"

namespace causeway::bridge {

enum class FtlPolicy {
  kForward,  // FTL-aware: deliver the hidden trailer to the other domain
  kStrip,    // naive: drop unknown trailing data (breaks the tunnel)
};

// CORBA-facing object whose implementation lives in the COM runtime.
// Activate it in a ProcessDomain; every dispatched method is forwarded to
// the COM object byte-for-byte.
class ComBackedServant final : public orb::Servant {
 public:
  ComBackedServant(std::string interface_name, com::ComRuntime& com,
                   com::ComObjectId target, FtlPolicy policy)
      : interface_name_(std::move(interface_name)),
        com_(com),
        target_(target),
        policy_(policy) {}

  std::string_view interface_name() const override { return interface_name_; }

  orb::DispatchResult dispatch(orb::DispatchContext& ctx,
                               orb::MethodId method, WireCursor& in,
                               WireBuffer& out) override;

 private:
  std::string interface_name_;
  com::ComRuntime& com_;
  com::ComObjectId target_;
  FtlPolicy policy_;
};

// COM-facing object whose implementation lives behind a CORBA reference.
class OrbBackedComServant final : public com::ComServant {
 public:
  OrbBackedComServant(std::string interface_name, orb::ProcessDomain& domain,
                      orb::ObjectRef target, FtlPolicy policy)
      : interface_name_(std::move(interface_name)),
        domain_(domain),
        target_(std::move(target)),
        policy_(policy) {}

  std::string_view interface_name() const override { return interface_name_; }

  com::ComDispatchResult com_dispatch(com::ComDispatchContext& ctx,
                                      com::MethodId method, WireCursor& in,
                                      WireBuffer& out) override;

 private:
  std::string interface_name_;
  orb::ProcessDomain& domain_;
  orb::ObjectRef target_;
  FtlPolicy policy_;
};

}  // namespace causeway::bridge
