#include "bridge/bridge.h"

#include "monitor/ftl.h"

namespace causeway::bridge {
namespace {

// Copies the remaining payload, honoring the FTL policy: kForward keeps the
// hidden trailer, kStrip peels and discards it (a trailer-unaware bridge
// would re-marshal only the declared parameters).
std::vector<std::uint8_t> relay_payload(WireCursor& in, FtlPolicy policy) {
  if (policy == FtlPolicy::kStrip) {
    (void)monitor::peel_ftl_trailer(in);  // drop it
  }
  const auto rest = in.rest();
  return {rest.begin(), rest.end()};
}

void relay_reply_payload(const std::vector<std::uint8_t>& payload,
                         FtlPolicy policy, WireBuffer& out) {
  if (policy == FtlPolicy::kStrip) {
    WireCursor cursor(payload.data(), payload.size());
    (void)monitor::peel_ftl_trailer(cursor);
    const auto rest = cursor.rest();
    out.append_raw(rest);
    return;
  }
  out.append_raw(payload);
}

}  // namespace

orb::DispatchResult ComBackedServant::dispatch(orb::DispatchContext& ctx,
                                               orb::MethodId method,
                                               WireCursor& in,
                                               WireBuffer& out) {
  (void)ctx;
  com::OrpcReply reply =
      com_.call(target_, method, relay_payload(in, policy_));

  orb::DispatchResult result;
  switch (reply.status) {
    case com::CallStatus::kOk:
      break;
    case com::CallStatus::kAppError:
      result.status = orb::ReplyStatus::kAppError;
      break;
    case com::CallStatus::kNoObject:
      result.status = orb::ReplyStatus::kObjectNotFound;
      break;
    case com::CallStatus::kSystemError:
      result.status = orb::ReplyStatus::kSystemError;
      break;
  }
  result.error_name = std::move(reply.error_name);
  result.error_text = std::move(reply.error_text);
  relay_reply_payload(reply.payload, policy_, out);
  return result;
}

com::ComDispatchResult OrbBackedComServant::com_dispatch(
    com::ComDispatchContext& ctx, com::MethodId method, WireCursor& in,
    WireBuffer& out) {
  (void)ctx;
  com::ComDispatchResult result;
  try {
    orb::ReplyMessage reply = domain_.invoke_remote(
        target_, method, relay_payload(in, policy_));
    switch (reply.status) {
      case orb::ReplyStatus::kOk:
        break;
      case orb::ReplyStatus::kAppError:
        result.status = com::CallStatus::kAppError;
        break;
      case orb::ReplyStatus::kObjectNotFound:
        result.status = com::CallStatus::kNoObject;
        break;
      case orb::ReplyStatus::kSystemError:
        result.status = com::CallStatus::kSystemError;
        break;
    }
    result.error_name = std::move(reply.error_name);
    result.error_text = std::move(reply.error_text);
    relay_reply_payload(reply.payload, policy_, out);
  } catch (const std::exception& e) {
    result.status = com::CallStatus::kSystemError;
    result.error_text = e.what();
  }
  return result;
}

}  // namespace causeway::bridge
