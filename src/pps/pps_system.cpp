#include "pps/pps_system.h"

#include <thread>

#include "bridge/bridge.h"
#include "common/work.h"
#include "monitor/tss.h"

namespace causeway::pps {
namespace {

// Calibrated per-stage CPU costs (scaled by PpsConfig::cpu_scale).  These
// stand in for the real parse/layout/raster work of the paper's pipeline;
// what matters to the experiments is that each stage burns a *known* amount
// of per-thread CPU that the analysis should attribute correctly.
constexpr Nanos kNotifyCpu = 3 * kNanosPerMicro;
constexpr Nanos kReserveCpu = 2 * kNanosPerMicro;
constexpr Nanos kReleaseCpu = 1 * kNanosPerMicro;
constexpr Nanos kFontBaseCpu = 8 * kNanosPerMicro;
constexpr Nanos kFontPerNameCpu = 2 * kNanosPerMicro;
constexpr Nanos kParseBaseCpu = 15 * kNanosPerMicro;
constexpr Nanos kParsePerPageCpu = 3 * kNanosPerMicro;
constexpr Nanos kLayoutBaseCpu = 12 * kNanosPerMicro;
constexpr Nanos kLayoutPerElemCpu = 2 * kNanosPerMicro;
constexpr Nanos kConvertBaseCpu = 6 * kNanosPerMicro;
constexpr Nanos kRasterBaseCpu = 25 * kNanosPerMicro;
constexpr Nanos kRasterPerDpiCpu = 50;  // per dpi unit
constexpr Nanos kCompressBaseCpu = 10 * kNanosPerMicro;
constexpr Nanos kMarkCpu = 8 * kNanosPerMicro;
constexpr Nanos kSpoolCpu = 5 * kNanosPerMicro;
constexpr Nanos kSubmitCpu = 10 * kNanosPerMicro;

class Burner {
 public:
  explicit Burner(double scale) : scale_(scale) {}
  void operator()(Nanos ns) const {
    burn_cpu(static_cast<Nanos>(static_cast<double>(ns) * scale_));
  }

 private:
  double scale_;
};

// --- component implementations ---

class StatusMonitorImpl final : public PPS::StatusMonitor {
 public:
  explicit StatusMonitorImpl(Burner burn) : burn_(burn) {}
  void notify(std::int32_t job_id, const std::string& stage) override {
    (void)job_id;
    (void)stage;
    burn_(kNotifyCpu);
  }

 private:
  Burner burn_;
};

class ResourceManagerImpl final : public PPS::ResourceManager {
 public:
  explicit ResourceManagerImpl(Burner burn) : burn_(burn) {}
  std::int32_t reserve(std::int32_t amount) override {
    burn_(kReserveCpu);
    outstanding_ += amount;
    return outstanding_;
  }
  void release_units(std::int32_t amount) override {
    burn_(kReleaseCpu);
    outstanding_ -= amount;
  }

 private:
  Burner burn_;
  std::int32_t outstanding_{0};
};

class FontServiceImpl final : public PPS::FontService {
 public:
  explicit FontServiceImpl(Burner burn) : burn_(burn) {}
  std::vector<std::string> resolve(
      const std::vector<std::string>& names) override {
    burn_(kFontBaseCpu +
          kFontPerNameCpu * static_cast<Nanos>(names.size()));
    std::vector<std::string> resolved;
    resolved.reserve(names.size());
    for (const auto& n : names) resolved.push_back(n + ".pfb");
    return resolved;
  }

 private:
  Burner burn_;
};

class ParserImpl final : public PPS::Parser {
 public:
  explicit ParserImpl(Burner burn) : burn_(burn) {}
  std::vector<std::string> parse(const PPS::JobTicket& job) override {
    burn_(kParseBaseCpu + kParsePerPageCpu * job.pages);
    std::vector<std::string> elements;
    elements.reserve(static_cast<std::size_t>(job.pages) + 2);
    elements.push_back("header:" + job.name);
    for (std::int32_t p = 0; p < job.pages; ++p) {
      elements.push_back("page-content");
    }
    elements.push_back("trailer");
    return elements;
  }

 private:
  Burner burn_;
};

class LayoutEngineImpl final : public PPS::LayoutEngine {
 public:
  LayoutEngineImpl(Burner burn, ManualProbes* manual,
                   std::unique_ptr<PPS::FontServiceProxy> fonts,
                   std::unique_ptr<PPS::ResourceManagerProxy> resources)
      : burn_(burn),
        manual_(manual),
        fonts_(std::move(fonts)),
        resources_(std::move(resources)) {}

  std::int32_t layout(std::int32_t job_id,
                      const std::vector<std::string>& elements) override {
    (void)job_id;
    {
      ManualProbes::Scope scope(manual_, "PPS::ResourceManager::reserve");
      resources_->reserve(static_cast<std::int32_t>(elements.size()));
    }
    std::vector<std::string> fonts{"helvetica", "times"};
    {
      ManualProbes::Scope scope(manual_, "PPS::FontService::resolve");
      fonts = fonts_->resolve(fonts);
    }
    burn_(kLayoutBaseCpu +
          kLayoutPerElemCpu * static_cast<Nanos>(elements.size()));
    resources_->release_units(static_cast<std::int32_t>(elements.size()));
    return static_cast<std::int32_t>(elements.size());
  }

 private:
  Burner burn_;
  ManualProbes* manual_;
  std::unique_ptr<PPS::FontServiceProxy> fonts_;
  std::unique_ptr<PPS::ResourceManagerProxy> resources_;
};

class ColorConverterImpl final : public PPS::ColorConverter {
 public:
  explicit ColorConverterImpl(Burner burn) : burn_(burn) {}
  std::vector<std::uint8_t> convert(const std::vector<std::uint8_t>& raw,
                                    bool color) override {
    burn_(kConvertBaseCpu + static_cast<Nanos>(raw.size() / 8));
    std::vector<std::uint8_t> out = raw;
    if (!color) {
      for (auto& b : out) b = static_cast<std::uint8_t>(b & 0x7f);
    }
    return out;
  }

 private:
  Burner burn_;
};

class RasterizerImpl final : public PPS::Rasterizer {
 public:
  RasterizerImpl(Burner burn, ManualProbes* manual, std::size_t band_bytes,
                 std::unique_ptr<PPS::ColorConverterProxy> converter)
      : burn_(burn),
        manual_(manual),
        band_bytes_(band_bytes),
        converter_(std::move(converter)) {}

  PPS::Band rasterize(std::int32_t job_id, std::int32_t page,
                      std::int32_t dpi, bool color) override {
    burn_(kRasterBaseCpu + kRasterPerDpiCpu * dpi);
    std::vector<std::uint8_t> raw(band_bytes_);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      raw[i] = static_cast<std::uint8_t>((i * 31 + static_cast<std::size_t>(page)) & 0xff);
    }
    PPS::Band band;
    band.job_id = job_id;
    band.page = page;
    {
      ManualProbes::Scope scope(manual_, "PPS::ColorConverter::convert");
      band.bits = converter_->convert(raw, color);
    }
    return band;
  }

 private:
  Burner burn_;
  ManualProbes* manual_;
  std::size_t band_bytes_;
  std::unique_ptr<PPS::ColorConverterProxy> converter_;
};

class CompressorImpl final : public PPS::Compressor {
 public:
  explicit CompressorImpl(Burner burn) : burn_(burn) {}
  std::vector<std::uint8_t> compress(
      const std::vector<std::uint8_t>& bits) override {
    burn_(kCompressBaseCpu + static_cast<Nanos>(bits.size() / 4));
    // Toy RLE so the output depends on the input.
    std::vector<std::uint8_t> out;
    out.reserve(bits.size() / 2 + 8);
    for (std::size_t i = 0; i < bits.size();) {
      std::size_t run = 1;
      while (i + run < bits.size() && bits[i + run] == bits[i] && run < 255) {
        ++run;
      }
      out.push_back(static_cast<std::uint8_t>(run));
      out.push_back(bits[i]);
      i += run;
    }
    return out;
  }

 private:
  Burner burn_;
};

class MarkingEngineImpl final : public PPS::MarkingEngine {
 public:
  explicit MarkingEngineImpl(Burner burn) : burn_(burn) {}
  void mark(const PPS::Band& band) override {
    (void)band;
    burn_(kMarkCpu);
  }

 private:
  Burner burn_;
};

class SpoolerImpl final : public PPS::Spooler {
 public:
  explicit SpoolerImpl(Burner burn) : burn_(burn) {}
  void spool(std::int32_t job_id,
             const std::vector<std::uint8_t>& data) override {
    (void)job_id;
    (void)data;
    burn_(kSpoolCpu);
  }

 private:
  Burner burn_;
};

class JobQueueImpl final : public PPS::JobQueue {
 public:
  struct Downstream {
    std::unique_ptr<PPS::ParserProxy> parser;
    std::unique_ptr<PPS::LayoutEngineProxy> layout;
    std::unique_ptr<PPS::RasterizerProxy> rasterizer;
    std::unique_ptr<PPS::CompressorProxy> compressor;
    std::unique_ptr<PPS::MarkingEngineProxy> marking;
    std::unique_ptr<PPS::SpoolerProxy> spooler;
    std::unique_ptr<PPS::StatusMonitorProxy> status;
  };

  JobQueueImpl(Burner burn, ManualProbes* manual, Downstream downstream)
      : burn_(burn), manual_(manual), d_(std::move(downstream)) {}

  std::int32_t submit(const PPS::JobTicket& job) override {
    if (job.pages <= 0) {
      PPS::JobRejected rejected;
      rejected.reason = "job has no pages";
      throw rejected;
    }
    if (job.pages > PPS::kMaxPagesPerJob) {
      PPS::JobRejected rejected;
      rejected.reason = "job exceeds kMaxPagesPerJob";
      throw rejected;
    }
    ++pending_;
    d_.status->notify(job.job_id, "received");
    burn_(kSubmitCpu);

    std::vector<std::string> elements;
    {
      ManualProbes::Scope scope(manual_, "PPS::Parser::parse");
      elements = d_.parser->parse(job);
    }
    {
      ManualProbes::Scope scope(manual_, "PPS::LayoutEngine::layout");
      d_.layout->layout(job.job_id, elements);
    }
    for (std::int32_t page = 0; page < job.pages; ++page) {
      PPS::Band band;
      {
        ManualProbes::Scope scope(manual_, "PPS::Rasterizer::rasterize");
        band = d_.rasterizer->rasterize(job.job_id, page, job.dpi, job.color);
      }
      std::vector<std::uint8_t> compressed;
      {
        ManualProbes::Scope scope(manual_, "PPS::Compressor::compress");
        compressed = d_.compressor->compress(band.bits);
      }
      d_.marking->mark(band);
      {
        ManualProbes::Scope scope(manual_, "PPS::Spooler::spool");
        d_.spooler->spool(job.job_id, compressed);
      }
    }
    d_.status->notify(job.job_id, "done");
    --pending_;
    return job.job_id;
  }

  std::int32_t pending() override { return pending_; }

 private:
  Burner burn_;
  ManualProbes* manual_;
  Downstream d_;
  std::int32_t pending_{0};
};

}  // namespace

PpsSystem::PpsSystem(orb::Fabric& fabric, PpsConfig config,
                     ManualProbes* manual)
    : config_(config), manual_(manual) {
  if (config_.link_latency > 0) {
    fabric.set_default_latency(config_.link_latency);
  }

  // --- domains per topology ---
  std::size_t domain_count = 1;
  switch (config_.topology) {
    case PpsConfig::Topology::kMonolithic: domain_count = 1; break;
    case PpsConfig::Topology::kFourProcess: domain_count = 4; break;
    case PpsConfig::Topology::kPerComponent: domain_count = 11; break;
    case PpsConfig::Topology::kHybridCom: domain_count = 4; break;
  }
  static const char* kPlatforms[] = {"hpux-pa-risc", "nt-x86",
                                     "vxworks-ppc"};
  for (std::size_t d = 0; d < domain_count; ++d) {
    orb::DomainOptions opts;
    opts.process_name = "pps" + std::to_string(d);
    opts.node_name = "host" + std::to_string(d % 3);
    opts.processor_type = kPlatforms[d % 3];
    opts.monitor = config_.monitor;
    opts.policy = config_.policy;
    opts.pool_size = config_.pool_size;
    opts.collocation_optimization = config_.collocation_optimization;
    if (config_.hostile_clocks) {
      opts.clock_skew = static_cast<Nanos>(d) * 3600 * kNanosPerSecond;
      opts.clock_drift_ppm = 150.0 * (d % 2 == 0 ? 1.0 : -1.0);
    }
    domains_.push_back(std::make_unique<orb::ProcessDomain>(fabric, opts));
  }

  // Paper-style 4-process partition: P0 intake, P1 interpretation,
  // P2 rasterization, P3 output.
  auto domain_for = [&](std::size_t component) -> orb::ProcessDomain& {
    if (config_.topology == PpsConfig::Topology::kMonolithic) {
      return *domains_[0];
    }
    if (config_.topology == PpsConfig::Topology::kPerComponent) {
      return *domains_[component % domains_.size()];
    }
    // kFourProcess / kHybridCom, components indexed:
    // 0 JobQueue, 1 StatusMonitor, 2 Parser, 3 LayoutEngine, 4 FontService,
    // 5 ResourceManager, 6 Rasterizer, 7 ColorConverter, 8 Compressor,
    // 9 MarkingEngine, 10 Spooler
    switch (component) {
      case 0: case 1: return *domains_[0];
      case 2: case 3: case 4: case 5: return *domains_[1];
      case 6: case 7: return *domains_[2];
      default: return *domains_[3];
    }
  };

  const Burner burn(config_.cpu_scale);

  // The hybrid deployment hosts ColorConverter and Compressor in a COM
  // runtime (one STA each) and exposes them to the ORB through FTL-aware
  // bridges activated in the domains of their callers.
  const bool hybrid = config_.topology == PpsConfig::Topology::kHybridCom;
  if (hybrid) {
    com_monitor_ = std::make_unique<monitor::MonitorRuntime>(
        monitor::DomainIdentity{"pps-com", "com-host", "embedded-com"},
        config_.monitor, ClockDomain{});
    com_runtime_ = std::make_unique<com::ComRuntime>(com_monitor_.get());
  }

  // --- leaf components first ---
  orb::ProcessDomain& status_dom = domain_for(1);
  auto status_ref = PPS::activate_StatusMonitor(
      status_dom, std::make_shared<StatusMonitorImpl>(burn));

  orb::ProcessDomain& resource_dom = domain_for(5);
  auto resource_ref = PPS::activate_ResourceManager(
      resource_dom, std::make_shared<ResourceManagerImpl>(burn));

  orb::ProcessDomain& font_dom = domain_for(4);
  auto font_ref = PPS::activate_FontService(
      font_dom, std::make_shared<FontServiceImpl>(burn));

  orb::ProcessDomain& parser_dom = domain_for(2);
  auto parser_ref =
      PPS::activate_Parser(parser_dom, std::make_shared<ParserImpl>(burn));

  orb::ProcessDomain& convert_dom = domain_for(7);
  orb::ObjectRef convert_ref;
  orb::ProcessDomain& compress_dom = domain_for(8);
  orb::ObjectRef compress_ref;
  if (hybrid) {
    const auto convert_sta = com_runtime_->create_sta();
    const auto convert_id = PPS::register_ColorConverter(
        *com_runtime_, convert_sta, std::make_shared<ColorConverterImpl>(burn));
    convert_ref = convert_dom.activate(std::make_shared<bridge::ComBackedServant>(
        "PPS::ColorConverter", *com_runtime_, convert_id,
        bridge::FtlPolicy::kForward));

    const auto compress_sta = com_runtime_->create_sta();
    const auto compress_id = PPS::register_Compressor(
        *com_runtime_, compress_sta, std::make_shared<CompressorImpl>(burn));
    compress_ref = compress_dom.activate(std::make_shared<bridge::ComBackedServant>(
        "PPS::Compressor", *com_runtime_, compress_id,
        bridge::FtlPolicy::kForward));
  } else {
    convert_ref = PPS::activate_ColorConverter(
        convert_dom, std::make_shared<ColorConverterImpl>(burn));
    compress_ref = PPS::activate_Compressor(
        compress_dom, std::make_shared<CompressorImpl>(burn));
  }

  orb::ProcessDomain& marking_dom = domain_for(9);
  auto marking_ref = PPS::activate_MarkingEngine(
      marking_dom, std::make_shared<MarkingEngineImpl>(burn));

  orb::ProcessDomain& spool_dom = domain_for(10);
  auto spool_ref =
      PPS::activate_Spooler(spool_dom, std::make_shared<SpoolerImpl>(burn));

  // --- mid-tier ---
  orb::ProcessDomain& layout_dom = domain_for(3);
  auto layout_ref = PPS::activate_LayoutEngine(
      layout_dom,
      std::make_shared<LayoutEngineImpl>(
          burn, manual_,
          std::make_unique<PPS::FontServiceProxy>(layout_dom, font_ref),
          std::make_unique<PPS::ResourceManagerProxy>(layout_dom,
                                                      resource_ref)));

  orb::ProcessDomain& raster_dom = domain_for(6);
  auto raster_ref = PPS::activate_Rasterizer(
      raster_dom,
      std::make_shared<RasterizerImpl>(
          burn, manual_, config_.band_bytes,
          std::make_unique<PPS::ColorConverterProxy>(raster_dom,
                                                     convert_ref)));

  // --- intake ---
  orb::ProcessDomain& queue_dom = domain_for(0);
  JobQueueImpl::Downstream down;
  down.parser = std::make_unique<PPS::ParserProxy>(queue_dom, parser_ref);
  down.layout = std::make_unique<PPS::LayoutEngineProxy>(queue_dom, layout_ref);
  down.rasterizer =
      std::make_unique<PPS::RasterizerProxy>(queue_dom, raster_ref);
  down.compressor =
      std::make_unique<PPS::CompressorProxy>(queue_dom, compress_ref);
  down.marking =
      std::make_unique<PPS::MarkingEngineProxy>(queue_dom, marking_ref);
  down.spooler = std::make_unique<PPS::SpoolerProxy>(queue_dom, spool_ref);
  down.status =
      std::make_unique<PPS::StatusMonitorProxy>(queue_dom, status_ref);

  auto queue_ref = PPS::activate_JobQueue(
      queue_dom,
      std::make_shared<JobQueueImpl>(burn, manual_, std::move(down)));

  // The driver submits from the intake domain (the paper's client lives
  // with the front process).
  job_queue_proxy_ =
      std::make_unique<PPS::JobQueueProxy>(*domains_.front(), queue_ref);
}

PpsSystem::~PpsSystem() { shutdown(); }

void PpsSystem::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& d : domains_) d->shutdown();
  if (com_runtime_) com_runtime_->shutdown();
}

std::int32_t PpsSystem::submit_job(std::int32_t pages, std::int32_t dpi,
                                   bool color) {
  monitor::ScopedFreshChain fresh;
  PPS::JobTicket job;
  job.job_id = next_job_++;
  job.name = "job-" + std::to_string(job.job_id);
  job.pages = pages;
  job.dpi = dpi;
  job.color = color;
  ManualProbes::Scope scope(manual_, "PPS::JobQueue::submit");
  return job_queue_proxy_->submit(job);
}

void PpsSystem::wait_quiescent(Nanos poll, int stable_polls) const {
  // Monotonic accepted+dropped totals: a concurrent streaming drain shrinks
  // size() but never these, so quiescence detection works while draining.
  auto total = [&] {
    auto count = [](const monitor::MonitorRuntime& rt) {
      return rt.store().appended() + rt.store().dropped();
    };
    std::uint64_t n = 0;
    for (const auto& d : domains_) n += count(d->monitor_runtime());
    if (com_monitor_) n += count(*com_monitor_);
    return n;
  };
  std::uint64_t last = total();
  int stable = 0;
  while (stable < stable_polls) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(poll));
    const std::uint64_t now = total();
    stable = (now == last) ? stable + 1 : 0;
    last = now;
  }
}

void PpsSystem::set_probe_mode(monitor::ProbeMode mode) {
  config_.monitor.mode = mode;
  for (auto& d : domains_) {
    auto& rt = d->monitor_runtime();
    rt.set_config({config_.monitor.enabled, mode});
    rt.store().clear();
  }
  if (com_monitor_) {
    com_monitor_->set_config({config_.monitor.enabled, mode});
    com_monitor_->store().clear();
  }
}

void PpsSystem::attach_collector(monitor::Collector& collector) const {
  for (const auto& d : domains_) collector.attach(&d->monitor_runtime());
  if (com_monitor_) collector.attach(com_monitor_.get());
}

monitor::CollectedLogs PpsSystem::collect() const {
  monitor::Collector collector;
  attach_collector(collector);
  return collector.collect();
}

}  // namespace causeway::pps
