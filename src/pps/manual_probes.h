// Manual ground-truth measurement (the paper's accuracy yardstick).
//
// "The manual counterpart was carried out by having one probe for one target
// function in one system run.  This probe retrieves time stamps at the
// beginning and end of the target function."  ManualProbes reproduces that:
// a Scope placed directly around a call site (or body) records wall-clock
// and per-thread-CPU deltas, completely outside the monitoring framework.
// The accuracy experiments (E3/E5) compare these numbers against the
// framework's L(F) / SC+DC results.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/cpu.h"

namespace causeway::pps {

class ManualProbes {
 public:
  struct Sample {
    Nanos wall{0};
    Nanos cpu{0};
  };

  class Scope {
   public:
    // `probes` may be null: the scope is then free of any effect, so
    // instrumentation points can stay in place permanently.
    Scope(ManualProbes* probes, std::string_view key)
        : probes_(probes), key_(key) {
      if (probes_ && probes_->enabled_) {
        wall0_ = steady_now_ns();
        cpu0_ = thread_cpu_now_ns();
        armed_ = true;
      }
    }
    ~Scope() {
      if (armed_) {
        probes_->record(key_, {steady_now_ns() - wall0_,
                               thread_cpu_now_ns() - cpu0_});
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ManualProbes* probes_;
    std::string_view key_;
    Nanos wall0_{0};
    Nanos cpu0_{0};
    bool armed_{false};
  };

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  std::vector<Sample> samples(const std::string& key) const {
    std::lock_guard lock(mu_);
    auto it = samples_.find(key);
    return it == samples_.end() ? std::vector<Sample>{} : it->second;
  }

  double mean_wall(const std::string& key) const {
    return mean(key, [](const Sample& s) { return s.wall; });
  }
  double mean_cpu(const std::string& key) const {
    return mean(key, [](const Sample& s) { return s.cpu; });
  }

  void clear() {
    std::lock_guard lock(mu_);
    samples_.clear();
  }

 private:
  template <typename Fn>
  double mean(const std::string& key, Fn&& get) const {
    std::lock_guard lock(mu_);
    auto it = samples_.find(key);
    if (it == samples_.end() || it->second.empty()) return 0;
    double sum = 0;
    for (const Sample& s : it->second) sum += static_cast<double>(get(s));
    return sum / static_cast<double>(it->second.size());
  }

  void record(std::string_view key, Sample s) {
    std::lock_guard lock(mu_);
    samples_[std::string(key)].push_back(s);
  }

  mutable std::mutex mu_;
  std::map<std::string, std::vector<Sample>> samples_;
  bool enabled_{true};
};

}  // namespace causeway::pps
