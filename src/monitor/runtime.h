// Per-process monitoring runtime.
//
// One MonitorRuntime lives in every simulated process domain.  It bundles the
// domain's identity (process / node / processor type -- the locality tags
// every record carries), the active probe mode, the domain's clock, and the
// local log store.  It is the only thing probes need.
//
// Probes read the configuration (enabled / mode / sample rate / mute set) on
// every call from many threads at once, so those fields are relaxed atomics:
// reads are free.  Reconfiguration is *epoch-applied*: control changes are
// staged into a pending slot (stage(), thread-safe at any time, from any
// thread -- including a transport thread reacting to a collectd directive)
// and take effect atomically at the next drain boundary (apply_pending(),
// called by Collector::drain()).  Probes therefore always see either the old
// configuration or the new one, never a torn mix, and live reconfiguration
// needs no stop-the-world -- the quiescence-asserting set_config() of the
// feed-forward era is gone, reimplemented as stage + immediate apply for the
// between-passes callers that still want a synchronous flip.
#pragma once

#include <atomic>
#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/cpu.h"
#include "monitor/log_store.h"
#include "monitor/record.h"

namespace causeway::monitor {

struct DomainIdentity {
  std::string process_name;
  std::string node_name;        // "processor" in the paper's terminology
  std::string processor_type;   // e.g. "pa-risc" / "x86" / "vxworks-ppc"
};

struct MonitorConfig {
  bool enabled{true};
  ProbeMode mode{ProbeMode::kLatency};

  // Per-thread ring capacity of the domain's log store, in records; 0
  // selects ProcessLogStore::kDefaultRingCapacity.  Fixed at construction
  // (reconfiguration cannot resize live rings).  Third member by contract:
  // existing callers aggregate-initialize {enabled, mode, ring_capacity}.
  std::size_t ring_capacity{0};

  // Initial chain sampling rate (kSampleRates index; 0 = keep every chain).
  std::uint8_t sample_rate_index{0};

  // Interfaces whose probes are muted from the start (rarely useful; the
  // control plane usually mutes live via ControlUpdate instead).
  std::vector<std::string> muted_interfaces;
};

// A staged control change.  Every field is optional: an absent field leaves
// the current value untouched, so directives compose (mode flip now, a
// sampling change next epoch) without each sender re-stating full state.
struct ControlUpdate {
  std::optional<bool> enabled;
  std::optional<ProbeMode> mode;
  std::optional<std::uint8_t> sample_rate_index;
  // Full replacement for the mute set (empty vector = unmute everything).
  std::optional<std::vector<std::string>> muted_interfaces;

  bool empty() const {
    return !enabled && !mode && !sample_rate_index && !muted_interfaces;
  }
};

class MonitorRuntime {
 public:
  MonitorRuntime(DomainIdentity identity, MonitorConfig config,
                 ClockDomain clock)
      : identity_(std::move(identity)),
        enabled_(config.enabled),
        mode_(config.mode),
        sample_rate_index_(
            config.sample_rate_index < kSampleRateCount
                ? config.sample_rate_index
                : std::uint8_t{0}),
        clock_(clock),
        store_(config.ring_capacity) {
    if (!config.muted_interfaces.empty()) {
      auto set = make_mute_set(config.muted_interfaces);
      mute_set_.store(set.get(), std::memory_order_release);
      retired_mute_sets_.push_back(std::move(set));
    }
  }

  MonitorRuntime(const MonitorRuntime&) = delete;
  MonitorRuntime& operator=(const MonitorRuntime&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  ProbeMode mode() const { return mode_.load(std::memory_order_relaxed); }
  std::uint8_t sample_rate_index() const {
    return sample_rate_index_.load(std::memory_order_relaxed);
  }

  // Chain-origin sampling decision: pure function of the chain UUID and the
  // current rate, so every probe of a chain in this process agrees without
  // coordination (all domains of a process receive the same staged rate).
  bool chain_sampled_in(const Uuid& chain) const {
    return chain_sampled(chain, sample_rate_index());
  }

  // Whether probes for this interface are muted by the control plane.
  bool interface_muted(std::string_view interface_name) const {
    const MuteSet* set = mute_set_.load(std::memory_order_acquire);
    if (set == nullptr || set->empty()) return false;
    return std::binary_search(set->begin(), set->end(), interface_name,
                              [](std::string_view a, std::string_view b) {
                                return a < b;
                              });
  }

  // Stages a control change; thread-safe at any time, from any thread.
  // Successive stages before an apply merge field-wise (last writer wins per
  // field).  Nothing becomes visible to probes until apply_pending() runs at
  // a drain boundary.  Const-qualified because the transport layer reaches
  // runtimes through the collector's const pointers; staging control does
  // not alter the domain's logical trace state.
  void stage(const ControlUpdate& update) const {
    if (update.empty()) return;
    std::lock_guard lock(pending_mu_);
    if (update.enabled) pending_.enabled = update.enabled;
    if (update.mode) pending_.mode = update.mode;
    if (update.sample_rate_index &&
        *update.sample_rate_index < kSampleRateCount) {
      pending_.sample_rate_index = update.sample_rate_index;
    }
    if (update.muted_interfaces) {
      pending_.muted_interfaces = update.muted_interfaces;
    }
  }

  // Applies whatever is staged; called by the collector at each drain
  // boundary so a whole epoch runs under one configuration.  Returns true
  // if anything changed.  Probes in flight may still read the previous mute
  // set pointer, which is why retired sets go to a graveyard instead of
  // being freed (they are reclaimed when the runtime is destroyed; mute
  // sets are tiny and reconfigurations are rare, so the graveyard stays
  // negligible).
  bool apply_pending() const {
    std::lock_guard lock(pending_mu_);
    if (pending_.empty()) return false;
    if (pending_.enabled) {
      enabled_.store(*pending_.enabled, std::memory_order_relaxed);
    }
    if (pending_.mode) {
      mode_.store(*pending_.mode, std::memory_order_relaxed);
    }
    if (pending_.sample_rate_index) {
      sample_rate_index_.store(*pending_.sample_rate_index,
                               std::memory_order_relaxed);
    }
    if (pending_.muted_interfaces) {
      auto set = make_mute_set(*pending_.muted_interfaces);
      mute_set_.store(set->empty() ? nullptr : set.get(),
                      std::memory_order_release);
      retired_mute_sets_.push_back(std::move(set));
    }
    pending_ = ControlUpdate{};
    config_version_.fetch_add(1, std::memory_order_release);
    return true;
  }

  // Bumped on every applied change; lets tests and status reporting observe
  // "the epoch boundary picked up my directive" without peeking at fields.
  std::uint64_t config_version() const {
    return config_version_.load(std::memory_order_acquire);
  }

  // Synchronous reconfiguration for between-passes callers (e.g. flipping
  // a workload from a latency pass to a CPU pass).  Equivalent to staging
  // the delta and applying it immediately; concurrent probes see a benign
  // old-or-new word-sized race, never a torn config.
  void set_config(const MonitorConfig& config) {
    ControlUpdate update;
    update.enabled = config.enabled;
    update.mode = config.mode;
    update.sample_rate_index = config.sample_rate_index;
    update.muted_interfaces = config.muted_interfaces;
    stage(update);
    apply_pending();
  }

  // In-flight accounting.  Probes bracket each monitored call with
  // begin/end (exception-safe via RAII in the probe objects); quiescence
  // checks and tests observe the count.
  void probe_begin() const {
    probes_in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  void probe_end() const {
    probes_in_flight_.fetch_sub(1, std::memory_order_release);
  }
  std::int64_t probes_in_flight() const {
    return probes_in_flight_.load(std::memory_order_acquire);
  }

  // One sample of the active behaviour dimension, taken on the calling
  // thread with no global coordination.
  Nanos sample() const {
    switch (mode()) {
      case ProbeMode::kLatency: return clock_.now();
      case ProbeMode::kCpu: return thread_cpu_now_ns();
      case ProbeMode::kCausalityOnly: return 0;
    }
    return 0;
  }

  const DomainIdentity& identity() const { return identity_; }
  const ClockDomain& clock() const { return clock_; }
  ProcessLogStore& store() { return store_; }
  const ProcessLogStore& store() const { return store_; }

 private:
  // Sorted vector: lookups are a binary search on string_view with no
  // hashing and no allocation on the probe path.
  using MuteSet = std::vector<std::string>;

  static std::unique_ptr<MuteSet> make_mute_set(
      const std::vector<std::string>& names) {
    auto set = std::make_unique<MuteSet>(names);
    std::sort(set->begin(), set->end());
    set->erase(std::unique(set->begin(), set->end()), set->end());
    return set;
  }

  DomainIdentity identity_;
  mutable std::atomic<bool> enabled_;
  mutable std::atomic<ProbeMode> mode_;
  mutable std::atomic<std::uint8_t> sample_rate_index_;
  mutable std::atomic<const MuteSet*> mute_set_{nullptr};
  mutable std::atomic<std::int64_t> probes_in_flight_{0};
  mutable std::atomic<std::uint64_t> config_version_{0};

  mutable std::mutex pending_mu_;
  mutable ControlUpdate pending_;              // guarded by pending_mu_
  mutable std::vector<std::unique_ptr<MuteSet>> retired_mute_sets_;  // ditto

  ClockDomain clock_;
  ProcessLogStore store_;
};

}  // namespace causeway::monitor
