// Per-process monitoring runtime.
//
// One MonitorRuntime lives in every simulated process domain.  It bundles the
// domain's identity (process / node / processor type -- the locality tags
// every record carries), the active probe mode, the domain's clock, and the
// local log store.  It is the only thing probes need.
//
// Probes read the configuration (enabled / mode) on every call from many
// threads at once, so those fields are relaxed atomics: reads are free, and
// a concurrent set_config() is a benign word-sized race instead of UB.
// Reconfiguration itself is still only meaningful at a quiescent point --
// set_config() asserts no probe is in flight (probes keep an in-flight
// count for exactly this check).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/cpu.h"
#include "monitor/log_store.h"
#include "monitor/record.h"

namespace causeway::monitor {

struct DomainIdentity {
  std::string process_name;
  std::string node_name;        // "processor" in the paper's terminology
  std::string processor_type;   // e.g. "pa-risc" / "x86" / "vxworks-ppc"
};

struct MonitorConfig {
  bool enabled{true};
  ProbeMode mode{ProbeMode::kLatency};

  // Per-thread ring capacity of the domain's log store, in records; 0
  // selects ProcessLogStore::kDefaultRingCapacity.  Fixed at construction
  // (set_config cannot resize live rings).
  std::size_t ring_capacity{0};
};

class MonitorRuntime {
 public:
  MonitorRuntime(DomainIdentity identity, MonitorConfig config,
                 ClockDomain clock)
      : identity_(std::move(identity)),
        enabled_(config.enabled),
        mode_(config.mode),
        clock_(clock),
        store_(config.ring_capacity) {}

  MonitorRuntime(const MonitorRuntime&) = delete;
  MonitorRuntime& operator=(const MonitorRuntime&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  ProbeMode mode() const { return mode_.load(std::memory_order_relaxed); }

  // Reconfiguring between measurement passes (e.g. a latency run then a CPU
  // run) is expected; reconfiguring while calls are in flight is not
  // supported -- callers must reach a quiescent point first.  The assert
  // enforces that in debug / sanitizer builds; the atomic fields keep a
  // misplaced call a benign race rather than UB in release builds.
  void set_config(const MonitorConfig& config) {
    assert(probes_in_flight_.load(std::memory_order_acquire) == 0 &&
           "set_config() requires a quiescent point: no probe in flight");
    enabled_.store(config.enabled, std::memory_order_relaxed);
    mode_.store(config.mode, std::memory_order_relaxed);
  }

  // In-flight accounting for the quiescence assertion above.  Probes bracket
  // each monitored call with begin/end (exception-safe via RAII in the probe
  // objects).
  void probe_begin() const {
    probes_in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  void probe_end() const {
    probes_in_flight_.fetch_sub(1, std::memory_order_release);
  }
  std::int64_t probes_in_flight() const {
    return probes_in_flight_.load(std::memory_order_acquire);
  }

  // One sample of the active behaviour dimension, taken on the calling
  // thread with no global coordination.
  Nanos sample() const {
    switch (mode()) {
      case ProbeMode::kLatency: return clock_.now();
      case ProbeMode::kCpu: return thread_cpu_now_ns();
      case ProbeMode::kCausalityOnly: return 0;
    }
    return 0;
  }

  const DomainIdentity& identity() const { return identity_; }
  const ClockDomain& clock() const { return clock_; }
  ProcessLogStore& store() { return store_; }
  const ProcessLogStore& store() const { return store_; }

 private:
  DomainIdentity identity_;
  std::atomic<bool> enabled_;
  std::atomic<ProbeMode> mode_;
  mutable std::atomic<std::int64_t> probes_in_flight_{0};
  ClockDomain clock_;
  ProcessLogStore store_;
};

}  // namespace causeway::monitor
