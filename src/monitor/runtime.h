// Per-process monitoring runtime.
//
// One MonitorRuntime lives in every simulated process domain.  It bundles the
// domain's identity (process / node / processor type -- the locality tags
// every record carries), the active probe mode, the domain's clock, and the
// local log store.  It is the only thing probes need.
#pragma once

#include <string>

#include "common/clock.h"
#include "common/cpu.h"
#include "monitor/log_store.h"
#include "monitor/record.h"

namespace causeway::monitor {

struct DomainIdentity {
  std::string process_name;
  std::string node_name;        // "processor" in the paper's terminology
  std::string processor_type;   // e.g. "pa-risc" / "x86" / "vxworks-ppc"
};

struct MonitorConfig {
  bool enabled{true};
  ProbeMode mode{ProbeMode::kLatency};
};

class MonitorRuntime {
 public:
  MonitorRuntime(DomainIdentity identity, MonitorConfig config,
                 ClockDomain clock)
      : identity_(std::move(identity)), config_(config), clock_(clock) {}

  MonitorRuntime(const MonitorRuntime&) = delete;
  MonitorRuntime& operator=(const MonitorRuntime&) = delete;

  bool enabled() const { return config_.enabled; }
  ProbeMode mode() const { return config_.mode; }

  // Reconfiguring between runs (e.g. a latency run then a CPU run) is
  // expected; reconfiguring while calls are in flight is not supported.
  void set_config(const MonitorConfig& config) { config_ = config; }

  // One sample of the active behaviour dimension, taken on the calling
  // thread with no global coordination.
  Nanos sample() const {
    switch (config_.mode) {
      case ProbeMode::kLatency: return clock_.now();
      case ProbeMode::kCpu: return thread_cpu_now_ns();
      case ProbeMode::kCausalityOnly: return 0;
    }
    return 0;
  }

  const DomainIdentity& identity() const { return identity_; }
  const ClockDomain& clock() const { return clock_; }
  ProcessLogStore& store() { return store_; }
  const ProcessLogStore& store() const { return store_; }

 private:
  DomainIdentity identity_;
  MonitorConfig config_;
  ClockDomain clock_;
  ProcessLogStore store_;
};

}  // namespace causeway::monitor
