// Off-line log collection.
//
// "When the application ceases to exist or reaches a quiescent state ... the
// scattered logs are collected and eventually synthesized into a relational
// database" (paper Sec. 3).  The Collector snapshots every attached domain's
// ProcessLogStore into one CollectedLogs bundle.
//
// The bundle is self-contained: record identity strings are interned into a
// pool the bundle owns (shared across copies), so it may outlive the
// monitored application, be written to a trace file, or cross threads.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/runtime.h"

namespace causeway::monitor {

struct CollectedLogs {
  struct DomainEntry {
    DomainIdentity identity;
    ProbeMode mode;
    std::size_t record_count;
  };
  std::vector<DomainEntry> domains;
  std::vector<TraceRecord> records;

  // Backing storage for every string_view inside `records`.
  std::shared_ptr<std::deque<std::string>> strings =
      std::make_shared<std::deque<std::string>>();
};

class Collector {
 public:
  void attach(const MonitorRuntime* runtime) { runtimes_.push_back(runtime); }

  CollectedLogs collect() const {
    CollectedLogs out;
    std::unordered_map<std::string_view, std::string_view> interned;
    auto intern = [&](std::string_view s) -> std::string_view {
      auto it = interned.find(s);
      if (it != interned.end()) return it->second;
      out.strings->emplace_back(s);
      std::string_view stable = out.strings->back();
      interned.emplace(stable, stable);
      return stable;
    };

    for (const MonitorRuntime* rt : runtimes_) {
      auto records = rt->store().snapshot();
      out.domains.push_back({rt->identity(), rt->mode(), records.size()});
      out.records.reserve(out.records.size() + records.size());
      for (TraceRecord& r : records) {
        r.interface_name = intern(r.interface_name);
        r.function_name = intern(r.function_name);
        r.process_name = intern(r.process_name);
        r.node_name = intern(r.node_name);
        r.processor_type = intern(r.processor_type);
        out.records.push_back(r);
      }
    }
    return out;
  }

 private:
  std::vector<const MonitorRuntime*> runtimes_;
};

}  // namespace causeway::monitor
