// Log collection: offline snapshots and streaming epoch drains.
//
// "When the application ceases to exist or reaches a quiescent state ... the
// scattered logs are collected and eventually synthesized into a relational
// database" (paper Sec. 3).  collect() is that offline path: a cumulative,
// non-consuming snapshot of every attached domain's ProcessLogStore.
//
// drain() is the streaming extension: a *consuming* read that can run
// repeatedly while the application is live.  Each call advances an epoch
// counter and returns only the records published since the previous drain,
// per-thread order preserved.  Concatenating the batches of every epoch
// yields exactly what one final offline collect would have seen -- epochs
// segment the log stream, they never reorder it (the analyzer orders by FTL
// event numbers, so segmentation is invisible to reconstruction).
//
// Every bundle is self-contained: record identity strings are interned into
// a pool the bundle owns (shared across copies), so it may outlive the
// monitored application, be written to a trace file, or cross threads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/runtime.h"

namespace causeway::monitor {

struct CollectedLogs {
  struct DomainEntry {
    DomainIdentity identity;
    ProbeMode mode;
    std::size_t record_count;
  };
  std::vector<DomainEntry> domains;
  std::vector<TraceRecord> records;

  // Which drain produced this bundle (0 for offline collect() snapshots).
  std::uint64_t epoch{0};

  // Ring-overflow count: records the probes had to drop rather than block.
  // For drain() this is the delta since the previous epoch; for collect()
  // it is the stores' cumulative count.
  std::uint64_t dropped{0};

  // Transport-tier drop count: records a publisher discarded because its
  // socket back-pressure bound was hit (drop-not-block, like the rings).
  // Kept separate from `dropped` so the two loss mechanisms -- probes
  // outrunning the drain cadence vs. the collector daemon falling behind
  // the publishers -- stay distinguishable all the way into reports.
  // Always 0 for in-process collection; transports fill it in.
  std::uint64_t publish_dropped{0};

  // Probe activations the control plane suppressed (chain sampling or a
  // muted interface) -- the third loss mechanism, except it is not loss at
  // all: it is deliberate, policy-driven, and renormalizable.  drain()
  // fills in the delta since the previous epoch; collect() the cumulative
  // count.  Reconciliation invariant across the whole data plane:
  //   records + dropped + publish_dropped + sampled_out == activations.
  std::uint64_t sampled_out{0};

  // Occupancy of the fullest per-thread ring across all attached domains,
  // sampled just before this bundle consumed the rings (0.0 empty .. 1.0
  // overflowing).  Feeds the adaptive drain cadence.
  double ring_utilization{0.0};

  // Backing storage for every string_view inside `records`.
  std::shared_ptr<std::deque<std::string>> strings =
      std::make_shared<std::deque<std::string>>();

  // Copies `s` into the bundle's pool and returns the stable view -- *no*
  // deduplication.  For producers whose input is already deduplicated (a
  // trace segment's string table): they skip the BundleInterner hash map
  // and its per-string probe entirely.
  std::string_view own_string(std::string_view s) {
    strings->emplace_back(s);
    return strings->back();
  }
};

// Copies strings into a bundle-owned pool (deduplicated) so the bundle
// outlives whatever storage the originals lived in -- the runtimes during a
// drain, or a decoded trace segment's string table.  Used by the Collector
// below and by the trace reader's segment decoder.
class BundleInterner {
 public:
  explicit BundleInterner(CollectedLogs& out) : out_(out) {}
  std::string_view operator()(std::string_view s) {
    auto it = interned_.find(s);
    if (it != interned_.end()) return it->second;
    out_.strings->emplace_back(s);
    std::string_view stable = out_.strings->back();
    interned_.emplace(stable, stable);
    return stable;
  }

 private:
  CollectedLogs& out_;
  std::unordered_map<std::string_view, std::string_view> interned_;
};

class Collector {
 public:
  void attach(const MonitorRuntime* runtime) { runtimes_.push_back(runtime); }

  // Offline snapshot: cumulative (everything not yet drained), non-consuming,
  // repeatable.
  CollectedLogs collect() const {
    CollectedLogs out;
    BundleInterner intern(out);
    for (const MonitorRuntime* rt : runtimes_) {
      append_domain(out, intern, *rt, rt->store().snapshot());
      out.dropped += rt->store().dropped();
      out.sampled_out += rt->store().sampled_out();
    }
    return out;
  }

  // Stages a control change on every attached runtime.  Thread-safe (the
  // runtimes' pending slots are mutex-guarded); the change becomes visible
  // to probes at the next drain boundary.  This is the fan-out point the
  // transport layer calls when a collectd directive arrives.
  void stage_control(const ControlUpdate& update) const {
    for (const MonitorRuntime* rt : runtimes_) rt->stage(update);
  }

  // Streaming epoch read: consumes everything published since the previous
  // drain and tags the bundle with a fresh epoch id (1, 2, ...).  Every
  // attached domain gets an entry each epoch, even when it logged nothing,
  // so downstream consumers always see the full deployment.  Safe to call
  // in a loop while probes append concurrently.
  CollectedLogs drain() {
    CollectedLogs out;
    out.epoch = ++epoch_;
    BundleInterner intern(out);
    if (last_dropped_.size() < runtimes_.size()) {
      last_dropped_.resize(runtimes_.size(), 0);
      last_sampled_out_.resize(runtimes_.size(), 0);
    }
    for (std::size_t i = 0; i < runtimes_.size(); ++i) {
      const MonitorRuntime* rt = runtimes_[i];
      // Sample occupancy before consuming: it describes how close the rings
      // came to overflowing during the epoch this drain closes.
      const double util = rt->store().max_ring_utilization();
      if (util > out.ring_utilization) out.ring_utilization = util;
      append_domain(out, intern, *rt, rt->store().drain());
      const std::uint64_t total = rt->store().dropped();
      out.dropped += total - last_dropped_[i];
      last_dropped_[i] = total;
      const std::uint64_t sampled = rt->store().sampled_out();
      out.sampled_out += sampled - last_sampled_out_[i];
      last_sampled_out_[i] = sampled;
      // The drain boundary is the epoch-apply point: whatever the control
      // plane staged since the last drain takes effect now, so the *next*
      // epoch runs whole under the new configuration.
      rt->apply_pending();
    }
    return out;
  }

  std::uint64_t epoch() const { return epoch_; }

 private:
  static void append_domain(CollectedLogs& out, BundleInterner& intern,
                            const MonitorRuntime& rt,
                            std::vector<TraceRecord>&& records) {
    out.domains.push_back({rt.identity(), rt.mode(), records.size()});
    out.records.reserve(out.records.size() + records.size());
    for (TraceRecord& r : records) {
      r.interface_name = intern(r.interface_name);
      r.function_name = intern(r.function_name);
      r.process_name = intern(r.process_name);
      r.node_name = intern(r.node_name);
      r.processor_type = intern(r.processor_type);
      out.records.push_back(r);
    }
  }

  std::vector<const MonitorRuntime*> runtimes_;
  std::uint64_t epoch_{0};
  std::vector<std::uint64_t> last_dropped_;      // per-runtime drain deltas
  std::vector<std::uint64_t> last_sampled_out_;  // ditto, for sampled_out
};

// Adaptive drain cadence policy (`causeway-record --stream`): shortens the
// interval when the rings overflowed or ran hot this epoch, stretches it
// when they were near-idle, and holds it otherwise.  Pure function of the
// epoch's observations so tests can drive it without a live collector.  The
// result is clamped to [max(1, base/4), base*4] around the user-requested
// base interval.
inline std::uint64_t adaptive_interval_ms(std::uint64_t current_ms,
                                          std::uint64_t base_ms,
                                          std::uint64_t dropped,
                                          double ring_utilization) {
  std::uint64_t next = current_ms;
  if (dropped > 0) {
    next = current_ms / 2;  // overflowed: drain twice as often
  } else if (ring_utilization > 0.5) {
    next = current_ms * 2 / 3;  // running hot: speed up gently
  } else if (ring_utilization < 0.1) {
    next = current_ms + std::max<std::uint64_t>(1, current_ms / 2);  // idle
  }
  const std::uint64_t lo = std::max<std::uint64_t>(1, base_ms / 4);
  const std::uint64_t hi = std::max<std::uint64_t>(lo, base_ms * 4);
  return std::min(std::max(next, lo), hi);
}

}  // namespace causeway::monitor
