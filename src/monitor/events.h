// Tracing events and call kinds.
//
// The paper defines exactly four tracing events -- stub start, skeleton
// start, skeleton end, stub end -- one per probe (paper Fig. 1), and event
// numbers that increment along the causal chain at each event.  The event
// *repeating patterns* are what make call-structure reconstruction possible
// (paper Table 1): sibling calls produce 1-2-3-4 / 1-2-3-4, nesting produces
// 1-2-(child 1-2-3-4)-3-4.
#pragma once

#include <cstdint>
#include <string_view>

namespace causeway::monitor {

enum class EventKind : std::uint8_t {
  kStubStart = 1,   // probe 1: client-side stub entered
  kSkelStart = 2,   // probe 2: request reached the skeleton
  kSkelEnd = 3,     // probe 3: user implementation returned
  kStubEnd = 4,     // probe 4: reply back at the stub, about to return
};

enum class CallKind : std::uint8_t {
  kSync = 0,        // synchronous remote invocation
  kOneway = 1,      // asynchronous (one-way); spawns a child causal chain
  kCollocated = 2,  // in-process with collocation optimization: probes 1+2
                    // and 3+4 degenerate into back-to-back pairs
};

constexpr std::string_view to_string(EventKind e) {
  switch (e) {
    case EventKind::kStubStart: return "stub_start";
    case EventKind::kSkelStart: return "skel_start";
    case EventKind::kSkelEnd: return "skel_end";
    case EventKind::kStubEnd: return "stub_end";
  }
  return "?";
}

// Application-semantics capture (paper Sec. 2.1 lists "application semantics
// about each function call behavior ... thrown exceptions" among the four
// monitored aspects): how the invocation concluded, recorded by probes 3/4.
enum class CallOutcome : std::uint8_t {
  kOk = 0,
  kAppError = 1,     // IDL-declared user exception
  kSystemError = 2,  // undeclared exception / infrastructure failure
};

constexpr std::string_view to_string(CallOutcome o) {
  switch (o) {
    case CallOutcome::kOk: return "ok";
    case CallOutcome::kAppError: return "app-error";
    case CallOutcome::kSystemError: return "system-error";
  }
  return "?";
}

constexpr std::string_view to_string(CallKind k) {
  switch (k) {
    case CallKind::kSync: return "sync";
    case CallKind::kOneway: return "oneway";
    case CallKind::kCollocated: return "collocated";
  }
  return "?";
}

}  // namespace causeway::monitor
