#include "monitor/tss.h"

#include <atomic>

namespace causeway::monitor {
namespace {

thread_local Ftl t_ftl{};

std::atomic<std::uint64_t> g_next_thread_ordinal{1};
thread_local std::uint64_t t_ordinal = 0;

}  // namespace

Ftl tss_get() { return t_ftl; }

void tss_set(const Ftl& ftl) { t_ftl = ftl; }

void tss_clear() { t_ftl = Ftl{}; }

std::uint64_t this_thread_ordinal() {
  if (t_ordinal == 0) {
    t_ordinal = g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  }
  return t_ordinal;
}

}  // namespace causeway::monitor
