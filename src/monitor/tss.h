// Thread-specific storage (TSS) for the FTL.
//
// The tunnel has two legs (paper Fig. 2): the private stub<->skeleton channel
// crosses the wire, and the TSS bridges *within* a thread -- from a skeleton
// up-call into the child stubs the implementation invokes, and from one
// sibling call's stub-end to the next sibling's stub-start.  The TSS slot is
// created by the instrumentation library, entirely outside user code.
//
// ORB threading policies are safe without extra work (paper observations
// O1/O2: a thread is dedicated to a call until completion and is re-annotated
// with the fresh FTL at each dispatch).  COM STA apartments violate O1, so
// the ORPC channel hooks use FtlSaver to save/restore the slot around
// nested dispatches (see com/channel_hooks).
#pragma once

#include <cstdint>

#include "monitor/ftl.h"

namespace causeway::monitor {

// Current thread's FTL slot. Returns an invalid Ftl when no chain is active.
Ftl tss_get();

// Overwrites the slot (observation O2: each dispatch refreshes the thread
// with the incoming call's latest FTL).
void tss_set(const Ftl& ftl);

// Clears the slot; the next outgoing stub call starts a fresh causal chain
// with a new Function UUID.
void tss_clear();

// A small dense per-thread identifier (1, 2, 3, ...) used in trace records;
// cheaper and more readable than hashing std::thread::id.
std::uint64_t this_thread_ordinal();

// RAII save/restore of the slot -- the COM channel hook primitive.
class FtlSaver {
 public:
  FtlSaver() : saved_(tss_get()) {}
  ~FtlSaver() { tss_set(saved_); }
  FtlSaver(const FtlSaver&) = delete;
  FtlSaver& operator=(const FtlSaver&) = delete;

 private:
  Ftl saved_;
};

// RAII fresh chain: clears the slot on entry and on exit, so every
// transaction gets its own Function UUID (used by workload drivers).
class ScopedFreshChain {
 public:
  ScopedFreshChain() { tss_clear(); }
  ~ScopedFreshChain() { tss_clear(); }
  ScopedFreshChain(const ScopedFreshChain&) = delete;
  ScopedFreshChain& operator=(const ScopedFreshChain&) = delete;
};

}  // namespace causeway::monitor
