// Per-process local log store.
//
// Probes record "individually ... without coordination" (paper Sec. 2.1):
// every simulated process domain owns one ProcessLogStore and its probes
// append to it locally.  Only when the application reaches a quiescent state
// does the Collector gather the scattered stores for off-line analysis.
//
// Appends are sharded per thread: each thread writes to its own chunk, so
// concurrent probes on different threads never contend with each other --
// only a snapshot/clear briefly touches every chunk.  Within one thread,
// record order is preserved (the analyzer orders across threads by the FTL's
// event numbers, never by log position).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "monitor/record.h"

namespace causeway::monitor {

class ProcessLogStore {
 public:
  ProcessLogStore() : id_(next_store_id()) {}
  ProcessLogStore(const ProcessLogStore&) = delete;
  ProcessLogStore& operator=(const ProcessLogStore&) = delete;

  void append(const TraceRecord& record) {
    Chunk* chunk = local_chunk();
    std::lock_guard lock(chunk->mu);
    chunk->records.push_back(record);
  }

  // Records from all threads, grouped by writing thread (chunk
  // registration order), in-order within each thread.
  std::vector<TraceRecord> snapshot() const {
    std::lock_guard registry(registry_mu_);
    std::vector<TraceRecord> out;
    std::size_t total = 0;
    for (const auto& chunk : chunks_) {
      std::lock_guard lock(chunk->mu);
      total += chunk->records.size();
    }
    out.reserve(total);
    for (const auto& chunk : chunks_) {
      std::lock_guard lock(chunk->mu);
      out.insert(out.end(), chunk->records.begin(), chunk->records.end());
    }
    return out;
  }

  std::size_t size() const {
    std::lock_guard registry(registry_mu_);
    std::size_t total = 0;
    for (const auto& chunk : chunks_) {
      std::lock_guard lock(chunk->mu);
      total += chunk->records.size();
    }
    return total;
  }

  void clear() {
    std::lock_guard registry(registry_mu_);
    for (const auto& chunk : chunks_) {
      std::lock_guard lock(chunk->mu);
      chunk->records.clear();
    }
  }

 private:
  struct Chunk {
    mutable std::mutex mu;
    std::vector<TraceRecord> records;
  };

  static std::uint64_t next_store_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  Chunk* local_chunk() {
    // Keyed by the store's unique id, never its address: a dead store's
    // cache entry can never alias a new store.
    thread_local std::unordered_map<std::uint64_t, Chunk*> t_chunks;
    auto it = t_chunks.find(id_);
    if (it != t_chunks.end()) return it->second;

    auto fresh = std::make_unique<Chunk>();
    Chunk* raw = fresh.get();
    {
      std::lock_guard registry(registry_mu_);
      chunks_.push_back(std::move(fresh));
    }
    t_chunks.emplace(id_, raw);
    return raw;
  }

  const std::uint64_t id_;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
};

}  // namespace causeway::monitor
