// Per-process local log store.
//
// Probes record "individually ... without coordination" (paper Sec. 2.1):
// every simulated process domain owns one ProcessLogStore and its probes
// append to it locally.
//
// Appends are sharded per thread into bounded SPSC ring buffers: each thread
// owns the producer side of its ring, so a probe append is a plain slot
// store followed by a release publish of the head index -- no lock, no CAS
// loop, no contention with other probes.  The consumer side (snapshot /
// drain / clear) is serialized by the store and may run *while probes are
// appending*: that is what turns the paper's stop-the-world collection into
// a streaming pipeline (repeated epoch drains against a live application).
//
// A full ring never blocks the probe: the record is dropped and a drop
// counter advances, so overflow is observable instead of silent -- and the
// application's latency is never coupled to the collector's cadence.
// Within one thread, record order is preserved (the analyzer orders across
// threads by the FTL's event numbers, never by log position).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "monitor/record.h"

namespace causeway::monitor {

class ProcessLogStore {
 public:
  // Default per-thread ring capacity (records).  Slots are allocated in
  // blocks on first touch, so an idle thread costs almost nothing and a
  // lightly used ring only materializes the blocks it wrote.
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 17;

  // `ring_capacity` is rounded up to a power of two; 0 selects the default.
  explicit ProcessLogStore(std::size_t ring_capacity = 0)
      : id_(next_store_id()),
        capacity_(round_up_pow2(
            ring_capacity == 0 ? kDefaultRingCapacity : ring_capacity)) {}
  ProcessLogStore(const ProcessLogStore&) = delete;
  ProcessLogStore& operator=(const ProcessLogStore&) = delete;

  // Producer side: wait-free for the calling thread (one relaxed load, one
  // acquire load, a slot store, a release store).  Never blocks; a full
  // ring drops the record and counts it.
  void append(const TraceRecord& record) {
    Ring* ring = local_ring();
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ring->tail.load(std::memory_order_acquire);
    if (head - tail > ring->mask) {  // full: head - tail == capacity
      ring->dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    *ring->slot(head) = record;                            // plain store
    ring->head.store(head + 1, std::memory_order_release);  // publish
  }

  // Records currently buffered, grouped by writing thread (ring
  // registration order), in-order within each thread.  Non-consuming: the
  // offline collector may snapshot repeatedly and always sees everything
  // that has not been drained.
  std::vector<TraceRecord> snapshot() const {
    std::lock_guard lock(registry_mu_);
    return read_rings(/*consume=*/false);
  }

  // Consuming epoch read: moves everything published so far out of the
  // rings (freeing their slots for the live producers) and returns it with
  // the same grouping/order guarantees as snapshot().  Safe to call in a
  // loop while probes append concurrently.  Const-qualified because
  // collectors observe domains through const pointers; consuming buffered
  // records does not alter the domain's logical state.
  std::vector<TraceRecord> drain() const {
    std::lock_guard lock(registry_mu_);
    return read_rings(/*consume=*/true);
  }

  // Records currently buffered (appends not yet drained).
  std::size_t size() const {
    std::lock_guard lock(registry_mu_);
    std::size_t total = 0;
    for (const auto& ring : rings_) {
      total += static_cast<std::size_t>(
          ring->head.load(std::memory_order_acquire) -
          ring->tail.load(std::memory_order_relaxed));
    }
    return total;
  }

  // Monotonic count of records accepted into the rings (survives drains;
  // quiescence detection must use this, not size(), once drains run
  // concurrently with the application).
  std::uint64_t appended() const {
    std::lock_guard lock(registry_mu_);
    std::uint64_t total = 0;
    for (const auto& ring : rings_) {
      total += ring->head.load(std::memory_order_acquire);
    }
    return total;
  }

  // A probe activation the sampling policy suppressed.  Counted at the
  // store (not per ring) because the suppressed record never picks a ring;
  // the count is what lets downstream accounting reconcile exactly:
  //   appended() + dropped() + sampled_out() == probe activations.
  void note_sampled_out() {
    sampled_out_.fetch_add(1, std::memory_order_relaxed);
  }

  // Monotonic count of probe activations suppressed by chain sampling
  // since construction (or the last clear()).
  std::uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  // Records dropped on ring overflow since construction (or the last
  // clear()).  Overflow is counted, never silent.
  std::uint64_t dropped() const {
    std::lock_guard lock(registry_mu_);
    std::uint64_t total = 0;
    for (const auto& ring : rings_) {
      total += ring->dropped.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Discards everything currently buffered and resets the overflow count.
  // Like drain(), safe against concurrent producers.
  void clear() {
    std::lock_guard lock(registry_mu_);
    for (const auto& ring : rings_) {
      ring->tail.store(ring->head.load(std::memory_order_acquire),
                       std::memory_order_release);
      ring->dropped.store(0, std::memory_order_relaxed);
    }
    sampled_out_.store(0, std::memory_order_relaxed);
  }

  std::size_t ring_capacity() const { return capacity_; }

  // Occupancy of the fullest per-thread ring, 0.0 (all empty) to 1.0 (a
  // ring is full and probes are dropping).  The *max* rather than the mean:
  // drops happen per ring, so the busiest thread is the one that limits the
  // drain cadence.
  double max_ring_utilization() const {
    std::lock_guard lock(registry_mu_);
    double max_util = 0.0;
    for (const auto& ring : rings_) {
      const auto used = static_cast<double>(
          ring->head.load(std::memory_order_acquire) -
          ring->tail.load(std::memory_order_relaxed));
      const double util = used / static_cast<double>(capacity_);
      if (util > max_util) max_util = util;
    }
    return max_util;
  }

 private:
  static constexpr std::size_t kBlockShift = 12;  // 4096 records per block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

  struct Ring {
    explicit Ring(std::size_t capacity)
        : mask(capacity - 1),
          blocks((capacity + kBlockSize - 1) / kBlockSize) {}
    ~Ring() {
      for (auto& block : blocks) {
        delete[] block.load(std::memory_order_relaxed);
      }
    }

    // Producer-side slot access; allocates the backing block on first
    // touch.  Only the owning thread ever calls this.
    TraceRecord* slot(std::uint64_t index) {
      const std::size_t i = static_cast<std::size_t>(index) & mask;
      auto& block = blocks[i >> kBlockShift];
      TraceRecord* base = block.load(std::memory_order_relaxed);
      if (!base) {
        base = new TraceRecord[kBlockSize];
        block.store(base, std::memory_order_relaxed);
      }
      return base + (i & (kBlockSize - 1));
    }

    // Consumer-side read; the block exists for any index < head (the
    // producer stored it before the release publish).
    const TraceRecord* slot_read(std::uint64_t index) const {
      const std::size_t i = static_cast<std::size_t>(index) & mask;
      return blocks[i >> kBlockShift].load(std::memory_order_relaxed) +
             (i & (kBlockSize - 1));
    }

    const std::size_t mask;
    std::vector<std::atomic<TraceRecord*>> blocks;
    alignas(64) std::atomic<std::uint64_t> head{0};  // published count
    alignas(64) std::atomic<std::uint64_t> tail{0};  // consumed count
    std::atomic<std::uint64_t> dropped{0};
  };

  static std::uint64_t next_store_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  static constexpr std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  // Copies (and optionally consumes) every ring's published window.
  // Caller holds registry_mu_, which serializes all consumers.
  std::vector<TraceRecord> read_rings(bool consume) const {
    std::vector<TraceRecord> out;
    std::size_t total = 0;
    for (const auto& ring : rings_) {
      total += static_cast<std::size_t>(
          ring->head.load(std::memory_order_acquire) -
          ring->tail.load(std::memory_order_relaxed));
    }
    out.reserve(total);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
      for (; tail != head; ++tail) out.push_back(*ring->slot_read(tail));
      if (consume) ring->tail.store(head, std::memory_order_release);
    }
    return out;
  }

  Ring* local_ring() {
    // Keyed by the store's unique id, never its address: a dead store's
    // cache entry can never alias a new store.
    thread_local std::unordered_map<std::uint64_t, Ring*> t_rings;
    auto it = t_rings.find(id_);
    if (it != t_rings.end()) return it->second;

    auto fresh = std::make_unique<Ring>(capacity_);
    Ring* raw = fresh.get();
    {
      std::lock_guard registry(registry_mu_);
      rings_.push_back(std::move(fresh));
    }
    t_rings.emplace(id_, raw);
    return raw;
  }

  const std::uint64_t id_;
  const std::size_t capacity_;
  std::atomic<std::uint64_t> sampled_out_{0};
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace causeway::monitor
