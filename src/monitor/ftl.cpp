#include "monitor/ftl.h"

namespace causeway::monitor {

void append_ftl_trailer(WireBuffer& payload, const Ftl& ftl) {
  payload.write_u64(ftl.chain.hi);
  payload.write_u64(ftl.chain.lo);
  payload.write_u64(ftl.seq);
  payload.write_u32(kFtlTrailerMagic);
}

std::optional<Ftl> peel_ftl_trailer(WireCursor& payload) {
  if (payload.remaining() < kFtlTrailerSize) return std::nullopt;

  WireCursor trailer(payload.peek_tail(kFtlTrailerSize));
  Ftl ftl;
  ftl.chain.hi = trailer.read_u64();
  ftl.chain.lo = trailer.read_u64();
  ftl.seq = trailer.read_u64();
  if (trailer.read_u32() != kFtlTrailerMagic) return std::nullopt;

  payload.truncate(payload.position() + payload.remaining() - kFtlTrailerSize);
  return ftl;
}

}  // namespace causeway::monitor
