// The Function-Transportable Log (FTL).
//
// This is the paper's central data structure (paper Fig. 3):
//
//   struct FunctionTxLogType {
//     UUID          global_function_id;   // "Function UUID"
//     unsigned long event_seq_no;
//   };
//
// The FTL is constant-size: probes *update* it, they never append to it, so
// chains of arbitrary depth cost the same bytes on the wire (the paper
// contrasts this with Trace Objects that concatenate per hop and collapse at
// tens of thousands of calls -- reproduced as a baseline in
// baseline/trace_object.h).
//
// Transport is the "virtual tunnel": the IDL compiler emits stubs/skeletons
// as if an extra `inout FunctionTxLogType` parameter existed on every method.
// Concretely we append a fixed 28-byte trailer [uuid.hi][uuid.lo][seq][magic]
// to the marshaled payload; the peer's instrumented skeleton/stub peels it
// off before user unmarshaling.  Nothing in the ORB, the COM runtime or user
// code is aware of it.
#pragma once

#include <cstdint>
#include <optional>

#include "common/ids.h"
#include "common/wire.h"

namespace causeway::monitor {

struct Ftl {
  Uuid chain;             // the Function UUID identifying this causal chain
  std::uint64_t seq{0};   // event sequence number, incremented per event

  bool valid() const { return !chain.is_nil(); }

  friend constexpr bool operator==(const Ftl&, const Ftl&) = default;
};

// Trailer size on the wire: two u64 for the UUID, one u64 for the sequence
// number, one u32 magic marker.
inline constexpr std::size_t kFtlTrailerSize = 8 + 8 + 8 + 4;
inline constexpr std::uint32_t kFtlTrailerMagic = 0xF71C0DE5u;

// Appends the hidden trailer to a fully-marshaled payload.
void append_ftl_trailer(WireBuffer& payload, const Ftl& ftl);

// If the readable window ends with an FTL trailer, removes it from the
// window (so user unmarshaling sees only the declared parameters) and
// returns it.  Returns nullopt when no trailer is present, which happens
// when the peer was built without instrumentation.
std::optional<Ftl> peel_ftl_trailer(WireCursor& payload);

}  // namespace causeway::monitor
