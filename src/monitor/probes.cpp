#include "monitor/probes.h"

#include "monitor/tss.h"

namespace causeway::monitor {
namespace {

// Fills identity/locality fields and appends.  `value_start` was sampled at
// probe entry; the end sample is taken here, immediately before the append,
// so the record captures the probe's own bookkeeping cost.
void log_event(MonitorRuntime& rt, const CallIdentity& id, CallKind kind,
               EventKind event, const Ftl& ftl, Nanos value_start,
               const Uuid& spawned_chain = Uuid{},
               CallOutcome outcome = CallOutcome::kOk) {
  // Control-plane suppression happens here, after all FTL/TSS bookkeeping:
  // causality propagation is never perturbed by the monitoring policy, only
  // the record is withheld.  The sampling verdict is a pure function of the
  // chain UUID and the current rate (chain-origin sampling), so every probe
  // of a kept chain logs and every probe of a dropped chain is suppressed
  // -- and each suppression is counted, so downstream accounting reconciles
  // exactly: appended + dropped + sampled_out == probe activations.
  if (!rt.chain_sampled_in(ftl.chain) ||
      rt.interface_muted(id.interface_name)) {
    rt.store().note_sampled_out();
    return;
  }
  TraceRecord r;
  r.chain = ftl.chain;
  r.seq = ftl.seq;
  r.event = event;
  r.kind = kind;
  r.outcome = outcome;
  r.spawned_chain = spawned_chain;
  r.interface_name = id.interface_name;
  r.function_name = id.function_name;
  r.object_key = id.object_key;
  const DomainIdentity& di = rt.identity();
  r.process_name = di.process_name;
  r.node_name = di.node_name;
  r.processor_type = di.processor_type;
  r.thread_ordinal = this_thread_ordinal();
  r.mode = rt.mode();
  r.sample_rate_index = rt.sample_rate_index();
  r.value_start = value_start;
  r.value_end = rt.sample();
  rt.store().append(r);
}

}  // namespace

StubProbes::StubProbes(MonitorRuntime* rt, const CallIdentity& id,
                       CallKind kind)
    : rt_(rt && rt->enabled() ? rt : nullptr), id_(id), kind_(kind) {}

StubProbes::~StubProbes() {
  // Exception safety: if the call unwound between probes 1 and 4, the
  // in-flight count still has to come back down.
  if (in_flight_) rt_->probe_end();
}

Ftl StubProbes::on_stub_start() {
  if (!rt_) return Ftl{};
  rt_->probe_begin();
  in_flight_ = true;
  const Nanos v0 = rt_->sample();

  Ftl chain = tss_get();
  if (!chain.valid()) {
    // Root of a brand-new causal chain.
    chain = Ftl{Uuid::generate(), 0};
  }
  chain.seq += 1;

  if (kind_ == CallKind::kOneway) {
    // Spawn the child chain carried to the callee; the parent chain keeps
    // advancing in this thread.
    const Ftl child{Uuid::generate(), 0};
    tss_set(chain);
    after_start_ = chain;
    log_event(*rt_, id_, kind_, EventKind::kStubStart, chain, v0, child.chain);
    return child;
  }

  tss_set(chain);
  after_start_ = chain;
  log_event(*rt_, id_, kind_, EventKind::kStubStart, chain, v0);
  return chain;
}

void StubProbes::on_stub_end(const std::optional<Ftl>& reply_ftl,
                             CallOutcome outcome) {
  if (!rt_) return;
  const Nanos v0 = rt_->sample();

  // Continue from the reply's FTL, which reflects every event the subtree
  // produced; fall back to our own if the peer was not instrumented.
  Ftl chain = (reply_ftl && reply_ftl->valid()) ? *reply_ftl : after_start_;
  chain.seq += 1;
  tss_set(chain);
  log_event(*rt_, id_, kind_, EventKind::kStubEnd, chain, v0, Uuid{}, outcome);
  if (in_flight_) {
    in_flight_ = false;
    rt_->probe_end();
  }
}

void StubProbes::on_stub_end_oneway() {
  if (!rt_) return;
  const Nanos v0 = rt_->sample();

  // The parent chain lives in this thread's TSS; the child chain went out on
  // the wire and never comes back.
  Ftl chain = tss_get();
  if (!chain.valid()) chain = after_start_;
  chain.seq += 1;
  tss_set(chain);
  log_event(*rt_, id_, kind_, EventKind::kStubEnd, chain, v0);
  if (in_flight_) {
    in_flight_ = false;
    rt_->probe_end();
  }
}

SkelProbes::SkelProbes(MonitorRuntime* rt, const CallIdentity& id,
                       CallKind kind)
    : rt_(rt && rt->enabled() ? rt : nullptr), id_(id), kind_(kind) {}

SkelProbes::~SkelProbes() {
  if (in_flight_) rt_->probe_end();
}

void SkelProbes::on_skel_start(const std::optional<Ftl>& request_ftl) {
  if (!rt_) return;
  rt_->probe_begin();
  in_flight_ = true;
  const Nanos v0 = rt_->sample();

  // O2: the dispatched thread is always refreshed with the incoming call's
  // latest FTL, so a reclaimed pool thread never leaks a stale chain.
  Ftl chain;
  if (request_ftl && request_ftl->valid()) {
    chain = *request_ftl;
  } else {
    // Caller not instrumented: monitor the subtree as a fresh chain.
    chain = Ftl{Uuid::generate(), 0};
  }
  chain.seq += 1;
  tss_set(chain);
  log_event(*rt_, id_, kind_, EventKind::kSkelStart, chain, v0);
}

Ftl SkelProbes::on_skel_end(CallOutcome outcome) {
  if (!rt_) return Ftl{};
  const Nanos v0 = rt_->sample();

  // The TSS accumulated every event the implementation's child calls
  // produced in this thread.
  Ftl chain = tss_get();
  chain.seq += 1;
  tss_set(chain);
  log_event(*rt_, id_, kind_, EventKind::kSkelEnd, chain, v0, Uuid{}, outcome);
  if (in_flight_) {
    in_flight_ = false;
    rt_->probe_end();
  }
  return chain;
}

}  // namespace causeway::monitor
