// Trace records -- what a probe logs locally.
//
// One record per probe activation.  Besides the causality triple
// (chain UUID, event number, event kind), a record carries the identity of
// the call site and *two* samples of the active behaviour dimension: the
// probe samples once when it is initiated and once when it finishes (paper
// Sec. 2.1).  The start/end pair is what lets the analyzer subtract
// monitoring overhead (the O_F term) from end-to-end latency.
//
// Identity strings are std::string_view into stable storage (generated
// method tables, domain names); a record is 168 bytes in memory (pinned by
// the static_assert below) and sub-million-call runs stay comfortably
// resident, matching the paper's largest experiment.  The on-disk form is
// much smaller: the columnar trace codec (analysis/trace_io.h) delta- and
// varint-encodes a record down to ~15 bytes.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/clock.h"
#include "common/ids.h"
#include "monitor/events.h"

namespace causeway::monitor {

// Which behaviour dimension the probes sample.  Latency and CPU are never
// activated simultaneously (paper: "to reduce interference"); causality
// capture always happens.
enum class ProbeMode : std::uint8_t {
  kCausalityOnly = 0,
  kLatency = 1,
  kCpu = 2,
};

constexpr std::string_view to_string(ProbeMode m) {
  switch (m) {
    case ProbeMode::kCausalityOnly: return "causality-only";
    case ProbeMode::kLatency: return "latency";
    case ProbeMode::kCpu: return "cpu";
  }
  return "?";
}

// Chain sampling rates the control plane can dial in, indexed by a 5-bit
// sample-rate index that travels with every record (and fits the three
// spare bits of the v4 flag byte plus two more -- see analysis/trace_io).
// Index 0 is the 1-in-1 identity rate: records encode exactly as before
// the control loop existed, which is what keeps idle-control output
// byte-identical.  The table is mostly 1-2-5 decades so the common
// directives ("10% sampling", "1% sampling") are exact integers, not
// approximations -- renormalization multiplies by the rate and recovers
// unbiased totals.
inline constexpr std::uint32_t kSampleRates[] = {
    1,     2,     5,      10,     20,     50,      100,     200,
    500,   1000,  2000,   5000,   10000,  20000,   50000,   100000,
    3,     4,     8,      16,     25,     32,      64,      128,
    250,   256,   512,    1024,   2048,   4096,    8192,    65536,
};
inline constexpr std::size_t kSampleRateCount =
    sizeof(kSampleRates) / sizeof(kSampleRates[0]);
static_assert(kSampleRateCount == 32, "index must fit in 5 bits");

inline constexpr std::uint32_t sample_rate(std::uint8_t index) {
  return index < kSampleRateCount ? kSampleRates[index] : 1;
}

// Smallest-table-slot whose rate is >= 1-in-n (searching only the sorted
// first row keeps the answer predictable); exact matches anywhere win.
inline constexpr std::uint8_t sample_rate_index_for(std::uint32_t n) {
  for (std::size_t i = 0; i < kSampleRateCount; ++i) {
    if (kSampleRates[i] == n) return static_cast<std::uint8_t>(i);
  }
  std::uint8_t best = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    if (kSampleRates[i] >= n) { best = static_cast<std::uint8_t>(i); break; }
    best = static_cast<std::uint8_t>(i);
  }
  return best;
}

// The chain-origin sampling decision: a pure function of the chain UUID
// and the current rate, so every probe of a chain -- in every domain of
// the process -- agrees without coordination.  UUIDs are uniform random,
// so the low word modulo N keeps an unbiased 1-in-N of chains.
inline bool chain_sampled(const Uuid& chain, std::uint8_t rate_index) {
  const std::uint32_t n = sample_rate(rate_index);
  return n <= 1 || (chain.lo % n) == 0;
}

struct TraceRecord {
  // --- causality ---
  Uuid chain;                 // Function UUID of the causal chain
  std::uint64_t seq{0};       // event number *after* the probe's increment
  EventKind event{EventKind::kStubStart};
  CallKind kind{CallKind::kSync};
  CallOutcome outcome{CallOutcome::kOk};  // meaningful on probes 3/4
  Uuid spawned_chain;         // oneway stub-start only: the child chain's UUID

  // --- call identity ---
  std::string_view interface_name;
  std::string_view function_name;
  std::uint64_t object_key{0};

  // --- locality ---
  std::string_view process_name;
  std::string_view node_name;
  std::string_view processor_type;
  std::uint64_t thread_ordinal{0};

  // --- sampled behaviour (meaning depends on mode) ---
  ProbeMode mode{ProbeMode::kCausalityOnly};
  // kSampleRates index in force when this record was logged; downstream
  // renormalization weights the record by sample_rate(index).  0 = 1:1.
  std::uint8_t sample_rate_index{0};
  Nanos value_start{0};  // local timestamp or per-thread CPU at probe start
  Nanos value_end{0};    // ... at probe end

  std::uint32_t sample_weight() const { return sample_rate(sample_rate_index); }

  Nanos probe_self_cost() const { return value_end - value_start; }
};

// Probes append these into per-thread rings by the million; layout drift
// (a new field, a reordering that adds padding) should be a deliberate
// decision, not an accident.  16B chain + 8B seq + 3 enum bytes (padded to
// 8) + 16B spawned chain + 3x16B string_view + 8B key + 2x16B string_view
// + 8B ordinal + mode byte + sample-rate index byte (together padded to 8)
// + 2x8B samples = 168 on LP64 -- the sample-rate index lives in padding
// that the mode byte already paid for, so the record did not grow.
static_assert(sizeof(void*) != 8 || sizeof(TraceRecord) == 168,
              "TraceRecord layout drifted -- update this assert (and the "
              "size note above) deliberately");

}  // namespace causeway::monitor
