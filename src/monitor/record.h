// Trace records -- what a probe logs locally.
//
// One record per probe activation.  Besides the causality triple
// (chain UUID, event number, event kind), a record carries the identity of
// the call site and *two* samples of the active behaviour dimension: the
// probe samples once when it is initiated and once when it finishes (paper
// Sec. 2.1).  The start/end pair is what lets the analyzer subtract
// monitoring overhead (the O_F term) from end-to-end latency.
//
// Identity strings are std::string_view into stable storage (generated
// method tables, domain names); a record is 168 bytes in memory (pinned by
// the static_assert below) and sub-million-call runs stay comfortably
// resident, matching the paper's largest experiment.  The on-disk form is
// much smaller: the columnar trace codec (analysis/trace_io.h) delta- and
// varint-encodes a record down to ~15 bytes.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/clock.h"
#include "common/ids.h"
#include "monitor/events.h"

namespace causeway::monitor {

// Which behaviour dimension the probes sample.  Latency and CPU are never
// activated simultaneously (paper: "to reduce interference"); causality
// capture always happens.
enum class ProbeMode : std::uint8_t {
  kCausalityOnly = 0,
  kLatency = 1,
  kCpu = 2,
};

constexpr std::string_view to_string(ProbeMode m) {
  switch (m) {
    case ProbeMode::kCausalityOnly: return "causality-only";
    case ProbeMode::kLatency: return "latency";
    case ProbeMode::kCpu: return "cpu";
  }
  return "?";
}

struct TraceRecord {
  // --- causality ---
  Uuid chain;                 // Function UUID of the causal chain
  std::uint64_t seq{0};       // event number *after* the probe's increment
  EventKind event{EventKind::kStubStart};
  CallKind kind{CallKind::kSync};
  CallOutcome outcome{CallOutcome::kOk};  // meaningful on probes 3/4
  Uuid spawned_chain;         // oneway stub-start only: the child chain's UUID

  // --- call identity ---
  std::string_view interface_name;
  std::string_view function_name;
  std::uint64_t object_key{0};

  // --- locality ---
  std::string_view process_name;
  std::string_view node_name;
  std::string_view processor_type;
  std::uint64_t thread_ordinal{0};

  // --- sampled behaviour (meaning depends on mode) ---
  ProbeMode mode{ProbeMode::kCausalityOnly};
  Nanos value_start{0};  // local timestamp or per-thread CPU at probe start
  Nanos value_end{0};    // ... at probe end

  Nanos probe_self_cost() const { return value_end - value_start; }
};

// Probes append these into per-thread rings by the million; layout drift
// (a new field, a reordering that adds padding) should be a deliberate
// decision, not an accident.  16B chain + 8B seq + 3 enum bytes (padded to
// 8) + 16B spawned chain + 3x16B string_view + 8B key + 2x16B string_view
// + 8B ordinal + mode byte (padded to 8) + 2x8B samples = 168 on LP64.
static_assert(sizeof(void*) != 8 || sizeof(TraceRecord) == 168,
              "TraceRecord layout drifted -- update this assert (and the "
              "size note above) deliberately");

}  // namespace causeway::monitor
