// Critical-path extraction over annotated DSCG chains.
//
// One of the paper's named future directions is "richer end-to-end system
// behavior characterization support".  This module implements the most
// requested such enrichment: for a transaction (one top-level call), walk
// the call tree picking the dominant-latency child at every level, yielding
// the sequence of frames that actually bounds the end-to-end time -- and,
// per frame, how much latency is its own (exclusive of the path child) vs
// inherited.  Optimizing anything off this path cannot speed the
// transaction up.
#pragma once

#include <string>
#include <vector>

#include "analysis/dscg.h"

namespace causeway::analysis {

struct CriticalStep {
  const CallNode* node{nullptr};
  Nanos total{0};      // L(node)
  Nanos exclusive{0};  // L(node) minus the chosen child's L: time this frame
                       // itself is responsible for (body + transport + its
                       // non-dominant children)
};

struct CriticalPath {
  std::vector<CriticalStep> steps;  // root-first

  Nanos total() const { return steps.empty() ? 0 : steps.front().total; }

  // The single step responsible for the largest exclusive share.
  const CriticalStep* dominant() const;

  std::string to_string() const;
};

// Path for one annotated top-level call (annotate_latency must have run).
// Nodes without latency contribute nothing and stop the descent.
CriticalPath critical_path(const CallNode& root);

// Paths for every top-level call in the DSCG, slowest transaction first.
std::vector<CriticalPath> critical_paths(const Dscg& dscg);

}  // namespace causeway::analysis
