#include "analysis/export.h"

#include "common/strings.h"

namespace causeway::analysis {
namespace {

std::string node_label(const CallNode& node) {
  return strf("%s::%s#%llu", std::string(node.interface_name).c_str(),
              std::string(node.function_name).c_str(),
              static_cast<unsigned long long>(node.object_key));
}

std::string annotations(const CallNode& node, const ExportOptions& options) {
  std::string out;
  out += strf(" [%s]", std::string(to_string(node.kind)).c_str());
  if (node.failed()) {
    out += strf(" !%s", std::string(to_string(node.outcome())).c_str());
  }
  if (options.show_location && !node.server_process().empty()) {
    out += strf(" @%s", std::string(node.server_process()).c_str());
  }
  if (options.show_latency && node.latency) {
    out += strf(" latency=%.3fus",
                static_cast<double>(*node.latency) / 1e3);
  }
  if (options.show_cpu && !node.self_cpu.by_type.empty()) {
    out += strf(" self_cpu=%.3fus desc_cpu=%.3fus",
                static_cast<double>(node.self_cpu.total()) / 1e3,
                static_cast<double>(node.descendant_cpu.total()) / 1e3);
  }
  return out;
}

struct TextWalker {
  const ExportOptions& options;
  std::string out;
  std::size_t emitted{0};

  void walk(const CallNode& node, int depth) {
    if (options.max_nodes && emitted >= options.max_nodes) return;
    if (!node.is_virtual_root()) {
      out += std::string(static_cast<std::size_t>(depth) * 2, ' ');
      out += node_label(node) + annotations(node, options) + "\n";
      ++emitted;
    }
    const int d = node.is_virtual_root() ? depth : depth + 1;
    for (const auto& c : node.children) walk(*c, d);
    for (const ChainTree* spawned : node.spawned) {
      if (options.max_nodes && emitted >= options.max_nodes) return;
      out += std::string(static_cast<std::size_t>(d) * 2, ' ');
      out += strf("~> spawned chain %s\n",
                  spawned->chain.to_string().c_str());
      walk(*spawned->root, d + 1);
    }
  }
};

struct DotWalker {
  const ExportOptions& options;
  std::string out;
  std::size_t next_id{0};

  std::size_t emit_node(const CallNode& node) {
    const std::size_t id = next_id++;
    out += strf("  n%zu [label=\"%s%s\"];\n", id,
                node_label(node).c_str(),
                annotations(node, options).c_str());
    return id;
  }

  void walk(const CallNode& node, std::size_t parent_id, bool has_parent) {
    std::size_t id = parent_id;
    if (!node.is_virtual_root()) {
      id = emit_node(node);
      if (has_parent) out += strf("  n%zu -> n%zu;\n", parent_id, id);
    }
    const bool ids_valid = has_parent || !node.is_virtual_root();
    for (const auto& c : node.children) walk(*c, id, ids_valid);
    for (const ChainTree* spawned : node.spawned) {
      for (const auto& top : spawned->root->children) {
        const std::size_t child_id = next_id;  // emitted by recursive call
        walk(*top, id, ids_valid);
        if (ids_valid) {
          out += strf("  n%zu -> n%zu [style=dashed,label=\"oneway\"];\n", id,
                      child_id);
        }
      }
    }
  }
};

struct JsonWalker {
  const ExportOptions& options;
  std::string out;

  void walk(const CallNode& node) {
    out += '{';
    out += strf("\"interface\":\"%s\",\"function\":\"%s\",\"object\":%llu,"
                "\"kind\":\"%s\"",
                json_escape(std::string(node.interface_name)).c_str(),
                json_escape(std::string(node.function_name)).c_str(),
                static_cast<unsigned long long>(node.object_key),
                std::string(to_string(node.kind)).c_str());
    if (options.show_latency && node.latency) {
      out += strf(",\"latency_ns\":%lld",
                  static_cast<long long>(*node.latency));
    }
    if (options.show_cpu && !node.self_cpu.by_type.empty()) {
      out += strf(",\"self_cpu_ns\":%lld,\"descendant_cpu_ns\":%lld",
                  static_cast<long long>(node.self_cpu.total()),
                  static_cast<long long>(node.descendant_cpu.total()));
    }
    if (options.show_location && !node.server_process().empty()) {
      out += strf(",\"process\":\"%s\"",
                  json_escape(std::string(node.server_process())).c_str());
    }
    out += ",\"children\":[";
    bool first = true;
    for (const auto& c : node.children) {
      if (!first) out += ',';
      first = false;
      walk(*c);
    }
    out += "],\"spawned\":[";
    first = true;
    for (const ChainTree* spawned : node.spawned) {
      for (const auto& top : spawned->root->children) {
        if (!first) out += ',';
        first = false;
        walk(*top);
      }
    }
    out += "]}";
  }
};

struct HtmlWalker {
  const ExportOptions& options;
  std::string out;
  std::size_t emitted{0};

  static const char* kind_class(const CallNode& node) {
    switch (node.kind) {
      case monitor::CallKind::kSync: return "sync";
      case monitor::CallKind::kOneway: return "oneway";
      case monitor::CallKind::kCollocated: return "collocated";
    }
    return "sync";
  }

  void walk(const CallNode& node) {
    if (options.max_nodes && emitted >= options.max_nodes) return;
    ++emitted;
    const bool leaf = node.children.empty() && node.spawned.empty();
    out += leaf ? "<div class='leaf'>" : "<details open><summary>";
    out += "<span class='" + std::string(kind_class(node)) + "'>" +
           xml_escape(node_label(node)) + "</span>";
    if (node.failed()) {
      out += " <span class='fail'>" +
             xml_escape(std::string(to_string(node.outcome()))) + "</span>";
    }
    if (options.show_location && !node.server_process().empty()) {
      out += " <span class='loc'>@" +
             xml_escape(std::string(node.server_process())) + "</span>";
    }
    if (options.show_latency && node.latency) {
      out += strf(" <span class='metric'>%.1f&thinsp;&micro;s</span>",
                  static_cast<double>(*node.latency) / 1e3);
    }
    if (options.show_cpu && !node.self_cpu.by_type.empty()) {
      out += strf(" <span class='metric'>cpu %.1f+%.1f&thinsp;&micro;s</span>",
                  static_cast<double>(node.self_cpu.total()) / 1e3,
                  static_cast<double>(node.descendant_cpu.total()) / 1e3);
    }
    if (leaf) {
      out += "</div>";
      return;
    }
    out += "</summary>";
    for (const auto& c : node.children) walk(*c);
    for (const ChainTree* spawned : node.spawned) {
      out += "<div class='spawn'>&#8605; spawned chain " +
             spawned->chain.to_string() + "</div>";
      for (const auto& top : spawned->root->children) walk(*top);
    }
    out += "</details>";
  }
};

}  // namespace

std::string to_text(const Dscg& dscg, const ExportOptions& options) {
  TextWalker walker{options, {}, 0};
  for (const ChainTree* tree : dscg.roots()) {
    walker.out += strf("chain %s%s\n", tree->chain.to_string().c_str(),
                       tree->anomalies.empty() ? "" : " [has anomalies]");
    walker.walk(*tree->root, 1);
  }
  return std::move(walker.out);
}

std::string to_dot(const Dscg& dscg, const ExportOptions& options) {
  DotWalker walker{options, {}, 0};
  walker.out = "digraph DSCG {\n  node [shape=box,fontsize=10];\n";
  for (const ChainTree* tree : dscg.roots()) {
    walker.walk(*tree->root, 0, false);
  }
  walker.out += "}\n";
  return std::move(walker.out);
}

std::string to_html(const Dscg& dscg, const ExportOptions& options) {
  std::string out =
      "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
      "<title>Dynamic System Call Graph</title>\n<style>\n"
      "body{font:13px/1.5 monospace;background:#fafafa;color:#222;"
      "margin:2em}\n"
      "details{margin-left:1.2em;border-left:1px dotted #bbb;"
      "padding-left:.6em}\n"
      ".leaf{margin-left:2.2em}\n"
      "summary{cursor:pointer}\n"
      ".sync{color:#1a4f8a;font-weight:bold}\n"
      ".collocated{color:#166534;font-weight:bold}\n"
      ".oneway{color:#9a3412;font-weight:bold}\n"
      ".loc{color:#888}\n"
      ".metric{color:#6b21a8}\n"
      ".fail{color:#b91c1c;font-weight:bold}\n"
      ".spawn{color:#9a3412;margin-left:1.2em}\n"
      ".chain{margin-top:1em;color:#555}\n"
      "</style></head><body>\n<h2>Dynamic System Call Graph</h2>\n";
  HtmlWalker walker{options, {}, 0};
  for (const ChainTree* tree : dscg.roots()) {
    walker.out += "<div class='chain'>chain " + tree->chain.to_string() +
                  (tree->anomalies.empty() ? "" : " (has anomalies)") +
                  "</div>\n";
    for (const auto& top : tree->root->children) walker.walk(*top);
    if (walker.options.max_nodes &&
        walker.emitted >= walker.options.max_nodes) {
      walker.out += "<div class='chain'>... truncated ...</div>";
      break;
    }
  }
  out += walker.out;
  out += "\n</body></html>\n";
  return out;
}

std::string to_json(const Dscg& dscg, const ExportOptions& options) {
  JsonWalker walker{options, {}};
  walker.out = "{\"chains\":[";
  bool first = true;
  for (const ChainTree* tree : dscg.roots()) {
    if (!first) walker.out += ',';
    first = false;
    walker.out += strf("{\"chain\":\"%s\",\"anomalies\":%zu,\"calls\":[",
                       tree->chain.to_string().c_str(),
                       tree->anomalies.size());
    bool first_call = true;
    for (const auto& top : tree->root->children) {
      if (!first_call) walker.out += ',';
      first_call = false;
      walker.walk(*top);
    }
    walker.out += "]}";
  }
  walker.out += "]}";
  return std::move(walker.out);
}

}  // namespace causeway::analysis
