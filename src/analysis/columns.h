// Decoded trace columns -- the zero-assembly handoff between the v4 segment
// codec and sharded synthesis, in both directions.
//
// A v4 segment is columnar on the wire (analysis/trace_io.h); ColumnBundle
// is the same shape in memory: one contiguous vector per record field, runs
// of consecutive same-chain records carrying their chain UUID once, string
// ids still unresolved against the segment's deduplicated table.  The batch
// varint kernels (common/wire.h) decode straight into these vectors, and
// LogDatabase::ingest(const ColumnBundle&) scatters them straight into the
// per-shard synthesis state -- no intermediate 168-byte TraceRecord staging
// array is ever built on the pipeline path.  The write side is symmetric:
// encode_trace_columns() turns a bundle back into segment bytes through the
// same batch kernels (relays re-pack without ever assembling records), and
// the result is byte-identical to encoding the assembled record stream.  The record-major
// CollectedLogs form still exists for v2/v3 segments and for callers that
// want assembled records (decode_trace_segments); both ingest paths produce
// byte-identical databases.
//
// A bundle is self-contained: table views point into the bundle-owned
// string pool (shared, so assembling a CollectedLogs from a bundle shares
// rather than copies), and the flag columns are copied out of the input
// bytes -- a bundle may outlive the mmap it was decoded from, cross
// threads, and be ingested later in epoch order.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "monitor/collector.h"

namespace causeway::analysis {

struct ColumnBundle {
  std::vector<monitor::CollectedLogs::DomainEntry> domains;

  // Which drain produced the segment (0 = offline collect) and the probe
  // ring-overflow count it reported.  v4 segments carry no transport-tier
  // counters, so ingest treats those as zero -- exactly as the assembled
  // CollectedLogs form does.
  std::uint64_t epoch{0};
  std::uint64_t dropped{0};

  // The segment's deduplicated string table; every id column below indexes
  // it, and decode has already validated every id (so ingest can index
  // without re-checking).  Views point into `strings`.
  std::vector<std::string_view> table;

  // Maximal spans of consecutive same-chain records, arrival order
  // preserved.  `spawn_base` is the number of spawned-chain entries before
  // this run -- a shard handed a run indexes `spawned` from there, walking
  // its own flag bits, without any cross-run scan.
  struct Run {
    Uuid chain;
    std::uint64_t length{0};
    std::uint32_t spawn_base{0};
  };
  std::vector<Run> runs;

  std::size_t count{0};                // total records across all runs

  // One entry per record, arrival order (runs are contiguous).
  std::vector<std::uint64_t> seq;      // absolute (deltas already summed)
  std::vector<std::uint8_t> flags1;    // event | kind<<3 | outcome<<5
  std::vector<std::uint8_t> flags2;    // mode | spawn-bit 4 | rate_index<<3
  std::vector<std::uint32_t> iface, func, process, node, type;  // table ids
  std::vector<std::uint64_t> object_key;
  std::vector<std::uint64_t> thread_ordinal;
  std::vector<std::int64_t> value_start;  // absolute
  std::vector<std::int64_t> value_end;    // absolute

  // Dense spawned-chain UUIDs for just the records whose flags2 bit 2 is
  // set (oneway stub-starts -- sparse).
  std::vector<Uuid> spawned;

  // Backing storage for `table` (and shareable with any CollectedLogs
  // assembled from this bundle).
  std::shared_ptr<std::deque<std::string>> strings =
      std::make_shared<std::deque<std::string>>();

  std::string_view own_string(std::string_view s) {
    strings->emplace_back(s);
    return strings->back();
  }
};

}  // namespace causeway::analysis
