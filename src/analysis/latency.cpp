#include "analysis/latency.h"

namespace causeway::analysis {

using monitor::CallKind;
using monitor::EventKind;
using monitor::ProbeMode;
using monitor::TraceRecord;

namespace {

bool latency_record(const std::optional<TraceRecord>& r) {
  return r && r->mode == ProbeMode::kLatency;
}

// Sum of this node's probe self-durations over the probe set R(F):
// {1,2,3,4} for sync/collocated, {1,4} for oneway (paper Sec. 3.2).
Nanos own_probe_cost(const CallNode& node) {
  Nanos sum = 0;
  for (int i = 0; i < 4; ++i) {
    const bool stub_side = (i == 0 || i == 3);
    if (node.kind == CallKind::kOneway && !stub_side) continue;
    if (latency_record(node.rec[i])) sum += node.rec[i]->probe_self_cost();
  }
  return sum;
}

// O_F: probe costs of every descendant invocation in F's window.  Spawned
// chains run in other threads, outside the window -- excluded.
Nanos descendant_probe_cost(const CallNode& node) {
  Nanos sum = 0;
  for (const auto& child : node.children) {
    sum += own_probe_cost(*child) + descendant_probe_cost(*child);
  }
  return sum;
}

void annotate_node(CallNode& node, LatencyReport& report) {
  for (auto& child : node.children) annotate_node(*child, report);

  if (node.is_virtual_root()) return;

  // Reset before computing so re-annotation (incremental refolds, probe-mode
  // flips) is idempotent.
  node.latency.reset();
  node.latency_overhead = 0;
  node.raw_latency.reset();

  const std::optional<TraceRecord>*first = nullptr, *last = nullptr;
  switch (node.kind) {
    case CallKind::kSync:
      first = &node.record(EventKind::kStubStart);
      last = &node.record(EventKind::kStubEnd);
      break;
    case CallKind::kCollocated:
      first = &node.record(EventKind::kSkelStart);
      last = &node.record(EventKind::kSkelEnd);
      break;
    case CallKind::kOneway:
      if (node.record(EventKind::kStubStart)) {
        first = &node.record(EventKind::kStubStart);
        last = &node.record(EventKind::kStubEnd);
      } else {  // skeleton side of the spawned chain
        first = &node.record(EventKind::kSkelStart);
        last = &node.record(EventKind::kSkelEnd);
      }
      break;
  }

  if (!latency_record(*first) || !latency_record(*last)) {
    ++report.skipped;
    return;
  }

  const Nanos raw = (*last)->value_start - (*first)->value_end;
  const Nanos overhead = descendant_probe_cost(node);
  node.raw_latency = raw;
  node.latency_overhead = overhead;
  node.latency = raw - overhead;
  ++report.annotated;
}

}  // namespace

void annotate_chain_latency(ChainTree& tree, LatencyReport& report) {
  if (tree.root) annotate_node(*tree.root, report);
}

LatencyReport annotate_latency(Dscg& dscg) {
  LatencyReport report;
  for (const auto& tree : dscg.chains()) {
    annotate_chain_latency(*tree, report);
  }
  return report;
}

}  // namespace causeway::analysis
