#include "analysis/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "analysis/cpu.h"
#include "analysis/latency.h"
#include "common/strings.h"

namespace causeway::analysis {
namespace {

// ---- passes -----------------------------------------------------------

class DscgPass : public AnalysisPass {
 public:
  explicit DscgPass(Dscg& dscg) : dscg_(dscg) {}
  std::string_view name() const override { return "dscg"; }
  void update(const LogDatabase& db, const EpochInfo&) override {
    dscg_.update(db);
  }

 private:
  Dscg& dscg_;
};

// Latency / CPU annotation replay.  Re-annotates exactly the chains the
// scope's trees cover (reset-first, so replay is idempotent), then replays
// the spawned-CPU charging walk for the affected trees in ascending ordinal
// order -- the same order the offline annotate_cpu charges all roots, which
// the scope closure guarantees is equivalent on the touched subgraph.
class AnnotatePass : public AnalysisPass {
 public:
  AnnotatePass(Dscg& dscg, const std::vector<std::uint64_t>& chains)
      : dscg_(dscg), chains_(chains) {}
  std::string_view name() const override { return "annotate"; }
  void update(const LogDatabase&, const EpochInfo& info) override {
    if (info.mode_changed) {
      // Every stored annotation is in the wrong unit now; wipe before the
      // full re-annotation the pipeline scheduled.
      for (const auto& tree : dscg_.chains()) reset_annotations(*tree);
    }
    if (info.mode == monitor::ProbeMode::kLatency) {
      LatencyReport report;
      for (std::uint64_t ord : chains_) {
        annotate_chain_latency(*dscg_.chains()[ord], report);
      }
    } else if (info.mode == monitor::ProbeMode::kCpu) {
      CpuReport report;
      const CpuOptions options;
      for (std::uint64_t ord : chains_) {
        annotate_chain_cpu(*dscg_.chains()[ord], options, report);
      }
      if (options.charge_spawned_chains) {
        for (std::uint64_t root : info.scope.affected_roots) {
          charge_spawned_tree(*dscg_.chains()[root]);
        }
      }
    }
  }

 private:
  Dscg& dscg_;
  const std::vector<std::uint64_t>& chains_;  // pipeline's annotate list
};

class AnomalyPass : public AnalysisPass {
 public:
  AnomalyPass(Dscg& dscg, std::vector<AnomalySink*>& sinks)
      : dscg_(dscg), sinks_(sinks) {}
  std::string_view name() const override { return "anomaly"; }
  void update(const LogDatabase&, const EpochInfo& info) override {
    scratch_.clear();
    detector_.scan(dscg_, info.scope.rebuilt_chains, info.epoch, scratch_);
    detector_.drops(info.dropped_delta, info.publish_dropped_delta,
                    info.epoch, scratch_);
    emitted_ += scratch_.size();
    for (AnomalySink* sink : sinks_) {
      for (const auto& event : scratch_) sink->on_event(event);
    }
  }
  std::size_t emitted() const { return emitted_; }

 private:
  Dscg& dscg_;
  std::vector<AnomalySink*>& sinks_;
  AnomalyDetector detector_;
  std::vector<AnomalyEvent> scratch_;
  std::size_t emitted_{0};
};

class CcsgPass : public AnalysisPass {
 public:
  explicit CcsgPass(Dscg& dscg) : dscg_(dscg) {}
  std::string_view name() const override { return "ccsg"; }
  void update(const LogDatabase&, const EpochInfo& info) override {
    graph_.update(dscg_, info.scope);
  }
  Ccsg& graph() { return graph_; }

 private:
  Dscg& dscg_;
  Ccsg graph_;
};

class ReportPass : public AnalysisPass {
 public:
  explicit ReportPass(Dscg& dscg) : dscg_(dscg) {}
  std::string_view name() const override { return "report"; }
  void update(const LogDatabase& db, const EpochInfo& info) override {
    report_.update(dscg_, db, info.scope);
  }
  Report& report() { return report_; }

 private:
  Dscg& dscg_;
  Report report_;
};

class TimelinePass : public AnalysisPass {
 public:
  explicit TimelinePass(Dscg& dscg) : dscg_(dscg) {}
  std::string_view name() const override { return "timeline"; }
  void update(const LogDatabase&, const EpochInfo& info) override {
    auto subtract = [&](std::uint64_t ord) {
      auto it = imprints_.find(ord);
      if (it == imprints_.end()) return;
      for (const auto& e : it->second) entries_.erase(entries_.find(e));
      imprints_.erase(it);
      dirty_ = true;
    };
    for (std::uint64_t ord : info.scope.removed_roots) subtract(ord);
    for (std::uint64_t ord : info.scope.affected_roots) subtract(ord);
    for (std::uint64_t ord : info.scope.affected_roots) {
      std::vector<TimelineEntry> fold;
      gather_timeline(*dscg_.chains()[ord], fold);
      for (const auto& e : fold) entries_.insert(e);
      imprints_.emplace(ord, std::move(fold));
      dirty_ = true;
    }
  }
  const std::vector<TimelineEntry>& entries() {
    if (dirty_) {
      cache_.assign(entries_.begin(), entries_.end());
      dirty_ = false;
    }
    return cache_;
  }

 private:
  Dscg& dscg_;
  // TimelineOrder is total, so the multiset iterates exactly like the
  // offline sort of the same entries.
  std::multiset<TimelineEntry, TimelineOrder> entries_;
  std::unordered_map<std::uint64_t, std::vector<TimelineEntry>> imprints_;
  std::vector<TimelineEntry> cache_;
  bool dirty_{false};
};

bool same_options(const ExportOptions& a, const ExportOptions& b) {
  return a.show_latency == b.show_latency && a.show_cpu == b.show_cpu &&
         a.show_location == b.show_location && a.max_nodes == b.max_nodes;
}

// Generation-memoized render cache over the DSCG exporters: a render at an
// unchanged generation (the common case when tailing a quiet trace) is a
// string copy.
class ExportPass : public AnalysisPass {
 public:
  explicit ExportPass(Dscg& dscg) : dscg_(dscg) {}
  std::string_view name() const override { return "export"; }
  void update(const LogDatabase&, const EpochInfo& info) override {
    generation_ = info.generation;
  }

  enum Format { kText = 0, kDot, kJson, kHtml };
  using Renderer = std::string (*)(const Dscg&, const ExportOptions&);
  const std::string& render(Format format, Renderer fn,
                            const ExportOptions& options) {
    Slot& slot = slots_[format];
    if (slot.generation != generation_ || !same_options(slot.options, options)) {
      slot.text = fn(dscg_, options);
      slot.generation = generation_;
      slot.options = options;
    }
    return slot.text;
  }

 private:
  struct Slot {
    std::string text;
    std::uint64_t generation{~0ull};
    ExportOptions options;
  };
  Dscg& dscg_;
  std::uint64_t generation_{0};
  Slot slots_[4];
};

}  // namespace

// ---- pipeline ---------------------------------------------------------

struct AnalysisPipeline::Impl {
  Impl() = default;
  explicit Impl(std::size_t ingest_shards) : db(ingest_shards) {}

  LogDatabase db;
  Dscg dscg;
  std::vector<AnomalySink*> sinks;

  // Scratch shared with the passes; rebuilt per epoch, spans in EpochInfo
  // point into these until the next epoch.
  std::vector<std::uint64_t> affected;
  std::vector<std::uint64_t> removed;
  std::vector<std::uint64_t> annotate_chains;

  // Root-cover bookkeeping for the dirty closure: which chains each
  // top-level tree's fold crosses, and the reverse.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> chains_of_root;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      covered_by;
  std::unordered_set<std::uint64_t> folded;  // roots currently folded

  monitor::ProbeMode last_mode{monitor::ProbeMode::kCausalityOnly};
  std::uint64_t epochs{0};
  std::uint64_t last_dropped{0};
  std::uint64_t last_publish_dropped{0};
  std::uint64_t last_sampled_out{0};
  std::size_t last_size{0};
  EpochInfo last_info{};

  DscgPass dscg_pass{dscg};
  AnnotatePass annotate_pass{dscg, annotate_chains};
  AnomalyPass anomaly_pass{dscg, sinks};
  CcsgPass ccsg_pass{dscg};
  ReportPass report_pass{dscg};
  TimelinePass timeline_pass{dscg};
  ExportPass export_pass{dscg};
  std::vector<AnalysisPass*> passes{&dscg_pass,   &annotate_pass,
                                    &anomaly_pass, &ccsg_pass,
                                    &report_pass,  &timeline_pass,
                                    &export_pass};

  struct TextCache {
    std::string text;
    std::uint64_t generation{~0ull};
  };
  TextCache ccsg_xml_cache, timeline_text_cache, timeline_csv_cache;

  EpochInfo run_epoch();
  void compute_scope(EpochInfo& info);
  void collect_cover(const ChainTree& tree,
                     std::unordered_set<std::uint64_t>& seen);
  void collect_cover_node(const CallNode& node,
                          std::unordered_set<std::uint64_t>& seen);
};

void AnalysisPipeline::Impl::collect_cover_node(
    const CallNode& node, std::unordered_set<std::uint64_t>& seen) {
  for (const auto& child : node.children) collect_cover_node(*child, seen);
  for (const ChainTree* spawned : node.spawned) {
    collect_cover(*spawned, seen);
  }
}

void AnalysisPipeline::Impl::collect_cover(
    const ChainTree& tree, std::unordered_set<std::uint64_t>& seen) {
  if (!seen.insert(tree.ordinal).second) return;  // cycle/shared guard
  collect_cover_node(*tree.root, seen);
}

void AnalysisPipeline::Impl::compute_scope(EpochInfo& info) {
  affected.clear();
  removed.clear();
  annotate_chains.clear();
  const DscgDelta& delta = *info.delta;

  std::set<std::uint64_t> affected_set;
  std::vector<std::uint64_t> frontier;
  auto add_root = [&](std::uint64_t r) {
    if (!dscg.is_root(r)) return;
    if (affected_set.insert(r).second) frontier.push_back(r);
  };
  std::set<std::uint64_t> annotate_set;

  if (info.mode_changed) {
    // Every stored fold is in the wrong unit: full re-fold, from scratch
    // cover maps, all chains re-annotated.
    for (const ChainTree* tree : dscg.roots()) add_root(tree->ordinal);
    for (std::uint64_t r : folded) {
      if (!dscg.is_root(r)) removed.push_back(r);
    }
    for (std::uint64_t i = 0; i < dscg.chains().size(); ++i) {
      annotate_set.insert(i);
    }
    chains_of_root.clear();
    covered_by.clear();
    folded.clear();
    for (std::uint64_t r : affected_set) {
      std::unordered_set<std::uint64_t> seen;
      collect_cover(*dscg.chains()[r], seen);
      std::vector<std::uint64_t> cover(seen.begin(), seen.end());
      std::sort(cover.begin(), cover.end());
      for (std::uint64_t c : cover) covered_by[c].insert(r);
      chains_of_root[r] = std::move(cover);
      folded.insert(r);
    }
  } else {
    // Seeds: trees covering any rebuilt/touched chain, plus new roots, plus
    // everything a retired root used to cover.
    auto seed_chain = [&](const Uuid& id) {
      const ChainTree* tree = dscg.find_chain(id);
      if (!tree) return;
      add_root(tree->ordinal);
      auto it = covered_by.find(tree->ordinal);
      if (it == covered_by.end()) return;
      for (std::uint64_t r : it->second) add_root(r);
    };
    for (const Uuid& id : delta.rebuilt) seed_chain(id);
    for (const Uuid& id : delta.touched) seed_chain(id);
    for (const Uuid& id : delta.roots_added) {
      if (const ChainTree* tree = dscg.find_chain(id)) {
        add_root(tree->ordinal);
      }
    }
    for (const Uuid& id : delta.roots_removed) {
      const ChainTree* tree = dscg.find_chain(id);
      if (!tree) continue;
      const std::uint64_t ord = tree->ordinal;
      if (folded.count(ord)) removed.push_back(ord);
      auto it = chains_of_root.find(ord);
      if (it == chains_of_root.end()) continue;
      for (std::uint64_t c : it->second) {
        add_root(c);
        auto cb = covered_by.find(c);
        if (cb == covered_by.end()) continue;
        for (std::uint64_t r : cb->second) add_root(r);
      }
    }

    // Closure over shared chains: a re-annotated chain invalidates every
    // tree whose fold (old or new) crosses it, so keep expanding until the
    // affected set is closed.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> new_cover;
    while (!frontier.empty()) {
      const std::uint64_t r = frontier.back();
      frontier.pop_back();
      std::unordered_set<std::uint64_t> seen;
      collect_cover(*dscg.chains()[r], seen);
      std::vector<std::uint64_t>& cover = new_cover[r];
      cover.assign(seen.begin(), seen.end());
      auto expand = [&](std::uint64_t c) {
        add_root(c);
        auto cb = covered_by.find(c);
        if (cb == covered_by.end()) return;
        for (std::uint64_t r2 : cb->second) add_root(r2);
      };
      for (std::uint64_t c : cover) expand(c);
      auto old = chains_of_root.find(r);
      if (old != chains_of_root.end()) {
        for (std::uint64_t c : old->second) expand(c);
      }
    }

    // Retire old covers, install the new ones, and collect the chains the
    // annotation pass must replay (covered by an affected tree, or newly
    // orphaned -- no covering tree left, so back to plain per-chain values).
    auto drop_cover = [&](std::uint64_t r) {
      auto it = chains_of_root.find(r);
      if (it == chains_of_root.end()) return;
      for (std::uint64_t c : it->second) {
        auto cb = covered_by.find(c);
        if (cb == covered_by.end()) continue;
        cb->second.erase(r);
        if (cb->second.empty()) {
          covered_by.erase(cb);
          if (!dscg.is_root(c)) annotate_set.insert(c);
        }
      }
      chains_of_root.erase(it);
    };
    for (std::uint64_t r : removed) {
      drop_cover(r);
      folded.erase(r);
    }
    for (std::uint64_t r : affected_set) drop_cover(r);
    for (std::uint64_t r : affected_set) {
      std::vector<std::uint64_t>& cover = new_cover[r];
      std::sort(cover.begin(), cover.end());
      for (std::uint64_t c : cover) {
        covered_by[c].insert(r);
        annotate_set.insert(c);
      }
      chains_of_root[r] = std::move(cover);
      folded.insert(r);
    }
  }

  affected.assign(affected_set.begin(), affected_set.end());
  std::sort(removed.begin(), removed.end());
  removed.erase(std::unique(removed.begin(), removed.end()), removed.end());
  annotate_chains.assign(annotate_set.begin(), annotate_set.end());

  info.scope.affected_roots = affected;
  info.scope.removed_roots = removed;
  info.scope.rebuilt_chains = delta.rebuilt;
}

EpochInfo AnalysisPipeline::Impl::run_epoch() {
  EpochInfo info;
  info.generation = db.generation();
  info.epoch = db.last_epoch();
  info.new_records = db.size() - last_size;
  last_size = db.size();
  info.dropped_delta = db.overflow_dropped() - last_dropped;
  last_dropped = db.overflow_dropped();
  info.publish_dropped_delta = db.publish_dropped() - last_publish_dropped;
  last_publish_dropped = db.publish_dropped();
  info.sampled_out_delta = db.sampled_out() - last_sampled_out;
  last_sampled_out = db.sampled_out();
  info.mode = db.primary_mode();
  info.mode_changed = (epochs > 0 && info.mode != last_mode);
  last_mode = info.mode;

  // CAUSEWAY_PASS_TIMING=1 prints per-pass wall time to stderr -- the knob
  // for chasing a pass whose epoch cost grows with the graph.
  static const bool timing = std::getenv("CAUSEWAY_PASS_TIMING") != nullptr;
  const auto timed = [&](AnalysisPass* pass) {
    if (!timing) {
      pass->update(db, info);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    pass->update(db, info);
    const auto t1 = std::chrono::steady_clock::now();
    std::fprintf(stderr, "  [pass] %-10s %8.3f ms\n",
                 std::string(pass->name()).c_str(),
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t1 - t0)
                         .count()) /
                     1e6);
  };

  timed(passes[0]);  // DSCG first: it produces the delta...
  info.delta = &dscg.last_delta();
  compute_scope(info);          // ...the pipeline closes into the scope...
  for (std::size_t i = 1; i < passes.size(); ++i) {
    timed(passes[i]);  // ...every downstream pass consumes.
  }

  ++epochs;
  last_info = info;
  return info;
}

AnalysisPipeline::AnalysisPipeline() : impl_(std::make_unique<Impl>()) {}
AnalysisPipeline::AnalysisPipeline(std::size_t ingest_shards)
    : impl_(std::make_unique<Impl>(ingest_shards)) {}
AnalysisPipeline::~AnalysisPipeline() = default;

LogDatabase& AnalysisPipeline::database() { return impl_->db; }
const LogDatabase& AnalysisPipeline::database() const { return impl_->db; }

EpochInfo AnalysisPipeline::ingest(const monitor::CollectedLogs& logs) {
  impl_->db.ingest(logs);
  return impl_->run_epoch();
}

EpochInfo AnalysisPipeline::ingest(const ColumnBundle& cols) {
  impl_->db.ingest(cols);
  return impl_->run_epoch();
}

EpochInfo AnalysisPipeline::ingest_records(
    std::span<const monitor::TraceRecord> records) {
  impl_->db.ingest_records(records);
  return impl_->run_epoch();
}

EpochInfo AnalysisPipeline::refresh() { return impl_->run_epoch(); }

const Dscg& AnalysisPipeline::dscg() const { return impl_->dscg; }
const Ccsg& AnalysisPipeline::ccsg() const {
  return impl_->ccsg_pass.graph();
}

std::string AnalysisPipeline::report(const ReportOptions& options) {
  return impl_->report_pass.report().render(impl_->dscg, impl_->db, options);
}

std::string AnalysisPipeline::summary() {
  return impl_->report_pass.report().summary(impl_->dscg, impl_->db);
}

std::string AnalysisPipeline::ccsg_xml() {
  Impl& im = *impl_;
  if (im.ccsg_xml_cache.generation != im.db.generation()) {
    im.ccsg_xml_cache.text = im.ccsg_pass.graph().to_xml();
    im.ccsg_xml_cache.generation = im.db.generation();
  }
  return im.ccsg_xml_cache.text;
}

const std::vector<TimelineEntry>& AnalysisPipeline::timeline() {
  return impl_->timeline_pass.entries();
}

std::string AnalysisPipeline::timeline_text() {
  Impl& im = *impl_;
  if (im.timeline_text_cache.generation != im.db.generation()) {
    im.timeline_text_cache.text = timeline_to_text(im.timeline_pass.entries());
    im.timeline_text_cache.generation = im.db.generation();
  }
  return im.timeline_text_cache.text;
}

std::string AnalysisPipeline::timeline_csv() {
  Impl& im = *impl_;
  if (im.timeline_csv_cache.generation != im.db.generation()) {
    im.timeline_csv_cache.text = timeline_to_csv(im.timeline_pass.entries());
    im.timeline_csv_cache.generation = im.db.generation();
  }
  return im.timeline_csv_cache.text;
}

std::string AnalysisPipeline::export_text(const ExportOptions& options) {
  return impl_->export_pass.render(ExportPass::kText, &to_text, options);
}
std::string AnalysisPipeline::export_dot(const ExportOptions& options) {
  return impl_->export_pass.render(ExportPass::kDot, &to_dot, options);
}
std::string AnalysisPipeline::export_json(const ExportOptions& options) {
  return impl_->export_pass.render(ExportPass::kJson, &to_json, options);
}
std::string AnalysisPipeline::export_html(const ExportOptions& options) {
  return impl_->export_pass.render(ExportPass::kHtml, &to_html, options);
}

void AnalysisPipeline::add_sink(AnomalySink* sink) {
  impl_->sinks.push_back(sink);
}

std::string AnalysisPipeline::live_summary() const {
  const Impl& im = *impl_;
  const EpochInfo& e = im.last_info;
  return strf(
      "epoch %llu gen %llu: +%zu records (%zu total), %zu chains, %zu calls, "
      "%zu anomalies, +%llu dropped, +%llu pub-dropped",
      static_cast<unsigned long long>(e.epoch),
      static_cast<unsigned long long>(e.generation), e.new_records,
      im.db.size(), im.dscg.chains().size(), im.dscg.call_count(),
      im.dscg.anomaly_count(),
      static_cast<unsigned long long>(e.dropped_delta),
      static_cast<unsigned long long>(e.publish_dropped_delta));
}

std::uint64_t AnalysisPipeline::epochs_ingested() const {
  return impl_->epochs;
}

std::size_t AnalysisPipeline::anomaly_events() const {
  return impl_->anomaly_pass.emitted();
}

std::vector<std::string_view> AnalysisPipeline::pass_names() const {
  std::vector<std::string_view> names;
  names.reserve(impl_->passes.size());
  for (const AnalysisPass* pass : impl_->passes) names.push_back(pass->name());
  return names;
}

}  // namespace causeway::analysis
