#include "analysis/timeline.h"

#include <algorithm>

#include "common/strings.h"

namespace causeway::analysis {

void gather_timeline(const ChainTree& tree, std::vector<TimelineEntry>& out) {
  Dscg::visit_tree(tree, [&](const CallNode& node, int) {
    const auto& skel_start = node.record(monitor::EventKind::kSkelStart);
    const auto& skel_end = node.record(monitor::EventKind::kSkelEnd);
    if (!skel_start || !skel_end) return;
    if (skel_start->mode != monitor::ProbeMode::kLatency) return;

    TimelineEntry entry;
    entry.process = skel_start->process_name;
    entry.thread = skel_start->thread_ordinal;
    entry.interface_name = node.interface_name;
    entry.function_name = node.function_name;
    entry.start = skel_start->value_end;
    entry.end = skel_end->value_start;
    entry.chain = skel_start->chain;
    entry.kind = node.kind;
    out.push_back(entry);
  });
}

std::vector<TimelineEntry> build_timeline(const Dscg& dscg) {
  std::vector<TimelineEntry> entries;
  for (const ChainTree* tree : dscg.roots()) {
    gather_timeline(*tree, entries);
  }
  std::sort(entries.begin(), entries.end(), TimelineOrder{});
  return entries;
}

std::string timeline_to_text(const std::vector<TimelineEntry>& entries) {
  std::string out;
  std::string_view lane_process;
  std::uint64_t lane_thread = 0;
  bool first = true;
  for (const auto& e : entries) {
    if (first || e.process != lane_process || e.thread != lane_thread) {
      out += strf("== %s / thread %llu ==\n",
                  std::string(e.process).c_str(),
                  static_cast<unsigned long long>(e.thread));
      lane_process = e.process;
      lane_thread = e.thread;
      first = false;
    }
    out += strf("[%12lld .. %12lld]  %s::%s [%s] (chain %s)\n",
                static_cast<long long>(e.start),
                static_cast<long long>(e.end),
                std::string(e.interface_name).c_str(),
                std::string(e.function_name).c_str(),
                std::string(to_string(e.kind)).c_str(),
                e.chain.to_string().substr(0, 8).c_str());
  }
  return out;
}

std::string timeline_to_csv(const std::vector<TimelineEntry>& entries) {
  std::string out =
      "process,thread,interface,function,kind,start_ns,end_ns,chain\n";
  for (const auto& e : entries) {
    out += strf("%s,%llu,%s,%s,%s,%lld,%lld,%s\n",
                std::string(e.process).c_str(),
                static_cast<unsigned long long>(e.thread),
                std::string(e.interface_name).c_str(),
                std::string(e.function_name).c_str(),
                std::string(to_string(e.kind)).c_str(),
                static_cast<long long>(e.start),
                static_cast<long long>(e.end), e.chain.to_string().c_str());
  }
  return out;
}

}  // namespace causeway::analysis
