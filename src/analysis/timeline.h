// Per-thread execution timelines.
//
// OVATION (paper §5) presents "object method calls ... in a sequence chart
// with respect to time progressing, along with their corresponding runtime
// execution entities (thread, process, and host)" -- but without causality
// it cannot relate the intervals.  This module derives the same view from
// the DSCG, where every interval additionally knows its causal chain: for
// each call with skeleton records, the server-side execution window
// [P2.end, P3.start] on its (process, thread), in that domain's local time.
//
// Within one (process, thread) lane the windows of a latency-mode run nest
// or sequence cleanly; timestamps are never compared across processes.
#pragma once

#include <string>
#include <vector>

#include "analysis/dscg.h"

namespace causeway::analysis {

struct TimelineEntry {
  std::string_view process;
  std::uint64_t thread{0};
  std::string_view interface_name;
  std::string_view function_name;
  Nanos start{0};  // P2.end   (domain-local)
  Nanos end{0};    // P3.start (domain-local)
  Uuid chain;
  monitor::CallKind kind{monitor::CallKind::kSync};

  Nanos span() const { return end - start; }
};

// Total order over every rendered field.  Being total (no ties) is what
// lets the incremental pipeline keep entries in an ordered multiset and
// still render byte-identically to a from-scratch sort: equal keys render
// equal lines, so relative order of duplicates never shows.
struct TimelineOrder {
  bool operator()(const TimelineEntry& a, const TimelineEntry& b) const {
    if (a.process != b.process) return a.process < b.process;
    if (a.thread != b.thread) return a.thread < b.thread;
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    if (a.interface_name != b.interface_name) {
      return a.interface_name < b.interface_name;
    }
    if (a.function_name != b.function_name) {
      return a.function_name < b.function_name;
    }
    if (a.chain != b.chain) return a.chain < b.chain;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
};

// Appends one top-level tree's entries (crossing into spawned chains),
// unsorted -- the per-root unit the incremental pipeline folds.
void gather_timeline(const ChainTree& tree, std::vector<TimelineEntry>& out);

// Entries in TimelineOrder (lane by process/thread, then time).  Only calls
// whose skeleton pair was captured in latency mode appear (CPU-mode values
// are not timestamps).
std::vector<TimelineEntry> build_timeline(const Dscg& dscg);

// Lane-per-thread rendering:
//   == procB / thread 2 ==
//   [     1200 ..     3400]  PPS::Parser::parse (chain 1a2b..)
std::string timeline_to_text(const std::vector<TimelineEntry>& entries);

// One row per entry: process,thread,interface,function,kind,start,end,chain
std::string timeline_to_csv(const std::vector<TimelineEntry>& entries);

}  // namespace causeway::analysis
