// The unit of incremental work shared by every analysis pass.
//
// The pipeline turns a DscgDelta (what one epoch rebuilt) into an
// UpdateScope: the closed set of top-level trees whose folded contributions
// must be subtracted and re-folded, plus the trees that stopped being
// top-level (subtract only) and the raw chain list for per-chain passes
// (timeline, anomaly detection).  Passes that accept an UpdateScope promise
// that update(everything) on a fresh instance equals the offline build --
// the one-epoch degenerate case -- which is what makes incremental and
// batch output byte-identical.
#pragma once

#include <cstdint>
#include <span>

#include "common/ids.h"

namespace causeway::analysis {

struct UpdateScope {
  // Ordinals (Dscg::chains() slots) of the top-level trees to subtract and
  // re-fold, ascending.  Every listed ordinal is a current root.
  std::span<const std::uint64_t> affected_roots;

  // Ordinals of trees that were folded as roots before but are no longer
  // top-level: subtract their old contribution, fold nothing back.
  std::span<const std::uint64_t> removed_roots;

  // Chains reconstructed this epoch, for passes keyed per chain rather than
  // per root tree.
  std::span<const Uuid> rebuilt_chains;
};

}  // namespace causeway::analysis
