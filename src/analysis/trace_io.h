// Trace files: durable storage between the collector and the analyzer.
//
// The paper's workflow is explicitly two-phase: probes log locally at run
// time; "when the application ceases to exist or reaches a quiescent state,
// the scattered logs are collected and eventually synthesized into a
// relational database" for off-line analysis.  Trace files are that seam as
// a real artifact: `causeway-record` writes one per run, `causeway-analyze`
// reads any number of them back.
//
// A trace file holds one or more *segments*, each a self-contained encoding
// of one collector bundle, optionally followed by a segment-directory
// trailer (see below).  Offline runs write a single segment; streaming runs
// (`causeway-record --stream`) append one segment per drain epoch.  Readers
// loop segments until the file is exhausted, so a streamed trace
// synthesizes into the same database as an offline one.
//
// Segment format v4 (all little-endian; full layout in DESIGN.md Sec. 9):
//   "CWTR" magic, u32 version, u64 body length
//   u64 drain epoch (0 = offline collect), u64 dropped count
//   varint domain count; per domain: varint process/node/type string ids,
//     u8 mode, varint record count
//   varint string count; varint-length-prefixed strings
//   columnar record section: records grouped into maximal runs of
//     consecutive same-chain records (arrival order preserved -- grouping
//     never reorders), chain stored once per run, then one column per
//     field: delta-varint seq, packed event/kind/outcome/mode flag bytes,
//     sparse spawned chains, varint ids/ordinals, and zig-zag-delta
//     varint start/end sample columns.
// Version 3 (fixed-width records, epoch + dropped words) and version 2
// (v3 without the epoch words) segments are still fully readable.
//
// After the last segment a *directory trailer* may follow ("CWTD" block +
// "CWTE" end magic): the byte length of every segment, so a reader finds
// all boundaries from the footer without walking the file.  The trailer is
// written when a TraceWriter closes; a file without one (writer still
// running, or crashed) falls back to the sequential skim.
//
// Reading is two-phase so multi-segment traces scale with cores: segment
// boundaries come from the directory trailer (or a cheap skim -- v4
// segments carry their body length in the header, so the skim is one seek
// per segment), the segments decode concurrently into self-contained
// staging bundles on the shared WorkerPool, and the bundles commit into
// the database in epoch order -- so the generation sequence (and every
// downstream render) is byte-identical to a serial segment-by-segment
// decode, across format versions and shard counts.  Files are read through
// an mmap (read() fallback; see DESIGN.md Sec. 9) and decoded zero-copy.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "analysis/columns.h"
#include "analysis/database.h"
#include "monitor/collector.h"

namespace causeway::analysis {

class AnalysisPipeline;

class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

// Segment format versions this build writes.  kTraceFormatDefault is what
// every writer emits unless told otherwise; v3 stays writable so a
// regression in the columnar codec can be bisected against the old
// encoding (`causeway-record --trace-format=v3`).  v5 is v4 with every
// dense record column wrapped in a column block (u8 codec + exact decoded
// length; see common/wire.h) so cold store files can carry deflated
// columns -- the header, domain table, string table, and chain runs are
// byte-identical to v4, and v2-v4 files remain byte-identical and fully
// readable.  Writing v5 never *requires* zlib (blocks fall back to raw),
// but only zlib builds produce deflated columns.
inline constexpr std::uint32_t kTraceFormatV3 = 3;
inline constexpr std::uint32_t kTraceFormatV4 = 4;
inline constexpr std::uint32_t kTraceFormatV5 = 5;
inline constexpr std::uint32_t kTraceFormatDefault = kTraceFormatV4;

// The readable range (what decode/skim accept), for `--version` banners and
// handshake diagnostics.
inline constexpr std::uint32_t kTraceFormatMinReadable = 2;
inline constexpr std::uint32_t kTraceFormatMaxReadable = kTraceFormatV5;

// Serializes a collector bundle as a single-segment file (plus directory
// trailer).  Throws TraceIoError on I/O failure or an unwritable version.
void write_trace_file(const std::string& path,
                      const monitor::CollectedLogs& logs,
                      std::uint32_t version = kTraceFormatDefault);

// Parses a trace file (one or more segments) and ingests everything into
// `db` (which interns all strings, so nothing dangles).  Returns the number
// of records ingested.  Throws TraceIoError on missing/corrupt files.
std::size_t read_trace_file(const std::string& path, LogDatabase& db);

// In-memory variants (testing, transport over other channels).  encode_trace
// produces one segment (no trailer); decode_trace accepts any concatenation
// of segments, with or without a final directory trailer.
std::vector<std::uint8_t> encode_trace(
    const monitor::CollectedLogs& logs,
    std::uint32_t version = kTraceFormatDefault);

// The frozen record-major v4 writer (per-record interleaved varint loops,
// the encoder before DESIGN.md Sec. 15).  Kept as the byte-identity
// reference the columnar writer is tested against, and as the baseline
// bench_trace_io measures the column-encode speedup from.  v3 has no
// columnar form, so both entry points share one v3 encoder.
std::vector<std::uint8_t> encode_trace_recmajor(
    const monitor::CollectedLogs& logs,
    std::uint32_t version = kTraceFormatDefault);

// ColumnBundle-native columnar encode (v4 or v5): collector/decoder columns
// go straight to wire bytes -- batched varint emission, SIMD delta/zig-zag
// transform passes, no record-major round trip.  The bundle's string table
// is emitted verbatim (ids already assigned), so a v4 decode -> v4 encode
// round trip reproduces the original segment byte for byte (and a
// v4 <-> v5 transcode round trip reproduces the v4 bytes).  Throws
// TraceIoError when the bundle is inconsistent (column sizes vs count, run
// coverage, ids out of table range, domain identity strings missing from
// the table).
std::vector<std::uint8_t> encode_trace_columns(
    const ColumnBundle& cols, std::uint32_t version = kTraceFormatV4);

// Multi-segment encode: one segment per bundle, packed concurrently on the
// shared WorkerPool when there is enough work, results committed in input
// order -- so the concatenation (and every segment) is byte-identical to a
// serial encode loop, across kernels and worker counts.
std::vector<std::vector<std::uint8_t>> encode_trace_stream(
    std::span<const monitor::CollectedLogs> bundles,
    std::uint32_t version = kTraceFormatDefault);
std::vector<std::vector<std::uint8_t>> encode_trace_columns_stream(
    std::span<const ColumnBundle> bundles);
std::size_t decode_trace(std::span<const std::uint8_t> bytes, LogDatabase& db);
inline std::size_t decode_trace(const std::vector<std::uint8_t>& bytes,
                                LogDatabase& db) {
  return decode_trace(std::span<const std::uint8_t>(bytes), db);
}

// The staging phase alone: every segment decoded into a self-contained
// bundle (concurrently when there is enough work), in segment order,
// without ingesting.  The building block a multi-trace merge would start
// from.  v4 segments decode columnar and are assembled record-major here;
// callers that go on to ingest should prefer the column forms below, which
// skip the assembly entirely.
std::vector<monitor::CollectedLogs> decode_trace_segments(
    std::span<const std::uint8_t> bytes);

// Column-form staging for v4 traces: every segment decoded into a
// ColumnBundle (batch varint kernels, no record-major assembly), in
// segment order.  LogDatabase/AnalysisPipeline ingest bundles directly --
// skim -> column decode -> per-shard scatter, no staging record array.
// Throws TraceIoError if any segment is not v4 (v2/v3 have no column
// form).  What bench_trace_io times for the v4 decode curve.
std::vector<ColumnBundle> decode_trace_columns(
    std::span<const std::uint8_t> bytes);

// Incremental block framing for byte-stream transports (the cross-process
// collection socket): measures the first complete block at the start of
// `bytes` -- a record segment or a directory trailer -- without decoding
// it.  Returns false when the bytes are only an incomplete prefix (read
// more and retry: the same clean-prefix discipline TraceTail::poll applies
// to a growing file).  Throws TraceIoError on structural corruption.
bool probe_trace_block(std::span<const std::uint8_t> bytes,
                       std::size_t& length, bool& is_segment);

// Decodes exactly one complete segment (as measured by probe_trace_block)
// into a self-contained bundle.  Throws TraceIoError if `segment` is not
// exactly one well-formed segment.
monitor::CollectedLogs decode_trace_segment(
    std::span<const std::uint8_t> segment);

// Same, but keeps a v4 segment in column form (the live collection path:
// IngestSink hands the bundle straight to the pipeline).  Throws
// TraceIoError on malformed input or a pre-columnar (v2/v3) segment.
ColumnBundle decode_trace_segment_columns(
    std::span<const std::uint8_t> segment);

// Reads one complete segment's total record count from its header without
// decoding the record payload -- what a relay tier needs to account for
// the segments it forwards (or sheds) without paying for a full decode.
// Throws TraceIoError if `segment` is not a well-formed segment prefix.
std::uint64_t trace_segment_record_count(
    std::span<const std::uint8_t> segment);

// `causeway-analyze --reindex`: rewrites a trailer-less trace file (a
// crashed or still-unclosed writer's artifact) in place so future opens get
// every segment extent from the directory trailer in O(segments).  An
// incomplete trailing segment (the crash cut a write short) is truncated
// away -- the clean prefix is what the trailer then describes.  A file that
// already ends in a valid trailer is left untouched.  Throws TraceIoError
// on structural corruption or I/O failure.
//
// Checkpoint-aware: a writer opened with a checkpoint interval leaves
// periodic interior directory blocks behind (see TraceWriter).  Repair
// locates the last checkpoint whose block chain validates back to byte 0
// and only re-skims the segments written after it, so recovering a crashed
// multi-gigabyte store file costs O(checkpoints + tail), not a walk of
// every segment header.  A checkpoint that was itself cut short by the
// crash simply isn't valid, and repair falls back to the previous one (or
// the full skim) -- never to a wrong answer.
struct ReindexResult {
  std::size_t segments{0};         // segments the appended trailer indexes
  std::uint64_t truncated_bytes{0};  // incomplete tail removed, if any
  bool rewritten{false};           // false: file already had a trailer
  bool used_checkpoint{false};     // repair resumed from an interior block
  std::size_t checkpoint_segments{0};  // segments vouched for by the chain,
                                       // not re-skimmed
};
ReindexResult reindex_trace_file(const std::string& path);

// Streaming writer: appends one segment per collector bundle to a trace
// file as the run progresses, flushing after each so the file is always a
// valid (if partial) trace.  close() (or destruction) appends the segment
// directory trailer.  Used by `causeway-record --stream`.
//
// With a nonzero `checkpoint_every`, the writer also emits the directory
// block *mid-file* every that-many segments (each checkpoint describes only
// the segments since the previous one, so the blocks chain back to the
// start of the file).  Readers already tolerate interior directory blocks
// as metadata; what checkpoints buy is crash repair that never re-walks the
// checkpointed prefix (see reindex_trace_file).  The store writer
// (store/store.h) checkpoints its live file; plain `causeway-record`
// streams don't need to.
class TraceWriter {
 public:
  // Truncates/creates the file.  Throws TraceIoError if it cannot open or
  // `version` is not writable.
  explicit TraceWriter(const std::string& path,
                       std::uint32_t version = kTraceFormatDefault,
                       std::size_t checkpoint_every = 0);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Appends `logs` as one segment and flushes.  Throws on short writes.
  void append(const monitor::CollectedLogs& logs);

  // Column-native append: encodes the bundle with encode_trace_columns
  // (no record-major round trip) and appends it as one segment.  Only
  // valid on a columnar (v4/v5) writer -- v3 has no columnar form.
  void append(const ColumnBundle& cols);

  // Appends one pre-encoded segment verbatim (validated to be exactly one
  // well-formed segment) and flushes.  Lets a relay -- the collector
  // daemon merging publisher streams into one file -- persist segments
  // without a decode/re-encode round trip.  Throws TraceIoError on
  // malformed input or short writes.
  void append_encoded(std::span<const std::uint8_t> segment);

  // Writes a directory checkpoint covering the segments since the last one
  // now (no-op when there are none).  Called automatically every
  // `checkpoint_every` segments; exposed so a store can force one before a
  // risky boundary.  Throws on short writes.
  void checkpoint();

  // Appends the directory trailer and closes the file.  Idempotent; throws
  // on short writes.  The destructor calls it, swallowing errors -- call
  // explicitly when you need them surfaced.
  void close();

  std::size_t segments() const { return segments_total_; }
  std::uint64_t records_written() const { return records_; }

  // Bytes on disk so far (segments + any checkpoints) -- what a
  // size-rotation policy compares against its threshold.
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void note_segment(std::size_t bytes);

  std::string path_;
  std::ofstream out_;
  std::uint32_t version_;
  std::size_t checkpoint_every_;
  std::vector<std::uint64_t> segment_lengths_;  // since the last checkpoint
  std::size_t segments_total_{0};
  std::uint64_t bytes_written_{0};
  std::uint64_t records_{0};
  bool closed_{false};
};

// Streaming reader: tails a growing trace file, ingesting each complete
// segment as it lands.  The file is read in place through an mmap remapped
// per poll (read() fallback), so nothing is staged: complete segments
// decode zero-copy straight out of the mapping, and an incomplete tail (the
// writer mid-append, or the reader raced a flush) simply stays in the file
// to be retried next poll.  A directory trailer appearing at the tail (the
// writer closed) is consumed as metadata.  Corrupt data (bad magic, bad
// version, string ids out of range) still throws TraceIoError -- only
// *incomplete* tails are recoverable.  Used by `causeway-analyze --follow`.
class TraceTail {
 public:
  explicit TraceTail(std::string path) : path_(std::move(path)) {}

  // Reads whatever the file grew since the last poll and ingests every
  // complete segment into `db`.  Returns the number of records ingested (0
  // when nothing new arrived or the tail is still incomplete).  A file that
  // does not exist yet is "nothing new"; a file that shrinks mid-tail (was
  // truncated or rewritten underneath us) throws TraceIoError.
  std::size_t poll(LogDatabase& db);

  // Same, but hands each decoded bundle straight to the pipeline: one
  // pipeline epoch per segment, no separate refresh() needed.  Renders are
  // byte-identical to the poll(db)+refresh() form (the pipeline's N-epochs
  // == one-epoch contract).
  std::size_t poll(AnalysisPipeline& pipeline);

  std::size_t segments() const { return segments_; }
  std::uint64_t bytes_consumed() const { return consumed_; }

  // Bytes known to exist but not yet decoded -- the incomplete tail.
  std::size_t pending_bytes() const {
    return static_cast<std::size_t>(seen_size_ - consumed_);
  }

 private:
  std::size_t poll_impl(LogDatabase* db, AnalysisPipeline* pipeline);

  std::string path_;
  std::uint64_t seen_size_{0};  // high-watermark file size (shrink guard)
  std::uint64_t consumed_{0};   // bytes decoded (or skipped as trailer)
  std::size_t segments_{0};
};

}  // namespace causeway::analysis
