// Trace files: durable storage between the collector and the analyzer.
//
// The paper's workflow is explicitly two-phase: probes log locally at run
// time; "when the application ceases to exist or reaches a quiescent state,
// the scattered logs are collected and eventually synthesized into a
// relational database" for off-line analysis.  Trace files are that seam as
// a real artifact: `causeway-record` writes one per run, `causeway-analyze`
// reads any number of them back.
//
// Format (all little-endian, strings via a shared string table):
//   "CWTR" magic, u32 version
//   u32 domain count; per domain: process/node/type string ids, u8 mode,
//     u64 record count
//   u32 string count; length-prefixed strings
//   u64 record count; fixed-layout records referencing the string table
#pragma once

#include <string>

#include "analysis/database.h"
#include "monitor/collector.h"

namespace causeway::analysis {

class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

// Serializes a collector bundle.  Throws TraceIoError on I/O failure.
void write_trace_file(const std::string& path,
                      const monitor::CollectedLogs& logs);

// Parses a trace file and ingests everything into `db` (which interns all
// strings, so nothing dangles).  Returns the number of records ingested.
// Throws TraceIoError on missing/corrupt files.
std::size_t read_trace_file(const std::string& path, LogDatabase& db);

// In-memory variants (testing, transport over other channels).
std::vector<std::uint8_t> encode_trace(const monitor::CollectedLogs& logs);
std::size_t decode_trace(const std::vector<std::uint8_t>& bytes,
                         LogDatabase& db);

}  // namespace causeway::analysis
