// Trace files: durable storage between the collector and the analyzer.
//
// The paper's workflow is explicitly two-phase: probes log locally at run
// time; "when the application ceases to exist or reaches a quiescent state,
// the scattered logs are collected and eventually synthesized into a
// relational database" for off-line analysis.  Trace files are that seam as
// a real artifact: `causeway-record` writes one per run, `causeway-analyze`
// reads any number of them back.
//
// A trace file holds one or more *segments*, each a self-contained encoding
// of one collector bundle.  Offline runs write a single segment; streaming
// runs (`causeway-record --stream`) append one segment per drain epoch.
// Readers loop segments until the file is exhausted, so a streamed trace
// synthesizes into the same database as an offline one.
//
// Segment format (all little-endian, strings via a per-segment table):
//   "CWTR" magic, u32 version
//   u64 drain epoch (0 = offline collect), u64 dropped count   [v3]
//   u32 domain count; per domain: process/node/type string ids, u8 mode,
//     u64 record count
//   u32 string count; length-prefixed strings
//   u64 record count; fixed-layout records referencing the string table
// Version 2 segments (no epoch/dropped words) are still readable.
//
// Reading is two-phase so multi-segment traces scale with cores: a cheap
// serial *skim* walks the structure to find every complete segment
// boundary, the segments decode concurrently into self-contained staging
// bundles on the shared WorkerPool, and the bundles commit into the
// database in epoch order -- so the generation sequence (and every
// downstream render) is byte-identical to a serial segment-by-segment
// decode.  Both the cold load (read_trace_file/decode_trace) and a tail
// catch-up (TraceTail::poll with many pending segments) take this path.
#pragma once

#include <fstream>
#include <string>

#include "analysis/database.h"
#include "monitor/collector.h"

namespace causeway::analysis {

class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

// Serializes a collector bundle as a single-segment file.  Throws
// TraceIoError on I/O failure.
void write_trace_file(const std::string& path,
                      const monitor::CollectedLogs& logs);

// Parses a trace file (one or more segments) and ingests everything into
// `db` (which interns all strings, so nothing dangles).  Returns the number
// of records ingested.  Throws TraceIoError on missing/corrupt files.
std::size_t read_trace_file(const std::string& path, LogDatabase& db);

// In-memory variants (testing, transport over other channels).  encode_trace
// produces one segment; decode_trace accepts any concatenation of segments.
std::vector<std::uint8_t> encode_trace(const monitor::CollectedLogs& logs);
std::size_t decode_trace(const std::vector<std::uint8_t>& bytes,
                         LogDatabase& db);

// Streaming writer: appends one segment per collector bundle to a trace
// file as the run progresses, flushing after each so the file is always a
// valid (if partial) trace.  Used by `causeway-record --stream`.
class TraceWriter {
 public:
  // Truncates/creates the file.  Throws TraceIoError if it cannot open.
  explicit TraceWriter(const std::string& path);

  // Appends `logs` as one segment and flushes.  Throws on short writes.
  void append(const monitor::CollectedLogs& logs);

  std::size_t segments() const { return segments_; }
  std::uint64_t records_written() const { return records_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t segments_{0};
  std::uint64_t records_{0};
};

// Streaming reader: tails a growing trace file, ingesting each complete
// segment as it lands.  A partially-written tail (the writer is mid-append,
// or the reader raced a flush) is tolerated: poll() keeps the incomplete
// bytes pending and retries on the next call.  Corrupt data (bad magic, bad
// version, string ids out of range) still throws TraceIoError -- only
// *incomplete* tails are recoverable.  Used by `causeway-analyze --follow`.
class TraceTail {
 public:
  explicit TraceTail(std::string path) : path_(std::move(path)) {}

  // Reads whatever the file grew since the last poll and ingests every
  // complete segment into `db`.  Returns the number of records ingested (0
  // when nothing new arrived or the tail is still incomplete).  A file that
  // does not exist yet is "nothing new"; a file that shrinks mid-tail (was
  // truncated or rewritten underneath us) throws TraceIoError.
  std::size_t poll(LogDatabase& db);

  std::size_t segments() const { return segments_; }
  std::uint64_t bytes_consumed() const { return consumed_; }
  std::size_t pending_bytes() const { return pending_.size(); }

 private:
  std::string path_;
  std::uint64_t file_offset_{0};       // bytes read off the file so far
  std::uint64_t consumed_{0};          // bytes decoded into segments
  std::vector<std::uint8_t> pending_;  // read but not yet decodable
  std::size_t segments_{0};
};

}  // namespace causeway::analysis
