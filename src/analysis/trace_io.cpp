#include "analysis/trace_io.h"

#include <exception>
#include <fstream>
#include <map>
#include <utility>

#include "common/wire.h"
#include "common/worker_pool.h"

namespace causeway::analysis {
namespace {

constexpr std::uint32_t kMagic = 0x43575452;  // "CWTR"
constexpr std::uint32_t kVersion = 3;  // v3 added epoch + dropped words
constexpr std::uint32_t kMinVersion = 2;

class StringTable {
 public:
  std::uint32_t id_of(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  void encode(WireBuffer& out) const {
    out.write_u32(static_cast<std::uint32_t>(strings_.size()));
    for (const auto& s : strings_) out.write_string(s);
  }

 private:
  std::deque<std::string> strings_;
  std::map<std::string_view, std::uint32_t> ids_;
};

}  // namespace

std::vector<std::uint8_t> encode_trace(const monitor::CollectedLogs& logs) {
  StringTable table;
  // Pre-intern so the table is complete before we emit record bodies.
  struct DomainIds {
    std::uint32_t process, node, type;
  };
  std::vector<DomainIds> domain_ids;
  domain_ids.reserve(logs.domains.size());
  for (const auto& d : logs.domains) {
    domain_ids.push_back({table.id_of(d.identity.process_name),
                          table.id_of(d.identity.node_name),
                          table.id_of(d.identity.processor_type)});
  }
  struct RecordIds {
    std::uint32_t iface, func, process, node, type;
  };
  std::vector<RecordIds> record_ids;
  record_ids.reserve(logs.records.size());
  for (const auto& r : logs.records) {
    record_ids.push_back({table.id_of(r.interface_name),
                          table.id_of(r.function_name),
                          table.id_of(r.process_name),
                          table.id_of(r.node_name),
                          table.id_of(r.processor_type)});
  }

  WireBuffer out;
  out.write_u32(kMagic);
  out.write_u32(kVersion);
  out.write_u64(logs.epoch);
  out.write_u64(logs.dropped);

  out.write_u32(static_cast<std::uint32_t>(logs.domains.size()));
  for (std::size_t i = 0; i < logs.domains.size(); ++i) {
    out.write_u32(domain_ids[i].process);
    out.write_u32(domain_ids[i].node);
    out.write_u32(domain_ids[i].type);
    out.write_u8(static_cast<std::uint8_t>(logs.domains[i].mode));
    out.write_u64(logs.domains[i].record_count);
  }

  table.encode(out);

  out.write_u64(logs.records.size());
  for (std::size_t i = 0; i < logs.records.size(); ++i) {
    const auto& r = logs.records[i];
    const auto& ids = record_ids[i];
    out.write_u64(r.chain.hi);
    out.write_u64(r.chain.lo);
    out.write_u64(r.seq);
    out.write_u8(static_cast<std::uint8_t>(r.event));
    out.write_u8(static_cast<std::uint8_t>(r.kind));
    out.write_u8(static_cast<std::uint8_t>(r.outcome));
    out.write_u64(r.spawned_chain.hi);
    out.write_u64(r.spawned_chain.lo);
    out.write_u32(ids.iface);
    out.write_u32(ids.func);
    out.write_u64(r.object_key);
    out.write_u32(ids.process);
    out.write_u32(ids.node);
    out.write_u32(ids.type);
    out.write_u64(r.thread_ordinal);
    out.write_u8(static_cast<std::uint8_t>(r.mode));
    out.write_i64(r.value_start);
    out.write_i64(r.value_end);
  }
  return std::move(out).take();
}

namespace {

// The fixed wire size of one record body (see encode_trace).
constexpr std::size_t kRecordWireBytes = 96;
// Per-domain wire size: three string ids, the mode byte, the record count.
constexpr std::size_t kDomainWireBytes = 21;

// Walks one segment's structure without materializing it and returns its
// byte length.  WireError (underflow) means the segment's tail has not been
// written yet; TraceIoError means structural corruption.  This is what lets
// the reader find every complete segment boundary cheaply up front, then
// decode the segments in parallel.
std::size_t skim_segment(WireCursor& in) {
  const std::size_t start = in.position();
  if (in.read_u32() != kMagic) throw TraceIoError("not a causeway trace");
  const std::uint32_t version = in.read_u32();
  if (version < kMinVersion || version > kVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  if (version >= 3) in.skip(16);  // epoch + dropped words
  const std::uint32_t domain_count = in.read_u32();
  if (domain_count > in.remaining() / kDomainWireBytes) {
    throw WireError("wire underflow");
  }
  in.skip(domain_count * kDomainWireBytes);
  const std::uint32_t string_count = in.read_u32();
  for (std::uint32_t i = 0; i < string_count; ++i) in.skip(in.read_u32());
  const std::uint64_t record_count = in.read_u64();
  if (record_count > in.remaining() / kRecordWireBytes) {
    throw WireError("wire underflow");
  }
  in.skip(static_cast<std::size_t>(record_count) * kRecordWireBytes);
  return in.position() - start;
}

// Decodes one segment into a self-contained bundle: every string is copied
// into the bundle-owned pool, so the result can outlive the input bytes,
// cross threads, and be ingested later (in epoch order).
monitor::CollectedLogs decode_segment_logs(WireCursor& in) {
  if (in.read_u32() != kMagic) throw TraceIoError("not a causeway trace");
  const std::uint32_t version = in.read_u32();
  if (version < kMinVersion || version > kVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  monitor::CollectedLogs logs;
  if (version >= 3) {
    logs.epoch = in.read_u64();
    logs.dropped = in.read_u64();
  }

  struct RawDomain {
    std::uint32_t process, node, type;
    std::uint8_t mode;
    std::uint64_t count;
  };
  std::vector<RawDomain> raw_domains(in.read_u32());
  for (auto& d : raw_domains) {
    d.process = in.read_u32();
    d.node = in.read_u32();
    d.type = in.read_u32();
    d.mode = in.read_u8();
    d.count = in.read_u64();
  }

  monitor::BundleInterner intern(logs);
  std::vector<std::string_view> strings(in.read_u32());
  for (auto& s : strings) s = intern(in.read_string());
  auto str = [&](std::uint32_t id) -> std::string_view {
    if (id >= strings.size()) throw TraceIoError("string id out of range");
    return strings[id];
  };

  for (const auto& d : raw_domains) {
    logs.domains.push_back(
        {monitor::DomainIdentity{std::string(str(d.process)),
                                 std::string(str(d.node)),
                                 std::string(str(d.type))},
         static_cast<monitor::ProbeMode>(d.mode), d.count});
  }

  const std::uint64_t count = in.read_u64();
  logs.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    monitor::TraceRecord r;
    r.chain.hi = in.read_u64();
    r.chain.lo = in.read_u64();
    r.seq = in.read_u64();
    r.event = static_cast<monitor::EventKind>(in.read_u8());
    r.kind = static_cast<monitor::CallKind>(in.read_u8());
    r.outcome = static_cast<monitor::CallOutcome>(in.read_u8());
    r.spawned_chain.hi = in.read_u64();
    r.spawned_chain.lo = in.read_u64();
    r.interface_name = str(in.read_u32());
    r.function_name = str(in.read_u32());
    r.object_key = in.read_u64();
    r.process_name = str(in.read_u32());
    r.node_name = str(in.read_u32());
    r.processor_type = str(in.read_u32());
    r.thread_ordinal = in.read_u64();
    r.mode = static_cast<monitor::ProbeMode>(in.read_u8());
    r.value_start = in.read_i64();
    r.value_end = in.read_i64();
    logs.records.push_back(r);
  }
  return logs;
}

// (offset, length) of one complete segment within a byte buffer.
using SegmentExtent = std::pair<std::size_t, std::size_t>;

// Below this many total bytes the pool dispatch costs more than the decode;
// single-segment inputs are always decoded inline.
constexpr std::size_t kParallelDecodeMinBytes = 32 * 1024;

// Decodes every skimmed segment into its own staging bundle -- concurrently
// on the shared WorkerPool when there is enough work -- leaving per-segment
// failures in `errors` so the caller can commit the clean prefix in epoch
// order before rethrowing.
void decode_staged(const std::uint8_t* base,
                   const std::vector<SegmentExtent>& segments,
                   std::vector<monitor::CollectedLogs>& staged,
                   std::vector<std::exception_ptr>& errors) {
  staged.resize(segments.size());
  errors.assign(segments.size(), nullptr);
  std::size_t total_bytes = 0;
  for (const auto& seg : segments) total_bytes += seg.second;
  auto decode_one = [&](std::size_t k) {
    try {
      WireCursor cursor(base + segments[k].first, segments[k].second);
      staged[k] = decode_segment_logs(cursor);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  };
  if (segments.size() >= 2 && total_bytes >= kParallelDecodeMinBytes &&
      WorkerPool::shared().concurrency() >= 2) {
    WorkerPool::shared().parallel_for(segments.size(), decode_one);
  } else {
    for (std::size_t k = 0; k < segments.size(); ++k) decode_one(k);
  }
}

}  // namespace

std::size_t decode_trace(const std::vector<std::uint8_t>& bytes,
                         LogDatabase& db) {
  std::vector<SegmentExtent> segments;
  try {
    WireCursor in(bytes.data(), bytes.size());
    // Segments are simply concatenated; an empty input is zero segments.
    while (in.remaining() > 0) {
      const std::size_t offset = in.position();
      segments.emplace_back(offset, skim_segment(in));
    }
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace: ") + e.what());
  }

  std::vector<monitor::CollectedLogs> staged;
  std::vector<std::exception_ptr> errors;
  decode_staged(bytes.data(), segments, staged, errors);

  // Commit in segment order: each bundle is one database generation, the
  // same sequence a serial segment-by-segment decode produces.
  std::size_t total = 0;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    if (errors[k]) {
      try {
        std::rethrow_exception(errors[k]);
      } catch (const WireError& e) {
        throw TraceIoError(std::string("corrupt trace: ") + e.what());
      }
    }
    db.ingest(staged[k]);
    total += staged[k].records.size();
  }
  return total;
}

void write_trace_file(const std::string& path,
                      const monitor::CollectedLogs& logs) {
  const auto bytes = encode_trace(logs);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceIoError("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw TraceIoError("short write to '" + path + "'");
}

std::size_t read_trace_file(const std::string& path, LogDatabase& db) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceIoError("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode_trace(bytes, db);
}

TraceWriter::TraceWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw TraceIoError("cannot open '" + path + "' for writing");
}

void TraceWriter::append(const monitor::CollectedLogs& logs) {
  const auto bytes = encode_trace(logs);
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  // Flush per segment: the file on disk is a valid multi-segment trace
  // after every epoch, so an analyzer (or a crash) mid-run sees a clean
  // prefix of the stream.
  out_.flush();
  if (!out_) throw TraceIoError("short write to '" + path_ + "'");
  ++segments_;
  records_ += logs.records.size();
}

std::size_t TraceTail::poll(LogDatabase& db) {
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  if (!in) {
    // Not created yet is fine (the writer may still be starting up), but a
    // file that vanishes after we read from it is not.
    if (file_offset_ == 0) return 0;
    throw TraceIoError("cannot open '" + path_ + "'");
  }
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size < file_offset_) {
    throw TraceIoError("trace file '" + path_ + "' shrank while tailing");
  }
  if (size > file_offset_) {
    in.seekg(static_cast<std::streamoff>(file_offset_));
    const auto grew = static_cast<std::size_t>(size - file_offset_);
    const std::size_t base = pending_.size();
    pending_.resize(base + grew);
    in.read(reinterpret_cast<char*>(pending_.data() + base),
            static_cast<std::streamsize>(grew));
    const auto got = static_cast<std::size_t>(in.gcount());
    pending_.resize(base + got);
    file_offset_ += got;
  }
  if (pending_.empty()) return 0;

  // Skim every complete segment boundary first.  Wire underflow == the last
  // segment's tail has not been written (or flushed) yet; keep those bytes
  // pending and retry next poll.  Structural corruption surfaces as
  // TraceIoError and propagates.
  std::vector<SegmentExtent> segments;
  {
    WireCursor cur(pending_.data(), pending_.size());
    while (cur.remaining() > 0) {
      const std::size_t offset = cur.position();
      try {
        segments.emplace_back(offset, skim_segment(cur));
      } catch (const WireError&) {
        break;
      }
    }
  }
  if (segments.empty()) return 0;

  // Decode the complete segments concurrently (a cold catch-up tail of a
  // long-running stream can hold hundreds), then commit in epoch order so
  // the database sees the same generation sequence a live tail would.
  std::vector<monitor::CollectedLogs> staged;
  std::vector<std::exception_ptr> errors;
  decode_staged(pending_.data(), segments, staged, errors);

  std::size_t records = 0;
  std::size_t committed_end = 0;
  auto consume = [&](std::size_t end) {
    if (end == 0) return;
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(end));
    consumed_ += end;
  };
  for (std::size_t k = 0; k < segments.size(); ++k) {
    if (errors[k]) {
      // Commit the clean prefix, then surface the corruption.
      consume(committed_end);
      try {
        std::rethrow_exception(errors[k]);
      } catch (const WireError& e) {
        throw TraceIoError(std::string("corrupt trace: ") + e.what());
      }
    }
    db.ingest(staged[k]);
    ++segments_;
    records += staged[k].records.size();
    committed_end = segments[k].first + segments[k].second;
  }
  consume(committed_end);
  return records;
}

}  // namespace causeway::analysis
