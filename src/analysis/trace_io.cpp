#include "analysis/trace_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <utility>

#include <filesystem>
#include <unordered_map>

#include "analysis/pipeline.h"
#include "common/wire.h"
#include "common/wire_io.h"
#include "common/worker_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#define CAUSEWAY_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace causeway::analysis {
namespace {

constexpr std::uint32_t kMagic = 0x43575452;     // "CWTR": segment
constexpr std::uint32_t kDirMagic = 0x43575444;  // "CWTD": directory trailer
constexpr std::uint32_t kEndMagic = 0x43575445;  // "CWTE": end-of-file mark
constexpr std::uint32_t kMaxVersion = kTraceFormatMaxReadable;
constexpr std::uint32_t kMinVersion = kTraceFormatMinReadable;
constexpr std::uint32_t kDirVersion = 1;

class StringTable {
 public:
  std::uint32_t id_of(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  // v2/v3 layout: u32 count, u32-length-prefixed strings.
  void encode(WireBuffer& out) const {
    out.write_u32(static_cast<std::uint32_t>(strings_.size()));
    for (const auto& s : strings_) out.write_string(s);
  }

  // v4 layout: varint count, varint-length-prefixed strings.
  void encode_varint(WireBuffer& out) const {
    out.write_varint(strings_.size());
    for (const auto& s : strings_) {
      out.write_varint(s.size());
      out.append_raw({reinterpret_cast<const std::uint8_t*>(s.data()),
                      s.size()});
    }
  }

 private:
  std::deque<std::string> strings_;
  std::map<std::string_view, std::uint32_t> ids_;
};

struct DomainIds {
  std::uint32_t process, node, type;
};
struct RecordIds {
  std::uint32_t iface, func, process, node, type;
};

// Interns every identity string up front so the table is complete before
// any record body (or the domain section) references it.
void intern_bundle(const monitor::CollectedLogs& logs, StringTable& table,
                   std::vector<DomainIds>& domain_ids,
                   std::vector<RecordIds>& record_ids) {
  domain_ids.reserve(logs.domains.size());
  for (const auto& d : logs.domains) {
    domain_ids.push_back({table.id_of(d.identity.process_name),
                          table.id_of(d.identity.node_name),
                          table.id_of(d.identity.processor_type)});
  }
  record_ids.reserve(logs.records.size());
  for (const auto& r : logs.records) {
    record_ids.push_back({table.id_of(r.interface_name),
                          table.id_of(r.function_name),
                          table.id_of(r.process_name),
                          table.id_of(r.node_name),
                          table.id_of(r.processor_type)});
  }
}

// v3 (and v2-compatible) body: fixed-width records.  Kept byte-exact so
// `--trace-format=v3` can bisect regressions against the old encoding.
std::vector<std::uint8_t> encode_trace_v3(const monitor::CollectedLogs& logs) {
  StringTable table;
  std::vector<DomainIds> domain_ids;
  std::vector<RecordIds> record_ids;
  intern_bundle(logs, table, domain_ids, record_ids);

  WireBuffer out;
  out.write_u32(kMagic);
  out.write_u32(kTraceFormatV3);
  out.write_u64(logs.epoch);
  out.write_u64(logs.dropped);

  out.write_u32(static_cast<std::uint32_t>(logs.domains.size()));
  for (std::size_t i = 0; i < logs.domains.size(); ++i) {
    out.write_u32(domain_ids[i].process);
    out.write_u32(domain_ids[i].node);
    out.write_u32(domain_ids[i].type);
    out.write_u8(static_cast<std::uint8_t>(logs.domains[i].mode));
    out.write_u64(logs.domains[i].record_count);
  }

  table.encode(out);

  out.write_u64(logs.records.size());
  for (std::size_t i = 0; i < logs.records.size(); ++i) {
    const auto& r = logs.records[i];
    const auto& ids = record_ids[i];
    out.write_u64(r.chain.hi);
    out.write_u64(r.chain.lo);
    out.write_u64(r.seq);
    out.write_u8(static_cast<std::uint8_t>(r.event));
    out.write_u8(static_cast<std::uint8_t>(r.kind));
    out.write_u8(static_cast<std::uint8_t>(r.outcome));
    out.write_u64(r.spawned_chain.hi);
    out.write_u64(r.spawned_chain.lo);
    out.write_u32(ids.iface);
    out.write_u32(ids.func);
    out.write_u64(r.object_key);
    out.write_u32(ids.process);
    out.write_u32(ids.node);
    out.write_u32(ids.type);
    out.write_u64(r.thread_ordinal);
    // Mode in the low 2 bits; the chain-sampling rate index (5 bits used,
    // zero when sampling 1:1 -- byte-identical to the pre-sampling format)
    // rides the formerly-unused high bits.
    out.write_u8(static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(r.mode) |
        static_cast<std::uint8_t>(r.sample_rate_index << 2)));
    out.write_i64(r.value_start);
    out.write_i64(r.value_end);
  }
  return std::move(out).take();
}

// Packed per-record flag bytes (v4).  event is 1..4 (3 bits), kind and
// outcome 0..2 (2 bits each); mode 0..2 plus the spawned-chain presence
// bit, with the chain sampling rate index in the remaining 5 bits.
constexpr std::uint8_t pack_flags1(const monitor::TraceRecord& r) {
  return static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(r.event) |
      (static_cast<std::uint8_t>(r.kind) << 3) |
      (static_cast<std::uint8_t>(r.outcome) << 5));
}

// The frozen record-major v4 writer: per-record interleaved write_varint
// loops, exactly as the encoder stood before the columnar rewrite
// (DESIGN.md Sec. 15).  LEB128 is canonical, so the columnar writer below
// must reproduce this function's output byte for byte -- ctest enforces it
// under every kernel; bench_trace_io measures the speedup against it.
std::vector<std::uint8_t> encode_trace_v4_recmajor(
    const monitor::CollectedLogs& logs) {
  StringTable table;
  std::vector<DomainIds> domain_ids;
  std::vector<RecordIds> record_ids;
  intern_bundle(logs, table, domain_ids, record_ids);

  WireBuffer out;
  out.write_u32(kMagic);
  out.write_u32(kTraceFormatV4);
  const std::size_t body_length_at = out.size();
  out.write_u64(0);  // body length, patched once the body is encoded
  const std::size_t body_start = out.size();

  out.write_u64(logs.epoch);
  out.write_u64(logs.dropped);

  out.write_varint(logs.domains.size());
  for (std::size_t i = 0; i < logs.domains.size(); ++i) {
    out.write_varint(domain_ids[i].process);
    out.write_varint(domain_ids[i].node);
    out.write_varint(domain_ids[i].type);
    out.write_u8(static_cast<std::uint8_t>(logs.domains[i].mode));
    out.write_varint(logs.domains[i].record_count);
  }

  table.encode_varint(out);

  const auto& recs = logs.records;
  out.write_varint(recs.size());

  // Chain runs: one (chain, length) per maximal span of equal chains.
  out.write_varint([&] {
    std::size_t runs = 0;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (i == 0 || !(recs[i].chain == recs[i - 1].chain)) ++runs;
    }
    return runs;
  }());
  for (std::size_t i = 0; i < recs.size();) {
    std::size_t j = i + 1;
    while (j < recs.size() && recs[j].chain == recs[i].chain) ++j;
    out.write_u64(recs[i].chain.hi);
    out.write_u64(recs[i].chain.lo);
    out.write_varint(j - i);
    i = j;
  }

  // seq: delta vs the previous record of the same run (runs restart at 0);
  // event numbers increment along a chain, so deltas are tiny.
  {
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (i == 0 || !(recs[i].chain == recs[i - 1].chain)) prev = 0;
      out.write_svarint(static_cast<std::int64_t>(recs[i].seq - prev));
      prev = recs[i].seq;
    }
  }
  for (const auto& r : recs) out.write_u8(pack_flags1(r));
  // flags2: mode (2 bits), spawned-chain presence (bit 2), and the chain
  // sampling rate index in bits 3..7 -- the sample-weight column.  Index 0
  // (sampling 1:1) leaves the byte exactly as the pre-sampling encoder
  // wrote it, which is what keeps un-sampled traces byte-identical.
  for (const auto& r : recs) {
    out.write_u8(static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(r.mode) |
        (r.spawned_chain.is_nil() ? 0 : 4) |
        static_cast<std::uint8_t>(r.sample_rate_index << 3)));
  }
  // Spawned chains are sparse (oneway stub-starts only): dense pairs for
  // just the flagged records.
  for (const auto& r : recs) {
    if (!r.spawned_chain.is_nil()) {
      out.write_u64(r.spawned_chain.hi);
      out.write_u64(r.spawned_chain.lo);
    }
  }
  for (const auto& ids : record_ids) out.write_varint(ids.iface);
  for (const auto& ids : record_ids) out.write_varint(ids.func);
  for (const auto& r : recs) out.write_varint(r.object_key);
  for (const auto& ids : record_ids) out.write_varint(ids.process);
  for (const auto& ids : record_ids) out.write_varint(ids.node);
  for (const auto& ids : record_ids) out.write_varint(ids.type);
  for (const auto& r : recs) out.write_varint(r.thread_ordinal);
  // Timestamp columns: consecutive records sample nearly the same instant,
  // so column-wise deltas (start) and the start->end gap (end) are small.
  {
    std::int64_t prev = 0;
    for (const auto& r : recs) {
      out.write_svarint(r.value_start - prev);
      prev = r.value_start;
    }
  }
  for (const auto& r : recs) out.write_svarint(r.value_end - r.value_start);

  out.overwrite_u64(body_length_at, out.size() - body_start);
  return std::move(out).take();
}

// ---------------------------------------------------------------------------
// Columnar v4 writer (DESIGN.md Sec. 15).  The segment is built column
// first: one gather pass turns records into contiguous u64/u8 columns, the
// SIMD transform passes (common/wire.h) delta/zig-zag them in place, and
// emit_segment_v4 streams every dense column through the batched varint
// encode kernels.  Byte-identical to encode_trace_v4_recmajor by
// construction: same intern order, same per-run delta bases, and canonical
// LEB128 from every kernel.

// Hash interner for the gather pass.  The reference StringTable (std::map)
// stays with the frozen writers; first-encounter id assignment is what
// matters for byte identity, and both tables assign ids the same way.
class FastStringTable {
 public:
  std::uint32_t id_of(std::string_view s) {
    const auto [it, inserted] =
        ids_.try_emplace(s, static_cast<std::uint32_t>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }
  std::vector<std::string_view>& strings() { return strings_; }

 private:
  std::vector<std::string_view> strings_;
  std::unordered_map<std::string_view, std::uint32_t> ids_;
};

// Collector records hold interned string_views, so consecutive records
// usually repeat the exact same view object.  A per-column memo turns that
// into a pointer compare, skipping the hash for the common case.
struct InternMemo {
  const char* data{nullptr};
  std::size_t size{std::size_t(-1)};
  std::uint32_t id{0};

  std::uint32_t get(std::string_view s, FastStringTable& table) {
    if (s.data() == data && s.size() == size) return id;
    data = s.data();
    size = s.size();
    return id = table.id_of(s);
  }
};

// The gathered, transform-ready shape of one v4 segment: every varint
// column widened to u64, seq/value columns already delta'd and zig-zagged
// (so emission is a raw write_varint_column per column).  Both encode
// entry points (CollectedLogs and ColumnBundle) fill one of these and
// share emit_segment_v4.
struct SegmentColumns {
  struct Domain {
    std::uint64_t process, node, type, count;
    std::uint8_t mode;
  };
  std::uint64_t epoch{0}, dropped{0};
  std::vector<Domain> domains;
  std::span<const std::string_view> table;
  struct Run {
    Uuid chain;
    std::uint64_t length;
  };
  std::vector<Run> runs;
  std::size_t count{0};
  std::vector<std::uint64_t> seq;  // zigzag(per-run delta)
  // Flag/spawned columns either borrow the caller's storage (ColumnBundle
  // path: the bundle already holds them contiguously) or own a gathered
  // copy (CollectedLogs path) kept alive in *_storage.
  std::span<const std::uint8_t> flags1, flags2;
  std::vector<std::uint8_t> flags1_storage, flags2_storage;
  std::span<const Uuid> spawned;
  std::vector<Uuid> spawned_storage;
  std::vector<std::uint64_t> iface, func, object_key, process, node, type,
      thread_ordinal;
  std::vector<std::uint64_t> vstart;  // zigzag(whole-column delta)
  std::vector<std::uint64_t> vend;    // zigzag(end - start)
};

std::vector<std::uint8_t> emit_segment_columnar(const SegmentColumns& c,
                                                std::uint32_t version) {
  WireBuffer out;
  // Worst-case column bytes are bounded; a coarse reserve keeps the buffer
  // from reallocating mid-segment (~21 wire B/record in practice, so 32
  // leaves slack without overcommitting).
  std::size_t table_bytes = 0;
  for (const auto& s : c.table) table_bytes += s.size() + 2;
  out.reserve(64 + c.domains.size() * 16 + table_bytes +
              c.runs.size() * 20 + c.count * 32);

  out.write_u32(kMagic);
  out.write_u32(version);
  const std::size_t body_length_at = out.size();
  out.write_u64(0);  // body length, patched once the body is encoded
  const std::size_t body_start = out.size();

  out.write_u64(c.epoch);
  out.write_u64(c.dropped);

  out.write_varint(c.domains.size());
  for (const auto& d : c.domains) {
    out.write_varint(d.process);
    out.write_varint(d.node);
    out.write_varint(d.type);
    out.write_u8(d.mode);
    out.write_varint(d.count);
  }

  out.write_varint(c.table.size());
  for (const auto& s : c.table) {
    out.write_varint(s.size());
    out.append_raw({reinterpret_cast<const std::uint8_t*>(s.data()),
                    s.size()});
  }

  out.write_varint(c.count);
  out.write_varint(c.runs.size());
  for (const auto& run : c.runs) {
    out.write_u64(run.chain.hi);
    out.write_u64(run.chain.lo);
    out.write_varint(run.length);
  }

  if (version == kTraceFormatV4) {
    // The dense columns: seq/value columns were pre-zig-zagged by the
    // transform passes, so every one is a single batched varint emission.
    out.write_varint_column(c.seq.data(), c.count);
    out.append_raw(c.flags1);
    out.append_raw(c.flags2);
    for (const Uuid& u : c.spawned) {
      out.write_u64(u.hi);
      out.write_u64(u.lo);
    }
    out.write_varint_column(c.iface.data(), c.count);
    out.write_varint_column(c.func.data(), c.count);
    out.write_varint_column(c.object_key.data(), c.count);
    out.write_varint_column(c.process.data(), c.count);
    out.write_varint_column(c.node.data(), c.count);
    out.write_varint_column(c.type.data(), c.count);
    out.write_varint_column(c.thread_ordinal.data(), c.count);
    out.write_varint_column(c.vstart.data(), c.count);
    out.write_varint_column(c.vend.data(), c.count);
  } else {
    // v5: the same thirteen dense columns in the same order, each wrapped
    // in a column block (optionally deflated when the block wins).  The
    // column *payloads* are byte-identical to v4 -- same kernels, same
    // canonical LEB128 -- so a v5 reader recovers exactly the v4 column
    // bytes before handing them to the shared decoders.
    WireBuffer col;
    auto emit_varints = [&](const std::uint64_t* values, std::size_t n) {
      col.clear();
      col.write_varint_column(values, n);
      write_column_block(out, col.bytes(), /*try_deflate=*/true);
    };
    emit_varints(c.seq.data(), c.count);
    write_column_block(out, c.flags1, /*try_deflate=*/true);
    write_column_block(out, c.flags2, /*try_deflate=*/true);
    col.clear();
    for (const Uuid& u : c.spawned) {
      col.write_u64(u.hi);
      col.write_u64(u.lo);
    }
    write_column_block(out, col.bytes(), /*try_deflate=*/true);
    emit_varints(c.iface.data(), c.count);
    emit_varints(c.func.data(), c.count);
    emit_varints(c.object_key.data(), c.count);
    emit_varints(c.process.data(), c.count);
    emit_varints(c.node.data(), c.count);
    emit_varints(c.type.data(), c.count);
    emit_varints(c.thread_ordinal.data(), c.count);
    emit_varints(c.vstart.data(), c.count);
    emit_varints(c.vend.data(), c.count);
  }

  out.overwrite_u64(body_length_at, out.size() - body_start);
  return std::move(out).take();
}

// Applies the wire transforms to gathered absolute columns, in place:
// seq becomes zigzag(per-run delta) -- delta_encode_column leaves the
// first element of each run absolute, which is exactly the reference
// writer's "prev resets to 0 at a run boundary"; value_start becomes
// zigzag(whole-segment delta).  All arithmetic is wrapping u64, the same
// bit patterns the record-major writer produces through int64 math.
void transform_columns(SegmentColumns& c) {
  std::size_t i = 0;
  for (const auto& run : c.runs) {
    delta_encode_column(c.seq.data() + i,
                        static_cast<std::size_t>(run.length));
    i += static_cast<std::size_t>(run.length);
  }
  zigzag_encode_column(c.seq.data(), c.count);
  delta_encode_column(c.vstart.data(), c.count);
  zigzag_encode_column(c.vstart.data(), c.count);
  zigzag_encode_column(c.vend.data(), c.count);
}

// Column-first v4/v5 body: one gather pass (intern + widen + pack flags +
// run detection), the SIMD transform passes, then batched emission.
std::vector<std::uint8_t> encode_trace_columnar(
    const monitor::CollectedLogs& logs, std::uint32_t version) {
  SegmentColumns c;
  c.epoch = logs.epoch;
  c.dropped = logs.dropped;

  FastStringTable table;
  c.domains.reserve(logs.domains.size());
  for (const auto& d : logs.domains) {
    c.domains.push_back({table.id_of(d.identity.process_name),
                         table.id_of(d.identity.node_name),
                         table.id_of(d.identity.processor_type),
                         d.record_count,
                         static_cast<std::uint8_t>(d.mode)});
  }

  const auto& recs = logs.records;
  const std::size_t n = recs.size();
  c.count = n;
  c.seq.resize(n);
  auto& flags1 = c.flags1_storage;
  auto& flags2 = c.flags2_storage;
  flags1.resize(n);
  flags2.resize(n);
  c.iface.resize(n);
  c.func.resize(n);
  c.object_key.resize(n);
  c.process.resize(n);
  c.node.resize(n);
  c.type.resize(n);
  c.thread_ordinal.resize(n);
  c.vstart.resize(n);
  c.vend.resize(n);

  // Intern order must match the reference writer exactly (iface, func,
  // process, node, type per record, after all domains) -- id assignment is
  // part of the byte-identity contract.
  InternMemo m_iface, m_func, m_process, m_node, m_type;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = recs[i];
    c.iface[i] = m_iface.get(r.interface_name, table);
    c.func[i] = m_func.get(r.function_name, table);
    c.process[i] = m_process.get(r.process_name, table);
    c.node[i] = m_node.get(r.node_name, table);
    c.type[i] = m_type.get(r.processor_type, table);
    c.seq[i] = r.seq;
    flags1[i] = pack_flags1(r);
    flags2[i] = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(r.mode) |
        (r.spawned_chain.is_nil() ? 0 : 4) |
        static_cast<std::uint8_t>(r.sample_rate_index << 3));
    if (!r.spawned_chain.is_nil()) {
      c.spawned_storage.push_back(r.spawned_chain);
    }
    c.object_key[i] = r.object_key;
    c.thread_ordinal[i] = r.thread_ordinal;
    c.vstart[i] = static_cast<std::uint64_t>(r.value_start);
    c.vend[i] = static_cast<std::uint64_t>(r.value_end) -
                static_cast<std::uint64_t>(r.value_start);
    if (i == 0 || !(r.chain == recs[i - 1].chain)) {
      c.runs.push_back({r.chain, 1});
    } else {
      ++c.runs.back().length;
    }
  }
  c.table = table.strings();
  c.flags1 = flags1;
  c.flags2 = flags2;
  c.spawned = c.spawned_storage;

  transform_columns(c);
  return emit_segment_columnar(c, version);
}

// Fills SegmentColumns from an already-columnar bundle: ids widen to u64,
// seq/value columns copy out for the in-place transforms, flag and spawned
// columns are borrowed as-is.  Validates everything emit indexes so a
// malformed bundle throws TraceIoError instead of reading out of bounds.
SegmentColumns gather_from_bundle(const ColumnBundle& cols) {
  const std::size_t n = cols.count;
  auto require = [](bool ok, const char* what) {
    if (!ok) throw TraceIoError(what);
  };
  require(cols.seq.size() == n && cols.flags1.size() == n &&
              cols.flags2.size() == n && cols.iface.size() == n &&
              cols.func.size() == n && cols.process.size() == n &&
              cols.node.size() == n && cols.type.size() == n &&
              cols.object_key.size() == n &&
              cols.thread_ordinal.size() == n &&
              cols.value_start.size() == n && cols.value_end.size() == n,
          "column bundle: column sizes do not match count");
  std::uint64_t covered = 0;
  for (const auto& run : cols.runs) covered += run.length;
  require(covered == n, "column bundle: chain runs do not cover records");
  std::size_t spawn_flags = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cols.flags2[i] & 4) ++spawn_flags;
  }
  require(spawn_flags == cols.spawned.size(),
          "column bundle: spawned column does not match flags");

  SegmentColumns c;
  c.epoch = cols.epoch;
  c.dropped = cols.dropped;
  c.table = cols.table;
  c.count = n;
  c.flags1 = cols.flags1;
  c.flags2 = cols.flags2;
  c.spawned = cols.spawned;

  // Domain identities are resolved strings in a bundle; recover their table
  // ids (first occurrence wins, matching the encoder's dedup).
  std::unordered_map<std::string_view, std::uint64_t> table_ids;
  for (std::size_t i = 0; i < cols.table.size(); ++i) {
    table_ids.try_emplace(cols.table[i], i);
  }
  auto id_of = [&](std::string_view s) {
    const auto it = table_ids.find(s);
    if (it == table_ids.end()) {
      throw TraceIoError(
          "column bundle: domain identity string missing from table");
    }
    return it->second;
  };
  c.domains.reserve(cols.domains.size());
  for (const auto& d : cols.domains) {
    c.domains.push_back({id_of(d.identity.process_name),
                         id_of(d.identity.node_name),
                         id_of(d.identity.processor_type),
                         d.record_count,
                         static_cast<std::uint8_t>(d.mode)});
  }

  c.runs.reserve(cols.runs.size());
  for (const auto& run : cols.runs) c.runs.push_back({run.chain, run.length});

  c.seq = cols.seq;  // absolute; transform_columns deltas in place
  auto widen = [&](const std::vector<std::uint32_t>& in,
                   std::vector<std::uint64_t>& out, bool is_id) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (is_id && in[i] >= cols.table.size()) {
        throw TraceIoError("column bundle: string id out of range");
      }
      out[i] = in[i];
    }
  };
  widen(cols.iface, c.iface, true);
  widen(cols.func, c.func, true);
  widen(cols.process, c.process, true);
  widen(cols.node, c.node, true);
  widen(cols.type, c.type, true);
  c.object_key = cols.object_key;
  c.thread_ordinal = cols.thread_ordinal;
  c.vstart.resize(n);
  c.vend.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.vstart[i] = static_cast<std::uint64_t>(cols.value_start[i]);
    c.vend[i] = static_cast<std::uint64_t>(cols.value_end[i]) -
                static_cast<std::uint64_t>(cols.value_start[i]);
  }
  return c;
}

// The fixed wire size of one v2/v3 record body (see encode_trace_v3).
constexpr std::size_t kRecordWireBytes = 96;
// Per-domain v2/v3 wire size: three string ids, the mode byte, the count.
constexpr std::size_t kDomainWireBytes = 21;
// Minimum v4 bytes per record: one byte in each of the twelve dense
// columns.  Guards count fields against absurd allocations.
constexpr std::size_t kMinV4RecordBytes = 12;
// Minimum v4 bytes per chain run: chain (16) plus a length varint.
constexpr std::size_t kRunWireBytes = 17;
// Minimum v4 bytes per domain entry: three id varints, mode, count varint.
constexpr std::size_t kMinV4DomainBytes = 6;

// Walks one segment's structure without materializing it and returns its
// byte length.  WireError (underflow) means the segment's tail has not been
// written yet; TraceIoError means structural corruption.  v4 segments carry
// their body length in the header, so skimming them is a single skip; v2/v3
// still walk the structure.
std::size_t skim_segment(WireCursor& in) {
  const std::size_t start = in.position();
  if (in.read_u32() != kMagic) throw TraceIoError("not a causeway trace");
  const std::uint32_t version = in.read_u32();
  if (version < kMinVersion || version > kMaxVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  if (version >= 4) {
    in.skip(in.read_u64());
    return in.position() - start;
  }
  in.skip(16);  // epoch + dropped words (v2 files predate the repo history)
  const std::uint32_t domain_count = in.read_u32();
  if (domain_count > in.remaining() / kDomainWireBytes) {
    throw WireError("wire underflow");
  }
  in.skip(domain_count * kDomainWireBytes);
  const std::uint32_t string_count = in.read_u32();
  for (std::uint32_t i = 0; i < string_count; ++i) in.skip(in.read_u32());
  const std::uint64_t record_count = in.read_u64();
  if (record_count > in.remaining() / kRecordWireBytes) {
    throw WireError("wire underflow");
  }
  in.skip(static_cast<std::size_t>(record_count) * kRecordWireBytes);
  return in.position() - start;
}

// Walks (and validates) one directory trailer block, returning its byte
// length.  Underflow (writer mid-append of the trailer) stays a WireError;
// a malformed block is structural corruption.
std::size_t skim_trailer(WireCursor& in) {
  const std::size_t start = in.position();
  if (in.read_u32() != kDirMagic) throw TraceIoError("corrupt trace directory");
  if (in.read_u32() != kDirVersion) {
    throw TraceIoError("unsupported trace directory version");
  }
  const std::uint64_t count = in.read_varint();
  if (count > in.remaining()) throw WireError("wire underflow");
  for (std::uint64_t i = 0; i < count; ++i) in.read_varint();
  const std::uint64_t total = in.read_u64();
  if (in.read_u32() != kEndMagic) throw TraceIoError("corrupt trace directory");
  const std::size_t length = in.position() - start;
  if (total != length) throw TraceIoError("corrupt trace directory");
  return length;
}

// One complete block within a byte buffer: a record segment, or the
// directory trailer (metadata -- skipped at decode, consumed by tails).
struct Extent {
  std::size_t offset{0};
  std::size_t length{0};
  bool is_segment{true};
};

// Sequential boundary scan: segments (and trailer blocks) from the front.
// `stop_on_underflow` is the tail-following mode: an incomplete block ends
// the scan instead of propagating, leaving the bytes pending.
std::vector<Extent> skim_extents(std::span<const std::uint8_t> bytes,
                                 bool stop_on_underflow) {
  std::vector<Extent> extents;
  WireCursor in(bytes.data(), bytes.size());
  while (in.remaining() > 0) {
    const std::size_t offset = in.position();
    try {
      WireCursor probe = in;
      if (probe.read_u32() == kDirMagic) {
        extents.push_back({offset, skim_trailer(in), false});
      } else {
        extents.push_back({offset, skim_segment(in), true});
      }
    } catch (const WireError&) {
      if (stop_on_underflow) break;
      throw;
    }
  }
  return extents;
}

// Fast path: a closed file ends with the directory trailer, so every
// boundary comes from the footer without touching segment bytes.  Returns
// nullopt when no trailer is present (still-growing or pre-directory file);
// throws TraceIoError when a trailer is present but inconsistent (lengths
// that run past the file, a block that does not parse).
std::optional<std::vector<Extent>> extents_from_directory(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 16) return std::nullopt;
  WireCursor tail(bytes.data() + bytes.size() - 12, 12);
  const std::uint64_t total = tail.read_u64();
  if (tail.read_u32() != kEndMagic) return std::nullopt;
  if (total > bytes.size() || total < 21) {
    throw TraceIoError("corrupt trace directory");
  }
  const std::size_t trailer_start = bytes.size() - static_cast<std::size_t>(total);
  WireCursor in(bytes.data() + trailer_start, static_cast<std::size_t>(total));
  try {
    if (in.read_u32() != kDirMagic) {
      throw TraceIoError("corrupt trace directory");
    }
    if (in.read_u32() != kDirVersion) {
      throw TraceIoError("unsupported trace directory version");
    }
    const std::uint64_t count = in.read_varint();
    if (count > total) throw TraceIoError("corrupt trace directory");
    std::vector<std::uint64_t> lengths(static_cast<std::size_t>(count));
    std::uint64_t sum = 0;
    for (auto& length : lengths) {
      length = in.read_varint();
      if (length < 16 || length > trailer_start - sum) {
        throw TraceIoError("trace directory offset past end of file");
      }
      sum += length;
    }
    // A trailer only knows the segments its own writer appended, so a
    // concatenated trace (`cat a.cwt b.cwt`) ends with a trailer covering
    // just the final file's bytes.  Skim the prefix it does not describe
    // (interior trailers come back as metadata extents) and splice the
    // directory's extents in after it.
    const std::size_t base = trailer_start - static_cast<std::size_t>(sum);
    std::vector<Extent> extents;
    if (base > 0) {
      extents = skim_extents(bytes.first(base), /*stop_on_underflow=*/false);
    }
    extents.reserve(extents.size() + lengths.size() + 1);
    std::size_t offset = base;
    for (const std::uint64_t length : lengths) {
      extents.push_back({offset, static_cast<std::size_t>(length), true});
      offset += static_cast<std::size_t>(length);
    }
    extents.push_back({trailer_start, static_cast<std::size_t>(total), false});
    return extents;
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace directory: ") + e.what());
  }
}

// Decodes one v2/v3 segment body (cursor past magic + version).
monitor::CollectedLogs decode_segment_v2v3(WireCursor& in,
                                           std::uint32_t version) {
  monitor::CollectedLogs logs;
  if (version >= 3) {
    logs.epoch = in.read_u64();
    logs.dropped = in.read_u64();
  }

  struct RawDomain {
    std::uint32_t process, node, type;
    std::uint8_t mode;
    std::uint64_t count;
  };
  std::vector<RawDomain> raw_domains(in.read_u32());
  for (auto& d : raw_domains) {
    d.process = in.read_u32();
    d.node = in.read_u32();
    d.type = in.read_u32();
    d.mode = in.read_u8();
    d.count = in.read_u64();
  }

  // The encoder's table is deduplicated, so the strings go straight into
  // the bundle pool -- no per-string interner probe.
  std::vector<std::string_view> strings(in.read_u32());
  for (auto& s : strings) s = logs.own_string(in.read_view(in.read_u32()));
  auto str = [&](std::uint32_t id) -> std::string_view {
    if (id >= strings.size()) throw TraceIoError("string id out of range");
    return strings[id];
  };

  for (const auto& d : raw_domains) {
    logs.domains.push_back(
        {monitor::DomainIdentity{std::string(str(d.process)),
                                 std::string(str(d.node)),
                                 std::string(str(d.type))},
         static_cast<monitor::ProbeMode>(d.mode), d.count});
  }

  const std::uint64_t count = in.read_u64();
  if (count > in.remaining() / kRecordWireBytes) {
    throw WireError("wire underflow");
  }
  logs.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    monitor::TraceRecord r;
    r.chain.hi = in.read_u64();
    r.chain.lo = in.read_u64();
    r.seq = in.read_u64();
    r.event = static_cast<monitor::EventKind>(in.read_u8());
    r.kind = static_cast<monitor::CallKind>(in.read_u8());
    r.outcome = static_cast<monitor::CallOutcome>(in.read_u8());
    r.spawned_chain.hi = in.read_u64();
    r.spawned_chain.lo = in.read_u64();
    r.interface_name = str(in.read_u32());
    r.function_name = str(in.read_u32());
    r.object_key = in.read_u64();
    r.process_name = str(in.read_u32());
    r.node_name = str(in.read_u32());
    r.processor_type = str(in.read_u32());
    r.thread_ordinal = in.read_u64();
    const auto mode_byte = in.read_u8();
    r.mode = static_cast<monitor::ProbeMode>(mode_byte & 3);
    r.sample_rate_index = static_cast<std::uint8_t>(mode_byte >> 2);
    r.value_start = in.read_i64();
    r.value_end = in.read_i64();
    logs.records.push_back(r);
  }
  return logs;
}

// Decodes one v4 columnar segment body (cursor past magic + version + body
// length, spanning exactly the body) into column form: the record section
// stays columnar end to end -- every dense column decodes in one batched
// kernel pass (common/wire.h), runs keep the chain UUID once, string ids
// stay unresolved table indexes.  No record-major assembly happens here;
// ingest scatters the columns straight into the shards, and callers that
// want records assemble via assemble_logs below.  Validation order and
// error text are independent of the active kernel: every non-well-formed
// byte sequence routes through the shared strict scalar decoder.
ColumnBundle decode_segment_v4_columns(WireCursor& in,
                                       std::uint32_t version) {
  // v5 wraps each dense column in a column block (common/wire.h): the
  // payload -- identical bytes to v4, possibly deflated -- is read through
  // a per-column sub-cursor that must land exactly on its end.  For v4 the
  // helpers hand back the main cursor and the shared decode body below is
  // untouched.  `max_decoded` bounds are structural (10 varint bytes per
  // record, one flag byte per record, 16 bytes per possible spawn), so a
  // block advertising more is rejected before any allocation.
  const bool column_blocks = version >= kTraceFormatV5;
  std::vector<std::uint8_t> block_scratch;
  std::optional<WireCursor> block_cursor;
  auto col_begin = [&](std::size_t max_decoded) -> WireCursor& {
    if (!column_blocks) return in;
    block_cursor.emplace(read_column_block(in, max_decoded, block_scratch));
    return *block_cursor;
  };
  auto col_end = [&]() {
    if (column_blocks && block_cursor->remaining() != 0) {
      throw TraceIoError("trailing bytes in trace column block");
    }
  };

  ColumnBundle cols;
  cols.epoch = in.read_u64();
  cols.dropped = in.read_u64();

  const std::uint64_t domain_count = in.read_varint();
  if (domain_count > in.remaining() / kMinV4DomainBytes) {
    throw WireError("wire underflow");
  }
  struct RawDomain {
    std::uint64_t process, node, type, count;
    std::uint8_t mode;
  };
  std::vector<RawDomain> raw_domains(
      static_cast<std::size_t>(domain_count));
  for (auto& d : raw_domains) {
    d.process = in.read_varint();
    d.node = in.read_varint();
    d.type = in.read_varint();
    d.mode = in.read_u8();
    d.count = in.read_varint();
  }

  const std::uint64_t string_count = in.read_varint();
  if (string_count > in.remaining()) throw WireError("wire underflow");
  auto& strings = cols.table;
  strings.resize(static_cast<std::size_t>(string_count));
  for (auto& s : strings) {
    s = cols.own_string(
        in.read_view(static_cast<std::size_t>(in.read_varint())));
  }
  auto str = [&](std::uint64_t id) -> std::string_view {
    if (id >= strings.size()) throw TraceIoError("string id out of range");
    return strings[static_cast<std::size_t>(id)];
  };

  for (const auto& d : raw_domains) {
    cols.domains.push_back(
        {monitor::DomainIdentity{std::string(str(d.process)),
                                 std::string(str(d.node)),
                                 std::string(str(d.type))},
         static_cast<monitor::ProbeMode>(d.mode),
         static_cast<std::size_t>(d.count)});
  }

  const std::uint64_t count64 = in.read_varint();
  // Pre-allocation bound on the record count.  v4 lower-bounds each
  // record's wire footprint directly (kMinV4RecordBytes).  v5's deflated
  // columns can legitimately shrink far below that, so the bound backs
  // off by deflate's maximum expansion (~1032:1): the thirteen column
  // blocks still carry at least ~13 compressed bytes per 1032 records,
  // so remaining*80 safely over-approximates the representable count
  // while still rejecting a lying header before any resize().
  const std::uint64_t max_count =
      column_blocks ? static_cast<std::uint64_t>(in.remaining()) * 80
                    : in.remaining() / kMinV4RecordBytes;
  if (count64 > max_count) {
    throw WireError("wire underflow");
  }
  const auto count = static_cast<std::size_t>(count64);
  cols.count = count;
  const std::uint64_t run_count = in.read_varint();
  if (run_count > count64 || run_count > in.remaining() / kRunWireBytes) {
    throw TraceIoError("chain runs do not cover records");
  }

  auto& runs = cols.runs;
  runs.resize(static_cast<std::size_t>(run_count));
  {
    std::uint64_t covered = 0;
    for (auto& run : runs) {
      run.chain.hi = in.read_u64();
      run.chain.lo = in.read_u64();
      run.length = in.read_varint();
      if (run.length > count64 - covered) {
        throw TraceIoError("chain runs do not cover records");
      }
      covered += run.length;
    }
    if (covered != count64) {
      throw TraceIoError("chain runs do not cover records");
    }
  }

  // seq: one batched zig-zag decode of the whole column, then a run-aware
  // prefix sum in place (deltas restart at every run boundary -- which is
  // why the kernels leave accumulation to the caller).
  cols.seq.resize(count);
  {
    WireCursor& cin = col_begin(count * 10);
    cin.read_svarint_column(
        reinterpret_cast<std::int64_t*>(cols.seq.data()), count);
    col_end();
  }
  {
    std::uint64_t* seq = cols.seq.data();
    std::size_t i = 0;
    for (const auto& run : runs) {
      std::uint64_t prev = 0;
      for (std::uint64_t j = 0; j < run.length; ++j, ++i) {
        prev += seq[i];
        seq[i] = prev;
      }
    }
  }

  // Flag columns are raw bytes on the wire; copy them out so the bundle
  // outlives the input mapping.
  {
    WireCursor& cin = col_begin(count);
    const std::string_view flags1 = cin.read_view(count);
    cols.flags1.assign(flags1.begin(), flags1.end());
    col_end();
  }
  {
    WireCursor& cin = col_begin(count);
    const std::string_view flags2 = cin.read_view(count);
    cols.flags2.assign(flags2.begin(), flags2.end());
    col_end();
  }

  // Sparse spawned chains, walked run-major so each run records where its
  // spawn entries start (what lets a shard expand its runs independently).
  {
    WireCursor& cin = col_begin(count * 16);
    std::size_t i = 0;
    for (auto& run : runs) {
      run.spawn_base = static_cast<std::uint32_t>(cols.spawned.size());
      for (std::uint64_t j = 0; j < run.length; ++j, ++i) {
        if (cols.flags2[i] & 4) {
          Uuid u;
          u.hi = cin.read_u64();
          u.lo = cin.read_u64();
          cols.spawned.push_back(u);
        }
      }
    }
    col_end();
  }

  // String-id columns: batched raw decode, then validate + narrow in index
  // order (the first out-of-range id throws, exactly as a per-record
  // decode-then-check loop would).
  std::vector<std::uint64_t> scratch(count);
  auto read_id_column = [&](std::vector<std::uint32_t>& col) {
    col.resize(count);
    WireCursor& cin = col_begin(count * 10);
    cin.read_varint_column(scratch.data(), count);
    col_end();
    for (std::size_t i = 0; i < count; ++i) {
      if (scratch[i] >= strings.size()) {
        throw TraceIoError("string id out of range");
      }
      col[i] = static_cast<std::uint32_t>(scratch[i]);
    }
  };
  auto read_u64_column = [&](std::vector<std::uint64_t>& col) {
    col.resize(count);
    WireCursor& cin = col_begin(count * 10);
    cin.read_varint_column(col.data(), count);
    col_end();
  };
  auto read_s64_column = [&](std::vector<std::int64_t>& col) {
    col.resize(count);
    WireCursor& cin = col_begin(count * 10);
    cin.read_svarint_column(col.data(), count);
    col_end();
  };
  read_id_column(cols.iface);
  read_id_column(cols.func);
  read_u64_column(cols.object_key);
  read_id_column(cols.process);
  read_id_column(cols.node);
  read_id_column(cols.type);
  read_u64_column(cols.thread_ordinal);

  // Timestamp columns: batched zig-zag decode, then the SIMD prefix-sum
  // pass (start) and the start-relative reconstruction (end).
  read_s64_column(cols.value_start);
  prefix_sum_column(cols.value_start.data(), count);
  read_s64_column(cols.value_end);
  for (std::size_t i = 0; i < count; ++i) {
    cols.value_end[i] += cols.value_start[i];
  }

  if (in.remaining() != 0) {
    throw TraceIoError("trailing bytes in trace segment");
  }
  return cols;
}

// Expands a column bundle into the record-major CollectedLogs form: runs
// expanded, string ids resolved against the table, spawned chains slotted
// back in.  The string pool is shared with the bundle, not copied.  Only
// callers that need assembled records pay for this (decode_trace_segments,
// decode_trace_segment); the ingest path never does.
monitor::CollectedLogs assemble_logs(ColumnBundle&& cols) {
  monitor::CollectedLogs logs;
  logs.epoch = cols.epoch;
  logs.dropped = cols.dropped;
  logs.domains = std::move(cols.domains);
  logs.strings = cols.strings;  // table views stay valid -- shared pool
  auto& recs = logs.records;
  recs.reserve(cols.count);
  std::size_t i = 0;
  std::size_t next_spawn = 0;
  for (const auto& run : cols.runs) {
    for (std::uint64_t j = 0; j < run.length; ++j, ++i) {
      monitor::TraceRecord r;
      r.chain = run.chain;
      r.seq = cols.seq[i];
      const std::uint8_t f1 = cols.flags1[i];
      r.event = static_cast<monitor::EventKind>(f1 & 7);
      r.kind = static_cast<monitor::CallKind>((f1 >> 3) & 3);
      r.outcome = static_cast<monitor::CallOutcome>((f1 >> 5) & 3);
      const std::uint8_t f2 = cols.flags2[i];
      r.mode = static_cast<monitor::ProbeMode>(f2 & 3);
      if (f2 & 4) r.spawned_chain = cols.spawned[next_spawn++];
      r.sample_rate_index = static_cast<std::uint8_t>(f2 >> 3);
      r.interface_name = cols.table[cols.iface[i]];
      r.function_name = cols.table[cols.func[i]];
      r.object_key = cols.object_key[i];
      r.process_name = cols.table[cols.process[i]];
      r.node_name = cols.table[cols.node[i]];
      r.processor_type = cols.table[cols.type[i]];
      r.thread_ordinal = cols.thread_ordinal[i];
      r.value_start = cols.value_start[i];
      r.value_end = cols.value_end[i];
      recs.push_back(r);
    }
  }
  return logs;
}

// One decoded segment in whichever form its version produced: v4 stays
// columnar (the ingest path never assembles records), v2/v3 decode
// record-major as always.  Either form is self-contained -- strings copied
// into bundle-owned pools -- so it can outlive the input bytes (an mmap
// unmapped after the poll), cross threads, and be ingested later (in epoch
// order).
struct Staged {
  std::optional<ColumnBundle> columns;
  monitor::CollectedLogs logs;
  std::size_t records() const {
    return columns ? columns->count : logs.records.size();
  }
};

Staged decode_segment_staged(WireCursor& in) {
  Staged s;
  if (in.read_u32() != kMagic) throw TraceIoError("not a causeway trace");
  const std::uint32_t version = in.read_u32();
  if (version < kMinVersion || version > kMaxVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  if (version >= 4) {
    const std::uint64_t body = in.read_u64();
    if (body != in.remaining()) {
      throw TraceIoError("trace segment length mismatch");
    }
    s.columns = decode_segment_v4_columns(in, version);
  } else {
    s.logs = decode_segment_v2v3(in, version);
  }
  return s;
}

// Record-major decode of one segment, whatever its version.
monitor::CollectedLogs decode_segment_logs(WireCursor& in) {
  Staged s = decode_segment_staged(in);
  if (s.columns) return assemble_logs(std::move(*s.columns));
  return std::move(s.logs);
}

// Below this many total bytes the pool dispatch costs more than the decode;
// single-segment inputs are always decoded inline.
constexpr std::size_t kParallelDecodeMinBytes = 32 * 1024;

// Decodes every segment extent into its own staging bundle -- concurrently
// on the shared WorkerPool when there is enough work -- leaving per-segment
// failures in `errors` so the caller can commit the clean prefix in epoch
// order before rethrowing.  Trailer extents stage nothing.
void decode_staged(const std::uint8_t* base, const std::vector<Extent>& extents,
                   std::vector<Staged>& staged,
                   std::vector<std::exception_ptr>& errors) {
  staged.resize(extents.size());
  errors.assign(extents.size(), nullptr);
  std::size_t total_bytes = 0;
  std::size_t segment_count = 0;
  for (const auto& e : extents) {
    if (!e.is_segment) continue;
    total_bytes += e.length;
    ++segment_count;
  }
  auto decode_one = [&](std::size_t k) {
    if (!extents[k].is_segment) return;
    try {
      WireCursor cursor(base + extents[k].offset, extents[k].length);
      staged[k] = decode_segment_staged(cursor);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  };
  if (segment_count >= 2 && total_bytes >= kParallelDecodeMinBytes &&
      WorkerPool::shared().concurrency() >= 2) {
    WorkerPool::shared().parallel_for(extents.size(), decode_one);
  } else {
    for (std::size_t k = 0; k < extents.size(); ++k) decode_one(k);
  }
}

std::vector<Extent> scan_extents(std::span<const std::uint8_t> bytes) {
  try {
    if (auto dir = extents_from_directory(bytes)) return std::move(*dir);
    return skim_extents(bytes, /*stop_on_underflow=*/false);
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace: ") + e.what());
  }
}

[[noreturn]] void rethrow_as_trace_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace: ") + e.what());
  }
}

// A read-only view of an entire file: mmap when the platform has it (the
// zero-copy path -- segment decode reads straight out of the page cache),
// a read() into owned memory otherwise.  CAUSEWAY_NO_MMAP=1 forces the
// fallback (useful to A/B the two paths on one machine).
class FileView {
 public:
  FileView() = default;
  ~FileView() {
#if defined(CAUSEWAY_HAS_MMAP)
    if (map_ != nullptr) ::munmap(map_, map_length_);
#endif
  }
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;

  // Opens and maps (or reads) the whole file.  Returns false when the file
  // cannot be opened (not created yet); throws TraceIoError on read errors
  // after a successful open.
  bool open(const std::string& path) {
#if defined(CAUSEWAY_HAS_MMAP)
    if (!mmap_disabled()) {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) return false;
      struct ::stat st = {};
      if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw TraceIoError("cannot stat '" + path + "'");
      }
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        view_ = {};
        return true;
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        map_ = map;
        map_length_ = size;
        view_ = {static_cast<const std::uint8_t*>(map), size};
        return true;
      }
      // mmap refused (exotic filesystem); fall through to read().
    }
#endif
#if defined(CAUSEWAY_HAS_POSIX_IO)
    // read() fallback through the shared EINTR-safe short-read loop: a
    // signal mid-read (or a filesystem serving partial reads) can never
    // truncate the view or surface as a spurious failure.
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return false;
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw TraceIoError("cannot stat '" + path + "'");
    }
    owned_.resize(static_cast<std::size_t>(st.st_size));
    const long got = owned_.empty()
                         ? 0
                         : io_read_full(fd, owned_.data(), owned_.size());
    ::close(fd);
    if (got < 0) throw TraceIoError("read error on '" + path + "'");
    // A writer may still be appending; the bytes that existed at open are
    // the view (like the mmap path, which maps the fstat'd size).
    owned_.resize(static_cast<std::size_t>(got));
    view_ = owned_;
    return true;
#else
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    owned_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    if (in.bad()) throw TraceIoError("read error on '" + path + "'");
    view_ = owned_;
    return true;
#endif
  }

  std::span<const std::uint8_t> bytes() const { return view_; }

 private:
  static bool mmap_disabled() {
    const char* env = std::getenv("CAUSEWAY_NO_MMAP");
    return env != nullptr && *env != '\0' && *env != '0';
  }

  std::span<const std::uint8_t> view_;
  std::vector<std::uint8_t> owned_;
#if defined(CAUSEWAY_HAS_MMAP)
  void* map_{nullptr};
  std::size_t map_length_{0};
#endif
};

// The directory trailer block TraceWriter::close appends (and reindex
// retrofits): CWTD, version, segment lengths, total block size, CWTE.
std::vector<std::uint8_t> encode_directory_trailer(
    const std::vector<std::uint64_t>& segment_lengths) {
  WireBuffer trailer;
  trailer.write_u32(kDirMagic);
  trailer.write_u32(kDirVersion);
  trailer.write_varint(segment_lengths.size());
  for (const std::uint64_t length : segment_lengths) {
    trailer.write_varint(length);
  }
  trailer.write_u64(trailer.size() + 12);  // whole block incl. this + magic
  trailer.write_u32(kEndMagic);
  return std::move(trailer).take();
}

}  // namespace

std::vector<std::uint8_t> encode_trace(const monitor::CollectedLogs& logs,
                                       std::uint32_t version) {
  if (version == kTraceFormatV3) return encode_trace_v3(logs);
  if (version == kTraceFormatV4 || version == kTraceFormatV5) {
    return encode_trace_columnar(logs, version);
  }
  throw TraceIoError("unwritable trace version " + std::to_string(version));
}

std::vector<std::uint8_t> encode_trace_recmajor(
    const monitor::CollectedLogs& logs, std::uint32_t version) {
  if (version == kTraceFormatV3) return encode_trace_v3(logs);
  if (version == kTraceFormatV4) return encode_trace_v4_recmajor(logs);
  throw TraceIoError("unwritable trace version " + std::to_string(version));
}

std::vector<std::uint8_t> encode_trace_columns(const ColumnBundle& cols,
                                               std::uint32_t version) {
  if (version != kTraceFormatV4 && version != kTraceFormatV5) {
    throw TraceIoError("no columnar form for trace version " +
                       std::to_string(version));
  }
  SegmentColumns c = gather_from_bundle(cols);
  transform_columns(c);
  return emit_segment_columnar(c, version);
}

namespace {

// Below this many records the pool dispatch costs more than the packing;
// single-segment encodes always pack inline.
constexpr std::size_t kParallelEncodeMinRecords = 2048;

// Packs one segment per input index -- on the shared WorkerPool when there
// is enough work -- committing results in input order.  Each segment's
// bytes depend only on its own input (kernel choice never changes output),
// so the result is byte-identical to a serial loop across worker counts.
template <typename EncodeOne>
std::vector<std::vector<std::uint8_t>> encode_stream_impl(
    std::size_t bundles, std::size_t total_records, EncodeOne&& encode_one) {
  std::vector<std::vector<std::uint8_t>> out(bundles);
  auto pack_one = [&](std::size_t k) { out[k] = encode_one(k); };
  if (bundles >= 2 && total_records >= kParallelEncodeMinRecords &&
      WorkerPool::shared().concurrency() >= 2) {
    WorkerPool::shared().parallel_for(bundles, pack_one);
  } else {
    for (std::size_t k = 0; k < bundles; ++k) pack_one(k);
  }
  return out;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> encode_trace_stream(
    std::span<const monitor::CollectedLogs> bundles, std::uint32_t version) {
  std::size_t total = 0;
  for (const auto& b : bundles) total += b.records.size();
  return encode_stream_impl(bundles.size(), total, [&](std::size_t k) {
    return encode_trace(bundles[k], version);
  });
}

std::vector<std::vector<std::uint8_t>> encode_trace_columns_stream(
    std::span<const ColumnBundle> bundles) {
  std::size_t total = 0;
  for (const auto& b : bundles) total += b.count;
  return encode_stream_impl(bundles.size(), total, [&](std::size_t k) {
    return encode_trace_columns(bundles[k]);
  });
}

std::size_t decode_trace(std::span<const std::uint8_t> bytes,
                         LogDatabase& db) {
  const std::vector<Extent> extents = scan_extents(bytes);

  std::vector<Staged> staged;
  std::vector<std::exception_ptr> errors;
  decode_staged(bytes.data(), extents, staged, errors);

  // Commit in segment order: each bundle is one database generation, the
  // same sequence a serial segment-by-segment decode produces.  v4 bundles
  // ingest in column form -- no record-major staging array on this path.
  std::size_t total = 0;
  for (std::size_t k = 0; k < extents.size(); ++k) {
    if (errors[k]) rethrow_as_trace_error(errors[k]);
    if (!extents[k].is_segment) continue;
    if (staged[k].columns) {
      db.ingest(*staged[k].columns);
    } else {
      db.ingest(staged[k].logs);
    }
    total += staged[k].records();
  }
  return total;
}

std::vector<monitor::CollectedLogs> decode_trace_segments(
    std::span<const std::uint8_t> bytes) {
  const std::vector<Extent> extents = scan_extents(bytes);

  std::vector<Staged> staged;
  std::vector<std::exception_ptr> errors;
  decode_staged(bytes.data(), extents, staged, errors);

  std::vector<monitor::CollectedLogs> out;
  out.reserve(extents.size());
  for (std::size_t k = 0; k < extents.size(); ++k) {
    if (errors[k]) rethrow_as_trace_error(errors[k]);
    if (!extents[k].is_segment) continue;
    if (staged[k].columns) {
      out.push_back(assemble_logs(std::move(*staged[k].columns)));
    } else {
      out.push_back(std::move(staged[k].logs));
    }
  }
  return out;
}

std::vector<ColumnBundle> decode_trace_columns(
    std::span<const std::uint8_t> bytes) {
  const std::vector<Extent> extents = scan_extents(bytes);

  std::vector<Staged> staged;
  std::vector<std::exception_ptr> errors;
  decode_staged(bytes.data(), extents, staged, errors);

  std::vector<ColumnBundle> out;
  out.reserve(extents.size());
  for (std::size_t k = 0; k < extents.size(); ++k) {
    if (errors[k]) rethrow_as_trace_error(errors[k]);
    if (!extents[k].is_segment) continue;
    if (!staged[k].columns) {
      throw TraceIoError("not a columnar (v4) trace segment");
    }
    out.push_back(std::move(*staged[k].columns));
  }
  return out;
}

bool probe_trace_block(std::span<const std::uint8_t> bytes,
                       std::size_t& length, bool& is_segment) {
  WireCursor in(bytes.data(), bytes.size());
  try {
    WireCursor probe = in;
    if (probe.read_u32() == kDirMagic) {
      length = skim_trailer(in);
      is_segment = false;
    } else {
      length = skim_segment(in);
      is_segment = true;
    }
    return true;
  } catch (const WireError&) {
    return false;  // incomplete prefix: read more and retry
  }
}

monitor::CollectedLogs decode_trace_segment(
    std::span<const std::uint8_t> segment) {
  try {
    WireCursor in(segment.data(), segment.size());
    return decode_segment_logs(in);
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace segment: ") + e.what());
  }
}

ColumnBundle decode_trace_segment_columns(
    std::span<const std::uint8_t> segment) {
  try {
    WireCursor in(segment.data(), segment.size());
    Staged s = decode_segment_staged(in);
    if (!s.columns) {
      throw TraceIoError("not a columnar (v4) trace segment");
    }
    return std::move(*s.columns);
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace segment: ") + e.what());
  }
}

std::uint64_t trace_segment_record_count(
    std::span<const std::uint8_t> segment) {
  try {
    WireCursor in(segment.data(), segment.size());
    if (in.read_u32() != kMagic) throw TraceIoError("not a causeway trace");
    const std::uint32_t version = in.read_u32();
    if (version < kMinVersion || version > kMaxVersion) {
      throw TraceIoError("unsupported trace version " +
                         std::to_string(version));
    }
    if (version >= 4) {
      in.skip(8);   // body length
      in.skip(16);  // epoch + dropped
      const std::uint64_t domain_count = in.read_varint();
      if (domain_count > in.remaining() / kMinV4DomainBytes) {
        throw WireError("wire underflow");
      }
      for (std::uint64_t i = 0; i < domain_count; ++i) {
        in.read_varint();  // process id
        in.read_varint();  // node id
        in.read_varint();  // type id
        in.read_u8();      // mode
        in.read_varint();  // per-domain record count
      }
      const std::uint64_t string_count = in.read_varint();
      if (string_count > in.remaining()) throw WireError("wire underflow");
      for (std::uint64_t i = 0; i < string_count; ++i) {
        in.skip(static_cast<std::size_t>(in.read_varint()));
      }
      return in.read_varint();
    }
    in.skip(16);  // epoch + dropped
    const std::uint32_t domain_count = in.read_u32();
    if (domain_count > in.remaining() / kDomainWireBytes) {
      throw WireError("wire underflow");
    }
    in.skip(domain_count * kDomainWireBytes);
    const std::uint32_t string_count = in.read_u32();
    for (std::uint32_t i = 0; i < string_count; ++i) in.skip(in.read_u32());
    return in.read_u64();
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace segment: ") + e.what());
  }
}

namespace {

// One directory block parsed from its trailing [u64 total]["CWTE"] probe:
// where it starts and what it covers.  nullopt when the bytes ending at
// `end` are not a well-formed directory block.
struct TrailerAt {
  std::size_t start{0};
  std::uint64_t segments{0};
  std::uint64_t segment_bytes{0};  // sum of the covered segment lengths
};

std::optional<TrailerAt> trailer_ending_at(std::span<const std::uint8_t> bytes,
                                           std::size_t end) {
  if (end < 21 || end > bytes.size()) return std::nullopt;
  WireCursor tail(bytes.data() + end - 12, 12);
  const std::uint64_t total = tail.read_u64();
  if (tail.read_u32() != kEndMagic) return std::nullopt;
  if (total < 21 || total > end) return std::nullopt;
  const std::size_t start = end - static_cast<std::size_t>(total);
  try {
    WireCursor in(bytes.data() + start, static_cast<std::size_t>(total));
    if (skim_trailer(in) != total || in.remaining() != 0) return std::nullopt;
    TrailerAt t;
    t.start = start;
    WireCursor again(bytes.data() + start, static_cast<std::size_t>(total));
    again.skip(8);  // magic + directory version (skim validated them)
    t.segments = again.read_varint();
    for (std::uint64_t i = 0; i < t.segments; ++i) {
      const std::uint64_t length = again.read_varint();
      // The covered run must fit between the file start and this block.
      if (length > t.start - t.segment_bytes) return std::nullopt;
      t.segment_bytes += length;
    }
    return t;
  } catch (const WireError&) {
    return std::nullopt;
  } catch (const TraceIoError&) {
    return std::nullopt;
  }
}

// True checkpoint test: the block ending at `end` must be a directory
// block, its covered segment run must start exactly where an earlier
// directory block ends, and so on back to byte 0.  O(checkpoints), never
// touches a segment header.  Returns the total segments the chain covers.
std::optional<std::size_t> validate_checkpoint_chain(
    std::span<const std::uint8_t> bytes, std::size_t end) {
  std::size_t segments = 0;
  std::size_t e = end;
  while (e > 0) {
    const auto t = trailer_ending_at(bytes, e);
    if (!t) return std::nullopt;
    segments += static_cast<std::size_t>(t->segments);
    e = t->start - static_cast<std::size_t>(t->segment_bytes);
  }
  return segments;
}

struct CheckpointScan {
  std::size_t clean_end{0};  // offset just past the last validated block
  std::size_t segments{0};   // segments the validated chain covers
};

// Backward scan for the last checkpoint whose chain validates.  Candidate
// positions are end-magic byte matches; a stray "CWTE" inside segment
// payload is rejected by the chain validation (it would have to parse as a
// block whose covered run lands exactly on another valid block, repeatedly,
// all the way to byte 0).
std::optional<CheckpointScan> find_last_checkpoint(
    std::span<const std::uint8_t> bytes) {
  // kEndMagic ("CWTE", 0x43575445) as it sits in the file, little-endian.
  static constexpr std::uint8_t kEndBytes[4] = {0x45, 0x54, 0x57, 0x43};
  if (bytes.size() < 21) return std::nullopt;
  for (std::size_t i = bytes.size() - 4; i >= 17; --i) {
    if (std::memcmp(bytes.data() + i, kEndBytes, sizeof(kEndBytes)) != 0) {
      continue;
    }
    const std::size_t end = i + 4;
    if (auto segments = validate_checkpoint_chain(bytes, end)) {
      return CheckpointScan{end, *segments};
    }
  }
  return std::nullopt;
}

}  // namespace

ReindexResult reindex_trace_file(const std::string& path) {
  ReindexResult result;
  std::vector<Extent> extents;
  std::size_t tail_base = 0;  // where the re-skimmed window starts
  std::uint64_t file_size = 0;
  {
    FileView file;
    if (!file.open(path)) throw TraceIoError("cannot open '" + path + "'");
    const std::span<const std::uint8_t> bytes = file.bytes();
    file_size = bytes.size();
    // A file already ending in a consistent directory trailer needs
    // nothing; a *lying* trailer still throws here rather than being
    // silently replaced.
    try {
      if (auto dir = extents_from_directory(bytes)) {
        for (const Extent& e : *dir) {
          if (e.is_segment) ++result.segments;
        }
        return result;
      }
    } catch (const WireError& e) {
      throw TraceIoError(std::string("corrupt trace directory: ") + e.what());
    }
    // Checkpointed writer: resume from the last validated interior block
    // and skim only the tail written after it.  Any inconsistency in the
    // tail (not just an incomplete write) falls back to the full skim --
    // slower, never wrong.
    if (const auto cp = find_last_checkpoint(bytes)) {
      try {
        extents = skim_extents(bytes.subspan(cp->clean_end),
                               /*stop_on_underflow=*/true);
        tail_base = cp->clean_end;
        result.used_checkpoint = true;
        result.checkpoint_segments = cp->segments;
      } catch (const TraceIoError&) {
        extents.clear();
        tail_base = 0;
        result.used_checkpoint = false;
        result.checkpoint_segments = 0;
      }
    }
    if (!result.used_checkpoint) {
      // Crashed-writer skim: complete blocks are the clean prefix, an
      // incomplete tail (the write the crash cut short) ends the scan.
      try {
        extents = skim_extents(bytes, /*stop_on_underflow=*/true);
      } catch (const WireError& e) {
        throw TraceIoError(std::string("corrupt trace: ") + e.what());
      }
    }
  }  // unmap before mutating the file

  // The trailer describes the contiguous run of segments that ends the
  // clean prefix (everything after the last interior trailer block, if a
  // concatenated trace holds any); the reader skims whatever precedes it,
  // exactly as it does for a freshly closed file.
  std::uint64_t clean_end = tail_base;
  if (!extents.empty()) {
    clean_end = tail_base + extents.back().offset + extents.back().length;
  }
  std::vector<std::uint64_t> lengths;
  for (auto it = extents.rbegin(); it != extents.rend() && it->is_segment;
       ++it) {
    lengths.push_back(it->length);
  }
  std::reverse(lengths.begin(), lengths.end());

  result.segments = lengths.size();
  result.truncated_bytes = file_size - clean_end;
  result.rewritten = true;
  if (result.truncated_bytes > 0) {
    std::error_code ec;
    std::filesystem::resize_file(path, clean_end, ec);
    if (ec) {
      throw TraceIoError("cannot truncate '" + path + "': " + ec.message());
    }
  }
  const auto trailer = encode_directory_trailer(lengths);
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(trailer.data()),
            static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) throw TraceIoError("short write to '" + path + "'");
  return result;
}

void write_trace_file(const std::string& path,
                      const monitor::CollectedLogs& logs,
                      std::uint32_t version) {
  TraceWriter writer(path, version);
  writer.append(logs);
  writer.close();
}

std::size_t read_trace_file(const std::string& path, LogDatabase& db) {
  FileView file;
  if (!file.open(path)) throw TraceIoError("cannot open '" + path + "'");
  return decode_trace(file.bytes(), db);
}

TraceWriter::TraceWriter(const std::string& path, std::uint32_t version,
                         std::size_t checkpoint_every)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      version_(version),
      checkpoint_every_(checkpoint_every) {
  if (version != kTraceFormatV3 && version != kTraceFormatV4 &&
      version != kTraceFormatV5) {
    throw TraceIoError("unwritable trace version " + std::to_string(version));
  }
  if (!out_) throw TraceIoError("cannot open '" + path + "' for writing");
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an explicit close() surfaces the error.
  }
}

void TraceWriter::append(const monitor::CollectedLogs& logs) {
  if (closed_) throw TraceIoError("trace writer for '" + path_ + "' is closed");
  const auto bytes = encode_trace(logs, version_);
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  // Flush per segment: the file on disk is a valid multi-segment trace
  // after every epoch, so an analyzer (or a crash) mid-run sees a clean
  // prefix of the stream.
  out_.flush();
  if (!out_) throw TraceIoError("short write to '" + path_ + "'");
  records_ += logs.records.size();
  note_segment(bytes.size());
}

void TraceWriter::append(const ColumnBundle& cols) {
  if (closed_) throw TraceIoError("trace writer for '" + path_ + "' is closed");
  if (version_ != kTraceFormatV4 && version_ != kTraceFormatV5) {
    throw TraceIoError("column append requires a columnar (v4/v5) writer");
  }
  const auto bytes = encode_trace_columns(cols, version_);
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  if (!out_) throw TraceIoError("short write to '" + path_ + "'");
  records_ += cols.count;
  note_segment(bytes.size());
}

void TraceWriter::append_encoded(std::span<const std::uint8_t> segment) {
  if (closed_) throw TraceIoError("trace writer for '" + path_ + "' is closed");
  std::size_t length = 0;
  bool is_segment = false;
  try {
    if (!probe_trace_block(segment, length, is_segment)) {
      throw TraceIoError("incomplete trace segment");
    }
  } catch (const WireError& e) {
    throw TraceIoError(std::string("corrupt trace segment: ") + e.what());
  }
  if (!is_segment || length != segment.size()) {
    throw TraceIoError("append_encoded wants exactly one trace segment");
  }
  out_.write(reinterpret_cast<const char*>(segment.data()),
             static_cast<std::streamsize>(segment.size()));
  out_.flush();
  if (!out_) throw TraceIoError("short write to '" + path_ + "'");
  note_segment(segment.size());
}

void TraceWriter::note_segment(std::size_t bytes) {
  segment_lengths_.push_back(bytes);
  ++segments_total_;
  bytes_written_ += bytes;
  if (checkpoint_every_ > 0 && segment_lengths_.size() >= checkpoint_every_) {
    checkpoint();
  }
}

void TraceWriter::checkpoint() {
  if (closed_) throw TraceIoError("trace writer for '" + path_ + "' is closed");
  if (segment_lengths_.empty()) return;
  const auto block = encode_directory_trailer(segment_lengths_);
  out_.write(reinterpret_cast<const char*>(block.data()),
             static_cast<std::streamsize>(block.size()));
  out_.flush();
  if (!out_) throw TraceIoError("short write to '" + path_ + "'");
  bytes_written_ += block.size();
  segment_lengths_.clear();
}

void TraceWriter::close() {
  if (closed_) return;
  // The final trailer covers only the segments since the last checkpoint --
  // the same contiguous-run contract a concatenated trace's last trailer
  // keeps, so extents_from_directory's base arithmetic holds and the
  // checkpoint blocks before it are skimmed as metadata.
  const auto trailer = encode_directory_trailer(segment_lengths_);
  closed_ = true;
  out_.write(reinterpret_cast<const char*>(trailer.data()),
             static_cast<std::streamsize>(trailer.size()));
  out_.flush();
  if (!out_) throw TraceIoError("short write to '" + path_ + "'");
  out_.close();
}

std::size_t TraceTail::poll(LogDatabase& db) { return poll_impl(&db, nullptr); }

std::size_t TraceTail::poll(AnalysisPipeline& pipeline) {
  return poll_impl(nullptr, &pipeline);
}

std::size_t TraceTail::poll_impl(LogDatabase* db, AnalysisPipeline* pipeline) {
  FileView file;
  if (!file.open(path_)) {
    // Not created yet is fine (the writer may still be starting up), but a
    // file that vanishes after we read from it is not.
    if (seen_size_ == 0) return 0;
    throw TraceIoError("cannot open '" + path_ + "'");
  }
  const std::span<const std::uint8_t> bytes = file.bytes();
  if (bytes.size() < seen_size_) {
    throw TraceIoError("trace file '" + path_ + "' shrank while tailing");
  }
  seen_size_ = bytes.size();
  if (bytes.size() <= consumed_) return 0;

  // The unconsumed window decodes in place -- no staging buffer.  Complete
  // blocks commit; an incomplete tail (wire underflow) simply stays in the
  // file for the next poll.  Structural corruption propagates.
  const std::span<const std::uint8_t> fresh =
      bytes.subspan(static_cast<std::size_t>(consumed_));
  const std::vector<Extent> extents =
      skim_extents(fresh, /*stop_on_underflow=*/true);
  if (extents.empty()) return 0;

  // Decode the complete segments concurrently (a cold catch-up tail of a
  // long-running stream can hold hundreds), then commit in epoch order so
  // the database sees the same generation sequence a live tail would.
  std::vector<Staged> staged;
  std::vector<std::exception_ptr> errors;
  decode_staged(fresh.data(), extents, staged, errors);

  std::size_t records = 0;
  std::size_t committed_end = 0;
  for (std::size_t k = 0; k < extents.size(); ++k) {
    if (errors[k]) {
      // Commit the clean prefix, then surface the corruption.
      consumed_ += committed_end;
      rethrow_as_trace_error(errors[k]);
    }
    if (extents[k].is_segment) {
      if (staged[k].columns) {
        if (db != nullptr) {
          db->ingest(*staged[k].columns);
        } else {
          pipeline->ingest(*staged[k].columns);
        }
      } else if (db != nullptr) {
        db->ingest(staged[k].logs);
      } else {
        pipeline->ingest(staged[k].logs);
      }
      ++segments_;
      records += staged[k].records();
    }
    committed_end = extents[k].offset + extents[k].length;
  }
  consumed_ += committed_end;
  return records;
}

}  // namespace causeway::analysis
