#include "analysis/diff.h"

#include <algorithm>
#include <map>

#include "analysis/cpu.h"
#include "analysis/latency.h"
#include "common/strings.h"

namespace causeway::analysis {
namespace {

struct Accum {
  std::size_t calls{0};
  double sum_us{0};

  double mean() const {
    return calls == 0 ? 0 : sum_us / static_cast<double>(calls);
  }
};

std::map<std::string, Accum> per_function(Dscg& dscg,
                                          const LogDatabase& db) {
  const monitor::ProbeMode mode = db.primary_mode();
  if (mode == monitor::ProbeMode::kLatency) {
    annotate_latency(dscg);
  } else if (mode == monitor::ProbeMode::kCpu) {
    annotate_cpu(dscg);
  }
  std::map<std::string, Accum> out;
  dscg.visit([&](const CallNode& node, int) {
    Accum& a = out[std::string(node.interface_name) +
                   "::" + std::string(node.function_name)];
    a.calls += 1;
    if (mode == monitor::ProbeMode::kLatency && node.latency) {
      a.sum_us += static_cast<double>(*node.latency) / 1e3;
    } else if (mode == monitor::ProbeMode::kCpu) {
      a.sum_us += static_cast<double>(node.self_cpu.total()) / 1e3;
    }
  });
  return out;
}

}  // namespace

RunDiff diff_runs(Dscg& baseline, const LogDatabase& baseline_db,
                  Dscg& current, const LogDatabase& current_db,
                  const DiffOptions& options) {
  RunDiff diff;
  diff.metric = current_db.primary_mode() == monitor::ProbeMode::kCpu
                    ? "self-cpu"
                    : "latency";

  const auto base = per_function(baseline, baseline_db);
  const auto cur = per_function(current, current_db);

  for (const auto& [name, base_row] : base) {
    auto it = cur.find(name);
    if (it == cur.end()) {
      diff.removed.push_back(name);
      continue;
    }
    FunctionDelta delta;
    delta.function = name;
    delta.base_calls = base_row.calls;
    delta.current_calls = it->second.calls;
    delta.base_mean_us = base_row.mean();
    delta.current_mean_us = it->second.mean();
    const double pct = delta.delta_pct();
    if (pct > options.threshold_pct) {
      diff.regressions.push_back(std::move(delta));
    } else if (pct < -options.threshold_pct) {
      diff.improvements.push_back(std::move(delta));
    } else {
      diff.stable.push_back(std::move(delta));
    }
  }
  for (const auto& [name, row] : cur) {
    if (!base.contains(name)) diff.added.push_back(name);
  }

  std::sort(diff.regressions.begin(), diff.regressions.end(),
            [](const FunctionDelta& a, const FunctionDelta& b) {
              return a.delta_pct() > b.delta_pct();
            });
  std::sort(diff.improvements.begin(), diff.improvements.end(),
            [](const FunctionDelta& a, const FunctionDelta& b) {
              return a.delta_pct() < b.delta_pct();
            });
  return diff;
}

std::string RunDiff::to_string() const {
  std::string out;
  out += strf("==== run diff (%s, per-function mean) ====\n", metric.c_str());
  auto table = [&](const char* title, const std::vector<FunctionDelta>& rows) {
    if (rows.empty()) return;
    out += strf("--- %s ---\n", title);
    out += strf("%-40s %10s %10s %9s %8s->%-8s\n", "function", "base us",
                "cur us", "delta", "calls", "calls");
    for (const auto& d : rows) {
      out += strf("%-40s %10.1f %10.1f %+8.1f%% %8zu->%-8zu\n",
                  d.function.c_str(), d.base_mean_us, d.current_mean_us,
                  d.delta_pct(), d.base_calls, d.current_calls);
    }
  };
  table("regressions", regressions);
  table("improvements", improvements);
  if (!added.empty()) {
    out += "--- added functions ---\n";
    for (const auto& name : added) out += "  " + name + "\n";
  }
  if (!removed.empty()) {
    out += "--- removed functions ---\n";
    for (const auto& name : removed) out += "  " + name + "\n";
  }
  out += strf("%zu stable, %zu regressed, %zu improved, %zu added, "
              "%zu removed\n",
              stable.size(), regressions.size(), improvements.size(),
              added.size(), removed.size());
  return out;
}

}  // namespace causeway::analysis
