// The CPU Consumption Summarization Graph (paper Sec. 3.2 phase 3, Fig. 6).
//
// The CCSG synthesizes the per-invocation CPU results with the DSCG: nodes
// with the same identity (interface, function, object) under the same
// aggregated parent merge, accumulating invocation counts and self /
// descendant CPU vectors.  The paper renders it as XML viewed in a browser;
// to_xml() emits the same fields -- ObjectID, InvocationTimes,
// IncludedFunctionInstances, SelfCPUConsumption and
// DescendentCPUConsumption in [second, microsecond] format, structured
// following the call hierarchy.
//
// The graph is an *online accumulator*: update() folds one epoch's delta --
// the per-root imprints of the top-level trees the DSCG re-grouped -- into
// the merged nodes (subtract the tree's previous contribution, fold the new
// one), so per-epoch cost scales with the affected trees, not the whole
// graph.  build() is the one-epoch degenerate case (every root affected),
// which is what keeps offline and incremental output byte-identical.
//
// (The detailed construction lived in HP Labs TR HPL-2002-50, which is not
// public; the parent-scoped identity merge here is the natural reading and
// is documented as a substitution in DESIGN.md.)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "analysis/dscg.h"
#include "analysis/incremental.h"

namespace causeway::analysis {

// Identity under which sibling invocations merge.
using CcsgKey = std::tuple<std::string_view, std::string_view, std::uint64_t>;

// CPU accumulator keyed by processor type.  Each cell tracks the
// nanosecond sum *and* a contribution count, so incremental subtraction can
// tell a type whose entries all left (cell disappears) from one that
// legitimately sums to zero (cell stays, prints 0) -- the distinction the
// XML rendering makes visible.
struct CpuCells {
  struct Cell {
    Nanos ns{0};
    std::size_t n{0};
  };
  std::map<std::string_view, Cell> cells;

  void add(const CpuVector& v) {
    for (const auto& [type, ns] : v.by_type) {
      Cell& c = cells[type];
      c.ns += ns;
      ++c.n;
    }
  }
  void add(const CpuCells& o) {
    for (const auto& [type, cell] : o.cells) {
      Cell& c = cells[type];
      c.ns += cell.ns;
      c.n += cell.n;
    }
  }
  void sub(const CpuCells& o) {
    for (const auto& [type, cell] : o.cells) {
      auto it = cells.find(type);
      it->second.ns -= cell.ns;
      it->second.n -= cell.n;
      if (it->second.n == 0) cells.erase(it);
    }
  }
  Nanos total() const {
    Nanos sum = 0;
    for (const auto& [type, cell] : cells) sum += cell.ns;
    return sum;
  }
  bool empty() const { return cells.empty(); }
};

struct CcsgNode {
  std::string_view interface_name;
  std::string_view function_name;
  std::uint64_t object_key{0};

  std::uint64_t invocation_times{0};

  // Merged DSCG instances, grouped by the ordinal of the top-level tree
  // that folded them (so one tree's contribution can be subtracted when it
  // is re-folded).  An instance id encodes (chain ordinal << 32) | pre-order
  // index within the chain -- stable across epochs.
  std::map<std::uint64_t, std::vector<std::uint64_t>> instances;

  CpuCells self_cpu;
  CpuCells descendant_cpu;

  // Children keyed (and rendered) by merge identity.
  std::map<CcsgKey, std::unique_ptr<CcsgNode>> children;

  // All merged instance ids, ascending.
  std::vector<std::uint64_t> instance_ids() const;

  std::size_t subtree_size() const {
    std::size_t n = 1;
    for (const auto& [key, c] : children) n += c->subtree_size();
    return n;
  }
};

class Ccsg {
 public:
  Ccsg();
  ~Ccsg();
  Ccsg(const Ccsg&) = delete;
  Ccsg& operator=(const Ccsg&) = delete;
  Ccsg(Ccsg&&) noexcept;
  Ccsg& operator=(Ccsg&&) noexcept;

  // Offline form: fold every top-level tree of the DSCG at once.
  // Requires annotate_cpu() to have run on the DSCG.
  static Ccsg build(const Dscg& dscg);

  // Incremental form: subtract the previous contribution of every tree in
  // the scope, then re-fold the trees that are still top-level.
  void update(const Dscg& dscg, const UpdateScope& scope);

  // Top-level merged nodes in identity (render) order.
  std::vector<const CcsgNode*> roots() const;

  std::size_t node_count() const;

  // Paper Fig. 6 rendering.
  std::string to_xml() const;

 private:
  struct Imprint;  // one tree's folded contribution (ccsg.cpp)

  std::map<CcsgKey, std::unique_ptr<CcsgNode>> top_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Imprint>> imprints_;
};

}  // namespace causeway::analysis
