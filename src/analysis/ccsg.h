// The CPU Consumption Summarization Graph (paper Sec. 3.2 phase 3, Fig. 6).
//
// The CCSG synthesizes the per-invocation CPU results with the DSCG: nodes
// with the same identity (interface, function, object) under the same
// aggregated parent merge, accumulating invocation counts and self /
// descendant CPU vectors.  The paper renders it as XML viewed in a browser;
// to_xml() emits the same fields -- ObjectID, InvocationTimes,
// IncludedFunctionInstances, SelfCPUConsumption and
// DescendentCPUConsumption in [second, microsecond] format, structured
// following the call hierarchy.
//
// (The detailed construction lived in HP Labs TR HPL-2002-50, which is not
// public; the parent-scoped identity merge here is the natural reading and
// is documented as a substitution in DESIGN.md.)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dscg.h"

namespace causeway::analysis {

struct CcsgNode {
  std::string_view interface_name;
  std::string_view function_name;
  std::uint64_t object_key{0};

  std::uint64_t invocation_times{0};
  std::vector<std::uint64_t> instance_ids;  // merged DSCG node ordinals
  CpuVector self_cpu;
  CpuVector descendant_cpu;

  std::vector<std::unique_ptr<CcsgNode>> children;

  std::size_t subtree_size() const {
    std::size_t n = 1;
    for (const auto& c : children) n += c->subtree_size();
    return n;
  }
};

class Ccsg {
 public:
  // Requires annotate_cpu() to have run on the DSCG.
  static Ccsg build(const Dscg& dscg);

  const std::vector<std::unique_ptr<CcsgNode>>& roots() const {
    return roots_;
  }

  std::size_t node_count() const;

  // Paper Fig. 6 rendering.
  std::string to_xml() const;

 private:
  std::vector<std::unique_ptr<CcsgNode>> roots_;
};

}  // namespace causeway::analysis
