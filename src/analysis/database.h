// The log database.
//
// "The scattered logs are collected and eventually synthesized into a
// relational database" (paper Sec. 3).  LogDatabase is that store: it ingests
// collected trace records, interns every identity string (so the database
// outlives the monitored application), and serves the two queries the
// analyzer needs (paper Sec. 3.1):
//
//   query 1: the set of unique Function UUIDs ever created;
//   query 2: for one UUID, its events sorted by ascending event number.
//
// Ingestion is incremental: every batch (an offline collect or one streaming
// drain epoch) appends in place -- interning is append-only, per-chain event
// indexes grow in place, and domain entries merge by identity so N epochs
// synthesize to the same database one offline collect would have produced.
// A generation counter advances per batch and each chain remembers the last
// generation that touched it, so analyses (Dscg::update) can rebuild only
// what changed.
//
// Synthesis is *sharded* (DESIGN.md Sec. 8): the chain index, the dirty log
// and the string interner are partitioned by hash(chain UUID) % N, and
// ingest_records partitions each batch by shard and runs the shards in
// parallel on the shared WorkerPool.  The chain UUID is the natural
// partition key -- every event of a chain lands in the same shard, so no
// shard ever writes another shard's state.  The record store itself stays
// one flat arena in arrival order (shards scatter-write disjoint slots), so
// records() remains the ingest-order ground truth, and all cross-shard
// first-seen orders (chains, dirty log, processor types) are restored by a
// deterministic merge on batch-arrival index.  Every public query is
// byte-for-byte independent of the shard count.
#pragma once

#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "monitor/collector.h"
#include "monitor/record.h"

namespace causeway::analysis {

struct ColumnBundle;  // analysis/columns.h -- decoded v4 trace columns

class LogDatabase {
 public:
  // Shard count 0 resolves to the CAUSEWAY_INGEST_SHARDS environment
  // variable when set, else hardware_concurrency (clamped to [1, 64]).
  LogDatabase() : LogDatabase(0) {}
  explicit LogDatabase(std::size_t shard_count);
  LogDatabase(const LogDatabase&) = delete;
  LogDatabase& operator=(const LogDatabase&) = delete;
  LogDatabase(LogDatabase&&) = default;
  LogDatabase& operator=(LogDatabase&&) = default;

  std::size_t shard_count() const { return shards_.size(); }

  // Ingests a collector bundle: domain metadata plus all records.
  void ingest(const monitor::CollectedLogs& logs);

  // Ingests a decoded v4 column bundle directly: runs are partitioned by
  // chain (one shard lookup per run, not per record) and each shard
  // expands its runs straight into the record arena -- string ids resolve
  // lazily against a per-batch table cache, so a string interns at most
  // once per batch no matter how many records carry it.  Byte-identical to
  // assembling the bundle record-major and calling ingest(logs), at a
  // fraction of the staging cost; every public query stays independent of
  // the shard count and the path taken.
  void ingest(const ColumnBundle& cols);

  // Ingests raw records (tests and synthetic workloads build these
  // directly). String views are interned; the source may die afterwards.
  void ingest_records(std::span<const monitor::TraceRecord> records);

  const std::vector<monitor::TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  struct DomainEntry {
    std::string process_name;
    std::string node_name;
    std::string processor_type;
    monitor::ProbeMode mode;
    std::size_t record_count;
  };
  const std::vector<DomainEntry>& domains() const { return domains_; }

  // Query 1: unique chain UUIDs in first-seen order.
  const std::vector<Uuid>& chains() const { return chains_; }

  // Ingest-batch counter: 0 for an empty database, +1 per batch that added
  // records.  Analyses snapshot this to know when they are stale.
  std::uint64_t generation() const { return generation_; }

  // Chains that gained at least one event in a generation > `gen`, ordered
  // by the first batch (then arrival) that touched them after `gen`.
  // chains_since(0) is every chain in first-seen order.  Served from a
  // per-batch dirty log, so the cost scales with the number of touched
  // chains, not the whole database.
  std::vector<Uuid> chains_since(std::uint64_t gen) const;

  // Cumulative ring-overflow count reported by the ingested bundles: how
  // many records the probes dropped rather than block.  Non-zero means the
  // database is an honest but incomplete sample.
  std::uint64_t overflow_dropped() const { return overflow_dropped_; }

  // Cumulative transport-tier drop count reported by the ingested bundles:
  // records a publisher discarded under socket back-pressure.  Kept apart
  // from overflow_dropped() so the two loss mechanisms stay attributable.
  std::uint64_t publish_dropped() const { return publish_dropped_; }

  // Cumulative count of records deliberately suppressed at the probe by
  // chain sampling (or interface muting).  Unlike the two loss counters
  // above this is not loss: the suppressed volume is renormalizable from
  // the sample weights carried by the records that did arrive.
  std::uint64_t sampled_out() const { return sampled_out_; }

  // Renormalized estimates: each record counts sample_weight() times (a
  // record kept at 1-in-N sampling stands for N), each chain counts the
  // weight of its first record.  Equal to size()/chains().size() exactly
  // when nothing was sampled.
  std::uint64_t weighted_records() const;
  std::uint64_t weighted_chains() const;

  // True when the database holds evidence of sampling: a record with
  // weight > 1, or a reported sampled-out count.  Reports gate their
  // renormalization section on this, keeping un-sampled output
  // byte-identical to pre-sampling builds.
  bool sampling_active() const;

  // Highest drain epoch seen across ingested bundles (0 = offline only).
  std::uint64_t last_epoch() const { return last_epoch_; }

  // Query 2: events of one chain sorted by ascending event number
  // (insertion order breaks ties, which only occur on corrupt logs).
  // Thread-safe against concurrent chain_events calls (no ingest racing).
  std::vector<const monitor::TraceRecord*> chain_events(const Uuid& chain) const;

  // All distinct processor types seen (defines the <C1..CM> vector axes),
  // first-seen order.  Maintained at ingest, O(1) to read.
  const std::vector<std::string_view>& processor_types() const {
    return processor_types_;
  }

  // The probe mode of the bulk of the records (a run uses one mode).
  // Counts are maintained at ingest, O(shards) to read.
  monitor::ProbeMode primary_mode() const;

 private:
  struct ChainIndex {
    std::vector<std::size_t> events;  // indexes into records_, log order
    std::uint64_t last_gen{0};        // generation of the newest event
    // Watermark: the first `sorted_prefix` entries of `events` are already
    // in ascending seq order, and `prefix_last_seq` is the seq of the last
    // of them.  Events arrive in order in the common case, so chain_events
    // usually skips its sort entirely and otherwise sorts only the tail.
    std::size_t sorted_prefix{0};
    std::uint64_t prefix_last_seq{0};
  };

  // One partition of the synthesis state.  A shard is only ever mutated by
  // the single worker that owns it for the duration of a batch, so none of
  // this needs locks; the batch-scratch vectors below are merged serially
  // after the workers join.
  struct Shard {
    std::deque<std::string> pool;
    std::unordered_map<std::string_view, std::string_view> interned;
    std::unordered_map<Uuid, ChainIndex> by_chain;
    std::unordered_set<std::string_view> type_set;  // views into `pool`
    std::size_t mode_counts[3] = {0, 0, 0};
    // Sampling renormalization sums (weight = kSampleRates[index]).
    std::uint64_t weighted_records{0};
    std::uint64_t weighted_chains{0};  // first record's weight, per chain
    bool weight_seen{false};           // any record with weight > 1

    // Per-batch scratch (cleared each ingest).
    struct DirtyScratch {
      std::size_t arrival;     // index of the chain's first record in batch
      Uuid chain;
      std::uint64_t prev_gen;  // last_gen before this batch (0 = new chain)
    };
    std::vector<std::size_t> batch;  // record indexes within the batch span
    std::vector<DirtyScratch> dirty;
    std::vector<std::pair<std::size_t, std::string_view>> new_types;

    // Column-ingest scratch: the runs assigned to this shard (`first` is
    // the run's first record index within the batch), plus the per-batch
    // lazy resolution of the segment string table against this shard's
    // interner (`type_checked` folds the processor-type-set probe into the
    // first resolution of each id used as a type).
    struct RunRef {
      std::size_t first;
      std::uint32_t run;  // index into ColumnBundle::runs
    };
    std::vector<RunRef> column_batch;
    std::vector<std::string_view> resolved;
    std::vector<std::uint8_t> type_checked;

    std::string_view intern(std::string_view s);
    void ingest_batch(std::span<const monitor::TraceRecord> source,
                      std::vector<monitor::TraceRecord>& arena,
                      std::size_t base, std::uint64_t generation);
    void ingest_column_batch(const ColumnBundle& cols,
                             std::vector<monitor::TraceRecord>& arena,
                             std::size_t base, std::uint64_t generation);
  };

  std::size_t shard_of(const Uuid& chain) const {
    return static_cast<std::size_t>(std::hash<Uuid>{}(chain)) % shards_.size();
  }

  // Shared ingest plumbing: domain merge by identity, geometric arena
  // growth (returns the batch's base slot), and the serial post-join merge
  // of the shard-local dirty/type scratch back into global arrival order.
  void merge_domains(
      const std::vector<monitor::CollectedLogs::DomainEntry>& domains);
  std::size_t grow_arena(std::size_t n);
  void merge_batch_scratch();

  std::vector<monitor::TraceRecord> records_;  // flat arena, arrival order
  std::vector<Shard> shards_;
  std::vector<DomainEntry> domains_;

  // (process, node, type, mode) -> index into domains_, for merged updates.
  // Key views point into domain_pool_ (stable); lookups probe with views
  // into the caller's bundle, so the hot path allocates nothing.
  struct DomainKey {
    std::string_view process, node, type;
    monitor::ProbeMode mode;
    bool operator==(const DomainKey&) const = default;
  };
  struct DomainKeyHash {
    std::size_t operator()(const DomainKey& k) const noexcept {
      const std::hash<std::string_view> h;
      std::size_t x = h(k.process);
      x = x * 0x9e3779b97f4a7c15ull ^ h(k.node);
      x = x * 0x9e3779b97f4a7c15ull ^ h(k.type);
      return x * 0x9e3779b97f4a7c15ull ^ static_cast<std::size_t>(k.mode);
    }
  };
  std::deque<std::string> domain_pool_;
  std::unordered_map<DomainKey, std::size_t, DomainKeyHash> domain_index_;

  std::vector<Uuid> chains_;
  std::uint64_t generation_{0};
  std::uint64_t overflow_dropped_{0};
  std::uint64_t publish_dropped_{0};
  std::uint64_t sampled_out_{0};
  std::uint64_t last_epoch_{0};

  // Dirty log: one entry per (batch, touched chain), generations ascending,
  // arrival order within a batch.  `prev_gen` is the generation that had
  // touched the chain before this one (0 = the chain was born here), which
  // is what lets chains_since dedup without building a set per call.
  struct DirtyEntry {
    std::uint64_t gen;
    Uuid chain;
    std::uint64_t prev_gen;
  };
  std::vector<DirtyEntry> dirty_log_;

  // Maintained at ingest so the hot report/render queries are O(1).  The
  // views point into shard pools; the set dedups types that different
  // shards interned independently.
  std::vector<std::string_view> processor_types_;
  std::unordered_set<std::string_view> processor_type_set_;
};

}  // namespace causeway::analysis
