// The off-line log database.
//
// "The scattered logs are collected and eventually synthesized into a
// relational database" (paper Sec. 3).  LogDatabase is that store: it ingests
// collected trace records, interns every identity string (so the database
// outlives the monitored application), and serves the two queries the
// analyzer needs (paper Sec. 3.1):
//
//   query 1: the set of unique Function UUIDs ever created;
//   query 2: for one UUID, its events sorted by ascending event number.
#pragma once

#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "monitor/collector.h"
#include "monitor/record.h"

namespace causeway::analysis {

class LogDatabase {
 public:
  LogDatabase() = default;
  LogDatabase(const LogDatabase&) = delete;
  LogDatabase& operator=(const LogDatabase&) = delete;
  LogDatabase(LogDatabase&&) = default;
  LogDatabase& operator=(LogDatabase&&) = default;

  // Ingests a collector bundle: domain metadata plus all records.
  void ingest(const monitor::CollectedLogs& logs);

  // Ingests raw records (tests and synthetic workloads build these
  // directly). String views are interned; the source may die afterwards.
  void ingest_records(std::span<const monitor::TraceRecord> records);

  const std::vector<monitor::TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  struct DomainEntry {
    std::string process_name;
    std::string node_name;
    std::string processor_type;
    monitor::ProbeMode mode;
    std::size_t record_count;
  };
  const std::vector<DomainEntry>& domains() const { return domains_; }

  // Query 1: unique chain UUIDs in first-seen order.
  const std::vector<Uuid>& chains() const { return chains_; }

  // Query 2: events of one chain sorted by ascending event number
  // (insertion order breaks ties, which only occur on corrupt logs).
  std::vector<const monitor::TraceRecord*> chain_events(const Uuid& chain) const;

  // All distinct processor types seen (defines the <C1..CM> vector axes).
  std::vector<std::string_view> processor_types() const;

  // The probe mode of the bulk of the records (a run uses one mode).
  monitor::ProbeMode primary_mode() const;

 private:
  std::string_view intern(std::string_view s);
  void add_record(monitor::TraceRecord r);

  std::deque<std::string> pool_;
  std::unordered_map<std::string_view, std::string_view> interned_;

  std::vector<monitor::TraceRecord> records_;
  std::vector<DomainEntry> domains_;
  std::vector<Uuid> chains_;
  std::unordered_map<Uuid, std::vector<std::size_t>> by_chain_;
};

}  // namespace causeway::analysis
