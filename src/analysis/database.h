// The log database.
//
// "The scattered logs are collected and eventually synthesized into a
// relational database" (paper Sec. 3).  LogDatabase is that store: it ingests
// collected trace records, interns every identity string (so the database
// outlives the monitored application), and serves the two queries the
// analyzer needs (paper Sec. 3.1):
//
//   query 1: the set of unique Function UUIDs ever created;
//   query 2: for one UUID, its events sorted by ascending event number.
//
// Ingestion is incremental: every batch (an offline collect or one streaming
// drain epoch) appends in place -- interning is append-only, per-chain event
// indexes grow in place, and domain entries merge by identity so N epochs
// synthesize to the same database one offline collect would have produced.
// A generation counter advances per batch and each chain remembers the last
// generation that touched it, so analyses (Dscg::update) can rebuild only
// what changed.
#pragma once

#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "monitor/collector.h"
#include "monitor/record.h"

namespace causeway::analysis {

class LogDatabase {
 public:
  LogDatabase() = default;
  LogDatabase(const LogDatabase&) = delete;
  LogDatabase& operator=(const LogDatabase&) = delete;
  LogDatabase(LogDatabase&&) = default;
  LogDatabase& operator=(LogDatabase&&) = default;

  // Ingests a collector bundle: domain metadata plus all records.
  void ingest(const monitor::CollectedLogs& logs);

  // Ingests raw records (tests and synthetic workloads build these
  // directly). String views are interned; the source may die afterwards.
  void ingest_records(std::span<const monitor::TraceRecord> records);

  const std::vector<monitor::TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  struct DomainEntry {
    std::string process_name;
    std::string node_name;
    std::string processor_type;
    monitor::ProbeMode mode;
    std::size_t record_count;
  };
  const std::vector<DomainEntry>& domains() const { return domains_; }

  // Query 1: unique chain UUIDs in first-seen order.
  const std::vector<Uuid>& chains() const { return chains_; }

  // Ingest-batch counter: 0 for an empty database, +1 per batch that added
  // records.  Analyses snapshot this to know when they are stale.
  std::uint64_t generation() const { return generation_; }

  // Chains that gained at least one event in a generation > `gen`,
  // first-seen order (a subsequence of chains()).  chains_since(0) is every
  // chain.  Served from a per-batch dirty log, so the cost scales with the
  // number of touched chains, not the whole database.
  std::vector<Uuid> chains_since(std::uint64_t gen) const;

  // Cumulative ring-overflow count reported by the ingested bundles: how
  // many records the probes dropped rather than block.  Non-zero means the
  // database is an honest but incomplete sample.
  std::uint64_t overflow_dropped() const { return overflow_dropped_; }

  // Highest drain epoch seen across ingested bundles (0 = offline only).
  std::uint64_t last_epoch() const { return last_epoch_; }

  // Query 2: events of one chain sorted by ascending event number
  // (insertion order breaks ties, which only occur on corrupt logs).
  std::vector<const monitor::TraceRecord*> chain_events(const Uuid& chain) const;

  // All distinct processor types seen (defines the <C1..CM> vector axes),
  // first-seen order.  Maintained at ingest, O(1) to read.
  const std::vector<std::string_view>& processor_types() const {
    return processor_types_;
  }

  // The probe mode of the bulk of the records (a run uses one mode).
  // Counts are maintained at ingest, O(1) to read.
  monitor::ProbeMode primary_mode() const;

 private:
  struct ChainIndex {
    std::vector<std::size_t> events;  // indexes into records_, log order
    std::uint64_t last_gen{0};        // generation of the newest event
  };

  std::string_view intern(std::string_view s);
  void add_record(monitor::TraceRecord r);

  std::deque<std::string> pool_;
  std::unordered_map<std::string_view, std::string_view> interned_;

  std::vector<monitor::TraceRecord> records_;
  std::vector<DomainEntry> domains_;
  // (process, node, type, mode) -> index into domains_, for merged updates.
  std::unordered_map<std::string, std::size_t> domain_index_;
  std::vector<Uuid> chains_;
  std::unordered_map<Uuid, ChainIndex> by_chain_;
  std::uint64_t generation_{0};
  std::uint64_t overflow_dropped_{0};
  std::uint64_t last_epoch_{0};

  // Dirty log: one (generation, chain) entry per batch that touched the
  // chain, generations ascending.  chains_since binary-searches it instead
  // of scanning every chain.
  std::vector<std::pair<std::uint64_t, Uuid>> dirty_log_;

  // Maintained at ingest so the hot report/render queries are O(1).
  std::vector<std::string_view> processor_types_;
  std::unordered_set<std::string_view> processor_type_set_;
  std::size_t mode_counts_[3] = {0, 0, 0};
};

}  // namespace causeway::analysis
