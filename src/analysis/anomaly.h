// Live anomaly events for the streaming analyzer.
//
// The paper's monitor captures "interaction semantics" -- call outcomes and
// the legal probe-event state machine -- precisely so operators can spot
// misbehaviour without stopping the system.  This module turns the
// reconstruction's findings into a stream of events an operator (or a test)
// can subscribe to while a trace is still growing:
//
//   * abnormal-transition -- chain reconstruction flagged an illegal probe
//     event sequence (ChainTree::anomalies),
//   * call-failure        -- an invocation completed with a non-success
//     outcome (semantics capture),
//   * drop-spike          -- the collection tier discarded records this
//     epoch (ring overflow), so reconstruction below is incomplete,
//   * publish-drop        -- the transport tier discarded records this
//     epoch (a publisher hit its socket back-pressure bound).
//
// AnomalyDetector is stateful and deduplicating: scanning the same chain
// across epochs re-reports only what appeared since the previous scan, so
// a tailing analyzer emits each finding once even though chains are
// re-reconstructed from scratch every time they grow.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dscg.h"

namespace causeway::analysis {

enum class AnomalyKind {
  kAbnormalTransition,
  kCallFailure,
  kDropSpike,
  kPublishDrop,
};

std::string_view to_string(AnomalyKind kind);

struct AnomalyEvent {
  AnomalyKind kind{AnomalyKind::kAbnormalTransition};
  std::uint64_t epoch{0};  // collection epoch that surfaced the finding
  Uuid chain;              // nil for drop spikes
  std::uint64_t seq{0};    // probe event seq (transitions / failures)
  std::string detail;
};

// One JSON object, no trailing newline.
std::string to_json(const AnomalyEvent& event);

// Where events go.  Sinks must tolerate being called once per finding, in
// detection order, possibly interleaved with rendering.
class AnomalySink {
 public:
  virtual ~AnomalySink() = default;
  virtual void on_event(const AnomalyEvent& event) = 0;
};

// Human-readable one-liners, flushed per event (the stream is an alert
// channel, not a log file).  Defaults to stderr; tests inject a FILE*.
class StderrAnomalySink : public AnomalySink {
 public:
  explicit StderrAnomalySink(std::FILE* out = stderr) : out_(out) {}
  void on_event(const AnomalyEvent& event) override;

 private:
  std::FILE* out_;
};

class CallbackAnomalySink : public AnomalySink {
 public:
  explicit CallbackAnomalySink(std::function<void(const AnomalyEvent&)> fn)
      : fn_(std::move(fn)) {}
  void on_event(const AnomalyEvent& event) override { fn_(event); }

 private:
  std::function<void(const AnomalyEvent&)> fn_;
};

// Appends one JSON line per event, flushed per event.
class JsonlAnomalySink : public AnomalySink {
 public:
  explicit JsonlAnomalySink(const std::string& path);
  ~JsonlAnomalySink() override;
  void on_event(const AnomalyEvent& event) override;
  bool ok() const { return out_ != nullptr; }

 private:
  std::FILE* out_{nullptr};
};

class AnomalyDetector {
 public:
  // Scans the chains rebuilt this epoch for transitions / failures that were
  // not reported by a previous scan, appending events to `out`.
  void scan(const Dscg& dscg, std::span<const Uuid> rebuilt,
            std::uint64_t epoch, std::vector<AnomalyEvent>& out);

  // Collection-tier drop accounting for one epoch: ring overflow and
  // transport back-pressure report as distinct events, so an operator can
  // tell "probes outran the drain cadence" from "the collector daemon fell
  // behind the publishers".
  void drops(std::uint64_t dropped_delta, std::uint64_t publish_dropped_delta,
             std::uint64_t epoch, std::vector<AnomalyEvent>& out);

 private:
  struct ChainState {
    std::size_t transitions_reported{0};
    std::unordered_set<std::uint64_t> failure_seqs;
  };
  std::unordered_map<Uuid, ChainState> chains_;
};

}  // namespace causeway::analysis
