// System-wide CPU consumption characterization (paper Sec. 3.2).
//
// Phase 1 -- self (exclusive) CPU of each invocation:
//     SC_F = (P_{F,3,start} - P_{F,2,end})
//            - sum over immediate children i of (P_{i,4,end} - P_{i,1,start})
// The first term is the server thread's CPU across the implementation body;
// the subtracted terms remove the CPU the *caller-side* thread spent inside
// each child call's stub window (for a collocated child that is the child's
// entire subtree, for a remote child just the marshaling cost -- the wait
// itself burns no CPU).
//
// Phase 2 -- descendant (inclusive minus self) CPU, propagated along the
// caller/callee relationship:
//     DC_F = sum over immediate children f of (SC_f + DC_f)
// kept as a vector <C1..CM> per processor type, because children may execute
// on different processor kinds.
//
// Phase 3 (the CCSG) lives in ccsg.h.
//
// Oneway spawned chains: the callee's work happens on another thread, so it
// never appears in the spawner's SC.  Whether it is *charged* to the
// spawner's DC is a policy choice (the paper's tech-report formulation
// predates it); CpuOptions::charge_spawned_chains controls it, default on.
#pragma once

#include "analysis/dscg.h"

namespace causeway::analysis {

struct CpuOptions {
  bool charge_spawned_chains{true};
  // Clamp tiny negative self-CPU readings (clock granularity noise) to zero.
  bool clamp_negative_self{true};
};

struct CpuReport {
  std::size_t annotated{0};
  std::size_t skipped{0};
};

CpuReport annotate_cpu(Dscg& dscg, const CpuOptions& options = {});

// Per-chain unit of phases 1 and 2 (self CPU and in-chain descendant
// propagation).  Resets the chain's CPU vectors first, so re-annotation is
// idempotent -- the incremental pipeline re-annotates exactly the chains
// covered by the trees it re-folds.
void annotate_chain_cpu(ChainTree& tree, const CpuOptions& options,
                        CpuReport& report);

// Folds spawned-chain totals into the spawners' descendant vectors for one
// top-level tree: each chain reachable from `root_tree` is charged once per
// walk (a per-call visited set makes the walk deterministic and safe on
// cyclic/corrupt spawn graphs).  Both the offline annotate_cpu and the
// incremental pipeline use this same walk, which keeps their outputs
// byte-identical.
void charge_spawned_tree(ChainTree& root_tree);

}  // namespace causeway::analysis
