#include "analysis/critical_path.h"

#include <algorithm>

#include "common/strings.h"

namespace causeway::analysis {

const CriticalStep* CriticalPath::dominant() const {
  const CriticalStep* best = nullptr;
  for (const auto& step : steps) {
    if (!best || step.exclusive > best->exclusive) best = &step;
  }
  return best;
}

std::string CriticalPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const CriticalStep& step = steps[i];
    out += strf("%*s%s::%s  total=%.1fus  exclusive=%.1fus\n",
                static_cast<int>(i * 2), "",
                std::string(step.node->interface_name).c_str(),
                std::string(step.node->function_name).c_str(),
                static_cast<double>(step.total) / 1e3,
                static_cast<double>(step.exclusive) / 1e3);
  }
  return out;
}

CriticalPath critical_path(const CallNode& root) {
  CriticalPath path;
  const CallNode* current = &root;
  while (current && current->latency) {
    // Dominant child by latency; oneway stub-side children never bound the
    // caller (the caller does not wait for the spawned work).
    const CallNode* next = nullptr;
    for (const auto& child : current->children) {
      if (child->kind == monitor::CallKind::kOneway) continue;
      if (!child->latency) continue;
      if (!next || *child->latency > *next->latency) next = child.get();
    }
    CriticalStep step;
    step.node = current;
    step.total = *current->latency;
    step.exclusive =
        step.total - (next && next->latency ? *next->latency : 0);
    path.steps.push_back(step);
    current = next;
  }
  return path;
}

std::vector<CriticalPath> critical_paths(const Dscg& dscg) {
  std::vector<CriticalPath> paths;
  for (const ChainTree* tree : dscg.roots()) {
    for (const auto& top : tree->root->children) {
      if (!top->latency) continue;
      paths.push_back(critical_path(*top));
    }
  }
  std::sort(paths.begin(), paths.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              return a.total() > b.total();
            });
  return paths;
}

}  // namespace causeway::analysis
