#include "analysis/topology.h"

#include <set>
#include <string>

namespace causeway::analysis {

TopologyStats compute_topology(const Dscg& dscg) {
  TopologyStats stats;
  stats.chains = dscg.chains().size();

  std::set<std::string_view> interfaces;
  std::set<std::pair<std::string_view, std::string_view>> functions;
  std::set<std::pair<std::string_view, std::uint64_t>> objects;
  std::size_t depth_sum = 0;
  std::size_t fanout_sum = 0;
  std::size_t non_leaf = 0;

  dscg.visit([&](const CallNode& node, int depth) {
    ++stats.calls;
    const auto d = static_cast<std::size_t>(depth) + 1;
    depth_sum += d;
    stats.max_depth = std::max(stats.max_depth, d);

    const std::size_t fanout = node.children.size() + node.spawned.size();
    stats.max_fanout = std::max(stats.max_fanout, fanout);
    if (fanout > 0) {
      fanout_sum += fanout;
      ++non_leaf;
    }

    switch (node.kind) {
      case monitor::CallKind::kSync: ++stats.sync_calls; break;
      case monitor::CallKind::kOneway:
        if (node.record(monitor::EventKind::kStubStart)) ++stats.oneway_calls;
        break;
      case monitor::CallKind::kCollocated: ++stats.collocated_calls; break;
    }

    const auto& stub = node.record(monitor::EventKind::kStubStart);
    const auto& skel = node.record(monitor::EventKind::kSkelStart);
    if (stub && skel) {
      if (stub->process_name != skel->process_name) ++stats.cross_process;
      if (stub->thread_ordinal != skel->thread_ordinal) ++stats.cross_thread;
      if (stub->processor_type != skel->processor_type) {
        ++stats.cross_processor;
      }
    }

    interfaces.insert(node.interface_name);
    functions.insert({node.interface_name, node.function_name});
    objects.insert({node.interface_name, node.object_key});
  });

  stats.interfaces = interfaces.size();
  stats.functions = functions.size();
  stats.objects = objects.size();
  if (stats.calls > 0) {
    stats.mean_depth =
        static_cast<double>(depth_sum) / static_cast<double>(stats.calls);
  }
  if (non_leaf > 0) {
    stats.mean_fanout =
        static_cast<double>(fanout_sum) / static_cast<double>(non_leaf);
  }
  return stats;
}

}  // namespace causeway::analysis
