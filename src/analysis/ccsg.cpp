#include "analysis/ccsg.h"

#include <algorithm>

#include "common/strings.h"

namespace causeway::analysis {
namespace {

CcsgKey key_of(const CallNode& node) {
  return {node.interface_name, node.function_name, node.object_key};
}

// An instance id names one folded DSCG invocation: high word = the ordinal
// of the chain the invocation lives in, low word = its 1-based pre-order
// index within that chain's fold.  Both halves are stable across epochs, so
// the incremental and offline folds assign identical ids.
std::uint64_t instance_id(std::uint64_t chain_ordinal, std::uint64_t index) {
  return (chain_ordinal << 32) | index;
}

}  // namespace

// One top-level tree's folded contribution.  Mirrors the merged shape the
// tree produced in the accumulator, so update() can subtract it exactly
// before re-folding.
struct ImprintNode {
  CcsgKey key;
  std::uint64_t count{0};
  std::vector<std::uint64_t> ids;
  CpuCells self;
  CpuCells desc;
  std::map<CcsgKey, std::unique_ptr<ImprintNode>> children;
};

struct Ccsg::Imprint {
  std::map<CcsgKey, std::unique_ptr<ImprintNode>> tops;
};

namespace {

ImprintNode* imprint_slot(std::map<CcsgKey, std::unique_ptr<ImprintNode>>& m,
                          const CallNode& node) {
  auto key = key_of(node);
  auto it = m.find(key);
  if (it == m.end()) {
    auto fresh = std::make_unique<ImprintNode>();
    fresh->key = key;
    it = m.emplace(key, std::move(fresh)).first;
  }
  return it->second.get();
}

// Per-chain pre-order counters for instance-id assignment.  Keyed by the
// chain (not the root) so a chain shared between positions still numbers
// its invocations in its own tree order.
using FoldCtx = std::unordered_map<const ChainTree*, std::uint64_t>;

void fold(const CallNode& node, ImprintNode& into, const ChainTree* chain,
          FoldCtx& ctx) {
  into.count += 1;
  into.ids.push_back(instance_id(chain->ordinal, ++ctx[chain]));
  into.self.add(node.self_cpu);
  into.desc.add(node.descendant_cpu);
  for (const auto& child : node.children) {
    fold(*child, *imprint_slot(into.children, *child), chain, ctx);
  }
  for (const ChainTree* spawned : node.spawned) {
    for (const auto& top : spawned->root->children) {
      fold(*top, *imprint_slot(into.children, *top), spawned, ctx);
    }
  }
}

void apply_add(std::map<CcsgKey, std::unique_ptr<CcsgNode>>& level,
               const ImprintNode& imp, std::uint64_t root_ordinal) {
  auto it = level.find(imp.key);
  if (it == level.end()) {
    auto fresh = std::make_unique<CcsgNode>();
    fresh->interface_name = std::get<0>(imp.key);
    fresh->function_name = std::get<1>(imp.key);
    fresh->object_key = std::get<2>(imp.key);
    it = level.emplace(imp.key, std::move(fresh)).first;
  }
  CcsgNode& node = *it->second;
  node.invocation_times += imp.count;
  node.instances[root_ordinal] = imp.ids;
  node.self_cpu.add(imp.self);
  node.descendant_cpu.add(imp.desc);
  for (const auto& [key, child] : imp.children) {
    apply_add(node.children, *child, root_ordinal);
  }
}

void apply_sub(std::map<CcsgKey, std::unique_ptr<CcsgNode>>& level,
               const ImprintNode& imp, std::uint64_t root_ordinal) {
  auto it = level.find(imp.key);
  CcsgNode& node = *it->second;
  node.invocation_times -= imp.count;
  node.instances.erase(root_ordinal);
  node.self_cpu.sub(imp.self);
  node.descendant_cpu.sub(imp.desc);
  for (const auto& [key, child] : imp.children) {
    apply_sub(node.children, *child, root_ordinal);
  }
  if (node.invocation_times == 0) level.erase(it);
}

void emit_cpu(std::string& xml, const std::string& indent, const char* element,
              const CpuCells& cpu) {
  for (const auto& [type, cell] : cpu.cells) {
    const long long sec = cell.ns / kNanosPerSecond;
    const long long usec = (cell.ns % kNanosPerSecond) / kNanosPerMicro;
    xml += strf("%s<%s processorType=\"%s\" seconds=\"%lld\" "
                "microseconds=\"%lld\"/>\n",
                indent.c_str(), element,
                xml_escape(std::string(type)).c_str(), sec, usec);
  }
  if (cpu.cells.empty()) {
    xml += strf("%s<%s seconds=\"0\" microseconds=\"0\"/>\n", indent.c_str(),
                element);
  }
}

void emit_node(std::string& xml, const CcsgNode& node, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  xml += strf(
      "%s<Function interface=\"%s\" name=\"%s\" ObjectID=\"%llu\" "
      "InvocationTimes=\"%llu\">\n",
      indent.c_str(), xml_escape(std::string(node.interface_name)).c_str(),
      xml_escape(std::string(node.function_name)).c_str(),
      static_cast<unsigned long long>(node.object_key),
      static_cast<unsigned long long>(node.invocation_times));

  const std::vector<std::uint64_t> ids = node.instance_ids();
  xml += inner + "<IncludedFunctionInstances>";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) xml += ' ';
    xml += std::to_string(ids[i]);
  }
  xml += "</IncludedFunctionInstances>\n";

  emit_cpu(xml, inner, "SelfCPUConsumption", node.self_cpu);
  emit_cpu(xml, inner, "DescendentCPUConsumption", node.descendant_cpu);

  for (const auto& [key, child] : node.children) {
    emit_node(xml, *child, depth + 1);
  }
  xml += indent + "</Function>\n";
}

}  // namespace

std::vector<std::uint64_t> CcsgNode::instance_ids() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [root, vec] : instances) {
    ids.insert(ids.end(), vec.begin(), vec.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Ccsg::Ccsg() = default;
Ccsg::~Ccsg() = default;
Ccsg::Ccsg(Ccsg&&) noexcept = default;
Ccsg& Ccsg::operator=(Ccsg&&) noexcept = default;

Ccsg Ccsg::build(const Dscg& dscg) {
  Ccsg ccsg;
  std::vector<std::uint64_t> all;
  all.reserve(dscg.roots().size());
  for (const ChainTree* tree : dscg.roots()) all.push_back(tree->ordinal);
  ccsg.update(dscg, UpdateScope{all, {}, {}});
  return ccsg;
}

void Ccsg::update(const Dscg& dscg, const UpdateScope& scope) {
  auto subtract = [&](std::uint64_t ordinal) {
    auto it = imprints_.find(ordinal);
    if (it == imprints_.end()) return;
    for (const auto& [key, imp] : it->second->tops) {
      apply_sub(top_, *imp, ordinal);
    }
    imprints_.erase(it);
  };
  for (std::uint64_t ordinal : scope.removed_roots) subtract(ordinal);
  for (std::uint64_t ordinal : scope.affected_roots) subtract(ordinal);

  for (std::uint64_t ordinal : scope.affected_roots) {
    const ChainTree* tree = dscg.chains()[ordinal].get();
    auto imprint = std::make_unique<Imprint>();
    FoldCtx ctx;
    for (const auto& top : tree->root->children) {
      fold(*top, *imprint_slot(imprint->tops, *top), tree, ctx);
    }
    for (const auto& [key, imp] : imprint->tops) {
      apply_add(top_, *imp, ordinal);
    }
    imprints_.emplace(ordinal, std::move(imprint));
  }
}

std::vector<const CcsgNode*> Ccsg::roots() const {
  std::vector<const CcsgNode*> out;
  out.reserve(top_.size());
  for (const auto& [key, node] : top_) out.push_back(node.get());
  return out;
}

std::size_t Ccsg::node_count() const {
  std::size_t n = 0;
  for (const auto& [key, node] : top_) n += node->subtree_size();
  return n;
}

std::string Ccsg::to_xml() const {
  std::string xml = "<?xml version=\"1.0\"?>\n<CCSG>\n";
  for (const auto& [key, node] : top_) emit_node(xml, *node, 1);
  xml += "</CCSG>\n";
  return xml;
}

}  // namespace causeway::analysis
