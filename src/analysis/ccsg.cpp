#include "analysis/ccsg.h"

#include <tuple>

#include "common/strings.h"

namespace causeway::analysis {
namespace {

using MergeKey = std::tuple<std::string_view, std::string_view, std::uint64_t>;

MergeKey key_of(const CallNode& node) {
  return {node.interface_name, node.function_name, node.object_key};
}

CcsgNode* merge_child(std::vector<std::unique_ptr<CcsgNode>>& children,
                      std::map<MergeKey, CcsgNode*>& index,
                      const CallNode& node) {
  auto it = index.find(key_of(node));
  if (it != index.end()) return it->second;
  auto fresh = std::make_unique<CcsgNode>();
  fresh->interface_name = node.interface_name;
  fresh->function_name = node.function_name;
  fresh->object_key = node.object_key;
  CcsgNode* raw = fresh.get();
  children.push_back(std::move(fresh));
  index.emplace(key_of(node), raw);
  return raw;
}

struct Level {
  std::vector<std::unique_ptr<CcsgNode>>* children;
  std::map<MergeKey, CcsgNode*> index;
};

void fold(const CallNode& node, CcsgNode& into, std::uint64_t& next_instance);

void fold_children(const CallNode& node, CcsgNode& into,
                   std::uint64_t& next_instance) {
  Level level{&into.children, {}};
  // Pre-index existing children (repeat invocations across chains).
  for (auto& c : into.children) {
    level.index.emplace(
        MergeKey{c->interface_name, c->function_name, c->object_key}, c.get());
  }
  for (const auto& child : node.children) {
    CcsgNode* slot = merge_child(*level.children, level.index, *child);
    fold(*child, *slot, next_instance);
  }
  for (const ChainTree* spawned : node.spawned) {
    for (const auto& top : spawned->root->children) {
      CcsgNode* slot = merge_child(*level.children, level.index, *top);
      fold(*top, *slot, next_instance);
    }
  }
}

void fold(const CallNode& node, CcsgNode& into, std::uint64_t& next_instance) {
  into.invocation_times += 1;
  into.instance_ids.push_back(next_instance++);
  into.self_cpu.add(node.self_cpu);
  into.descendant_cpu.add(node.descendant_cpu);
  fold_children(node, into, next_instance);
}

void emit_cpu(std::string& xml, const std::string& indent,
              const char* element, const CpuVector& cpu) {
  for (const auto& [type, ns] : cpu.by_type) {
    const long long sec = ns / kNanosPerSecond;
    const long long usec = (ns % kNanosPerSecond) / kNanosPerMicro;
    xml += strf("%s<%s processorType=\"%s\" seconds=\"%lld\" "
                "microseconds=\"%lld\"/>\n",
                indent.c_str(), element,
                xml_escape(std::string(type)).c_str(), sec, usec);
  }
  if (cpu.by_type.empty()) {
    xml += strf("%s<%s seconds=\"0\" microseconds=\"0\"/>\n", indent.c_str(),
                element);
  }
}

void emit_node(std::string& xml, const CcsgNode& node, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  xml += strf(
      "%s<Function interface=\"%s\" name=\"%s\" ObjectID=\"%llu\" "
      "InvocationTimes=\"%llu\">\n",
      indent.c_str(), xml_escape(std::string(node.interface_name)).c_str(),
      xml_escape(std::string(node.function_name)).c_str(),
      static_cast<unsigned long long>(node.object_key),
      static_cast<unsigned long long>(node.invocation_times));

  xml += inner + "<IncludedFunctionInstances>";
  for (std::size_t i = 0; i < node.instance_ids.size(); ++i) {
    if (i > 0) xml += ' ';
    xml += std::to_string(node.instance_ids[i]);
  }
  xml += "</IncludedFunctionInstances>\n";

  emit_cpu(xml, inner, "SelfCPUConsumption", node.self_cpu);
  emit_cpu(xml, inner, "DescendentCPUConsumption", node.descendant_cpu);

  for (const auto& child : node.children) emit_node(xml, *child, depth + 1);
  xml += indent + "</Function>\n";
}

}  // namespace

Ccsg Ccsg::build(const Dscg& dscg) {
  Ccsg ccsg;
  std::map<MergeKey, CcsgNode*> top_index;
  std::uint64_t next_instance = 1;
  for (const ChainTree* tree : dscg.roots()) {
    for (const auto& top : tree->root->children) {
      CcsgNode* slot = merge_child(ccsg.roots_, top_index, *top);
      fold(*top, *slot, next_instance);
    }
  }
  return ccsg;
}

std::size_t Ccsg::node_count() const {
  std::size_t n = 0;
  for (const auto& r : roots_) n += r->subtree_size();
  return n;
}

std::string Ccsg::to_xml() const {
  std::string xml = "<?xml version=\"1.0\"?>\n<CCSG>\n";
  for (const auto& r : roots_) emit_node(xml, *r, 1);
  xml += "</CCSG>\n";
  return xml;
}

}  // namespace causeway::analysis
