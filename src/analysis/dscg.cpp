#include "analysis/dscg.h"

#include <unordered_set>

namespace causeway::analysis {
namespace {

void link_spawned(CallNode* node, Dscg& dscg,
                  std::unordered_set<Uuid>& spawned_ids,
                  const std::unordered_map<Uuid, ChainTree*>& by_id) {
  if (!node->spawned_chain.is_nil()) {
    auto it = by_id.find(node->spawned_chain);
    if (it != by_id.end()) {
      node->spawned.push_back(it->second);
      spawned_ids.insert(node->spawned_chain);
    }
  }
  for (auto& c : node->children) {
    link_spawned(c.get(), dscg, spawned_ids, by_id);
  }
}

}  // namespace

Dscg Dscg::build(const LogDatabase& db) {
  Dscg dscg;
  for (const Uuid& chain : db.chains()) {
    auto tree = std::make_unique<ChainTree>(
        build_chain_tree(chain, db.chain_events(chain)));
    dscg.by_id_[chain] = tree.get();
    dscg.chains_.push_back(std::move(tree));
  }

  // Hang spawned (oneway child) chains under their spawning nodes.
  std::unordered_set<Uuid> spawned_ids;
  for (auto& tree : dscg.chains_) {
    link_spawned(tree->root.get(), dscg, spawned_ids, dscg.by_id_);
  }

  for (auto& tree : dscg.chains_) {
    if (!spawned_ids.contains(tree->chain)) {
      dscg.roots_.push_back(tree.get());
    }
  }
  return dscg;
}

std::size_t Dscg::call_count() const {
  std::size_t n = 0;
  for (const auto& tree : chains_) n += tree->call_count();
  return n;
}

std::size_t Dscg::anomaly_count() const {
  std::size_t n = 0;
  for (const auto& tree : chains_) n += tree->anomalies.size();
  return n;
}

}  // namespace causeway::analysis
