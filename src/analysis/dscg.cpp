#include "analysis/dscg.h"

#include <algorithm>
#include <unordered_set>

#include "common/worker_pool.h"

namespace causeway::analysis {
namespace {

void collect_spawn_sites(CallNode* node,
                         std::vector<std::pair<CallNode*, Uuid>>& sites) {
  if (!node->spawned_chain.is_nil()) {
    sites.emplace_back(node, node->spawned_chain);
  }
  for (auto& c : node->children) collect_spawn_sites(c.get(), sites);
}

// Chains with no dependency between their reconstructions: each tree is
// built purely from its own (already interned, immutable) event list, so a
// batch of dirty chains fans out on the shared persistent WorkerPool (the
// same pool the sharded LogDatabase ingest uses) instead of spawning fresh
// threads per update.
constexpr std::size_t kParallelThreshold = 8;

void build_trees(const LogDatabase& db, const std::vector<Uuid>& dirty,
                 std::vector<std::unique_ptr<ChainTree>>& out) {
  out.resize(dirty.size());
  auto build_one = [&](std::size_t i) {
    out[i] = std::make_unique<ChainTree>(
        build_chain_tree(dirty[i], db.chain_events(dirty[i])));
  };

  if (dirty.size() < kParallelThreshold ||
      WorkerPool::shared().concurrency() < 2) {
    for (std::size_t i = 0; i < dirty.size(); ++i) build_one(i);
    return;
  }
  WorkerPool::shared().parallel_for(dirty.size(), build_one);
}

}  // namespace

Dscg Dscg::build(const LogDatabase& db) {
  Dscg dscg;
  dscg.update(db);
  return dscg;
}

std::size_t Dscg::update(const LogDatabase& db) {
  delta_.clear();
  const std::vector<Uuid> dirty = db.chains_since(built_generation_);
  built_generation_ = db.generation();
  if (dirty.empty()) return 0;
  delta_.rebuilt = dirty;

  std::vector<std::unique_ptr<ChainTree>> rebuilt;
  build_trees(db, dirty, rebuilt);

  const std::unordered_set<Uuid> dirty_set(dirty.begin(), dirty.end());
  // Chains whose root status (no resolved inbound spawn site) may flip.
  std::unordered_set<Uuid> root_check;

  // Phase A: detach the outbound spawn sites of every dirty chain that
  // already has a tree.  Its nodes (including the site nodes referenced by
  // inbound_) are destroyed in phase B, so the reverse index must drop them
  // first.
  for (const Uuid& d : dirty) {
    auto sit = sites_.find(d);
    if (sit == sites_.end()) continue;
    for (auto& [node, target] : sit->second) {
      auto iit = inbound_.find(target);
      if (iit == inbound_.end()) continue;
      auto& vec = iit->second;
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [&](const InboundSite& s) {
                                 return s.owner == d;
                               }),
                vec.end());
      if (vec.empty()) inbound_.erase(iit);
      root_check.insert(target);
    }
  }

  // Phase B: install the rebuilt trees, keeping chains_ aligned with
  // db.chains() (new chains arrive in first-seen order) and maintaining the
  // running call/anomaly totals.
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    auto [it, inserted] = by_id_.try_emplace(dirty[i], chains_.size());
    const std::size_t slot = it->second;
    rebuilt[i]->ordinal = slot;
    if (inserted) {
      chains_.push_back(std::move(rebuilt[i]));
      is_root_.push_back(false);  // status decided below
    } else {
      call_count_ -= chains_[slot]->call_count();
      anomaly_count_ -= chains_[slot]->anomalies.size();
      // A rebuilt chain keeps its slot but gets a new tree object; if it is
      // currently a root, roots_ must be re-pointed before the old tree dies.
      if (is_root_[slot]) {
        auto pos = std::lower_bound(
            roots_.begin(), roots_.end(), slot,
            [](const ChainTree* a, std::size_t s) { return a->ordinal < s; });
        if (pos != roots_.end() && (*pos)->ordinal == slot) {
          *pos = rebuilt[i].get();
        }
      }
      chains_[slot] = std::move(rebuilt[i]);
    }
    call_count_ += chains_[slot]->call_count();
    anomaly_count_ += chains_[slot]->anomalies.size();
  }

  // Phase C: recollect the rebuilt chains' outbound sites, register them in
  // the reverse index, and resolve the ones whose target already exists.
  for (const Uuid& d : dirty) {
    auto& sites = sites_[d];
    sites.clear();
    collect_spawn_sites(chains_[by_id_.at(d)]->root.get(), sites);
    if (sites.empty()) {
      sites_.erase(d);
      continue;
    }
    for (auto& [node, target] : sites) {
      inbound_[target].push_back({d, node});
      root_check.insert(target);
      auto tit = by_id_.find(target);
      if (tit != by_id_.end()) {
        node->spawned.push_back(chains_[tit->second].get());
      }
    }
  }

  // Phase D: re-point the inbound sites of every dirty chain at its new
  // tree.  Sites owned by dirty chains were freshly linked in phase C; the
  // rest live in unchanged trees and only their target pointer moves.  A
  // site that resolves for the first time changes its owner's subtree
  // content without a rebuild -- that is the delta's `touched` set.
  for (const Uuid& d : dirty) {
    root_check.insert(d);
    auto iit = inbound_.find(d);
    if (iit == inbound_.end()) continue;
    ChainTree* tree = chains_[by_id_.at(d)].get();
    for (auto& site : iit->second) {
      if (dirty_set.contains(site.owner)) continue;
      const bool newly_resolved = site.node->spawned.empty();
      site.node->spawned.clear();
      site.node->spawned.push_back(tree);
      if (newly_resolved) delta_.touched.push_back(site.owner);
    }
  }

  // Root-status maintenance: a chain is top-level exactly when no recorded
  // spawn site points at it.
  for (const Uuid& id : root_check) {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;  // target not recorded (yet)
    const auto iit = inbound_.find(id);
    set_root(it->second, iit == inbound_.end() || iit->second.empty());
  }

  return dirty.size();
}

void Dscg::set_root(std::size_t slot, bool is_root) {
  if (is_root_[slot] == is_root) return;
  is_root_[slot] = is_root;
  ChainTree* tree = chains_[slot].get();
  auto pos = std::lower_bound(roots_.begin(), roots_.end(), tree,
                              [](const ChainTree* a, const ChainTree* b) {
                                return a->ordinal < b->ordinal;
                              });
  if (is_root) {
    roots_.insert(pos, tree);
    delta_.roots_added.push_back(tree->chain);
  } else {
    roots_.erase(pos);
    delta_.roots_removed.push_back(tree->chain);
  }
}

}  // namespace causeway::analysis
