#include "analysis/dscg.h"

#include <atomic>
#include <thread>
#include <unordered_set>

namespace causeway::analysis {
namespace {

void collect_spawn_sites(CallNode* node,
                         std::vector<std::pair<CallNode*, Uuid>>& sites) {
  if (!node->spawned_chain.is_nil()) {
    sites.emplace_back(node, node->spawned_chain);
  }
  for (auto& c : node->children) collect_spawn_sites(c.get(), sites);
}

// Chains with no dependency between their reconstructions: each tree is
// built purely from its own (already interned, immutable) event list, so a
// batch of dirty chains can rebuild on a worker pool with one atomic index
// as the only shared state.
constexpr std::size_t kParallelThreshold = 8;
constexpr std::size_t kMaxWorkers = 8;

void build_trees(const LogDatabase& db, const std::vector<Uuid>& dirty,
                 std::vector<std::unique_ptr<ChainTree>>& out) {
  out.resize(dirty.size());
  auto build_one = [&](std::size_t i) {
    out[i] = std::make_unique<ChainTree>(
        build_chain_tree(dirty[i], db.chain_events(dirty[i])));
  };

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t workers =
      std::min({dirty.size(), kMaxWorkers, hw > 2 ? hw : std::size_t{2}});
  if (dirty.size() < kParallelThreshold || workers < 2) {
    for (std::size_t i = 0; i < dirty.size(); ++i) build_one(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < dirty.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        build_one(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace

Dscg Dscg::build(const LogDatabase& db) {
  Dscg dscg;
  dscg.update(db);
  return dscg;
}

std::size_t Dscg::update(const LogDatabase& db) {
  const std::vector<Uuid> dirty = chains_since_built(db);
  built_generation_ = db.generation();
  if (dirty.empty()) return 0;

  std::vector<std::unique_ptr<ChainTree>> rebuilt;
  build_trees(db, dirty, rebuilt);

  for (std::size_t i = 0; i < dirty.size(); ++i) {
    auto& sites = sites_[dirty[i]];
    sites.clear();
    collect_spawn_sites(rebuilt[i]->root.get(), sites);
    if (sites.empty()) sites_.erase(dirty[i]);

    auto [it, inserted] = by_id_.try_emplace(dirty[i], chains_.size());
    if (inserted) {
      // New chains arrive in first-seen order, so appending keeps chains_
      // aligned with db.chains().
      chains_.push_back(std::move(rebuilt[i]));
    } else {
      chains_[it->second] = std::move(rebuilt[i]);
    }
  }

  relink();
  return dirty.size();
}

std::vector<Uuid> Dscg::chains_since_built(const LogDatabase& db) const {
  return db.chains_since(built_generation_);
}

void Dscg::relink() {
  // Re-resolve every cached spawn site.  Sites inside unchanged trees point
  // at live nodes (only rebuilt trees were replaced, and their sites were
  // recollected above); targets may have been rebuilt, so pointers are
  // always re-resolved rather than patched.
  std::unordered_set<Uuid> spawned_ids;
  for (auto& entry : sites_) {
    for (auto& site : entry.second) site.first->spawned.clear();
  }
  for (auto& entry : sites_) {
    for (auto& site : entry.second) {
      auto it = by_id_.find(site.second);
      if (it != by_id_.end()) {
        site.first->spawned.push_back(chains_[it->second].get());
        spawned_ids.insert(site.second);
      }
    }
  }

  roots_.clear();
  for (auto& tree : chains_) {
    if (!spawned_ids.contains(tree->chain)) roots_.push_back(tree.get());
  }
}

std::size_t Dscg::call_count() const {
  std::size_t n = 0;
  for (const auto& tree : chains_) n += tree->call_count();
  return n;
}

std::size_t Dscg::anomaly_count() const {
  std::size_t n = 0;
  for (const auto& tree : chains_) n += tree->anomalies.size();
  return n;
}

}  // namespace causeway::analysis
