// Summary statistics for reporting latency / CPU distributions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace causeway::analysis {

struct Summary {
  std::size_t count{0};
  double min{0}, max{0}, mean{0}, p50{0}, p90{0}, p99{0};
};

inline Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  auto pct = [&](double p) {
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

}  // namespace causeway::analysis
