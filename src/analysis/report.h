// The characterization report: the analyzer's human-facing summary.
//
// Renders, per run, what paper Sec. 3 computes: the reconstruction summary,
// per-function behaviour (latency or CPU depending on the run's probe mode,
// plus failure counts from semantics capture), where work executed (per
// process / processor type), the cross-process invocation matrix (the
// "dynamic system topology in terms of interface method invocation"), the
// slowest end-to-end calls, and any abnormal-transition findings.
#pragma once

#include <string>

#include "analysis/database.h"
#include "analysis/dscg.h"

namespace causeway::analysis {

struct ReportOptions {
  std::size_t top_slowest{8};    // rows in the slowest-calls table
  std::size_t max_anomalies{8};  // anomaly lines before eliding
};

// Requires Dscg::build(db); runs latency/CPU annotation itself if the
// database's primary probe mode calls for it and nodes are unannotated.
std::string characterization_report(Dscg& dscg, const LogDatabase& db,
                                    const ReportOptions& options = {});

// Machine-readable headline metrics (counts, topology, latency/CPU
// aggregates) as a single JSON object -- for CI dashboards and regression
// tracking of monitored systems.
std::string summary_json(Dscg& dscg, const LogDatabase& db);

}  // namespace causeway::analysis
