// The characterization report: the analyzer's human-facing summary.
//
// Renders, per run, what paper Sec. 3 computes: the reconstruction summary,
// per-function behaviour (latency or CPU depending on the run's probe mode,
// plus failure counts from semantics capture), where work executed (per
// process / processor type), the cross-process invocation matrix (the
// "dynamic system topology in terms of interface method invocation"), the
// slowest end-to-end calls, and any abnormal-transition findings.
//
// The Report class is an online accumulator over per-root imprints, exactly
// mirroring the CCSG: update() subtracts the previous contribution of every
// top-level tree in the scope and re-folds the current one, so per-epoch
// cost scales with the affected trees.  All aggregation is exact (integer
// nanoseconds, counts, sorted multisets); doubles appear only at render
// time, which is what keeps incremental and offline output byte-identical.
// Rendering is cached per section -- a section re-renders only when the
// accumulators feeding it changed since the last render.
//
// The free functions are the offline (one-epoch degenerate) form, and are
// thin wrappers over the same machinery.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/database.h"
#include "analysis/dscg.h"
#include "analysis/incremental.h"

namespace causeway::analysis {

struct ReportOptions {
  std::size_t top_slowest{8};    // rows in the slowest-calls table
  std::size_t max_anomalies{8};  // anomaly lines before eliding
};

class Report {
 public:
  Report();
  ~Report();
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;
  Report(Report&&) noexcept;
  Report& operator=(Report&&) noexcept;

  // Folds the scope's top-level trees into the accumulators (subtracting
  // what each tree contributed before).  Expects latency / CPU annotation
  // for the database's probe mode to have run on the affected trees.
  void update(const Dscg& dscg, const LogDatabase& db,
              const UpdateScope& scope);

  // The full characterization report.  Dirty sections re-render; clean ones
  // come from the cache.  Non-const because it refreshes the caches.
  std::string render(const Dscg& dscg, const LogDatabase& db,
                     const ReportOptions& options = {});

  // Machine-readable headline metrics as a single JSON object.
  std::string summary(const Dscg& dscg, const LogDatabase& db);

  // Implementation types (defined in report.cpp; public so the fold/apply
  // helpers there can name them).
  struct Imprint;  // one tree's folded contribution
  struct Acc;      // the merged accumulators

 private:
  std::unique_ptr<Acc> acc_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Imprint>> imprints_;

  // Section caches, each stamped with the accumulator revision (and render
  // options) it was built from.
  std::uint64_t data_rev_{1};  // bumped by every applied imprint
  std::uint64_t cpu_rev_{1};   // ... that carried CPU-by-type entries
  std::uint64_t edge_rev_{1};  // ... that carried cross-process edges
  struct Cached {
    std::string text;
    std::uint64_t rev{0};  // 0 = never rendered
  };
  Cached topology_cache_, functions_cache_, process_cache_, cpu_cache_,
      edges_cache_, slow_cache_, critical_cache_, anomalies_cache_,
      summary_cache_;
  ReportOptions last_options_{};
  bool have_options_{false};
  // Mode the function table was last formatted for; a flip reformats every
  // row even when the cells themselves did not change.
  monitor::ProbeMode functions_mode_{monitor::ProbeMode::kLatency};
};

// Offline forms.  Run latency/CPU annotation for the database's primary
// probe mode, fold every top-level tree once, render.
std::string characterization_report(Dscg& dscg, const LogDatabase& db,
                                    const ReportOptions& options = {});
std::string summary_json(Dscg& dscg, const LogDatabase& db);

}  // namespace causeway::analysis
