#include "analysis/cpu.h"

#include <unordered_set>

namespace causeway::analysis {

using monitor::CallKind;
using monitor::EventKind;
using monitor::ProbeMode;
using monitor::TraceRecord;

namespace {

bool cpu_record(const std::optional<TraceRecord>& r) {
  return r && r->mode == ProbeMode::kCpu;
}

void annotate_node(CallNode& node, const CpuOptions& options,
                   CpuReport& report) {
  for (auto& child : node.children) annotate_node(*child, options, report);

  if (node.is_virtual_root()) return;

  // Reset before computing so re-annotation (incremental refolds, probe-mode
  // flips) is idempotent.
  node.self_cpu = CpuVector{};
  node.descendant_cpu = CpuVector{};

  // --- phase 1: self CPU ---
  const auto& skel_start = node.record(EventKind::kSkelStart);
  const auto& skel_end = node.record(EventKind::kSkelEnd);
  if (cpu_record(skel_start) && cpu_record(skel_end)) {
    Nanos self = skel_end->value_start - skel_start->value_end;
    for (const auto& child : node.children) {
      const auto& c_start = child->record(EventKind::kStubStart);
      const auto& c_end = child->record(EventKind::kStubEnd);
      if (cpu_record(c_start) && cpu_record(c_end)) {
        self -= c_end->value_end - c_start->value_start;
      }
    }
    if (options.clamp_negative_self && self < 0) self = 0;
    node.self_cpu.add(skel_start->processor_type, self);
    ++report.annotated;
  } else {
    // Oneway stub-side nodes have no skeleton records: the body executed in
    // the spawned chain, so self CPU is legitimately zero, not "skipped".
    if (!(node.kind == CallKind::kOneway &&
          node.record(EventKind::kStubStart))) {
      ++report.skipped;
    }
  }

  // --- phase 2: descendant CPU ---
  for (const auto& child : node.children) {
    node.descendant_cpu.add(child->self_cpu);
    node.descendant_cpu.add(child->descendant_cpu);
  }
}

// Spawned chains are annotated as part of their own tree; here we only fold
// their totals into the spawner's descendant vector.  Deterministic
// pre-conditions: each reachable chain is charged at most once per walk
// (`charged`), and a chain's own nested spawns are folded before its totals
// are read.
void charge_spawned_into(CallNode& node,
                         std::unordered_set<const ChainTree*>& charged) {
  for (auto& child : node.children) charge_spawned_into(*child, charged);
  if (node.spawned.empty()) return;

  CpuVector spawned_total;
  for (ChainTree* spawned : node.spawned) {
    if (charged.insert(spawned).second) {
      charge_spawned_into(*spawned->root, charged);
    }
    for (const auto& top : spawned->root->children) {
      node.descendant_cpu.add(top->self_cpu);
      node.descendant_cpu.add(top->descendant_cpu);
      spawned_total.add(top->self_cpu);
      spawned_total.add(top->descendant_cpu);
    }
  }
  if (!node.is_virtual_root() && node.parent) {
    // The folded amounts must also surface in every ancestor's DC: parents
    // were annotated before spawn charging, so walk up adding the totals.
    for (CallNode* up = node.parent; up; up = up->parent) {
      if (!up->is_virtual_root()) up->descendant_cpu.add(spawned_total);
    }
  }
}

}  // namespace

void annotate_chain_cpu(ChainTree& tree, const CpuOptions& options,
                        CpuReport& report) {
  if (tree.root) annotate_node(*tree.root, options, report);
}

void charge_spawned_tree(ChainTree& root_tree) {
  std::unordered_set<const ChainTree*> charged;
  charged.insert(&root_tree);  // guards against cycles back to the root
  charge_spawned_into(*root_tree.root, charged);
}

CpuReport annotate_cpu(Dscg& dscg, const CpuOptions& options) {
  CpuReport report;
  for (const auto& tree : dscg.chains()) {
    annotate_chain_cpu(*tree, options, report);
  }
  if (options.charge_spawned_chains) {
    for (ChainTree* tree : dscg.roots()) {
      charge_spawned_tree(*tree);
    }
  }
  return report;
}

}  // namespace causeway::analysis
