// Dynamic system topology statistics.
//
// The paper's summary claims "end-to-end capture of dynamic system topology
// in terms of interface method invocation".  This module quantifies that
// topology over a reconstructed DSCG: call-tree depth and fan-out, how many
// invocations crossed a thread / process / processor boundary, and the mix
// of call kinds -- the numbers a reviewer reads off Fig. 5's tree at a
// glance.
#pragma once

#include <cstddef>

#include "analysis/dscg.h"

namespace causeway::analysis {

struct TopologyStats {
  std::size_t calls{0};
  std::size_t chains{0};

  std::size_t max_depth{0};      // deepest call frame (roots are depth 1)
  double mean_depth{0};
  std::size_t max_fanout{0};     // most children under one call
  double mean_fanout{0};         // over non-leaf calls

  std::size_t sync_calls{0};
  std::size_t oneway_calls{0};   // stub-side spawn points
  std::size_t collocated_calls{0};

  std::size_t cross_process{0};    // stub and skeleton in different processes
  std::size_t cross_thread{0};     // ... different threads (same process ok)
  std::size_t cross_processor{0};  // ... different processor types

  std::size_t interfaces{0};     // distinct interfaces invoked
  std::size_t functions{0};      // distinct (interface, function) pairs
  std::size_t objects{0};        // distinct (interface, object key) pairs
};

TopologyStats compute_topology(const Dscg& dscg);

}  // namespace causeway::analysis
