// Causal-chain reconstruction: from sorted event streams to call trees.
//
// Following paper Sec. 3.1, each unique Function UUID's events -- sorted by
// ascending event number -- are replayed through a state machine (paper
// Fig. 4) "similar to the compiler parsing that creates an abstract syntax
// tree".  The event repeating patterns (paper Table 1) uniquely determine
// sibling vs parent/child structure:
//
//   sibling:       F.ss F.ks F.ke F.se  G.ss G.ks G.ke G.se
//   parent/child:  F.ss F.ks  G.ss G.ks ... G.ke G.se  F.ke F.se
//   oneway (stub side, parent chain):   F.ss F.se
//   oneway (skeleton side, child chain): F.ks ... F.ke
//
// Records that fit no legal transition take the paper's "abnormal" path: the
// anomaly is recorded and parsing restarts from the next record.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "monitor/record.h"

namespace causeway::analysis {

struct CpuVector {
  // CPU nanoseconds per processor type -- the paper's <C1, C2, ... CM>.
  std::vector<std::pair<std::string_view, Nanos>> by_type;

  Nanos total() const {
    Nanos sum = 0;
    for (const auto& [type, ns] : by_type) sum += ns;
    return sum;
  }
  void add(std::string_view type, Nanos ns);
  void add(const CpuVector& other);
  Nanos of(std::string_view type) const;
};

struct ChainTree;  // forward

struct CallNode {
  std::string_view interface_name;
  std::string_view function_name;
  std::uint64_t object_key{0};
  monitor::CallKind kind{monitor::CallKind::kSync};

  // The four probe records, indexed by EventKind - 1.  A sync call has all
  // four; a oneway stub-side node has 0/3; a oneway skeleton-side node has
  // 1/2; a node facing an uninstrumented peer is partial.
  std::optional<monitor::TraceRecord> rec[4];

  CallNode* parent{nullptr};
  std::vector<std::unique_ptr<CallNode>> children;

  // Oneway stub-side: the UUID of the chain spawned at the callee, and --
  // once the DSCG groups the forest -- the reconstructed child trees.
  Uuid spawned_chain;
  std::vector<ChainTree*> spawned;

  // --- analysis annotations (filled by latency.h / cpu.h) ---
  std::optional<Nanos> latency;        // L(F), overhead-corrected
  Nanos latency_overhead{0};           // O_F
  std::optional<Nanos> raw_latency;    // L(F) + O_F, what a naive tool reports
  CpuVector self_cpu;                  // SC_F
  CpuVector descendant_cpu;            // DC_F

  const std::optional<monitor::TraceRecord>& record(
      monitor::EventKind e) const {
    return rec[static_cast<std::size_t>(e) - 1];
  }
  bool is_virtual_root() const { return interface_name.empty(); }

  // Semantics capture: how this invocation concluded (worst outcome seen on
  // probes 3/4; kOk when neither observed a failure).
  monitor::CallOutcome outcome() const {
    auto worst = monitor::CallOutcome::kOk;
    for (auto e : {monitor::EventKind::kSkelEnd, monitor::EventKind::kStubEnd}) {
      const auto& r = record(e);
      if (r && static_cast<int>(r->outcome) > static_cast<int>(worst)) {
        worst = r->outcome;
      }
    }
    return worst;
  }
  bool failed() const { return outcome() != monitor::CallOutcome::kOk; }

  // Server-side locality (where the body ran); falls back to client side
  // for partial nodes.
  std::string_view server_process() const;
  std::string_view server_processor_type() const;

  std::size_t subtree_size() const;  // nodes, excluding the virtual root
};

struct Anomaly {
  std::uint64_t seq{0};
  std::string reason;
};

struct ChainTree {
  Uuid chain;
  std::unique_ptr<CallNode> root;  // virtual root holding top-level siblings
  std::vector<Anomaly> anomalies;
  bool oneway_child{false};     // spawned by a oneway call
  bool skeleton_rooted{false};  // begins at a skeleton (oneway child, or the
                                // caller was not instrumented)

  // Slot in Dscg::chains() -- the chain's first-seen index in the database.
  // Stable across rebuilds, so incremental passes key their per-root
  // contributions (imprints) on it.
  std::uint64_t ordinal{0};

  std::size_t call_count() const { return root ? root->subtree_size() : 0; }
};

// Clears every analysis annotation (latency and CPU) on the chain's nodes.
// Incremental passes call this before re-annotating trees that were not
// rebuilt, and the pipeline calls it on every chain when the probe mode
// flips mid-stream.
void reset_annotations(ChainTree& tree);

// Replays one chain's sorted events through the reconstruction state
// machine. `events` must be sorted by ascending seq (LogDatabase does this).
ChainTree build_chain_tree(const Uuid& chain,
                           const std::vector<const monitor::TraceRecord*>& events);

}  // namespace causeway::analysis
