// Run-to-run comparison: regression detection over monitored behaviour.
//
// The natural downstream use of the paper's off-line characterization is
// watching a system drift across builds: record a baseline trace, record the
// current one, and diff the per-function behaviour.  diff_runs() aligns the
// two DSCGs by (interface::function), compares mean latency (latency-mode
// runs) or mean self-CPU (CPU-mode runs), and classifies functions into
// regressions / improvements / added / removed relative to a threshold.
#pragma once

#include <string>
#include <vector>

#include "analysis/database.h"
#include "analysis/dscg.h"

namespace causeway::analysis {

struct DiffOptions {
  // Minimum relative change (percent) to classify as a regression or an
  // improvement; smaller drifts are reported as stable.
  double threshold_pct{10.0};
};

struct FunctionDelta {
  std::string function;       // "Iface::fn"
  std::size_t base_calls{0};
  std::size_t current_calls{0};
  double base_mean_us{0};
  double current_mean_us{0};

  double delta_pct() const {
    if (base_mean_us <= 0) return 0;
    return 100.0 * (current_mean_us - base_mean_us) / base_mean_us;
  }
};

struct RunDiff {
  std::string metric;  // "latency" or "self-cpu"
  std::vector<FunctionDelta> regressions;   // worst first
  std::vector<FunctionDelta> improvements;  // best first
  std::vector<FunctionDelta> stable;
  std::vector<std::string> added;    // only in the current run
  std::vector<std::string> removed;  // only in the baseline

  bool clean() const { return regressions.empty(); }
  std::string to_string() const;
};

// Annotates both DSCGs per their databases' probe modes (the two runs must
// share a mode; otherwise only call counts are compared).
RunDiff diff_runs(Dscg& baseline, const LogDatabase& baseline_db,
                  Dscg& current, const LogDatabase& current_db,
                  const DiffOptions& options = {});

}  // namespace causeway::analysis
