// The epoch-driven incremental analysis pipeline.
//
// Everything downstream of the log database -- DSCG reconstruction,
// latency/CPU annotation, anomaly detection, the CCSG, the
// characterization report, timelines, exports -- is organized as a fixed
// sequence of AnalysisPasses over one shared database.  Each ingested batch
// (one collection drain epoch, one trace segment of a tailed file, or one
// offline catch-up over many generations) advances the database generation;
// the pipeline then runs every pass once with an EpochInfo describing what
// changed.
//
// Dirty propagation is the pipeline's job: the DSCG's delta (chains
// rebuilt, spawn edges re-pointed, roots added/removed) is closed into an
// UpdateScope -- the set of top-level trees whose folded contributions
// downstream accumulators must subtract and re-fold.  The closure follows
// shared spawned chains in both directions (a re-annotated chain invalidates
// every tree whose CPU charging walk crosses it), which is what keeps the
// incremental accumulators exactly equal to a from-scratch build.
//
// The contract every pass honors (and tests assert): a fresh pipeline fed
// the whole trace in one epoch renders byte-identically to the offline free
// functions, and feeding the same trace in N epochs renders byte-identically
// to feeding it in one.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/anomaly.h"
#include "analysis/ccsg.h"
#include "analysis/database.h"
#include "analysis/dscg.h"
#include "analysis/export.h"
#include "analysis/incremental.h"
#include "analysis/report.h"
#include "analysis/timeline.h"

namespace causeway::analysis {

// What one ingested batch changed, handed to every pass in order.
struct EpochInfo {
  std::uint64_t generation{0};     // database generation after the ingest
  std::uint64_t epoch{0};          // collection drain epoch (db.last_epoch())
  std::size_t new_records{0};      // records this batch added
  std::uint64_t dropped_delta{0};  // ring-overflow drops this batch
  std::uint64_t publish_dropped_delta{0};  // transport-tier drops this batch
  std::uint64_t sampled_out_delta{0};      // probe-tier suppressions this batch
  monitor::ProbeMode mode{monitor::ProbeMode::kCausalityOnly};
  bool mode_changed{false};  // primary mode flipped: all annotations stale

  const DscgDelta* delta{nullptr};  // what Dscg::update changed
  UpdateScope scope;                // closed root scope for fold passes
};

// One stage of the pipeline.  update() must be incremental in the scope --
// and updating a fresh pass with everything must equal an offline build
// (the one-epoch degenerate case).
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;
  virtual std::string_view name() const = 0;
  virtual void update(const LogDatabase& db, const EpochInfo& info) = 0;
};

class AnalysisPipeline {
 public:
  AnalysisPipeline();
  // Overrides the shared database's ingest shard count (0 = auto: the
  // CAUSEWAY_INGEST_SHARDS environment variable, else hardware
  // concurrency).  Renders are byte-identical across shard counts; the knob
  // exists for equivalence tests and for pinning resource use.
  explicit AnalysisPipeline(std::size_t ingest_shards);
  ~AnalysisPipeline();
  AnalysisPipeline(const AnalysisPipeline&) = delete;
  AnalysisPipeline& operator=(const AnalysisPipeline&) = delete;

  // The shared database.  Mutable access lets trace readers append directly
  // (read_trace_file, TraceTail); call refresh() afterwards to let the
  // passes catch up.
  LogDatabase& database();
  const LogDatabase& database() const;

  // Ingest one batch and run every pass.  Returns what the epoch changed.
  EpochInfo ingest(const monitor::CollectedLogs& logs);
  // Column form: a decoded v4 segment ingests without record-major
  // assembly (see analysis/columns.h).  Renders are byte-identical to the
  // CollectedLogs form.
  EpochInfo ingest(const ColumnBundle& cols);
  EpochInfo ingest_records(std::span<const monitor::TraceRecord> records);

  // Run the passes over whatever was appended to database() since the last
  // epoch (no-op EpochInfo when nothing was).
  EpochInfo refresh();

  const Dscg& dscg() const;
  const Ccsg& ccsg() const;

  // Renders.  Cached: only sections whose accumulators changed since the
  // last render are recomputed, and a render at an unchanged generation is
  // a string copy.
  std::string report(const ReportOptions& options = {});
  std::string summary();
  std::string ccsg_xml();
  const std::vector<TimelineEntry>& timeline();
  std::string timeline_text();
  std::string timeline_csv();
  std::string export_text(const ExportOptions& options = {});
  std::string export_dot(const ExportOptions& options = {});
  std::string export_json(const ExportOptions& options = {});
  std::string export_html(const ExportOptions& options = {});

  // Sinks (not owned; must outlive the pipeline) receive anomaly events as
  // epochs are ingested.
  void add_sink(AnomalySink* sink);

  // One-line progress summary of the last epoch, for live tails.
  std::string live_summary() const;

  std::uint64_t epochs_ingested() const;
  std::size_t anomaly_events() const;
  std::vector<std::string_view> pass_names() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace causeway::analysis
