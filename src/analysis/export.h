// DSCG exporters.
//
// The paper browses the DSCG in a hyperbolic tree viewer (Inxight) and the
// CCSG as XML in a browser.  Rendering is out of scope here; these exporters
// carry the same information -- call hierarchy plus the latency / CPU
// annotations -- as indented text (human review, golden tests), Graphviz
// DOT, and JSON (any downstream viewer).
#pragma once

#include <string>

#include "analysis/dscg.h"

namespace causeway::analysis {

struct ExportOptions {
  bool show_latency{true};
  bool show_cpu{true};
  bool show_location{true};  // process@node annotations
  std::size_t max_nodes{0};  // 0 = unlimited
};

std::string to_text(const Dscg& dscg, const ExportOptions& options = {});
std::string to_dot(const Dscg& dscg, const ExportOptions& options = {});
std::string to_json(const Dscg& dscg, const ExportOptions& options = {});

// Self-contained interactive HTML: collapsible call trees with latency/CPU
// annotations -- the closest a single file gets to the paper's hyperbolic
// tree viewer session (Fig. 5).
std::string to_html(const Dscg& dscg, const ExportOptions& options = {});

}  // namespace causeway::analysis
