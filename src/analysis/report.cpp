#include "analysis/report.h"

#include <algorithm>
#include <utility>

#include "analysis/cpu.h"
#include "analysis/critical_path.h"
#include "analysis/latency.h"
#include "analysis/stats.h"
#include "analysis/topology.h"
#include "common/strings.h"

namespace causeway::analysis {
namespace {

using monitor::ProbeMode;

std::string sv(std::string_view s) { return std::string(s); }

// --- accumulator cells -------------------------------------------------
// All exact: integer nanoseconds, counts, multisets keyed on exact values.
// Doubles appear only in the render functions below.

struct FnCell {
  std::size_t calls{0};
  std::size_t failures{0};
  std::map<Nanos, std::size_t> latency;  // multiset of per-call latencies
  Nanos self_cpu{0};
  Nanos desc_cpu{0};

  // Render cache: the row's formatted line, recomputed only when the cell
  // changed -- the function table stays cheap when one epoch touches a few
  // functions out of hundreds.
  std::string rendered_row;
  bool row_dirty{true};
};

struct EdgeCell {
  std::size_t calls{0};
  Nanos latency_sum{0};
  std::size_t latency_count{0};
};

struct CpuTypeCell {
  Nanos ns{0};
  std::size_t n{0};  // contributing nodes, so zero sums survive subtraction
};

// Slowest-calls table key: latency descending, label ascending -- the
// canonical tie-break that makes the table independent of fold order.
struct SlowKey {
  Nanos latency{0};
  std::string label;
  bool operator<(const SlowKey& o) const {
    if (latency != o.latency) return latency > o.latency;
    return label < o.label;
  }
};

// Critical-path index key: worst transaction first; ties go to the lowest
// root ordinal so the pick is independent of fold order.
struct CriticalKey {
  Nanos total{0};
  std::uint64_t ordinal{0};
  bool operator<(const CriticalKey& o) const {
    if (total != o.total) return total > o.total;
    return ordinal < o.ordinal;
  }
};

}  // namespace

// One top-level tree's folded contribution to every accumulator.
struct Report::Imprint {
  std::map<std::string, FnCell> functions;
  std::map<std::string_view, std::size_t> process_calls;
  std::map<std::pair<std::string_view, std::string_view>, EdgeCell> edges;
  std::map<std::string_view, CpuTypeCell> cpu_by_type;
  std::map<SlowKey, std::size_t> slow;
  std::size_t failures{0};

  // Topology contribution.  Depth/fanout maxima are per-tree, folded into
  // the accumulator's multiset of per-tree maxima.
  std::size_t calls{0};
  std::size_t depth_sum{0};
  std::size_t max_depth{0};
  std::size_t fanout_sum{0};
  std::size_t non_leaf{0};
  std::size_t max_fanout{0};
  std::size_t sync_calls{0};
  std::size_t oneway_calls{0};
  std::size_t collocated_calls{0};
  std::size_t cross_process{0};
  std::size_t cross_thread{0};
  std::size_t cross_processor{0};
  std::map<std::string_view, std::size_t> interfaces;
  std::map<std::pair<std::string_view, std::string_view>, std::size_t>
      function_ids;
  std::map<std::pair<std::string_view, std::uint64_t>, std::size_t> objects;

  std::map<Nanos, std::size_t> top_latency;  // depth-0 transaction latencies
  Nanos total_self_cpu{0};

  // The tree's own worst critical path, pre-rendered at fold time; the
  // report section just picks the globally worst entry.
  bool has_critical{false};
  Nanos critical_total{0};
  std::string critical_text;
};

struct Report::Acc {
  std::map<std::string, FnCell> functions;
  std::map<std::string_view, std::size_t> process_calls;
  std::map<std::pair<std::string_view, std::string_view>, EdgeCell> edges;
  std::map<std::string_view, CpuTypeCell> cpu_by_type;
  std::map<SlowKey, std::size_t> slow;
  std::size_t failures{0};

  std::size_t calls{0};
  std::size_t depth_sum{0};
  std::size_t fanout_sum{0};
  std::size_t non_leaf{0};
  std::map<std::size_t, std::size_t> root_max_depth;   // per-tree maxima
  std::map<std::size_t, std::size_t> root_max_fanout;  // per-tree maxima
  std::size_t sync_calls{0};
  std::size_t oneway_calls{0};
  std::size_t collocated_calls{0};
  std::size_t cross_process{0};
  std::size_t cross_thread{0};
  std::size_t cross_processor{0};
  std::map<std::string_view, std::size_t> interfaces;
  std::map<std::pair<std::string_view, std::string_view>, std::size_t>
      function_ids;
  std::map<std::pair<std::string_view, std::uint64_t>, std::size_t> objects;

  std::map<Nanos, std::size_t> top_latency;
  Nanos total_self_cpu{0};

  // Worst-first index over every root's pre-rendered critical path; the
  // values point into the owning Imprints (stable: imprints are erased only
  // after their index entry is removed).
  std::map<CriticalKey, const std::string*> critical;

  // Pre-rendered anomaly lines per chain ordinal, refreshed for exactly the
  // chains a scope rebuilt; only chains that *have* anomalies appear.
  std::map<std::uint64_t, std::vector<std::string>> anomaly_lines;
};

namespace {

Report::Imprint fold_tree(const ChainTree& tree) {
  Report::Imprint imp;
  Dscg::visit_tree(tree, [&](const CallNode& node, int depth) {
    FnCell& row =
        imp.functions[sv(node.interface_name) + "::" + sv(node.function_name)];
    row.calls += 1;
    if (node.failed()) {
      row.failures += 1;
      ++imp.failures;
    }
    if (node.latency) {
      row.latency[*node.latency] += 1;
      imp.slow[SlowKey{*node.latency,
                       sv(node.interface_name) + "::" +
                           sv(node.function_name) + " @" +
                           sv(node.server_process())}] += 1;
      if (depth == 0) imp.top_latency[*node.latency] += 1;
    }
    row.self_cpu += node.self_cpu.total();
    row.desc_cpu += node.descendant_cpu.total();
    imp.total_self_cpu += node.self_cpu.total();
    for (const auto& [type, ns] : node.self_cpu.by_type) {
      CpuTypeCell& cell = imp.cpu_by_type[type];
      cell.ns += ns;
      cell.n += 1;
    }
    if (!node.server_process().empty()) {
      imp.process_calls[node.server_process()] += 1;
    }
    const auto& stub = node.record(monitor::EventKind::kStubStart);
    const auto& skel = node.record(monitor::EventKind::kSkelStart);
    if (stub && skel && stub->process_name != skel->process_name) {
      EdgeCell& edge = imp.edges[{stub->process_name, skel->process_name}];
      edge.calls += 1;
      if (node.latency) {
        edge.latency_sum += *node.latency;
        edge.latency_count += 1;
      }
    }

    // Topology.
    imp.calls += 1;
    const auto d = static_cast<std::size_t>(depth) + 1;
    imp.depth_sum += d;
    imp.max_depth = std::max(imp.max_depth, d);
    const std::size_t fanout = node.children.size() + node.spawned.size();
    imp.max_fanout = std::max(imp.max_fanout, fanout);
    if (fanout > 0) {
      imp.fanout_sum += fanout;
      ++imp.non_leaf;
    }
    switch (node.kind) {
      case monitor::CallKind::kSync: ++imp.sync_calls; break;
      case monitor::CallKind::kOneway:
        if (stub) ++imp.oneway_calls;
        break;
      case monitor::CallKind::kCollocated: ++imp.collocated_calls; break;
    }
    if (stub && skel) {
      if (stub->process_name != skel->process_name) ++imp.cross_process;
      if (stub->thread_ordinal != skel->thread_ordinal) ++imp.cross_thread;
      if (stub->processor_type != skel->processor_type) ++imp.cross_processor;
    }
    imp.interfaces[node.interface_name] += 1;
    imp.function_ids[{node.interface_name, node.function_name}] += 1;
    imp.objects[{node.interface_name, node.object_key}] += 1;
  });

  // The tree's worst critical path (latency-annotated runs only), rendered
  // here so the report section never has to walk the graph again.  Ties
  // between top-level calls keep the earliest.
  for (const auto& top : tree.root->children) {
    if (!top->latency) continue;
    const CriticalPath path = critical_path(*top);
    if (path.steps.empty()) continue;
    if (imp.has_critical && path.total() <= imp.critical_total) continue;
    imp.has_critical = true;
    imp.critical_total = path.total();
    imp.critical_text = path.to_string();
    if (const CriticalStep* hot = path.dominant()) {
      imp.critical_text +=
          strf("dominant frame: %s::%s (%.1f us exclusive of %.1f us "
               "end-to-end)\n",
               sv(hot->node->interface_name).c_str(),
               sv(hot->node->function_name).c_str(),
               static_cast<double>(hot->exclusive) / 1e3,
               static_cast<double>(path.total()) / 1e3);
    }
  }
  return imp;
}

// summarize() over the exact multiset without expanding it: count, mean
// from the integer sum, percentiles by cumulative-count lookup.  Cost is
// the number of *distinct* values, not the number of calls.
Summary summarize_multiset(const std::map<Nanos, std::size_t>& m) {
  Summary s;
  std::size_t n = 0;
  Nanos total = 0;
  std::vector<std::pair<double, std::size_t>> cum;  // value us, running count
  cum.reserve(m.size());
  for (const auto& [ns, count] : m) {
    n += count;
    total += ns * static_cast<Nanos>(count);
    cum.emplace_back(static_cast<double>(ns) / 1e3, n);
  }
  s.count = n;
  if (n == 0) return s;
  s.min = cum.front().first;
  s.max = cum.back().first;
  s.mean = static_cast<double>(total) / 1e3 / static_cast<double>(n);
  const auto at = [&](std::size_t idx) {
    const auto it = std::upper_bound(
        cum.begin(), cum.end(), idx,
        [](std::size_t v, const auto& e) { return v < e.second; });
    return it->first;
  };
  const auto pct = [&](double p) {
    const double rank = p * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = rank - static_cast<double>(lo);
    return at(lo) * (1.0 - frac) + at(hi) * frac;
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

// Merge a refcounted multiset map: add counts, or subtract and erase when a
// key's count reaches zero.
template <typename Map>
void merge_counts(Map& into, const Map& from, bool add) {
  for (const auto& [key, count] : from) {
    if (add) {
      into[key] += count;
    } else {
      auto it = into.find(key);
      it->second -= count;
      if (it->second == 0) into.erase(it);
    }
  }
}

void apply(Report::Acc& acc, const Report::Imprint& imp, std::uint64_t ordinal,
           bool add) {
  for (const auto& [name, cell] : imp.functions) {
    if (add) {
      FnCell& row = acc.functions[name];
      row.calls += cell.calls;
      row.failures += cell.failures;
      merge_counts(row.latency, cell.latency, true);
      row.self_cpu += cell.self_cpu;
      row.desc_cpu += cell.desc_cpu;
      row.row_dirty = true;
    } else {
      auto it = acc.functions.find(name);
      FnCell& row = it->second;
      row.calls -= cell.calls;
      row.failures -= cell.failures;
      merge_counts(row.latency, cell.latency, false);
      row.self_cpu -= cell.self_cpu;
      row.desc_cpu -= cell.desc_cpu;
      row.row_dirty = true;
      if (row.calls == 0) acc.functions.erase(it);
    }
  }
  if (imp.has_critical) {
    const CriticalKey key{imp.critical_total, ordinal};
    if (add) {
      acc.critical.emplace(key, &imp.critical_text);
    } else {
      acc.critical.erase(key);
    }
  }
  merge_counts(acc.process_calls, imp.process_calls, add);
  for (const auto& [key, cell] : imp.edges) {
    if (add) {
      EdgeCell& edge = acc.edges[key];
      edge.calls += cell.calls;
      edge.latency_sum += cell.latency_sum;
      edge.latency_count += cell.latency_count;
    } else {
      auto it = acc.edges.find(key);
      it->second.calls -= cell.calls;
      it->second.latency_sum -= cell.latency_sum;
      it->second.latency_count -= cell.latency_count;
      if (it->second.calls == 0) acc.edges.erase(it);
    }
  }
  for (const auto& [type, cell] : imp.cpu_by_type) {
    if (add) {
      CpuTypeCell& c = acc.cpu_by_type[type];
      c.ns += cell.ns;
      c.n += cell.n;
    } else {
      auto it = acc.cpu_by_type.find(type);
      it->second.ns -= cell.ns;
      it->second.n -= cell.n;
      if (it->second.n == 0) acc.cpu_by_type.erase(it);
    }
  }
  merge_counts(acc.slow, imp.slow, add);
  merge_counts(acc.top_latency, imp.top_latency, add);
  merge_counts(acc.interfaces, imp.interfaces, add);
  merge_counts(acc.function_ids, imp.function_ids, add);
  merge_counts(acc.objects, imp.objects, add);

  const auto flip = [add](std::size_t& into, std::size_t amount) {
    if (add) {
      into += amount;
    } else {
      into -= amount;
    }
  };
  flip(acc.failures, imp.failures);
  flip(acc.calls, imp.calls);
  flip(acc.depth_sum, imp.depth_sum);
  flip(acc.fanout_sum, imp.fanout_sum);
  flip(acc.non_leaf, imp.non_leaf);
  flip(acc.sync_calls, imp.sync_calls);
  flip(acc.oneway_calls, imp.oneway_calls);
  flip(acc.collocated_calls, imp.collocated_calls);
  flip(acc.cross_process, imp.cross_process);
  flip(acc.cross_thread, imp.cross_thread);
  flip(acc.cross_processor, imp.cross_processor);
  if (imp.calls > 0) {
    if (add) {
      acc.root_max_depth[imp.max_depth] += 1;
      acc.root_max_fanout[imp.max_fanout] += 1;
    } else {
      auto d = acc.root_max_depth.find(imp.max_depth);
      if (--d->second == 0) acc.root_max_depth.erase(d);
      auto f = acc.root_max_fanout.find(imp.max_fanout);
      if (--f->second == 0) acc.root_max_fanout.erase(f);
    }
  }
  if (add) {
    acc.total_self_cpu += imp.total_self_cpu;
  } else {
    acc.total_self_cpu -= imp.total_self_cpu;
  }
}

TopologyStats topology_from(const Report::Acc& acc, std::size_t chains) {
  TopologyStats topo;
  topo.calls = acc.calls;
  topo.chains = chains;
  topo.max_depth =
      acc.root_max_depth.empty() ? 0 : acc.root_max_depth.rbegin()->first;
  topo.max_fanout =
      acc.root_max_fanout.empty() ? 0 : acc.root_max_fanout.rbegin()->first;
  if (acc.calls > 0) {
    topo.mean_depth = static_cast<double>(acc.depth_sum) /
                      static_cast<double>(acc.calls);
  }
  if (acc.non_leaf > 0) {
    topo.mean_fanout = static_cast<double>(acc.fanout_sum) /
                       static_cast<double>(acc.non_leaf);
  }
  topo.sync_calls = acc.sync_calls;
  topo.oneway_calls = acc.oneway_calls;
  topo.collocated_calls = acc.collocated_calls;
  topo.cross_process = acc.cross_process;
  topo.cross_thread = acc.cross_thread;
  topo.cross_processor = acc.cross_processor;
  topo.interfaces = acc.interfaces.size();
  topo.functions = acc.function_ids.size();
  topo.objects = acc.objects.size();
  return topo;
}

}  // namespace

Report::Report() : acc_(std::make_unique<Acc>()) {}
Report::~Report() = default;
Report::Report(Report&&) noexcept = default;
Report& Report::operator=(Report&&) noexcept = default;

void Report::update(const Dscg& dscg, const LogDatabase& db,
                    const UpdateScope& scope) {
  (void)db;
  bool changed = !scope.rebuilt_chains.empty();
  bool cpu_changed = false;
  bool edges_changed = false;
  auto subtract = [&](std::uint64_t ordinal) {
    auto it = imprints_.find(ordinal);
    if (it == imprints_.end()) return;
    cpu_changed |= !it->second->cpu_by_type.empty();
    edges_changed |= !it->second->edges.empty();
    apply(*acc_, *it->second, ordinal, false);
    imprints_.erase(it);
    changed = true;
  };
  for (std::uint64_t ordinal : scope.removed_roots) subtract(ordinal);
  for (std::uint64_t ordinal : scope.affected_roots) subtract(ordinal);
  for (std::uint64_t ordinal : scope.affected_roots) {
    auto imprint =
        std::make_unique<Imprint>(fold_tree(*dscg.chains()[ordinal]));
    cpu_changed |= !imprint->cpu_by_type.empty();
    edges_changed |= !imprint->edges.empty();
    apply(*acc_, *imprint, ordinal, true);
    imprints_.emplace(ordinal, std::move(imprint));
    changed = true;
  }

  // Refresh the pre-rendered anomaly lines of exactly the rebuilt chains
  // (anomalies are a parse artifact: they only change on rebuild).
  for (const Uuid& id : scope.rebuilt_chains) {
    const ChainTree* tree = dscg.find_chain(id);
    if (!tree) continue;
    if (tree->anomalies.empty()) {
      acc_->anomaly_lines.erase(tree->ordinal);
      continue;
    }
    auto& lines = acc_->anomaly_lines[tree->ordinal];
    lines.clear();
    lines.reserve(tree->anomalies.size());
    for (const auto& a : tree->anomalies) {
      lines.push_back(strf("chain %s seq %llu: %s\n",
                           tree->chain.to_string().c_str(),
                           static_cast<unsigned long long>(a.seq),
                           a.reason.c_str()));
    }
  }

  if (changed) ++data_rev_;
  if (cpu_changed) ++cpu_rev_;
  if (edges_changed) ++edge_rev_;
}

std::string Report::render(const Dscg& dscg, const LogDatabase& db,
                           const ReportOptions& options) {
  if (!have_options_ ||
      options.top_slowest != last_options_.top_slowest ||
      options.max_anomalies != last_options_.max_anomalies) {
    slow_cache_.rev = 0;
    anomalies_cache_.rev = 0;
    last_options_ = options;
    have_options_ = true;
  }
  const ProbeMode mode = db.primary_mode();
  const Acc& acc = *acc_;

  // Header: a handful of O(1) counters, re-rendered every time.
  std::string out;
  out += "==================== characterization report ====================\n";
  out += strf("records: %zu   chains: %zu   calls: %zu   anomalies: %zu   "
              "failures: %zu\n",
              db.size(), dscg.chains().size(), dscg.call_count(),
              dscg.anomaly_count(), acc.failures);
  out += strf("probe mode: %s   processor types: %zu   domains: %zu\n",
              sv(to_string(mode)).c_str(), db.processor_types().size(),
              db.domains().size());

  if (topology_cache_.rev != data_rev_) {
    const TopologyStats topo = topology_from(acc, dscg.chains().size());
    topology_cache_.text = strf(
        "topology: depth max/mean %zu/%.1f   fanout max/mean %zu/%.1f\n"
        "          sync %zu, oneway %zu, collocated %zu; cross-process %zu, "
        "cross-thread %zu, cross-processor %zu\n"
        "          %zu interfaces, %zu functions, %zu objects\n\n",
        topo.max_depth, topo.mean_depth, topo.max_fanout, topo.mean_fanout,
        topo.sync_calls, topo.oneway_calls, topo.collocated_calls,
        topo.cross_process, topo.cross_thread, topo.cross_processor,
        topo.interfaces, topo.functions, topo.objects);
    topology_cache_.rev = data_rev_;
  }
  out += topology_cache_.text;

  if (functions_cache_.rev != data_rev_ || mode != functions_mode_) {
    // Rows render from their per-cell cache; only cells an imprint touched
    // since the last render recompute.  A mode change reformats every row.
    const bool reformat = mode != functions_mode_;
    std::string& text = functions_cache_.text;
    text.clear();
    text += "--- per function ---\n";
    if (mode == ProbeMode::kCpu) {
      text += strf("%-40s %8s %6s %14s %14s\n", "function", "calls", "fail",
                   "self cpu us", "desc cpu us");
      for (auto& [name, row] : acc_->functions) {
        if (row.row_dirty || reformat) {
          row.rendered_row =
              strf("%-40s %8zu %6zu %14.1f %14.1f\n", name.c_str(), row.calls,
                   row.failures, static_cast<double>(row.self_cpu) / 1e3,
                   static_cast<double>(row.desc_cpu) / 1e3);
          row.row_dirty = false;
        }
        text += row.rendered_row;
      }
    } else {
      text += strf("%-40s %8s %6s %10s %10s %10s\n", "function", "calls",
                   "fail", "mean us", "p50 us", "p90 us");
      for (auto& [name, row] : acc_->functions) {
        if (row.row_dirty || reformat) {
          const Summary s = summarize_multiset(row.latency);
          row.rendered_row =
              strf("%-40s %8zu %6zu %10.1f %10.1f %10.1f\n", name.c_str(),
                   row.calls, row.failures, s.mean, s.p50, s.p90);
          row.row_dirty = false;
        }
        text += row.rendered_row;
      }
    }
    functions_cache_.rev = data_rev_;
    functions_mode_ = mode;
  }
  out += functions_cache_.text;

  if (process_cache_.rev != data_rev_) {
    std::string& text = process_cache_.text;
    text.clear();
    text += "\n--- calls served per process ---\n";
    for (const auto& [process, calls] : acc.process_calls) {
      text += strf("%-24s %8zu\n", sv(process).c_str(), calls);
    }
    process_cache_.rev = data_rev_;
  }
  out += process_cache_.text;

  if (cpu_cache_.rev != cpu_rev_) {
    std::string& text = cpu_cache_.text;
    text.clear();
    if (mode == ProbeMode::kCpu && !acc.cpu_by_type.empty()) {
      text += "\n--- self CPU per processor type (the <C1..CM> axes) ---\n";
      for (const auto& [type, cell] : acc.cpu_by_type) {
        text += strf("%-24s %12.1f us\n", sv(type).c_str(),
                     static_cast<double>(cell.ns) / 1e3);
      }
    }
    cpu_cache_.rev = cpu_rev_;
  }
  out += cpu_cache_.text;

  if (edges_cache_.rev != edge_rev_) {
    std::string& text = edges_cache_.text;
    text.clear();
    if (!acc.edges.empty()) {
      text += "\n--- cross-process invocations (caller -> callee) ---\n";
      for (const auto& [edge, row] : acc.edges) {
        text += strf("%-20s -> %-20s %8zu", sv(edge.first).c_str(),
                     sv(edge.second).c_str(), row.calls);
        if (row.latency_count > 0) {
          text += strf("   mean %10.1f us",
                       static_cast<double>(row.latency_sum) / 1e3 /
                           static_cast<double>(row.latency_count));
        }
        text += "\n";
      }
    }
    edges_cache_.rev = edge_rev_;
  }
  out += edges_cache_.text;

  if (slow_cache_.rev != data_rev_) {
    std::string& text = slow_cache_.text;
    text.clear();
    if (!acc.slow.empty() && options.top_slowest > 0) {
      text += "\n--- slowest calls (end-to-end, overhead-corrected) ---\n";
      std::size_t emitted = 0;
      for (const auto& [key, count] : acc.slow) {
        for (std::size_t i = 0; i < count; ++i) {
          if (emitted++ >= options.top_slowest) break;
          text += strf("%10.1f us  %s\n",
                       static_cast<double>(key.latency) / 1e3,
                       key.label.c_str());
        }
        if (emitted > options.top_slowest) break;
      }
    }
    slow_cache_.rev = data_rev_;
  }
  out += slow_cache_.text;

  if (critical_cache_.rev != data_rev_) {
    std::string& text = critical_cache_.text;
    text.clear();
    if (mode == ProbeMode::kLatency && !acc.critical.empty()) {
      // Every root folded its own worst path at update time; the section is
      // just the head of the worst-first index.
      text += "\n--- critical path of the slowest transaction ---\n";
      text += *acc.critical.begin()->second;
    }
    critical_cache_.rev = data_rev_;
  }
  out += critical_cache_.text;

  if (anomalies_cache_.rev != data_rev_) {
    std::string& text = anomalies_cache_.text;
    text.clear();
    std::size_t anomaly_lines = 0;
    for (const auto& [ordinal, lines] : acc.anomaly_lines) {
      for (const auto& line : lines) {
        if (anomaly_lines == 0) text += "\n--- anomalies ---\n";
        if (anomaly_lines++ >= options.max_anomalies) break;
        text += line;
      }
      if (anomaly_lines > options.max_anomalies) break;
    }
    if (anomaly_lines > options.max_anomalies) {
      text += strf("... (%zu anomalies total)\n", dscg.anomaly_count());
    }
    anomalies_cache_.rev = data_rev_;
  }
  out += anomalies_cache_.text;

  if (db.sampling_active()) {
    // Rendered fresh each time (the inputs are O(shards) counters).  The
    // section exists only when sampling left a trace -- a weight > 1 or a
    // reported suppression -- so a run at 1-in-1 with no directives renders
    // byte-identical to a build that predates sampling entirely.
    out += "\n--- sampling renormalization ---\n";
    out += strf("observed: %zu records, %zu chains; suppressed at probe: "
                "%llu records\n",
                db.size(), db.chains().size(),
                static_cast<unsigned long long>(db.sampled_out()));
    out += strf("weighted estimate: %llu records, %llu chains\n",
                static_cast<unsigned long long>(db.weighted_records()),
                static_cast<unsigned long long>(db.weighted_chains()));
    out += strf("accounting: observed + suppressed = %llu probe-kept-or-"
                "sampled activations\n",
                static_cast<unsigned long long>(db.size() + db.sampled_out()));
  }

  return out;
}

std::string Report::summary(const Dscg& dscg, const LogDatabase& db) {
  if (summary_cache_.rev == data_rev_) return summary_cache_.text;
  const Acc& acc = *acc_;
  const TopologyStats topo = topology_from(acc, dscg.chains().size());
  const Summary latency = summarize_multiset(acc.top_latency);

  std::string out = "{";
  out += strf("\"records\":%zu,\"chains\":%zu,\"calls\":%zu,", db.size(),
              dscg.chains().size(), dscg.call_count());
  out += strf("\"anomalies\":%zu,\"failures\":%zu,", dscg.anomaly_count(),
              acc.failures);
  out += strf("\"mode\":\"%s\",", sv(to_string(db.primary_mode())).c_str());
  out += strf(
      "\"topology\":{\"max_depth\":%zu,\"mean_depth\":%.3f,"
      "\"max_fanout\":%zu,\"sync\":%zu,\"oneway\":%zu,\"collocated\":%zu,"
      "\"cross_process\":%zu,\"cross_thread\":%zu,\"interfaces\":%zu,"
      "\"functions\":%zu,\"objects\":%zu},",
      topo.max_depth, topo.mean_depth, topo.max_fanout, topo.sync_calls,
      topo.oneway_calls, topo.collocated_calls, topo.cross_process,
      topo.cross_thread, topo.interfaces, topo.functions, topo.objects);
  out += strf(
      "\"transaction_latency_us\":{\"count\":%zu,\"mean\":%.3f,"
      "\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f},",
      latency.count, latency.mean, latency.p50, latency.p90, latency.p99);
  out += strf("\"total_self_cpu_us\":%.3f",
              static_cast<double>(acc.total_self_cpu) / 1e3);
  out += "}";
  summary_cache_.text = out;
  summary_cache_.rev = data_rev_;
  return out;
}

namespace {

void annotate_for_mode(Dscg& dscg, const LogDatabase& db) {
  const ProbeMode mode = db.primary_mode();
  if (mode == ProbeMode::kLatency) {
    annotate_latency(dscg);
  } else if (mode == ProbeMode::kCpu) {
    annotate_cpu(dscg);
  }
}

std::vector<std::uint64_t> all_roots(const Dscg& dscg) {
  std::vector<std::uint64_t> ordinals;
  ordinals.reserve(dscg.roots().size());
  for (const ChainTree* tree : dscg.roots()) ordinals.push_back(tree->ordinal);
  return ordinals;
}

std::vector<Uuid> all_chains(const Dscg& dscg) {
  std::vector<Uuid> ids;
  ids.reserve(dscg.chains().size());
  for (const auto& tree : dscg.chains()) ids.push_back(tree->chain);
  return ids;
}

}  // namespace

std::string characterization_report(Dscg& dscg, const LogDatabase& db,
                                    const ReportOptions& options) {
  annotate_for_mode(dscg, db);
  Report report;
  report.update(dscg, db, UpdateScope{all_roots(dscg), {}, all_chains(dscg)});
  return report.render(dscg, db, options);
}

std::string summary_json(Dscg& dscg, const LogDatabase& db) {
  annotate_for_mode(dscg, db);
  Report report;
  report.update(dscg, db, UpdateScope{all_roots(dscg), {}, all_chains(dscg)});
  return report.summary(dscg, db);
}

}  // namespace causeway::analysis
