#include "analysis/report.h"

#include <algorithm>
#include <map>

#include "analysis/cpu.h"
#include "analysis/critical_path.h"
#include "analysis/latency.h"
#include "analysis/stats.h"
#include "analysis/topology.h"
#include "common/strings.h"

namespace causeway::analysis {
namespace {

using monitor::ProbeMode;

struct FunctionRow {
  std::size_t calls{0};
  std::size_t failures{0};
  std::vector<double> latency_us;
  Nanos self_cpu{0};
  Nanos desc_cpu{0};
};

struct SlowCall {
  double latency_us{0};
  std::string label;
};

std::string sv(std::string_view s) { return std::string(s); }

}  // namespace

std::string characterization_report(Dscg& dscg, const LogDatabase& db,
                                    const ReportOptions& options) {
  const ProbeMode mode = db.primary_mode();
  if (mode == ProbeMode::kLatency) {
    annotate_latency(dscg);
  } else if (mode == ProbeMode::kCpu) {
    annotate_cpu(dscg);
  }

  // --- gather ---
  struct EdgeRow {
    std::size_t calls{0};
    Nanos latency_sum{0};
    std::size_t latency_count{0};
  };
  std::map<std::string, FunctionRow> functions;
  std::map<std::string, std::size_t> process_calls;
  std::map<std::pair<std::string, std::string>, EdgeRow> edges;
  std::map<std::string, Nanos> cpu_by_type;
  std::vector<SlowCall> slow;
  std::size_t failures = 0;

  dscg.visit([&](const CallNode& node, int) {
    FunctionRow& row =
        functions[sv(node.interface_name) + "::" + sv(node.function_name)];
    row.calls += 1;
    if (node.failed()) {
      row.failures += 1;
      ++failures;
    }
    if (node.latency) {
      row.latency_us.push_back(static_cast<double>(*node.latency) / 1e3);
      slow.push_back({static_cast<double>(*node.latency) / 1e3,
                      sv(node.interface_name) + "::" +
                          sv(node.function_name) + " @" +
                          sv(node.server_process())});
    }
    row.self_cpu += node.self_cpu.total();
    row.desc_cpu += node.descendant_cpu.total();
    for (const auto& [type, ns] : node.self_cpu.by_type) {
      cpu_by_type[sv(type)] += ns;
    }
    if (!node.server_process().empty()) {
      process_calls[sv(node.server_process())] += 1;
    }
    // Cross-process invocation edges: caller (stub side) -> callee (skel).
    const auto& stub = node.record(monitor::EventKind::kStubStart);
    const auto& skel = node.record(monitor::EventKind::kSkelStart);
    if (stub && skel && stub->process_name != skel->process_name) {
      EdgeRow& edge = edges[{sv(stub->process_name), sv(skel->process_name)}];
      edge.calls += 1;
      if (node.latency) {
        edge.latency_sum += *node.latency;
        edge.latency_count += 1;
      }
    }
  });

  // --- render ---
  std::string out;
  out += "==================== characterization report ====================\n";
  out += strf("records: %zu   chains: %zu   calls: %zu   anomalies: %zu   "
              "failures: %zu\n",
              db.size(), dscg.chains().size(), dscg.call_count(),
              dscg.anomaly_count(), failures);
  out += strf("probe mode: %s   processor types: %zu   domains: %zu\n",
              sv(to_string(mode)).c_str(), db.processor_types().size(),
              db.domains().size());

  const TopologyStats topo = compute_topology(dscg);
  out += strf(
      "topology: depth max/mean %zu/%.1f   fanout max/mean %zu/%.1f\n"
      "          sync %zu, oneway %zu, collocated %zu; cross-process %zu, "
      "cross-thread %zu, cross-processor %zu\n"
      "          %zu interfaces, %zu functions, %zu objects\n\n",
      topo.max_depth, topo.mean_depth, topo.max_fanout, topo.mean_fanout,
      topo.sync_calls, topo.oneway_calls, topo.collocated_calls,
      topo.cross_process, topo.cross_thread, topo.cross_processor,
      topo.interfaces, topo.functions, topo.objects);

  out += "--- per function ---\n";
  if (mode == ProbeMode::kCpu) {
    out += strf("%-40s %8s %6s %14s %14s\n", "function", "calls", "fail",
                "self cpu us", "desc cpu us");
    for (const auto& [name, row] : functions) {
      out += strf("%-40s %8zu %6zu %14.1f %14.1f\n", name.c_str(), row.calls,
                  row.failures, static_cast<double>(row.self_cpu) / 1e3,
                  static_cast<double>(row.desc_cpu) / 1e3);
    }
  } else {
    out += strf("%-40s %8s %6s %10s %10s %10s\n", "function", "calls", "fail",
                "mean us", "p50 us", "p90 us");
    for (auto& [name, row] : functions) {
      const Summary s = summarize(std::move(row.latency_us));
      out += strf("%-40s %8zu %6zu %10.1f %10.1f %10.1f\n", name.c_str(),
                  row.calls, row.failures, s.mean, s.p50, s.p90);
    }
  }

  out += "\n--- calls served per process ---\n";
  for (const auto& [process, calls] : process_calls) {
    out += strf("%-24s %8zu\n", process.c_str(), calls);
  }

  if (mode == ProbeMode::kCpu && !cpu_by_type.empty()) {
    out += "\n--- self CPU per processor type (the <C1..CM> axes) ---\n";
    for (const auto& [type, ns] : cpu_by_type) {
      out += strf("%-24s %12.1f us\n", type.c_str(),
                  static_cast<double>(ns) / 1e3);
    }
  }

  if (!edges.empty()) {
    out += "\n--- cross-process invocations (caller -> callee) ---\n";
    for (const auto& [edge, row] : edges) {
      out += strf("%-20s -> %-20s %8zu", edge.first.c_str(),
                  edge.second.c_str(), row.calls);
      if (row.latency_count > 0) {
        out += strf("   mean %10.1f us",
                    static_cast<double>(row.latency_sum) / 1e3 /
                        static_cast<double>(row.latency_count));
      }
      out += "\n";
    }
  }

  if (!slow.empty() && options.top_slowest > 0) {
    out += "\n--- slowest calls (end-to-end, overhead-corrected) ---\n";
    std::sort(slow.begin(), slow.end(),
              [](const SlowCall& a, const SlowCall& b) {
                return a.latency_us > b.latency_us;
              });
    const std::size_t n = std::min(options.top_slowest, slow.size());
    for (std::size_t i = 0; i < n; ++i) {
      out += strf("%10.1f us  %s\n", slow[i].latency_us,
                  slow[i].label.c_str());
    }
  }

  if (mode == ProbeMode::kLatency) {
    const auto paths = critical_paths(dscg);
    if (!paths.empty() && !paths.front().steps.empty()) {
      const CriticalPath& worst = paths.front();
      out += "\n--- critical path of the slowest transaction ---\n";
      out += worst.to_string();
      if (const CriticalStep* hot = worst.dominant()) {
        out += strf("dominant frame: %s::%s (%.1f us exclusive of %.1f us "
                    "end-to-end)\n",
                    sv(hot->node->interface_name).c_str(),
                    sv(hot->node->function_name).c_str(),
                    static_cast<double>(hot->exclusive) / 1e3,
                    static_cast<double>(worst.total()) / 1e3);
      }
    }
  }

  std::size_t anomaly_lines = 0;
  for (const auto& tree : dscg.chains()) {
    for (const auto& a : tree->anomalies) {
      if (anomaly_lines == 0) out += "\n--- anomalies ---\n";
      if (anomaly_lines++ >= options.max_anomalies) break;
      out += strf("chain %s seq %llu: %s\n",
                  tree->chain.to_string().c_str(),
                  static_cast<unsigned long long>(a.seq), a.reason.c_str());
    }
    if (anomaly_lines > options.max_anomalies) break;
  }
  if (anomaly_lines > options.max_anomalies) {
    out += strf("... (%zu anomalies total)\n", dscg.anomaly_count());
  }
  return out;
}

std::string summary_json(Dscg& dscg, const LogDatabase& db) {
  const ProbeMode mode = db.primary_mode();
  if (mode == ProbeMode::kLatency) {
    annotate_latency(dscg);
  } else if (mode == ProbeMode::kCpu) {
    annotate_cpu(dscg);
  }

  std::size_t failures = 0;
  std::vector<double> top_latency_us;
  Nanos total_self_cpu = 0;
  dscg.visit([&](const CallNode& node, int depth) {
    if (node.failed()) ++failures;
    if (depth == 0 && node.latency) {
      top_latency_us.push_back(static_cast<double>(*node.latency) / 1e3);
    }
    total_self_cpu += node.self_cpu.total();
  });
  const TopologyStats topo = compute_topology(dscg);
  const Summary latency = summarize(std::move(top_latency_us));

  std::string out = "{";
  out += strf("\"records\":%zu,\"chains\":%zu,\"calls\":%zu,", db.size(),
              dscg.chains().size(), dscg.call_count());
  out += strf("\"anomalies\":%zu,\"failures\":%zu,", dscg.anomaly_count(),
              failures);
  out += strf("\"mode\":\"%s\",", sv(to_string(mode)).c_str());
  out += strf(
      "\"topology\":{\"max_depth\":%zu,\"mean_depth\":%.3f,"
      "\"max_fanout\":%zu,\"sync\":%zu,\"oneway\":%zu,\"collocated\":%zu,"
      "\"cross_process\":%zu,\"cross_thread\":%zu,\"interfaces\":%zu,"
      "\"functions\":%zu,\"objects\":%zu},",
      topo.max_depth, topo.mean_depth, topo.max_fanout, topo.sync_calls,
      topo.oneway_calls, topo.collocated_calls, topo.cross_process,
      topo.cross_thread, topo.interfaces, topo.functions, topo.objects);
  out += strf(
      "\"transaction_latency_us\":{\"count\":%zu,\"mean\":%.3f,"
      "\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f},",
      latency.count, latency.mean, latency.p50, latency.p90, latency.p99);
  out += strf("\"total_self_cpu_us\":%.3f",
              static_cast<double>(total_self_cpu) / 1e3);
  out += "}";
  return out;
}

}  // namespace causeway::analysis
