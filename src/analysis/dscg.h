// The Dynamic System Call Graph (DSCG).
//
// "Each causal chain with a unique UUID will be unfolded into a tree Ti.  A
// Dynamic System Call Graph is a tree by grouping {Ti}" (paper Sec. 3.1).
// The grouping has two parts: chains spawned by oneway calls hang under the
// stub-side node that spawned them (linked via the spawned_chain UUID the
// probe recorded), and all remaining chains become top-level trees.
//
// Unlike GPROF/QUANTIFY the DSCG preserves *complete* call chains at
// unlimited depth -- it is exactly the "call path" profile generalized to
// threads, processes and processors.
//
// Construction is incremental: update(db) reconstructs only the chains that
// gained events since the last update (per the database's generation
// counter), rebuilding independent chains in parallel on a small worker
// pool.  Spawn-edge relinking is also incremental: a reverse index (target
// chain -> referring spawn sites) lets the update re-point only the edges
// touched by the batch and maintain the root list in place, so per-epoch
// cost scales with the batch, not the graph.  build(db) is the from-scratch
// convenience form.
//
// Every update records a DscgDelta -- the dirty-propagation seed the
// analysis pipeline uses to decide which trees downstream passes (CCSG,
// report, annotation) must re-fold.
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/call_tree.h"
#include "analysis/database.h"

namespace causeway::analysis {

// What one Dscg::update changed.  Consumed by AnalysisPipeline to compute
// the affected-root closure for downstream incremental passes.
struct DscgDelta {
  std::vector<Uuid> rebuilt;        // chains reconstructed this update
  std::vector<Uuid> touched;        // chains whose outbound spawn links
                                    // resolved against a chain that appeared
                                    // this update (subtree content changed
                                    // without a rebuild)
  std::vector<Uuid> roots_added;    // chains that became top-level
  std::vector<Uuid> roots_removed;  // chains that stopped being top-level

  bool empty() const {
    return rebuilt.empty() && touched.empty() && roots_added.empty() &&
           roots_removed.empty();
  }
  void clear() {
    rebuilt.clear();
    touched.clear();
    roots_added.clear();
    roots_removed.clear();
  }
};

class Dscg {
 public:
  Dscg() = default;
  Dscg(const Dscg&) = delete;
  Dscg& operator=(const Dscg&) = delete;
  Dscg(Dscg&&) = default;
  Dscg& operator=(Dscg&&) = default;

  // Reconstructs every chain in the database and groups the forest.
  static Dscg build(const LogDatabase& db);

  // Incremental rebuild: reconstructs only chains with events newer than
  // the last update (all of them on the first call), independent chains in
  // parallel, then re-points only the spawn edges the batch touched.
  // Returns the number of chains reconstructed.  Chain order always mirrors
  // db.chains() (first-seen), so incremental and from-scratch builds yield
  // identical graphs.
  std::size_t update(const LogDatabase& db);

  // What the most recent update() changed.  Cleared (empty) when the update
  // had nothing to do.
  const DscgDelta& last_delta() const { return delta_; }

  // True when the database has ingested batches this graph has not seen.
  bool stale(const LogDatabase& db) const {
    return db.generation() != built_generation_;
  }
  std::uint64_t built_generation() const { return built_generation_; }

  // Top-level trees (chains not spawned by any recorded oneway call),
  // ascending chain ordinal -- i.e. db.chains() first-seen order.
  const std::vector<ChainTree*>& roots() const { return roots_; }

  // Every reconstructed chain, spawned or not.
  const std::vector<std::unique_ptr<ChainTree>>& chains() const {
    return chains_;
  }

  ChainTree* find_chain(const Uuid& id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : chains_[it->second].get();
  }

  // Whether the chain at this ordinal is currently top-level, O(1).
  bool is_root(std::uint64_t ordinal) const {
    return ordinal < is_root_.size() && is_root_[ordinal];
  }

  // Total calls across all chains (DSCG nodes, virtual roots excluded).
  // Running total maintained by update(), O(1).
  std::size_t call_count() const { return call_count_; }

  // Anomalies across all chains (the paper's "abnormal" transitions), O(1).
  std::size_t anomaly_count() const { return anomaly_count_; }

  // Depth-first visit over the whole graph, crossing into spawned chains.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (ChainTree* tree : roots_) visit_node(tree->root.get(), fn, 0);
  }

  // Depth-first visit of one tree (and the chains it spawns), with the
  // tree's top-level calls at depth 0 -- the per-root unit of work the
  // incremental passes fold.
  template <typename Fn>
  static void visit_tree(const ChainTree& tree, Fn&& fn) {
    visit_node(tree.root.get(), fn, 0);
  }

 private:
  template <typename Fn>
  static void visit_node(const CallNode* node, Fn& fn, int depth) {
    if (!node->is_virtual_root()) fn(*node, depth);
    const int child_depth = node->is_virtual_root() ? depth : depth + 1;
    for (const auto& c : node->children) visit_node(c.get(), fn, child_depth);
    for (const ChainTree* spawned : node->spawned) {
      visit_node(spawned->root.get(), fn, child_depth);
    }
  }

  void set_root(std::size_t slot, bool is_root);

  std::vector<std::unique_ptr<ChainTree>> chains_;  // db.chains() order
  std::vector<ChainTree*> roots_;                   // sorted by ordinal
  std::unordered_map<Uuid, std::size_t> by_id_;  // chain uuid -> chains_ slot

  // Oneway spawn sites per chain: the nodes (with their target uuids) that
  // hang child chains.  Recollected only when a chain is rebuilt.
  std::unordered_map<Uuid, std::vector<std::pair<CallNode*, Uuid>>> sites_;

  // Reverse index: target chain uuid -> the chains whose spawn sites point
  // at it.  Entries exist even while the target chain is still unrecorded
  // (the site resolves the moment the target appears).  This is what makes
  // relinking O(touched edges) instead of O(all cached sites).
  struct InboundSite {
    Uuid owner;       // chain that holds the spawn site
    CallNode* node;   // the stub-side spawn node inside `owner`
  };
  std::unordered_map<Uuid, std::vector<InboundSite>> inbound_;

  std::vector<bool> is_root_;  // per chains_ slot

  std::size_t call_count_{0};
  std::size_t anomaly_count_{0};
  DscgDelta delta_;
  std::uint64_t built_generation_{0};
};

}  // namespace causeway::analysis
