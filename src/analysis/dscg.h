// The Dynamic System Call Graph (DSCG).
//
// "Each causal chain with a unique UUID will be unfolded into a tree Ti.  A
// Dynamic System Call Graph is a tree by grouping {Ti}" (paper Sec. 3.1).
// The grouping has two parts: chains spawned by oneway calls hang under the
// stub-side node that spawned them (linked via the spawned_chain UUID the
// probe recorded), and all remaining chains become top-level trees.
//
// Unlike GPROF/QUANTIFY the DSCG preserves *complete* call chains at
// unlimited depth -- it is exactly the "call path" profile generalized to
// threads, processes and processors.
//
// Construction is incremental: update(db) reconstructs only the chains that
// gained events since the last update (per the database's generation
// counter), rebuilding independent chains in parallel on a small worker
// pool, and then relinks the oneway spawn edges from a cached site list so
// unchanged trees are never re-walked.  build(db) is the from-scratch
// convenience form.
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/call_tree.h"
#include "analysis/database.h"

namespace causeway::analysis {

class Dscg {
 public:
  Dscg() = default;
  Dscg(const Dscg&) = delete;
  Dscg& operator=(const Dscg&) = delete;
  Dscg(Dscg&&) = default;
  Dscg& operator=(Dscg&&) = default;

  // Reconstructs every chain in the database and groups the forest.
  static Dscg build(const LogDatabase& db);

  // Incremental rebuild: reconstructs only chains with events newer than
  // the last update (all of them on the first call), independent chains in
  // parallel, then regroups the forest.  Returns the number of chains
  // reconstructed.  Chain order always mirrors db.chains() (first-seen),
  // so incremental and from-scratch builds yield identical graphs.
  std::size_t update(const LogDatabase& db);

  // True when the database has ingested batches this graph has not seen.
  bool stale(const LogDatabase& db) const {
    return db.generation() != built_generation_;
  }
  std::uint64_t built_generation() const { return built_generation_; }

  // Top-level trees (chains not spawned by any recorded oneway call).
  const std::vector<ChainTree*>& roots() const { return roots_; }

  // Every reconstructed chain, spawned or not.
  const std::vector<std::unique_ptr<ChainTree>>& chains() const {
    return chains_;
  }

  ChainTree* find_chain(const Uuid& id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : chains_[it->second].get();
  }

  // Total calls across all chains (DSCG nodes, virtual roots excluded).
  std::size_t call_count() const;

  // Anomalies across all chains (the paper's "abnormal" transitions).
  std::size_t anomaly_count() const;

  // Depth-first visit over the whole graph, crossing into spawned chains.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (ChainTree* tree : roots_) visit_node(tree->root.get(), fn, 0);
  }

 private:
  template <typename Fn>
  static void visit_node(const CallNode* node, Fn& fn, int depth) {
    if (!node->is_virtual_root()) fn(*node, depth);
    const int child_depth = node->is_virtual_root() ? depth : depth + 1;
    for (const auto& c : node->children) visit_node(c.get(), fn, child_depth);
    for (const ChainTree* spawned : node->spawned) {
      visit_node(spawned->root.get(), fn, child_depth);
    }
  }

  std::vector<Uuid> chains_since_built(const LogDatabase& db) const;
  void relink();

  std::vector<std::unique_ptr<ChainTree>> chains_;  // db.chains() order
  std::vector<ChainTree*> roots_;
  std::unordered_map<Uuid, std::size_t> by_id_;  // chain uuid -> chains_ slot

  // Oneway spawn sites per chain: the nodes (with their target uuids) that
  // hang child chains.  Recollected only when a chain is rebuilt; relink()
  // re-resolves every site against the current trees.
  std::unordered_map<Uuid, std::vector<std::pair<CallNode*, Uuid>>> sites_;

  std::uint64_t built_generation_{0};
};

}  // namespace causeway::analysis
