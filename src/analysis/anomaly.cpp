#include "analysis/anomaly.h"

#include "common/strings.h"

namespace causeway::analysis {

std::string_view to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kAbnormalTransition: return "abnormal-transition";
    case AnomalyKind::kCallFailure: return "call-failure";
    case AnomalyKind::kDropSpike: return "drop-spike";
    case AnomalyKind::kPublishDrop: return "publish-drop";
  }
  return "?";
}

std::string to_json(const AnomalyEvent& event) {
  return strf(
      "{\"kind\":\"%s\",\"epoch\":%llu,\"chain\":\"%s\",\"seq\":%llu,"
      "\"detail\":\"%s\"}",
      std::string(to_string(event.kind)).c_str(),
      static_cast<unsigned long long>(event.epoch),
      event.chain.to_string().c_str(),
      static_cast<unsigned long long>(event.seq),
      json_escape(event.detail).c_str());
}

void StderrAnomalySink::on_event(const AnomalyEvent& event) {
  std::fprintf(out_, "[anomaly] epoch %llu %s chain %s seq %llu: %s\n",
               static_cast<unsigned long long>(event.epoch),
               std::string(to_string(event.kind)).c_str(),
               event.chain.to_string().substr(0, 8).c_str(),
               static_cast<unsigned long long>(event.seq),
               event.detail.c_str());
  std::fflush(out_);
}

JsonlAnomalySink::JsonlAnomalySink(const std::string& path) {
  out_ = std::fopen(path.c_str(), "ab");
}

JsonlAnomalySink::~JsonlAnomalySink() {
  if (out_) std::fclose(out_);
}

void JsonlAnomalySink::on_event(const AnomalyEvent& event) {
  if (!out_) return;
  const std::string line = to_json(event) + "\n";
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

namespace {

// A node's identifying seq: the smallest seq among its captured probes.
std::uint64_t node_seq(const CallNode& node) {
  std::uint64_t seq = 0;
  bool have = false;
  for (const auto& r : node.rec) {
    if (r && (!have || r->seq < seq)) {
      seq = r->seq;
      have = true;
    }
  }
  return seq;
}

}  // namespace

void AnomalyDetector::scan(const Dscg& dscg, std::span<const Uuid> rebuilt,
                           std::uint64_t epoch,
                           std::vector<AnomalyEvent>& out) {
  for (const Uuid& id : rebuilt) {
    const ChainTree* tree = dscg.find_chain(id);
    if (!tree) continue;
    ChainState& state = chains_[id];

    // Reconstruction appends events in seq order, so previously-reported
    // anomalies stay a prefix of the rebuilt chain's anomaly list; report
    // only the tail.  (A pathological seq reordering that *shrinks* the
    // list resets the watermark rather than crash.)
    if (state.transitions_reported > tree->anomalies.size()) {
      state.transitions_reported = tree->anomalies.size();
    }
    for (std::size_t i = state.transitions_reported;
         i < tree->anomalies.size(); ++i) {
      const Anomaly& a = tree->anomalies[i];
      out.push_back({AnomalyKind::kAbnormalTransition, epoch, id, a.seq,
                     a.reason});
    }
    state.transitions_reported = tree->anomalies.size();

    Dscg::visit_tree(*tree, [&](const CallNode& node, int) {
      // Only this chain's own nodes -- spawned chains get their own scan
      // when they are rebuilt.
      const auto& any = node.record(monitor::EventKind::kSkelEnd);
      const auto& stub = node.record(monitor::EventKind::kStubEnd);
      const monitor::TraceRecord* owner =
          any ? &*any : (stub ? &*stub : nullptr);
      if (!owner || !(owner->chain == id)) return;
      if (!node.failed()) return;
      const std::uint64_t seq = node_seq(node);
      if (!state.failure_seqs.insert(seq).second) return;
      out.push_back(
          {AnomalyKind::kCallFailure, epoch, id, seq,
           strf("%s::%s -> %s",
                std::string(node.interface_name).c_str(),
                std::string(node.function_name).c_str(),
                std::string(to_string(node.outcome())).c_str())});
    });
  }
}

void AnomalyDetector::drops(std::uint64_t dropped_delta,
                            std::uint64_t publish_dropped_delta,
                            std::uint64_t epoch,
                            std::vector<AnomalyEvent>& out) {
  if (dropped_delta != 0) {
    out.push_back({AnomalyKind::kDropSpike, epoch, Uuid{}, 0,
                   strf("%llu records dropped by the collection tier",
                        static_cast<unsigned long long>(dropped_delta))});
  }
  if (publish_dropped_delta != 0) {
    out.push_back(
        {AnomalyKind::kPublishDrop, epoch, Uuid{}, 0,
         strf("%llu records dropped by the transport tier (publish "
              "back-pressure)",
              static_cast<unsigned long long>(publish_dropped_delta))});
  }
}

}  // namespace causeway::analysis
