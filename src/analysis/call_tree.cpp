#include "analysis/call_tree.h"

#include "common/strings.h"

namespace causeway::analysis {

using monitor::CallKind;
using monitor::EventKind;
using monitor::TraceRecord;

void CpuVector::add(std::string_view type, Nanos ns) {
  for (auto& [t, v] : by_type) {
    if (t == type) {
      v += ns;
      return;
    }
  }
  by_type.emplace_back(type, ns);
}

void CpuVector::add(const CpuVector& other) {
  for (const auto& [t, v] : other.by_type) add(t, v);
}

Nanos CpuVector::of(std::string_view type) const {
  for (const auto& [t, v] : by_type) {
    if (t == type) return v;
  }
  return 0;
}

std::string_view CallNode::server_process() const {
  if (record(EventKind::kSkelStart)) {
    return record(EventKind::kSkelStart)->process_name;
  }
  if (record(EventKind::kStubStart)) {
    return record(EventKind::kStubStart)->process_name;
  }
  return {};
}

std::string_view CallNode::server_processor_type() const {
  if (record(EventKind::kSkelStart)) {
    return record(EventKind::kSkelStart)->processor_type;
  }
  if (record(EventKind::kStubStart)) {
    return record(EventKind::kStubStart)->processor_type;
  }
  return {};
}

std::size_t CallNode::subtree_size() const {
  std::size_t n = is_virtual_root() ? 0 : 1;
  for (const auto& c : children) n += c->subtree_size();
  return n;
}

namespace {

// Incremental parser state over one chain.
class ChainParser {
 public:
  explicit ChainParser(const Uuid& chain) {
    tree_.chain = chain;
    tree_.root = std::make_unique<CallNode>();
    current_ = tree_.root.get();
  }

  void feed(const TraceRecord& r) {
    check_sequence(r);
    switch (r.event) {
      case EventKind::kStubStart: on_stub_start(r); break;
      case EventKind::kSkelStart: on_skel_start(r); break;
      case EventKind::kSkelEnd: on_skel_end(r); break;
      case EventKind::kStubEnd: on_stub_end(r); break;
    }
  }

  ChainTree finish() {
    if (current_ != tree_.root.get()) {
      anomaly(last_seq_, "chain ended mid-call (records missing at the tail)");
    }
    return std::move(tree_);
  }

 private:
  void check_sequence(const TraceRecord& r) {
    if (have_seq_ && r.seq != last_seq_ + 1) {
      anomaly(r.seq, strf("event number gap: expected %llu, saw %llu",
                          static_cast<unsigned long long>(last_seq_ + 1),
                          static_cast<unsigned long long>(r.seq)));
    }
    last_seq_ = r.seq;
    have_seq_ = true;
  }

  void on_stub_start(const TraceRecord& r) {
    auto node = std::make_unique<CallNode>();
    node->interface_name = r.interface_name;
    node->function_name = r.function_name;
    node->object_key = r.object_key;
    node->kind = r.kind;
    node->spawned_chain = r.spawned_chain;
    node->rec[0] = r;
    node->parent = current_;
    current_->children.push_back(std::move(node));
    current_ = current_->children.back().get();
  }

  void on_skel_start(const TraceRecord& r) {
    if (current_->is_virtual_root()) {
      if (tree_.root->children.empty()) {
        // A chain that *begins* with a skeleton event is either the callee
        // side of a oneway call (the spawned child chain, paper Sec. 2.2) or
        // a fresh chain started because the caller was not instrumented.
        tree_.oneway_child = (r.kind == CallKind::kOneway);
        tree_.skeleton_rooted = true;
        auto node = std::make_unique<CallNode>();
        node->interface_name = r.interface_name;
        node->function_name = r.function_name;
        node->object_key = r.object_key;
        node->kind = r.kind;
        node->rec[1] = r;
        node->parent = current_;
        current_->children.push_back(std::move(node));
        current_ = current_->children.back().get();
        return;
      }
      anomaly(r.seq, "skel_start with no open call");
      return;
    }
    if (current_->rec[1] || !matches(r)) {
      anomaly(r.seq, "skel_start does not continue the open call");
      return;
    }
    current_->rec[1] = r;
  }

  void on_skel_end(const TraceRecord& r) {
    if (current_->is_virtual_root() || !current_->rec[1] ||
        current_->rec[2] || !matches(r)) {
      anomaly(r.seq, "skel_end without matching skel_start");
      return;
    }
    current_->rec[2] = r;
    // "One-Way Function Skel-Side Returns": a skeleton-rooted frame has no
    // stub events, so skel_end closes it.
    if (!current_->rec[0]) {
      current_ = current_->parent;
    }
  }

  void on_stub_end(const TraceRecord& r) {
    if (current_->is_virtual_root() || !current_->rec[0] ||
        current_->rec[3] || !matches(r)) {
      anomaly(r.seq, "stub_end without matching stub_start");
      return;
    }
    if (r.kind != CallKind::kOneway && !current_->rec[2]) {
      // A sync call returning without skeleton events means the callee was
      // not instrumented (legal, partial data) -- note it, keep the node.
      if (current_->rec[1]) {
        anomaly(r.seq, "stub_end while skeleton still open");
      }
    }
    current_->rec[3] = r;
    current_ = current_->parent;
  }

  bool matches(const TraceRecord& r) const {
    return r.function_name == current_->function_name &&
           r.interface_name == current_->interface_name;
  }

  // The paper's "abnormal" transition: flag and restart from the next
  // record.  The offending record is dropped; parser state is kept so the
  // rest of the chain can still contribute structure.
  void anomaly(std::uint64_t seq, std::string reason) {
    tree_.anomalies.push_back({seq, std::move(reason)});
  }

  ChainTree tree_;
  CallNode* current_;
  std::uint64_t last_seq_{0};
  bool have_seq_{false};
};

}  // namespace

ChainTree build_chain_tree(
    const Uuid& chain, const std::vector<const TraceRecord*>& events) {
  ChainParser parser(chain);
  for (const TraceRecord* r : events) parser.feed(*r);
  return parser.finish();
}

namespace {

void reset_node_annotations(CallNode& node) {
  node.latency.reset();
  node.latency_overhead = 0;
  node.raw_latency.reset();
  node.self_cpu = CpuVector{};
  node.descendant_cpu = CpuVector{};
  for (auto& c : node.children) reset_node_annotations(*c);
}

}  // namespace

void reset_annotations(ChainTree& tree) {
  if (tree.root) reset_node_annotations(*tree.root);
}

}  // namespace causeway::analysis
