// End-to-end timing latency (paper Sec. 3.2).
//
// For a synchronous or oneway(stub-side) call:
//     L(F) = P_{F,4,start} - P_{F,1,end} - O_F
// For a collocated or oneway(skeleton-side) call:
//     L(F) = P_{F,3,start} - P_{F,2,end} - O_F
//
// Both formulas difference two samples taken in the *same* process domain
// (the stub pair lives with the client, the skeleton pair with the server),
// which is why no global clock synchronization is ever needed.
//
// O_F is the monitoring overhead correction: the sum of the probe
// self-durations of F's descendant invocations, where a descendant
// contributes its probes R = {1,2,3,4} if synchronous/collocated and
// R = {1,4} if oneway (the oneway callee's skeleton probes run in another
// thread, outside F's measured window).  F's own probes 2/3 are *inside* the
// stub-to-stub window and are intentionally not subtracted -- the residual
// is the accuracy gap the paper quantifies in its PPS experiment.
#pragma once

#include "analysis/dscg.h"

namespace causeway::analysis {

struct LatencyReport {
  std::size_t annotated{0};  // nodes with a computed latency
  std::size_t skipped{0};    // partial nodes / wrong probe mode
};

// Annotates every node of the DSCG with latency / raw_latency / overhead.
// Requires the database to have been captured in ProbeMode::kLatency.
LatencyReport annotate_latency(Dscg& dscg);

// Per-chain unit: latency is computed purely from a chain's own records
// (spawned chains run outside the measured window), so the incremental
// pipeline re-annotates only rebuilt chains.  Resets the chain's latency
// fields first -- calling it again is idempotent.
void annotate_chain_latency(ChainTree& tree, LatencyReport& report);

}  // namespace causeway::analysis
