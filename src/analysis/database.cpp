#include "analysis/database.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "analysis/columns.h"
#include "common/worker_pool.h"

namespace causeway::analysis {
namespace {

// Below this batch size the partition/merge bookkeeping costs more than the
// parallelism recovers; ingest the shards on the calling thread instead
// (same code path, same output -- only the scheduling differs).
constexpr std::size_t kParallelIngestThreshold = 8192;

std::size_t resolve_shard_count(std::size_t requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("CAUSEWAY_INGEST_SHARDS")) {
      requested = static_cast<std::size_t>(std::atoll(env));
    }
  }
  if (requested == 0) {
    requested = std::thread::hardware_concurrency();
  }
  return std::clamp<std::size_t>(requested, 1, 64);
}

}  // namespace

LogDatabase::LogDatabase(std::size_t shard_count)
    : shards_(resolve_shard_count(shard_count)) {}

std::string_view LogDatabase::Shard::intern(std::string_view s) {
  auto it = interned.find(s);
  if (it != interned.end()) return it->second;
  pool.emplace_back(s);
  std::string_view stable = pool.back();
  interned.emplace(stable, stable);
  return stable;
}

// Ingests this shard's partition of one batch.  `source` is the whole batch
// span; `batch` holds the indexes assigned to this shard, ascending, so the
// shard sees its records in arrival order.  Writes land in the shared arena
// at base + index -- slots no other shard touches.
void LogDatabase::Shard::ingest_batch(
    std::span<const monitor::TraceRecord> source,
    std::vector<monitor::TraceRecord>& arena, std::size_t base,
    std::uint64_t generation) {
  dirty.clear();
  new_types.clear();
  for (const std::size_t i : batch) {
    monitor::TraceRecord r = source[i];
    r.interface_name = intern(r.interface_name);
    r.function_name = intern(r.function_name);
    r.process_name = intern(r.process_name);
    r.node_name = intern(r.node_name);
    r.processor_type = intern(r.processor_type);

    auto [it, inserted] = by_chain.try_emplace(r.chain);
    ChainIndex& index = it->second;
    const std::uint64_t weight = r.sample_weight();
    weighted_records += weight;
    if (inserted) weighted_chains += weight;
    if (weight > 1) weight_seen = true;
    if (index.last_gen != generation) {
      // First record for this chain in the current batch: log it dirty
      // once, remembering the generation it last belonged to.
      dirty.push_back({i, r.chain, index.last_gen});
      index.last_gen = generation;
    }
    // Seq-order watermark: while events arrive ascending, the whole list
    // stays a sorted prefix and chain_events never has to sort.
    if (index.sorted_prefix == index.events.size() &&
        (index.events.empty() || r.seq >= index.prefix_last_seq)) {
      ++index.sorted_prefix;
      index.prefix_last_seq = r.seq;
    }
    index.events.push_back(base + i);

    mode_counts[static_cast<std::size_t>(r.mode)]++;
    if (type_set.insert(r.processor_type).second) {
      new_types.emplace_back(i, r.processor_type);
    }
    arena[base + i] = r;
  }
}

// Expands this shard's runs of one column batch straight into the arena --
// the column-at-a-time twin of ingest_batch.  Per-run work (chain lookup,
// dirty logging) happens once per run; per-record work is a scatter of
// column values into the record slot.  String ids resolve lazily through a
// per-batch cache of the segment table, so each distinct id hits the
// interner hash at most once per batch.
void LogDatabase::Shard::ingest_column_batch(
    const ColumnBundle& cols, std::vector<monitor::TraceRecord>& arena,
    std::size_t base, std::uint64_t generation) {
  dirty.clear();
  new_types.clear();
  resolved.assign(cols.table.size(), std::string_view{});
  type_checked.assign(cols.table.size(), 0);
  auto resolve = [&](std::uint32_t id) -> std::string_view {
    std::string_view& v = resolved[id];
    if (v.data() == nullptr) v = intern(cols.table[id]);
    return v;
  };
  for (const RunRef& ref : column_batch) {
    const ColumnBundle::Run& run = cols.runs[ref.run];
    auto [it, inserted] = by_chain.try_emplace(run.chain);
    ChainIndex& index = it->second;
    if (inserted) {
      // A chain counts the weight of its first record -- which is the
      // first record of its first run.
      weighted_chains += monitor::sample_rate(
          static_cast<std::uint8_t>(cols.flags2[ref.first] >> 3));
    }
    if (index.last_gen != generation) {
      dirty.push_back({ref.first, run.chain, index.last_gen});
      index.last_gen = generation;
    }
    std::size_t next_spawn = run.spawn_base;
    for (std::uint64_t j = 0; j < run.length; ++j) {
      const std::size_t i = ref.first + static_cast<std::size_t>(j);
      monitor::TraceRecord& r = arena[base + i];
      r.chain = run.chain;
      r.seq = cols.seq[i];
      const std::uint8_t f1 = cols.flags1[i];
      r.event = static_cast<monitor::EventKind>(f1 & 7);
      r.kind = static_cast<monitor::CallKind>((f1 >> 3) & 3);
      r.outcome = static_cast<monitor::CallOutcome>((f1 >> 5) & 3);
      const std::uint8_t f2 = cols.flags2[i];
      r.mode = static_cast<monitor::ProbeMode>(f2 & 3);
      if (f2 & 4) r.spawned_chain = cols.spawned[next_spawn++];
      r.sample_rate_index = static_cast<std::uint8_t>(f2 >> 3);
      r.interface_name = resolve(cols.iface[i]);
      r.function_name = resolve(cols.func[i]);
      r.object_key = cols.object_key[i];
      r.process_name = resolve(cols.process[i]);
      r.node_name = resolve(cols.node[i]);
      const std::uint32_t type_id = cols.type[i];
      r.processor_type = resolve(type_id);
      if (!type_checked[type_id]) {
        // First record of this batch carrying this type id: the table is
        // deduplicated, so this is also the string's first appearance --
        // the one probe record-major ingest would log it at.
        type_checked[type_id] = 1;
        if (type_set.insert(r.processor_type).second) {
          new_types.emplace_back(i, r.processor_type);
        }
      }
      r.thread_ordinal = cols.thread_ordinal[i];
      r.value_start = cols.value_start[i];
      r.value_end = cols.value_end[i];

      const std::uint64_t weight = r.sample_weight();
      weighted_records += weight;
      if (weight > 1) weight_seen = true;
      if (index.sorted_prefix == index.events.size() &&
          (index.events.empty() || r.seq >= index.prefix_last_seq)) {
        ++index.sorted_prefix;
        index.prefix_last_seq = r.seq;
      }
      index.events.push_back(base + i);
      mode_counts[static_cast<std::size_t>(r.mode)]++;
    }
  }
}

void LogDatabase::merge_domains(
    const std::vector<monitor::CollectedLogs::DomainEntry>& domains) {
  for (const auto& d : domains) {
    // Merge by identity: N streaming epochs each announce the same domains,
    // and must synthesize to the single entry an offline collect produces.
    // The probe key is stack-built views into the bundle -- no allocation
    // unless the domain is genuinely new.
    const DomainKey probe{d.identity.process_name, d.identity.node_name,
                          d.identity.processor_type, d.mode};
    auto it = domain_index_.find(probe);
    if (it == domain_index_.end()) {
      domain_pool_.emplace_back(d.identity.process_name);
      const std::string_view process = domain_pool_.back();
      domain_pool_.emplace_back(d.identity.node_name);
      const std::string_view node = domain_pool_.back();
      domain_pool_.emplace_back(d.identity.processor_type);
      const std::string_view type = domain_pool_.back();
      domain_index_.emplace(DomainKey{process, node, type, d.mode},
                            domains_.size());
      domains_.push_back({d.identity.process_name, d.identity.node_name,
                          d.identity.processor_type, d.mode, d.record_count});
    } else {
      domains_[it->second].record_count += d.record_count;
    }
  }
}

std::size_t LogDatabase::grow_arena(std::size_t n) {
  // Grow geometrically: an exact-fit reserve would reallocate (and copy the
  // whole store) on every epoch of a streaming ingest.  The arena is sized
  // up front so the shards can scatter-write their disjoint slots.
  const std::size_t base = records_.size();
  const std::size_t needed = base + n;
  if (records_.capacity() < needed) {
    records_.reserve(std::max(needed, records_.capacity() * 2));
  }
  records_.resize(needed);
  return base;
}

void LogDatabase::ingest(const monitor::CollectedLogs& logs) {
  merge_domains(logs.domains);
  overflow_dropped_ += logs.dropped;
  publish_dropped_ += logs.publish_dropped;
  sampled_out_ += logs.sampled_out;
  last_epoch_ = std::max(last_epoch_, logs.epoch);
  ingest_records(logs.records);
}

void LogDatabase::ingest(const ColumnBundle& cols) {
  merge_domains(cols.domains);
  overflow_dropped_ += cols.dropped;
  last_epoch_ = std::max(last_epoch_, cols.epoch);
  if (cols.count == 0) return;  // no generation for an empty batch
  ++generation_;
  const std::size_t base = grow_arena(cols.count);

  // Partition by chain at *run* granularity: one hash + one queue push per
  // run instead of per record.  Every record of a run shares its chain, so
  // the per-record scatter stays entirely shard-local.
  for (auto& shard : shards_) shard.column_batch.clear();
  std::size_t first = 0;
  for (std::size_t k = 0; k < cols.runs.size(); ++k) {
    shards_[shard_of(cols.runs[k].chain)].column_batch.push_back(
        {first, static_cast<std::uint32_t>(k)});
    first += static_cast<std::size_t>(cols.runs[k].length);
  }

  auto ingest_shard = [&](std::size_t s) {
    shards_[s].ingest_column_batch(cols, records_, base, generation_);
  };
  if (shards_.size() > 1 && cols.count >= kParallelIngestThreshold) {
    WorkerPool::shared().parallel_for(shards_.size(), ingest_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) ingest_shard(s);
  }
  merge_batch_scratch();
}

void LogDatabase::ingest_records(
    std::span<const monitor::TraceRecord> records) {
  if (records.empty()) return;
  ++generation_;
  const std::size_t base = grow_arena(records.size());

  // Partition by chain UUID.  Every event of a chain maps to one shard, so
  // the parallel phase below has no cross-shard writes at all.
  for (auto& shard : shards_) shard.batch.clear();
  if (shards_.size() == 1) {
    auto& batch = shards_[0].batch;
    batch.resize(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) batch[i] = i;
  } else {
    for (std::size_t i = 0; i < records.size(); ++i) {
      shards_[shard_of(records[i].chain)].batch.push_back(i);
    }
  }

  auto ingest_shard = [&](std::size_t s) {
    shards_[s].ingest_batch(records, records_, base, generation_);
  };
  if (shards_.size() > 1 && records.size() >= kParallelIngestThreshold) {
    WorkerPool::shared().parallel_for(shards_.size(), ingest_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) ingest_shard(s);
  }
  merge_batch_scratch();
}

void LogDatabase::merge_batch_scratch() {
  // Merge the shard-local first-seen logs back into global arrival order.
  // Arrival indexes are unique across shards (each record went to exactly
  // one), so the sort is a deterministic total order -- the same one a
  // single-threaded ingest of the batch produces.
  std::size_t dirty_count = 0;
  std::size_t type_count = 0;
  for (const auto& shard : shards_) {
    dirty_count += shard.dirty.size();
    type_count += shard.new_types.size();
  }

  std::vector<Shard::DirtyScratch> dirty_merge;
  dirty_merge.reserve(dirty_count);
  for (const auto& shard : shards_) {
    dirty_merge.insert(dirty_merge.end(), shard.dirty.begin(),
                       shard.dirty.end());
  }
  std::sort(dirty_merge.begin(), dirty_merge.end(),
            [](const Shard::DirtyScratch& a, const Shard::DirtyScratch& b) {
              return a.arrival < b.arrival;
            });
  dirty_log_.reserve(dirty_log_.size() + dirty_merge.size());
  for (const auto& d : dirty_merge) {
    dirty_log_.push_back({generation_, d.chain, d.prev_gen});
    // prev_gen 0 marks a chain born this batch (real generations start at
    // 1), so the dirty merge doubles as the first-seen chain merge.
    if (d.prev_gen == 0) chains_.push_back(d.chain);
  }

  if (type_count > 0) {
    std::vector<std::pair<std::size_t, std::string_view>> type_merge;
    type_merge.reserve(type_count);
    for (const auto& shard : shards_) {
      type_merge.insert(type_merge.end(), shard.new_types.begin(),
                        shard.new_types.end());
    }
    std::sort(type_merge.begin(), type_merge.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& entry : type_merge) {
      if (processor_type_set_.insert(entry.second).second) {
        processor_types_.push_back(entry.second);
      }
    }
  }
}

std::vector<const monitor::TraceRecord*> LogDatabase::chain_events(
    const Uuid& chain) const {
  std::vector<const monitor::TraceRecord*> out;
  const Shard& shard = shards_[shard_of(chain)];
  auto it = shard.by_chain.find(chain);
  if (it == shard.by_chain.end()) return out;
  const ChainIndex& index = it->second;
  out.reserve(index.events.size());
  for (std::size_t i : index.events) out.push_back(&records_[i]);
  if (index.sorted_prefix >= out.size()) return out;  // already ascending
  // Out-of-order tail (rare: cross-thread interleaving or corrupt logs):
  // sort only the tail, then stable-merge with the sorted prefix.  Both
  // steps keep insertion order among equal seqs, so the result is exactly
  // what a stable_sort of the whole list yields.
  const auto by_seq = [](const monitor::TraceRecord* a,
                         const monitor::TraceRecord* b) {
    return a->seq < b->seq;
  };
  const auto mid = out.begin() + static_cast<std::ptrdiff_t>(index.sorted_prefix);
  std::stable_sort(mid, out.end(), by_seq);
  std::inplace_merge(out.begin(), mid, out.end(), by_seq);
  return out;
}

std::vector<Uuid> LogDatabase::chains_since(std::uint64_t gen) const {
  // Entries are appended with ascending generations; binary-search the
  // first batch newer than `gen`.  A chain is emitted at the first of its
  // entries past the cut -- recognizable without any per-call set because
  // each entry remembers the chain's previous touching generation.
  auto it = std::lower_bound(
      dirty_log_.begin(), dirty_log_.end(), gen,
      [](const DirtyEntry& entry, std::uint64_t g) { return entry.gen <= g; });
  std::vector<Uuid> out;
  for (; it != dirty_log_.end(); ++it) {
    if (it->prev_gen <= gen) out.push_back(it->chain);
  }
  return out;
}

std::uint64_t LogDatabase::weighted_records() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard.weighted_records;
  return sum;
}

std::uint64_t LogDatabase::weighted_chains() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) sum += shard.weighted_chains;
  return sum;
}

bool LogDatabase::sampling_active() const {
  if (sampled_out_ > 0) return true;
  for (const auto& shard : shards_) {
    if (shard.weight_seen) return true;
  }
  return false;
}

monitor::ProbeMode LogDatabase::primary_mode() const {
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < 3; ++i) counts[i] += shard.mode_counts[i];
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<monitor::ProbeMode>(best);
}

}  // namespace causeway::analysis
