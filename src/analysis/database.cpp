#include "analysis/database.h"

#include <algorithm>

namespace causeway::analysis {

std::string_view LogDatabase::intern(std::string_view s) {
  auto it = interned_.find(s);
  if (it != interned_.end()) return it->second;
  pool_.emplace_back(s);
  std::string_view stable = pool_.back();
  interned_.emplace(stable, stable);
  return stable;
}

void LogDatabase::add_record(monitor::TraceRecord r) {
  r.interface_name = intern(r.interface_name);
  r.function_name = intern(r.function_name);
  r.process_name = intern(r.process_name);
  r.node_name = intern(r.node_name);
  r.processor_type = intern(r.processor_type);

  const std::size_t index = records_.size();
  auto [it, inserted] = by_chain_.try_emplace(r.chain);
  if (inserted) chains_.push_back(r.chain);
  it->second.events.push_back(index);
  if (it->second.last_gen != generation_) {
    // First record for this chain in the current batch: log it dirty once.
    dirty_log_.emplace_back(generation_, r.chain);
  }
  it->second.last_gen = generation_;
  mode_counts_[static_cast<std::size_t>(r.mode)]++;
  if (processor_type_set_.insert(r.processor_type).second) {
    processor_types_.push_back(r.processor_type);
  }
  records_.push_back(r);
}

void LogDatabase::ingest(const monitor::CollectedLogs& logs) {
  for (const auto& d : logs.domains) {
    // Merge by identity: N streaming epochs each announce the same domains,
    // and must synthesize to the single entry an offline collect produces.
    std::string key;
    key.reserve(d.identity.process_name.size() +
                d.identity.node_name.size() +
                d.identity.processor_type.size() + 4);
    key.append(d.identity.process_name).push_back('\0');
    key.append(d.identity.node_name).push_back('\0');
    key.append(d.identity.processor_type).push_back('\0');
    key.push_back(static_cast<char>(d.mode));
    auto [it, inserted] = domain_index_.try_emplace(key, domains_.size());
    if (inserted) {
      domains_.push_back({d.identity.process_name, d.identity.node_name,
                          d.identity.processor_type, d.mode, d.record_count});
    } else {
      domains_[it->second].record_count += d.record_count;
    }
  }
  overflow_dropped_ += logs.dropped;
  last_epoch_ = std::max(last_epoch_, logs.epoch);
  ingest_records(logs.records);
}

void LogDatabase::ingest_records(
    std::span<const monitor::TraceRecord> records) {
  if (records.empty()) return;
  ++generation_;
  // Grow geometrically: an exact-fit reserve would reallocate (and copy the
  // whole store) on every epoch of a streaming ingest.
  const std::size_t needed = records_.size() + records.size();
  if (records_.capacity() < needed) {
    records_.reserve(std::max(needed, records_.capacity() * 2));
  }
  for (const auto& r : records) add_record(r);
}

std::vector<const monitor::TraceRecord*> LogDatabase::chain_events(
    const Uuid& chain) const {
  std::vector<const monitor::TraceRecord*> out;
  auto it = by_chain_.find(chain);
  if (it == by_chain_.end()) return out;
  out.reserve(it->second.events.size());
  for (std::size_t index : it->second.events) out.push_back(&records_[index]);
  std::stable_sort(out.begin(), out.end(),
                   [](const monitor::TraceRecord* a,
                      const monitor::TraceRecord* b) { return a->seq < b->seq; });
  return out;
}

std::vector<Uuid> LogDatabase::chains_since(std::uint64_t gen) const {
  // Entries are appended with ascending generations; binary-search the first
  // batch newer than `gen`, then dedup keeping first occurrence (which is
  // first-seen order for chains born after `gen`).
  auto it = std::upper_bound(
      dirty_log_.begin(), dirty_log_.end(), gen,
      [](std::uint64_t g, const auto& entry) { return g < entry.first; });
  std::vector<Uuid> out;
  std::unordered_set<Uuid> seen;
  for (; it != dirty_log_.end(); ++it) {
    if (seen.insert(it->second).second) out.push_back(it->second);
  }
  return out;
}

monitor::ProbeMode LogDatabase::primary_mode() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (mode_counts_[i] > mode_counts_[best]) best = i;
  }
  return static_cast<monitor::ProbeMode>(best);
}

}  // namespace causeway::analysis
