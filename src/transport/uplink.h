// Uplink: the publisher-side stream core, factored out of EpochPublisher
// so every producer of collection bytes -- a monitored process's epoch
// drainer, a relay daemon forwarding another tier's segments -- shares one
// implementation of the hard parts:
//
//   * connect/backoff/reconnect over any StreamEndpoint (unix or tcp),
//     with ±25% jitter on the backoff delay so N publishers do not
//     reconnect in lockstep after a daemon restart (thundering herd on
//     the accept queue);
//   * the bounded outgoing queue with drop-not-block semantics: whole new
//     segments are discarded past max_inflight_bytes, the queued clean
//     prefix always wins, and every loss is folded into the next CWDN
//     drop notice;
//   * CWHS framing: a fresh handshake leads every connection, and a
//     partially sent segment is rewound to byte 0 on disconnect (the
//     daemon discarded the partial tail);
//   * the CWCT read path (directives handed to a callback; garbage on the
//     control channel drops the connection) and CWST accounting (pending
//     sampled-out deltas survive disconnects -- no suppressed record is
//     ever lost to a reconnect).
//
// The uplink owns one worker thread that pumps the queue; producers call
// offer_segment / note_drops / offer_status from any thread.  Nothing in
// this file knows what kind of socket carries the bytes -- the address
// string is parsed once (at construction, so misconfiguration throws
// before any thread starts) and handed to connect_endpoint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "transport/endpoint.h"
#include "transport/protocol.h"

namespace causeway::transport {

struct UplinkConfig {
  std::string address;       // unix:/path, tcp:host:port, or a bare path
  std::string process_name;  // CWHS identity (relays forward the origin's)
  std::uint64_t pid{0};      // 0 = this process's pid
  std::uint32_t trace_format{0};
  // Back-pressure bound on queued-but-unsent segment bytes.
  std::size_t max_inflight_bytes{4u << 20};
  // Reconnect backoff: initial delay, doubled per failure up to the max,
  // then jittered ±25% (disable for deterministic tests).
  std::uint64_t reconnect_initial_ms{10};
  std::uint64_t reconnect_max_ms{1000};
  bool backoff_jitter{true};
  // Bound on one TCP connect attempt (SYN handshake), not on retries.
  std::uint64_t connect_timeout_ms{1000};
  // Kernel send-buffer cap (SO_SNDBUF; 0 = kernel default).  A wedged or
  // slow daemon then back-pressures into this uplink's own bounded queue
  // -- where it is counted -- instead of into megabytes of autotuned
  // kernel buffer.
  std::size_t sndbuf_bytes{0};
};

class Uplink {
 public:
  struct Stats {
    std::uint64_t segments_sent{0};
    std::uint64_t records_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t dropped_segments{0};  // back-pressure + flush-deadline
    std::uint64_t dropped_records{0};
    std::uint64_t reconnects{0};  // successful connections after the first
    std::uint64_t directives_received{0};
  };

  // `on_directive` runs on the uplink's worker thread for every CWCT frame
  // (may be empty: directives are then decoded -- the stream must stay
  // framed -- and dropped, indistinguishable from a v1 publisher).
  // Throws TransportError when the address does not parse.
  Uplink(UplinkConfig config,
         std::function<void(const ControlDirective&)> on_directive);
  ~Uplink();
  Uplink(const Uplink&) = delete;
  Uplink& operator=(const Uplink&) = delete;

  void start();

  // Stops the worker after flushing the queue, bounded by `flush_timeout_ms`;
  // whatever cannot be delivered in time is counted as dropped, never
  // waited on forever.  Returns true when everything queued was delivered.
  // Idempotent.
  bool finish(std::uint64_t flush_timeout_ms);

  bool connected() const { return connected_.load(std::memory_order_relaxed); }
  const EndpointAddress& address() const { return address_; }
  Stats stats() const;

  // Drop-not-block enqueue of one encoded trace segment.  Returns false
  // when the in-flight bound rejected it; the loss is already folded into
  // the pending drop notice (and the stats).
  bool offer_segment(std::vector<std::uint8_t> bytes, std::uint64_t records);

  // Folds externally observed loss (e.g. a downstream tier's drop notice)
  // into this uplink's next CWDN.
  void note_drops(std::uint64_t records, std::uint64_t segments);

  // CWST accounting: fold `sampled_out` into the pending delta and ship a
  // status frame when the control channel is live and there is something
  // to say (a newly applied directive seq, or a non-zero delta).  Deltas
  // that cannot ship yet are held -- across reconnects -- until they can.
  void offer_status(std::uint64_t applied_seq, std::uint64_t sampled_out,
                    std::uint8_t sample_rate_index, std::uint8_t mode);

 private:
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::uint64_t records{0};
    bool is_segment{false};  // handshakes/notices are not back-pressure-bound
    // For drop-notice entries: segment count carried, so an unsent notice
    // folds back into the pending counters on disconnect.
    std::uint64_t notice_segments{0};
    // For control-status entries: the sampled-out delta carried, so an
    // unsent status folds its count back for the next one.
    bool is_status{false};
    std::uint64_t status_sampled_out{0};
  };

  void run();
  bool ensure_connected(std::uint64_t now_ms);
  void schedule_reconnect(std::uint64_t now_ms);
  void pump_endpoint();
  void read_endpoint();
  void handle_disconnect();
  void enqueue_status_locked(std::uint64_t applied_seq);  // mutex_ held
  bool queue_empty() const;  // mutex_ held

  const UplinkConfig config_;
  EndpointAddress address_;
  std::function<void(const ControlDirective&)> on_directive_;

  std::thread worker_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_{false};
  bool started_{false};
  bool finished_{false};
  bool flushed_clean_{false};
  std::uint64_t flush_timeout_ms_{5000};

  // Endpoint state (worker thread only).
  StreamEndpoint endpoint_;
  std::atomic<bool> connected_{false};
  std::uint64_t backoff_ms_{0};
  std::uint64_t next_connect_ms_{0};
  bool ever_connected_{false};
  std::uint64_t jitter_state_;
  std::vector<std::uint8_t> in_buffer_;

  // Outgoing queue and CWDN/CWST ledgers (guarded by mutex_).
  std::deque<Entry> queue_;
  std::size_t inflight_segment_bytes_{0};
  std::size_t front_offset_{0};  // bytes of queue_.front() already sent
  std::uint64_t pending_drop_records_{0};
  std::uint64_t pending_drop_segments_{0};
  bool control_live_{false};
  std::uint64_t pending_status_sampled_out_{0};
  std::uint64_t last_status_seq_{0};
  std::uint64_t last_offered_seq_{0};
  std::uint8_t last_rate_index_{0};
  std::uint8_t last_mode_{0};

  std::atomic<std::uint64_t> segments_sent_{0};
  std::atomic<std::uint64_t> records_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> dropped_segments_{0};
  std::atomic<std::uint64_t> dropped_records_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> directives_received_{0};
};

}  // namespace causeway::transport
