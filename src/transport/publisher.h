// EpochPublisher: the producer half of the cross-process collection
// transport.
//
// A monitored process runs one of these next to its Collector.  A
// background thread drains the process-local rings on the adaptive epoch
// cadence (the same Collector::drain() the in-process streaming path
// uses), encodes each non-empty bundle as a trace segment -- byte-for-byte
// the encoding `causeway-record --stream` writes to disk -- and hands it
// to an Uplink, which ships it over a stream endpoint (Unix-domain or
// TCP; the address string decides) to a causeway-collectd daemon.
//
// The byte-moving policy lives in the Uplink and is shared with every
// other producer tier (e.g. a relay daemon): bounded drop-not-block
// queueing with CWDN accounting, reconnect with jittered exponential
// backoff and a fresh handshake, partial-segment rewind, the CWCT/CWST
// control channel.  What remains here is the *epoch* half:
//
//   * the drain cadence (adaptive exactly as `causeway-record --stream`);
//   * the epoch-apply discipline for control: CWCT directives are staged
//     on the collector's runtimes immediately and take effect at the next
//     drain boundary, after which the publisher reports back with a CWST
//     status carrying the applied directive seq and the records sampling
//     suppressed that epoch;
//   * the final drain on finish() -- always shipped, even when empty, so
//     the daemon learns the full domain inventory -- followed by the
//     uplink's bounded flush.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "monitor/collector.h"
#include "transport/protocol.h"
#include "transport/uplink.h"

namespace causeway::transport {

struct PublisherConfig {
  // Daemon address: "unix:/path", "tcp:host:port", or a bare socket path.
  std::string address;
  std::string process_name;
  std::uint32_t trace_format{0};  // 0 = kTraceFormatDefault
  // Base drain interval; the adaptive cadence policy stretches/shrinks it
  // exactly as `causeway-record --stream` does.
  std::uint64_t interval_ms{50};
  bool adaptive{true};
  // Back-pressure bound on queued-but-unsent segment bytes.
  std::size_t max_inflight_bytes{4u << 20};
  // Reconnect backoff: initial delay, doubled per failure up to the max,
  // jittered ±25% unless disabled.
  std::uint64_t reconnect_initial_ms{10};
  std::uint64_t reconnect_max_ms{1000};
  bool backoff_jitter{true};
  // Kernel send-buffer cap (SO_SNDBUF; 0 = kernel default) -- see
  // UplinkConfig::sndbuf_bytes.
  std::size_t sndbuf_bytes{0};
  // finish(): how long to keep flushing before counting the rest as lost.
  std::uint64_t flush_timeout_ms{5000};
  // Whether to honour CWCT control directives from the daemon.  When
  // false, directives are decoded (the stream must stay framed) and
  // dropped: the publisher never reconfigures and never speaks CWST --
  // indistinguishable from a protocol-1 publisher to the policy.
  bool accept_control{true};
};

class EpochPublisher {
 public:
  struct Stats {
    std::uint64_t epochs_drained{0};
    std::uint64_t segments_sent{0};
    std::uint64_t records_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t dropped_segments{0};  // back-pressure discards
    std::uint64_t dropped_records{0};
    std::uint64_t reconnects{0};  // successful connections after the first
    std::uint64_t directives_received{0};  // CWCT frames from the daemon
    std::uint64_t sampled_out_records{0};  // suppressed by chain sampling
    std::uint64_t last_applied_seq{0};     // directive seq as of last drain
  };

  // `collector` must outlive the publisher and must not be drained by
  // anyone else while the publisher runs (epoch ownership moves here).
  // Throws TransportError when the address does not parse (oversized unix
  // path, malformed tcp host:port) -- misconfiguration fails at
  // construction, before any thread starts.
  EpochPublisher(monitor::Collector& collector, PublisherConfig config);
  ~EpochPublisher();
  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  void start();

  // Stops the drain cadence, performs the final drain, flushes the uplink
  // (bounded by flush_timeout_ms) and joins both threads.  Returns true
  // when everything queued was delivered; false when the deadline expired
  // or the daemon was unreachable and segments were counted as dropped.
  // Idempotent.
  bool finish();

  bool connected() const { return uplink_.connected(); }
  Stats stats() const;

 private:
  void run();
  void drain_once(bool final_drain);
  void handle_directive(const ControlDirective& directive);
  static UplinkConfig uplink_config(const PublisherConfig& config,
                                    std::uint32_t trace_format);

  monitor::Collector& collector_;
  PublisherConfig config_;
  std::uint32_t trace_format_;
  Uplink uplink_;

  std::thread worker_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_{false};
  bool started_{false};
  bool finished_{false};
  bool flushed_clean_{false};

  // Control plane.  Directives arrive on the uplink's worker thread and
  // are staged on the collector immediately; the drain thread reads the
  // staged seq at each boundary and acknowledges via CWST.
  std::atomic<std::uint64_t> staged_seq_{0};
  std::atomic<std::uint8_t> current_rate_index_{0};

  // Adaptive-cadence feedback from the last drain (drain thread only).
  std::uint64_t last_drain_dropped_{0};
  double last_drain_utilization_{0.0};

  std::atomic<std::uint64_t> epochs_drained_{0};
  std::atomic<std::uint64_t> sampled_out_records_{0};
  std::atomic<std::uint64_t> last_applied_seq_{0};
};

}  // namespace causeway::transport
