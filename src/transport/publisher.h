// EpochPublisher: the producer half of the cross-process collection
// transport.
//
// A monitored process runs one of these next to its Collector.  A
// background thread drains the process-local rings on the adaptive epoch
// cadence (the same Collector::drain() the in-process streaming path
// uses), encodes each non-empty bundle as a trace segment -- byte-for-byte
// the encoding `causeway-record --stream` writes to disk -- and ships it
// over a Unix-domain socket to a causeway-collectd daemon.
//
// Failure policy mirrors the probe rings, deliberately:
//
//   * Bounded, drop-not-block.  Outgoing segments queue up to
//     max_inflight_bytes; past that, *new* segments are discarded whole
//     (the already-queued clean prefix always wins) and the loss is
//     counted and reported to the daemon in a drop notice, where it
//     surfaces as CollectedLogs::publish_dropped -- distinguishable from
//     ring overflow all the way into anomaly events.  The monitored
//     process never blocks on a slow or dead collector.
//
//   * Reconnect with exponential backoff.  A daemon restart is an
//     expected event: the publisher drops nothing extra on disconnect
//     (queued segments are kept; a partially sent segment is resent from
//     its first byte, because the daemon discarded the partial tail), and
//     each new connection opens with a fresh handshake.
//
// finish() performs the final drain -- always shipped, even when empty, so
// the daemon learns the full domain inventory -- then flushes the queue
// with a deadline; whatever cannot be delivered in time is counted as
// dropped, never waited on forever.
//
// Protocol 2 adds a read path: the daemon may send CWCT control directives
// (probe mode, chain sampling rate, interface mutes) down the same socket.
// Directives are staged on the collector's runtimes immediately and take
// effect at the next drain boundary -- the epoch-apply discipline -- after
// which the publisher reports back with a CWST status frame carrying the
// applied directive seq and the records sampling suppressed that epoch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "monitor/collector.h"
#include "transport/protocol.h"

namespace causeway::transport {

struct PublisherConfig {
  std::string socket_path;
  std::string process_name;
  std::uint32_t trace_format{0};  // 0 = kTraceFormatDefault
  // Base drain interval; the adaptive cadence policy stretches/shrinks it
  // exactly as `causeway-record --stream` does.
  std::uint64_t interval_ms{50};
  bool adaptive{true};
  // Back-pressure bound on queued-but-unsent segment bytes.
  std::size_t max_inflight_bytes{4u << 20};
  // Reconnect backoff: initial delay, doubled per failure up to the max.
  std::uint64_t reconnect_initial_ms{10};
  std::uint64_t reconnect_max_ms{1000};
  // finish(): how long to keep flushing before counting the rest as lost.
  std::uint64_t flush_timeout_ms{5000};
  // Whether to honour CWCT control directives from the daemon.  When
  // false, directives are decoded (the stream must stay framed) and
  // dropped: the publisher never reconfigures and never speaks CWST --
  // indistinguishable from a protocol-1 publisher to the policy.
  bool accept_control{true};
};

class EpochPublisher {
 public:
  struct Stats {
    std::uint64_t epochs_drained{0};
    std::uint64_t segments_sent{0};
    std::uint64_t records_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t dropped_segments{0};  // back-pressure discards
    std::uint64_t dropped_records{0};
    std::uint64_t reconnects{0};  // successful connections after the first
    std::uint64_t directives_received{0};  // CWCT frames from the daemon
    std::uint64_t sampled_out_records{0};  // suppressed by chain sampling
    std::uint64_t last_applied_seq{0};     // directive seq as of last drain
  };

  // `collector` must outlive the publisher and must not be drained by
  // anyone else while the publisher runs (epoch ownership moves here).
  EpochPublisher(monitor::Collector& collector, PublisherConfig config);
  ~EpochPublisher();
  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  void start();

  // Stops the drain cadence, performs the final drain, flushes the queue
  // (bounded by flush_timeout_ms) and joins the thread.  Returns true when
  // everything queued was delivered; false when the deadline expired or the
  // daemon was unreachable and segments were counted as dropped.
  // Idempotent.
  bool finish();

  bool connected() const { return connected_.load(std::memory_order_relaxed); }
  Stats stats() const;

 private:
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::uint64_t records{0};
    bool is_segment{false};  // handshakes/notices are not back-pressure-bound
    // For drop-notice entries: segment count carried, so an unsent notice
    // folds back into the pending counters on disconnect.
    std::uint64_t notice_segments{0};
    // For control-status entries: the sampled-out delta carried, so an
    // unsent status folds its count back for the next one (accounting
    // must never lose suppressed records to a disconnect).
    bool is_status{false};
    std::uint64_t status_sampled_out{0};
  };

  void run();
  void drain_once(bool final_drain);
  void enqueue_segment(std::vector<std::uint8_t> bytes, std::uint64_t records);
  bool ensure_connected(std::uint64_t now_ms);
  void pump_socket();
  void read_socket();
  void handle_directive(const ControlDirective& directive);
  void handle_disconnect();
  bool queue_empty() const;

  monitor::Collector& collector_;
  PublisherConfig config_;
  std::uint32_t trace_format_;

  std::thread worker_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_{false};
  bool started_{false};
  bool finished_{false};
  bool flushed_clean_{false};

  // Socket state (worker thread only).
  int fd_{-1};
  std::atomic<bool> connected_{false};
  std::uint64_t backoff_ms_{0};
  std::uint64_t next_connect_ms_{0};
  bool ever_connected_{false};

  // Outgoing queue (guarded by mutex_; drained by the worker).
  std::deque<Entry> queue_;
  std::size_t inflight_segment_bytes_{0};
  std::size_t front_offset_{0};  // bytes of queue_.front() already sent

  // Back-pressure losses not yet reported to the daemon.
  std::uint64_t pending_drop_records_{0};
  std::uint64_t pending_drop_segments_{0};

  // Control plane (worker thread only).  `control_live_` flips when the
  // first CWCT arrives -- the daemon's proof that it speaks protocol 2 --
  // and resets on disconnect (the next daemon may be older).  A CWST is
  // only ever sent on a live channel; sampled-out deltas that cannot ship
  // yet are held in pending_status_sampled_out_ so no suppressed record is
  // ever lost to a reconnect.
  std::vector<std::uint8_t> in_buffer_;
  bool control_live_{false};
  std::uint64_t staged_seq_{0};       // last directive staged on the collector
  std::uint64_t last_status_seq_{0};  // last applied_seq acknowledged via CWST
  std::uint8_t current_rate_index_{0};
  std::uint64_t pending_status_sampled_out_{0};

  // Last drain's observations, feeding the adaptive cadence.
  std::uint64_t last_drain_dropped_{0};
  double last_drain_utilization_{0.0};

  std::atomic<std::uint64_t> epochs_drained_{0};
  std::atomic<std::uint64_t> segments_sent_{0};
  std::atomic<std::uint64_t> records_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> dropped_segments_{0};
  std::atomic<std::uint64_t> dropped_records_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> directives_received_{0};
  std::atomic<std::uint64_t> sampled_out_records_{0};
  std::atomic<std::uint64_t> last_applied_seq_{0};
};

}  // namespace causeway::transport
