// StreamEndpoint / Listener: the transport-agnostic byte-stream seam the
// collection fabric is layered on.
//
// Everything above this file -- framing (protocol.h), the publisher's
// queue/backoff/pump loop (uplink.h), the daemon's poll demux
// (subscriber.h), the relay tier (relay_sink.h) -- deals in connected
// stream fds and never learns what kind of socket produced them.  This is
// the only translation unit in the transport that names a socket family.
//
// Address syntax, parsed at *configure* time so misconfiguration is a
// clear error before any thread starts:
//
//   unix:/path/to/socket   Unix-domain SOCK_STREAM
//   /path/to/socket        bare path: same (back-compat spelling)
//   tcp:host:port          TCP; host resolved via getaddrinfo, port 0
//                          binds ephemeral (Listener::address() reports
//                          the resolved port)
//
// A Unix path longer than sockaddr_un::sun_path is rejected here with the
// offending length in the message -- never silently truncated into a bind
// or connect on the wrong path.
#pragma once

#include <cstdint>
#include <string>

#include "transport/protocol.h"

namespace causeway::transport {

enum class EndpointKind : std::uint8_t { kUnix = 0, kTcp = 1 };

// "unix" / "tcp" -- stable tokens for logs and stats lines.
const char* endpoint_kind_name(EndpointKind kind);

struct EndpointAddress {
  EndpointKind kind{EndpointKind::kUnix};
  std::string path;       // unix only
  std::string host;       // tcp only
  std::uint16_t port{0};  // tcp only

  // Round-trips through parse_endpoint (always with the explicit prefix).
  std::string to_string() const;
};

// Parses and validates one address spec (syntax above).  Throws
// TransportError on an unknown scheme, an oversized Unix path, a
// malformed host:port, or a port out of range.
EndpointAddress parse_endpoint(const std::string& spec);

// A connected stream socket.  Move-only; closes on destruction.  Freshly
// connected/accepted endpoints are non-blocking (the transport's pump and
// poll loops require it); raw test clients and benches flip them back with
// set_blocking(true).
class StreamEndpoint {
 public:
  StreamEndpoint() = default;
  explicit StreamEndpoint(int fd) : fd_(fd) {}
  ~StreamEndpoint() { close(); }
  StreamEndpoint(StreamEndpoint&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  StreamEndpoint& operator=(StreamEndpoint&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  StreamEndpoint(const StreamEndpoint&) = delete;
  StreamEndpoint& operator=(const StreamEndpoint&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  // Detaches the fd from RAII (callers that hand it to a poll loop).
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void set_blocking(bool blocking);
  void close();

 private:
  int fd_{-1};
};

// One connect attempt, bounded by `timeout_ms` (a TCP connect to a dead
// host would otherwise sit in SYN retransmit for minutes; Unix connects
// resolve immediately either way).  Returns an invalid endpoint on
// failure with errno preserved -- callers own the retry/backoff policy.
// `sndbuf_bytes` > 0 caps the kernel send buffer (SO_SNDBUF, set before
// connecting): back-pressure then surfaces to the caller's own queue --
// and its drop ledger -- instead of hiding megabytes in autotuned kernel
// buffers.  0 keeps the kernel default.
StreamEndpoint connect_endpoint(const EndpointAddress& address,
                                std::uint64_t timeout_ms,
                                std::size_t sndbuf_bytes = 0);

// A bound, listening, non-blocking socket.  Unix listeners replace any
// pre-existing socket file at bind and unlink it on close; TCP listeners
// bind with SO_REUSEADDR and report the kernel-resolved port.
class Listener {
 public:
  Listener() = default;
  // Binds and listens, or throws TransportError with the address in the
  // message.
  explicit Listener(const EndpointAddress& address);
  ~Listener() { close(); }
  Listener(Listener&& other) noexcept
      : fd_(other.fd_), address_(std::move(other.address_)) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      address_ = std::move(other.address_);
      other.fd_ = -1;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  EndpointKind kind() const { return address_.kind; }
  // The bound address, with an ephemeral TCP port resolved to its real
  // value.
  const EndpointAddress& address() const { return address_; }

  // Accepts one pending connection (non-blocking, CLOEXEC, TCP_NODELAY on
  // TCP).  Invalid result when nothing is pending.
  StreamEndpoint accept();
  void close();

 private:
  int fd_{-1};
  EndpointAddress address_;
};

}  // namespace causeway::transport
