#include "transport/relay_sink.h"

#include <chrono>

#include "analysis/trace_io.h"
#include "common/strings.h"

namespace causeway::transport {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One route per origin identity: a reconnecting publisher maps back onto
// its existing upstream connection instead of opening a second one.
std::string identity_key(const PeerInfo& peer) {
  return strf("%s/%llu/%u", peer.process_name.c_str(),
              static_cast<unsigned long long>(peer.pid), peer.trace_format);
}

}  // namespace

RelaySink::RelaySink(Options options) : options_(std::move(options)) {
  parse_endpoint(options_.upstream);  // configure-time validation
}

RelaySink::~RelaySink() { finish(); }

RelaySink::Route* RelaySink::route_for_peer(std::uint64_t peer_id) {
  const auto it = by_peer_.find(peer_id);
  return it == by_peer_.end() ? nullptr : it->second;
}

void RelaySink::on_connect(const PeerInfo& peer) {
  std::lock_guard lk(mutex_);
  const std::string key = identity_key(peer);
  auto it = routes_.find(key);
  if (it == routes_.end()) {
    auto route = std::make_unique<Route>();
    Route* raw = route.get();
    UplinkConfig uc;
    uc.address = options_.upstream;
    uc.process_name = peer.process_name;  // the origin's identity, not ours
    uc.pid = peer.pid;
    uc.trace_format = peer.trace_format;
    uc.max_inflight_bytes = options_.max_inflight_bytes;
    uc.reconnect_initial_ms = options_.reconnect_initial_ms;
    uc.reconnect_max_ms = options_.reconnect_max_ms;
    uc.backoff_jitter = options_.backoff_jitter;
    route->uplink = std::make_unique<Uplink>(
        uc, [this, raw](const ControlDirective& directive) {
          std::lock_guard lk(mutex_);
          relay_directive(*raw, directive);
        });
    route->uplink->start();
    it = routes_.emplace(key, std::move(route)).first;
    ++totals_.routes;
  }
  it->second->live_peer = peer.peer_id;
  by_peer_[peer.peer_id] = it->second.get();
}

void RelaySink::on_segment(const PeerInfo& peer,
                           std::span<const std::uint8_t> segment) {
  // The segment is forwarded verbatim -- the whole point of the shared
  // framing -- so only its header is read, for the record count the
  // forward/drop ledgers run on.  A relay that ever needs to re-pack
  // (filter, re-chunk) can decode_trace_columns + encode_trace_columns and
  // stay byte-identical without assembling records; verbatim forwarding
  // stays the default because it is free.
  const std::uint64_t records = analysis::trace_segment_record_count(segment);
  std::lock_guard lk(mutex_);
  Route* route = route_for_peer(peer.peer_id);
  if (route == nullptr) return;
  if (route->uplink->offer_segment(
          std::vector<std::uint8_t>(segment.begin(), segment.end()),
          records)) {
    ++totals_.segments_forwarded;
    totals_.records_forwarded += records;
  }
}

void RelaySink::on_drop_notice(const PeerInfo& peer, const DropNotice& notice) {
  std::lock_guard lk(mutex_);
  Route* route = route_for_peer(peer.peer_id);
  if (route == nullptr) return;
  route->uplink->note_drops(notice.records, notice.segments);
  totals_.drop_records_forwarded += notice.records;
  totals_.drop_segments_forwarded += notice.segments;
}

void RelaySink::on_status(const PeerInfo& peer, const ControlStatus& status) {
  std::lock_guard lk(mutex_);
  Route* route = route_for_peer(peer.peer_id);
  if (route == nullptr) return;
  // Translate the leaf-local applied seq back to the root's: the latest
  // relayed directive this acknowledgement covers.  Acks for leaf-only
  // seqs (the leaf daemon's own hello) keep the last translated value.
  std::uint64_t upstream_seq = route->last_upstream_acked;
  while (!route->seq_map.empty() &&
         route->seq_map.front().first <= status.applied_seq) {
    upstream_seq = route->seq_map.front().second;
    route->seq_map.pop_front();
  }
  route->last_upstream_acked = upstream_seq;
  route->uplink->offer_status(upstream_seq, status.sampled_out,
                              status.sample_rate_index, status.mode);
  ++totals_.statuses_forwarded;
}

void RelaySink::on_disconnect(const PeerInfo& peer, bool /*clean*/) {
  std::lock_guard lk(mutex_);
  Route* route = route_for_peer(peer.peer_id);
  if (route == nullptr) return;
  by_peer_.erase(peer.peer_id);
  if (route->live_peer == peer.peer_id) route->live_peer = 0;
  // The route (and its uplink, with whatever is still queued) stays: the
  // origin will likely reconnect, and the root's view of it should not
  // flap with the leaf connection.
}

void RelaySink::relay_directive(Route& route,
                                const ControlDirective& directive) {
  if (downstream_ == nullptr || route.live_peer == 0) return;
  const std::uint64_t local_seq =
      downstream_->send_control(route.live_peer, directive);
  route.seq_map.emplace_back(local_seq, directive.seq);
  ++totals_.directives_relayed;
}

bool RelaySink::finish() {
  std::vector<Uplink*> uplinks;
  {
    std::lock_guard lk(mutex_);
    if (finished_) return flushed_clean_;
    finished_ = true;
    uplinks.reserve(routes_.size());
    for (auto& [key, route] : routes_) uplinks.push_back(route->uplink.get());
  }
  // One deadline across every route: a wedged upstream costs
  // flush_timeout_ms once, not once per publisher.
  const std::uint64_t deadline = steady_ms() + options_.flush_timeout_ms;
  bool clean = true;
  for (Uplink* uplink : uplinks) {
    const std::uint64_t now = steady_ms();
    const std::uint64_t budget = deadline > now ? deadline - now : 0;
    clean = uplink->finish(budget) && clean;
  }
  std::lock_guard lk(mutex_);
  flushed_clean_ = clean;
  return clean;
}

RelaySink::Totals RelaySink::totals() const {
  std::lock_guard lk(mutex_);
  Totals t = totals_;
  for (const auto& [key, route] : routes_) {
    const Uplink::Stats s = route->uplink->stats();
    t.relay_dropped_segments += s.dropped_segments;
    t.relay_dropped_records += s.dropped_records;
    t.upstream_bytes += s.bytes_sent;
    t.upstream_reconnects += s.reconnects;
  }
  return t;
}

}  // namespace causeway::transport
