#include "transport/ingest_sink.h"

namespace causeway::transport {

void IngestSink::on_connect(const PeerInfo& peer) {
  if (!options_.merged_path.empty()) {
    // Ensure the peer has a group even if it never ships a segment, so a
    // silent publisher still appears (empty) in the deterministic order.
    std::lock_guard lk(mutex_);
    retained_[PeerKey{peer.process_name, peer.pid}];
  }
}

void IngestSink::on_segment(const PeerInfo& peer,
                            std::span<const std::uint8_t> segment) {
  std::size_t records = 0;
  analysis::EpochInfo info;
  if (options_.pipeline) {
    const monitor::CollectedLogs logs =
        analysis::decode_trace_segment(segment);
    records = logs.records.size();
    info = options_.pipeline->ingest(logs);
  } else {
    records = analysis::decode_trace_segment(segment).records.size();
  }
  {
    std::lock_guard lk(mutex_);
    ++totals_.segments;
    totals_.records += records;
    if (!options_.merged_path.empty()) {
      retained_[PeerKey{peer.process_name, peer.pid}].emplace_back(
          segment.begin(), segment.end());
    }
  }
  if (options_.pipeline && epoch_callback) epoch_callback(peer, info);
}

void IngestSink::on_drop_notice(const PeerInfo& peer,
                                const DropNotice& notice) {
  {
    std::lock_guard lk(mutex_);
    totals_.publish_dropped_records += notice.records;
    totals_.publish_dropped_segments += notice.segments;
  }
  if (options_.pipeline) {
    // Synthesize an empty bundle carrying only the transport-tier loss:
    // the counter accumulates in the database and the anomaly pass emits a
    // publish-drop event, without inventing records.
    monitor::CollectedLogs loss;
    loss.publish_dropped = notice.records;
    const analysis::EpochInfo info = options_.pipeline->ingest(loss);
    if (epoch_callback) epoch_callback(peer, info);
  }
}

void IngestSink::on_disconnect(const PeerInfo&, bool) {}

IngestSink::Totals IngestSink::finalize() {
  std::lock_guard lk(mutex_);
  if (!options_.merged_path.empty()) {
    analysis::TraceWriter writer(options_.merged_path,
                                 options_.merged_format);
    for (const auto& [key, segments] : retained_) {
      for (const std::vector<std::uint8_t>& segment : segments) {
        writer.append_encoded(segment);
        ++totals_.merged_segments;
      }
    }
    writer.close();
    retained_.clear();
  }
  return totals_;
}

}  // namespace causeway::transport
