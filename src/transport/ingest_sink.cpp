#include "transport/ingest_sink.h"

#include <chrono>
#include <optional>

namespace causeway::transport {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// RAII attribution bracket: anomaly events emitted by the pipeline while
// this is alive are charged to `peer_id` in the policy.
class Attribution {
 public:
  Attribution(ControlPolicy* policy, std::uint64_t peer_id,
              std::uint64_t now_ms)
      : policy_(policy) {
    if (policy_) policy_->begin_attribution(peer_id, now_ms);
  }
  ~Attribution() {
    if (policy_) policy_->end_attribution();
  }
  Attribution(const Attribution&) = delete;
  Attribution& operator=(const Attribution&) = delete;

 private:
  ControlPolicy* policy_;
};

}  // namespace

IngestSink::IngestSink(Options options) : options_(std::move(options)) {
  if (!options_.store_dir.empty()) {
    store_ = std::make_unique<store::StoreWriter>(options_.store_dir,
                                                  options_.store_options);
  }
}

void IngestSink::on_connect(const PeerInfo& peer) {
  if (options_.policy) options_.policy->on_peer_connect(peer, steady_ms());
  if (!options_.merged_path.empty()) {
    // Ensure the peer has a group even if it never ships a segment, so a
    // silent publisher still appears (empty) in the deterministic order.
    std::lock_guard lk(mutex_);
    retained_[PeerKey{peer.process_name, peer.pid}];
  }
}

void IngestSink::on_segment(const PeerInfo& peer,
                            std::span<const std::uint8_t> segment) {
  const std::uint64_t now = steady_ms();
  std::size_t records = 0;
  analysis::EpochInfo info;
  // The version word sits at bytes [4,8) of every segment; v4 segments
  // stay in column form all the way into the pipeline -- no record-major
  // assembly on the live collection path.
  std::uint32_t version = 0;
  if (segment.size() >= 8) {
    for (std::size_t i = 0; i < 4; ++i) {
      version |= static_cast<std::uint32_t>(segment[4 + i]) << (8 * i);
    }
  }
  // A v5 store wants the segment's columns (to re-encode them with
  // compression); decode once and share with the pipeline.
  const bool transcode =
      store_ && version >= 4 &&
      options_.store_options.trace_format == analysis::kTraceFormatV5;
  std::optional<analysis::ColumnBundle> cols;
  if (version >= 4 && (options_.pipeline || transcode)) {
    cols = analysis::decode_trace_segment_columns(segment);
  }
  if (options_.pipeline) {
    if (cols) {
      records = cols->count;
      Attribution scope(options_.policy, peer.peer_id, now);
      info = options_.pipeline->ingest(*cols);
    } else {
      const monitor::CollectedLogs logs =
          analysis::decode_trace_segment(segment);
      records = logs.records.size();
      Attribution scope(options_.policy, peer.peer_id, now);
      info = options_.pipeline->ingest(logs);
    }
  } else if (cols) {
    records = cols->count;
  } else {
    records = analysis::decode_trace_segment(segment).records.size();
  }
  if (store_) {
    // Stream to the store now -- durability is the point -- not at
    // finalize.  Arrival order is fine: queries pair events by chain and
    // event number, so the merged-file determinism dance is unnecessary.
    if (transcode) {
      store_->append(*cols);
    } else {
      store_->append_encoded(segment);
    }
  }
  if (options_.policy) options_.policy->on_segment(peer, records, now);
  {
    std::lock_guard lk(mutex_);
    ++totals_.segments;
    totals_.records += records;
    if (!options_.merged_path.empty()) {
      retained_[PeerKey{peer.process_name, peer.pid}].emplace_back(
          segment.begin(), segment.end());
    }
  }
  if (options_.pipeline && epoch_callback) epoch_callback(peer, info);
}

void IngestSink::on_drop_notice(const PeerInfo& peer,
                                const DropNotice& notice) {
  const std::uint64_t now = steady_ms();
  if (options_.policy) options_.policy->on_drop_notice(peer, notice, now);
  {
    std::lock_guard lk(mutex_);
    totals_.publish_dropped_records += notice.records;
    totals_.publish_dropped_segments += notice.segments;
  }
  if (options_.pipeline) {
    // Synthesize an empty bundle carrying only the transport-tier loss:
    // the counter accumulates in the database and the anomaly pass emits a
    // publish-drop event, without inventing records.
    monitor::CollectedLogs loss;
    loss.publish_dropped = notice.records;
    analysis::EpochInfo info;
    {
      Attribution scope(options_.policy, peer.peer_id, now);
      info = options_.pipeline->ingest(loss);
    }
    if (epoch_callback) epoch_callback(peer, info);
  }
}

void IngestSink::on_status(const PeerInfo& peer, const ControlStatus& status) {
  const std::uint64_t now = steady_ms();
  if (options_.policy) options_.policy->on_status(peer, status, now);
  {
    std::lock_guard lk(mutex_);
    totals_.sampled_out_records += status.sampled_out;
  }
  if (options_.pipeline && status.sampled_out > 0) {
    // Same trick as drop notices: an empty bundle carries the suppressed
    // count into the database, so its accounting reconciles sampling
    // exactly -- records + sampled_out adds up across the whole plane.
    monitor::CollectedLogs suppressed;
    suppressed.sampled_out = status.sampled_out;
    options_.pipeline->ingest(suppressed);
  }
}

void IngestSink::on_disconnect(const PeerInfo& peer, bool) {
  if (options_.policy) options_.policy->on_peer_disconnect(peer);
}

IngestSink::Totals IngestSink::finalize() {
  std::lock_guard lk(mutex_);
  if (store_) {
    totals_.store_segments = store_->segments();
    store_->close();  // seals the live file
    totals_.store_files_sealed = store_->files_sealed();
    store_.reset();
  }
  if (!options_.merged_path.empty()) {
    analysis::TraceWriter writer(options_.merged_path,
                                 options_.merged_format);
    for (const auto& [key, segments] : retained_) {
      for (const std::vector<std::uint8_t>& segment : segments) {
        writer.append_encoded(segment);
        ++totals_.merged_segments;
      }
    }
    writer.close();
    retained_.clear();
  }
  return totals_;
}

}  // namespace causeway::transport
