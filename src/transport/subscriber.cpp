#include "transport/subscriber.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "analysis/trace_io.h"
#include "common/strings.h"
#include "common/wire_io.h"

namespace causeway::transport {

#if !defined(CAUSEWAY_HAS_POSIX_IO)
#error "the collection transport requires POSIX sockets"
#endif

struct CollectorDaemon::Connection {
  int fd{-1};
  PeerInfo peer;
  bool handshaken{false};
  std::vector<std::uint8_t> buffer;  // unconsumed frame bytes
  bool dead{false};
  bool dead_clean{true};
};

CollectorDaemon::CollectorDaemon(Options options, DaemonSink& sink)
    : options_(std::move(options)), sink_(sink) {
  if (options_.read_chunk == 0) options_.read_chunk = 64 * 1024;
}

CollectorDaemon::~CollectorDaemon() { stop(); }

void CollectorDaemon::start() {
  if (started_) return;
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw TransportError(
        strf("socket path too long (%zu bytes, limit %zu): %s",
             options_.socket_path.size(), sizeof(addr.sun_path) - 1,
             options_.socket_path.c_str()));
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw TransportError(strf("socket(): %s", std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TransportError(strf("bind(%s): %s", options_.socket_path.c_str(),
                              std::strerror(err)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    throw TransportError(strf("listen(%s): %s", options_.socket_path.c_str(),
                              std::strerror(err)));
  }
  ::fcntl(listen_fd_, F_SETFL, ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);
  stop_requested_.store(false, std::memory_order_relaxed);
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

void CollectorDaemon::stop() {
  if (!started_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  worker_.join();
  started_ = false;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
}

CollectorDaemon::Stats CollectorDaemon::stats() const {
  std::lock_guard lk(stats_mutex_);
  return stats_;
}

void CollectorDaemon::run() {
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t polled = connections_.size();
    for (const auto& conn : connections_) {
      fds.push_back({conn->fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->peer.peer_id = next_peer_id_++;
        connections_.push_back(std::move(conn));
        std::lock_guard lk(stats_mutex_);
        ++stats_.connections_total;
        ++stats_.connections_active;
      }
    }
    for (std::size_t i = 0; i < polled; ++i) {
      const short revents = fds[i + 1].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        service(*connections_[i]);
      }
    }
    // Reap: erase dead connections after the service pass so pollfd
    // indices stay aligned within one iteration.
    for (std::size_t i = 0; i < connections_.size();) {
      if (connections_[i]->dead) {
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : connections_) {
    close_connection(*conn, conn->buffer.empty());
  }
  connections_.clear();
}

void CollectorDaemon::service(Connection& conn) {
  std::vector<std::uint8_t> chunk(options_.read_chunk);
  for (;;) {
    const long got = io_read_some(conn.fd, chunk.data(), chunk.size());
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn, conn.buffer.empty());
      return;
    }
    if (got == 0) {
      // Peer closed.  Any buffered remainder is an incomplete frame cut
      // off by the close; consume what is whole, discard the tail.
      consume_frames(conn);
      close_connection(conn, conn.buffer.empty());
      return;
    }
    {
      std::lock_guard lk(stats_mutex_);
      stats_.bytes_received += static_cast<std::uint64_t>(got);
    }
    conn.buffer.insert(conn.buffer.end(), chunk.begin(), chunk.begin() + got);
    if (!consume_frames(conn)) return;  // protocol error, closed
    if (static_cast<std::size_t>(got) < chunk.size()) break;
  }
}

bool CollectorDaemon::consume_frames(Connection& conn) {
  std::size_t consumed = 0;
  try {
    for (;;) {
      const std::span<const std::uint8_t> rest(conn.buffer.data() + consumed,
                                               conn.buffer.size() - consumed);
      if (rest.empty()) break;
      if (!conn.handshaken) {
        auto hs = try_decode_handshake(rest);
        if (!hs) break;
        conn.peer.process_name = std::move(hs->first.process_name);
        conn.peer.pid = hs->first.pid;
        conn.peer.protocol = hs->first.protocol;
        conn.peer.trace_format = hs->first.trace_format;
        conn.handshaken = true;
        consumed += hs->second;
        sink_.on_connect(conn.peer);
        continue;
      }
      const std::uint32_t magic = peek_frame_magic(rest);
      if (rest.size() >= 4 && magic == kDropNoticeMagic) {
        auto notice = try_decode_drop_notice(rest);
        if (!notice) break;
        consumed += notice->second;
        {
          std::lock_guard lk(stats_mutex_);
          ++stats_.drop_notices;
        }
        sink_.on_drop_notice(conn.peer, notice->first);
        continue;
      }
      if (rest.size() >= 4 && magic == kHandshakeMagic) {
        throw TransportError("handshake repeated mid-stream");
      }
      std::size_t length = 0;
      bool is_segment = false;
      if (!analysis::probe_trace_block(rest, length, is_segment)) break;
      if (is_segment) {
        {
          std::lock_guard lk(stats_mutex_);
          ++stats_.segments_received;
        }
        sink_.on_segment(conn.peer, rest.subspan(0, length));
      }
      // A directory trailer on a socket is harmless metadata: skip it.
      consumed += length;
    }
  } catch (const std::exception&) {
    // TransportError or TraceIoError: the stream is structurally broken.
    // Contain the blast radius to this connection.
    {
      std::lock_guard lk(stats_mutex_);
      ++stats_.protocol_errors;
    }
    conn.buffer.clear();
    close_connection(conn, /*clean=*/false);
    return false;
  }
  if (consumed > 0) {
    conn.buffer.erase(conn.buffer.begin(),
                      conn.buffer.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return true;
}

void CollectorDaemon::close_connection(Connection& conn, bool clean) {
  if (conn.dead) return;
  conn.dead = true;
  conn.dead_clean = clean;
  {
    std::lock_guard lk(stats_mutex_);
    if (stats_.connections_active > 0) --stats_.connections_active;
    stats_.partial_tail_bytes += conn.buffer.size();
  }
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  if (conn.handshaken) {
    sink_.on_disconnect(conn.peer, clean && conn.buffer.empty());
  }
  conn.buffer.clear();
}

}  // namespace causeway::transport
