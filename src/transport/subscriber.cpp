#include "transport/subscriber.h"

#include <cerrno>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#endif

#include "analysis/trace_io.h"
#include "common/strings.h"
#include "common/wire_io.h"

namespace causeway::transport {

#if !defined(CAUSEWAY_HAS_POSIX_IO)
#error "the collection transport requires POSIX sockets"
#endif

struct CollectorDaemon::Connection {
  StreamEndpoint endpoint;
  PeerInfo peer;
  bool handshaken{false};
  std::vector<std::uint8_t> buffer;  // unconsumed frame bytes
  std::vector<std::uint8_t> out;     // control bytes awaiting the socket
  std::size_t out_offset{0};         // written prefix of `out`
  bool dead{false};
  bool dead_clean{true};
};

CollectorDaemon::CollectorDaemon(Options options, DaemonSink& sink)
    : options_(std::move(options)), sink_(sink) {
  if (options_.read_chunk == 0) options_.read_chunk = 64 * 1024;
  if (options_.listen.empty()) {
    throw TransportError("collector daemon needs at least one listen address");
  }
  addresses_.reserve(options_.listen.size());
  for (const std::string& spec : options_.listen) {
    addresses_.push_back(parse_endpoint(spec));
  }
}

CollectorDaemon::~CollectorDaemon() { stop(); }

void CollectorDaemon::start() {
  if (started_) return;
  // Bind everything before the thread starts; a failure mid-way unwinds
  // the locals, releasing (and unlinking) whatever already bound.
  std::vector<Listener> listeners;
  listeners.reserve(addresses_.size());
  for (const EndpointAddress& address : addresses_) {
    listeners.emplace_back(address);
  }
  listeners_ = std::move(listeners);
  {
    std::lock_guard lk(stats_mutex_);
    for (const Listener& l : listeners_) {
      if (l.kind() == EndpointKind::kTcp) {
        ++stats_.listeners_tcp;
      } else {
        ++stats_.listeners_unix;
      }
    }
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

void CollectorDaemon::stop() {
  if (!started_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  worker_.join();
  started_ = false;
  listeners_.clear();  // closes fds, unlinks unix socket files
  std::lock_guard lk(stats_mutex_);
  stats_.listeners_unix = 0;
  stats_.listeners_tcp = 0;
}

std::vector<EndpointAddress> CollectorDaemon::listen_addresses() const {
  std::vector<EndpointAddress> out;
  out.reserve(listeners_.size());
  for (const Listener& l : listeners_) out.push_back(l.address());
  return out;
}

CollectorDaemon::Stats CollectorDaemon::stats() const {
  std::lock_guard lk(stats_mutex_);
  return stats_;
}

std::uint64_t CollectorDaemon::send_control(std::uint64_t peer_id,
                                            ControlDirective directive) {
  std::lock_guard lk(control_mutex_);
  directive.seq = ++next_control_seq_;
  pending_control_.emplace_back(peer_id, encode_control(directive));
  return directive.seq;
}

// Moves queued directives into their connection's out buffer; runs on the
// daemon thread each loop iteration.  Directives for peers that are gone
// or that speak protocol 1 (no control plane) are dropped here -- sending
// CWCT to a v1 publisher would be a frame it cannot parse.
void CollectorDaemon::drain_control_queue() {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> pending;
  {
    std::lock_guard lk(control_mutex_);
    pending.swap(pending_control_);
  }
  for (auto& [peer_id, bytes] : pending) {
    for (auto& conn : connections_) {
      if (conn->dead || !conn->handshaken) continue;
      if (conn->peer.peer_id != peer_id) continue;
      if (conn->peer.protocol < 2) break;
      conn->out.insert(conn->out.end(), bytes.begin(), bytes.end());
      std::lock_guard lk(stats_mutex_);
      ++stats_.control_sent;
      break;
    }
  }
}

// Nonblocking write of the connection's pending control bytes; partial
// writes keep their offset, a hard error closes the connection with the
// usual containment.
void CollectorDaemon::flush_out(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const long wrote =
        io_write_some(conn.endpoint.fd(), conn.out.data() + conn.out_offset,
                      conn.out.size() - conn.out_offset);
    if (wrote < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_connection(conn, conn.buffer.empty());
      return;
    }
    conn.out_offset += static_cast<std::size_t>(wrote);
  }
  conn.out.clear();
  conn.out_offset = 0;
}

void CollectorDaemon::run() {
  std::vector<pollfd> fds;
  const std::size_t nlisten = listeners_.size();
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    drain_control_queue();
    fds.clear();
    for (const Listener& l : listeners_) {
      fds.push_back({l.fd(), POLLIN, 0});
    }
    const std::size_t polled = connections_.size();
    for (const auto& conn : connections_) {
      const short events = static_cast<short>(
          POLLIN | (conn->out_offset < conn->out.size() ? POLLOUT : 0));
      fds.push_back({conn->endpoint.fd(), events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t li = 0; li < nlisten; ++li) {
      if (!(fds[li].revents & POLLIN)) continue;
      for (;;) {
        StreamEndpoint accepted = listeners_[li].accept();
        if (!accepted.valid()) break;
        auto conn = std::make_unique<Connection>();
        conn->endpoint = std::move(accepted);
        conn->peer.peer_id = next_peer_id_++;
        conn->peer.transport = listeners_[li].kind();
        const EndpointKind kind = conn->peer.transport;
        connections_.push_back(std::move(conn));
        std::lock_guard lk(stats_mutex_);
        ++stats_.connections_total;
        ++stats_.connections_active;
        if (kind == EndpointKind::kTcp) {
          ++stats_.connections_tcp;
        } else {
          ++stats_.connections_unix;
        }
      }
    }
    for (std::size_t i = 0; i < polled; ++i) {
      const short revents = fds[i + nlisten].revents;
      if (revents & POLLOUT) {
        flush_out(*connections_[i]);
      }
      if (connections_[i]->dead) continue;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        service(*connections_[i]);
      }
    }
    // Reap: erase dead connections after the service pass so pollfd
    // indices stay aligned within one iteration.
    for (std::size_t i = 0; i < connections_.size();) {
      if (connections_[i]->dead) {
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : connections_) {
    close_connection(*conn, conn->buffer.empty());
  }
  connections_.clear();
}

void CollectorDaemon::service(Connection& conn) {
  std::vector<std::uint8_t> chunk(options_.read_chunk);
  for (;;) {
    const long got = io_read_some(conn.endpoint.fd(), chunk.data(),
                                  chunk.size());
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn, conn.buffer.empty());
      return;
    }
    if (got == 0) {
      // Peer closed.  Any buffered remainder is an incomplete frame cut
      // off by the close; consume what is whole, discard the tail.
      consume_frames(conn);
      close_connection(conn, conn.buffer.empty());
      return;
    }
    {
      std::lock_guard lk(stats_mutex_);
      stats_.bytes_received += static_cast<std::uint64_t>(got);
    }
    conn.buffer.insert(conn.buffer.end(), chunk.begin(), chunk.begin() + got);
    if (!consume_frames(conn)) return;  // protocol error, closed
    if (static_cast<std::size_t>(got) < chunk.size()) break;
  }
}

bool CollectorDaemon::consume_frames(Connection& conn) {
  std::size_t consumed = 0;
  try {
    for (;;) {
      const std::span<const std::uint8_t> rest(conn.buffer.data() + consumed,
                                               conn.buffer.size() - consumed);
      if (rest.empty()) break;
      if (!conn.handshaken) {
        auto hs = try_decode_handshake(rest);
        if (!hs) break;
        conn.peer.process_name = std::move(hs->first.process_name);
        conn.peer.pid = hs->first.pid;
        conn.peer.protocol = hs->first.protocol;
        conn.peer.trace_format = hs->first.trace_format;
        conn.handshaken = true;
        consumed += hs->second;
        sink_.on_connect(conn.peer);
        if (conn.peer.protocol >= 2) {
          // Control-channel hello: an empty directive whose acknowledgement
          // tells the publisher (and, via CWST, the policy) that control is
          // live.  A v1 peer gets nothing -- it cannot parse CWCT.
          ControlDirective hello;
          {
            std::lock_guard lk(control_mutex_);
            hello.seq = ++next_control_seq_;
          }
          const std::vector<std::uint8_t> bytes = encode_control(hello);
          conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
          std::lock_guard lk(stats_mutex_);
          ++stats_.control_sent;
        }
        continue;
      }
      const std::uint32_t magic = peek_frame_magic(rest);
      if (rest.size() >= 4 && magic == kDropNoticeMagic) {
        auto notice = try_decode_drop_notice(rest);
        if (!notice) break;
        consumed += notice->second;
        {
          std::lock_guard lk(stats_mutex_);
          ++stats_.drop_notices;
        }
        sink_.on_drop_notice(conn.peer, notice->first);
        continue;
      }
      if (rest.size() >= 4 && magic == kStatusMagic) {
        auto status = try_decode_status(rest);
        if (!status) break;
        consumed += status->second;
        {
          std::lock_guard lk(stats_mutex_);
          ++stats_.statuses_received;
        }
        sink_.on_status(conn.peer, status->first);
        continue;
      }
      if (rest.size() >= 4 && magic == kHandshakeMagic) {
        throw TransportError("handshake repeated mid-stream");
      }
      std::size_t length = 0;
      bool is_segment = false;
      if (!analysis::probe_trace_block(rest, length, is_segment)) break;
      if (is_segment) {
        {
          std::lock_guard lk(stats_mutex_);
          ++stats_.segments_received;
        }
        sink_.on_segment(conn.peer, rest.subspan(0, length));
      }
      // A directory trailer on a socket is harmless metadata: skip it.
      consumed += length;
    }
  } catch (const std::exception&) {
    // TransportError or TraceIoError: the stream is structurally broken.
    // Contain the blast radius to this connection.
    {
      std::lock_guard lk(stats_mutex_);
      ++stats_.protocol_errors;
    }
    conn.buffer.clear();
    close_connection(conn, /*clean=*/false);
    return false;
  }
  if (consumed > 0) {
    conn.buffer.erase(conn.buffer.begin(),
                      conn.buffer.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return true;
}

void CollectorDaemon::close_connection(Connection& conn, bool clean) {
  if (conn.dead) return;
  conn.dead = true;
  conn.dead_clean = clean;
  {
    std::lock_guard lk(stats_mutex_);
    if (stats_.connections_active > 0) --stats_.connections_active;
    stats_.partial_tail_bytes += conn.buffer.size();
  }
  conn.endpoint.close();
  if (conn.handshaken) {
    sink_.on_disconnect(conn.peer, clean && conn.buffer.empty());
  }
  conn.buffer.clear();
}

}  // namespace causeway::transport
