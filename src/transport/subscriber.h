// CollectorDaemon: the consumer half of the cross-process collection
// transport.
//
// One daemon thread owns a set of listening endpoints -- any mix of
// Unix-domain and TCP, one per address spec in Options::listen -- and a
// poll() loop over every accepted publisher connection.  Per connection it
// enforces the protocol from protocol.h: a handshake frame first, then any
// interleaving of trace segments and drop notices.  Complete frames are
// demultiplexed by their leading magic (envelope frames decode here;
// segment extents come from trace_io's probe_trace_block) and handed to a
// DaemonSink still encoded -- the sink decides whether to decode into an
// AnalysisPipeline, append verbatim to a merged trace file, relay upstream
// to another collectd tier, or any combination.
//
// Nothing here names a socket family: the transport seam is
// endpoint.h's Listener/StreamEndpoint, and a connection is the same
// byte stream whichever kind of socket carries it.
//
// Failure containment, per connection:
//   * A protocol error (bad magic, wrong version, corrupt segment) closes
//     that connection only; the daemon and its other publishers carry on.
//   * An abrupt close (publisher crashed, or is about to reconnect) can
//     leave at most one incomplete frame buffered; it is discarded -- the
//     clean-prefix discipline TraceTail applies to a crashed writer's
//     file, applied to a dead peer's stream.
//
// Sink callbacks run on the daemon thread, serialized across all
// connections and listeners, so a sink needs no locking of its own
// against the daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "transport/endpoint.h"
#include "transport/protocol.h"

namespace causeway::transport {

struct PeerInfo {
  std::uint64_t peer_id{0};  // daemon-local, unique per connection
  std::string process_name;
  std::uint64_t pid{0};
  std::uint32_t protocol{0};
  std::uint32_t trace_format{0};
  // Which kind of listener accepted this connection.
  EndpointKind transport{EndpointKind::kUnix};
};

class DaemonSink {
 public:
  virtual ~DaemonSink() = default;
  virtual void on_connect(const PeerInfo&) {}
  // One complete trace segment, still encoded (decode_trace_segment on it
  // as needed).  The span is valid only for the duration of the call.
  virtual void on_segment(const PeerInfo& peer,
                          std::span<const std::uint8_t> segment) = 0;
  virtual void on_drop_notice(const PeerInfo&, const DropNotice&) {}
  // A protocol >= 2 publisher acknowledged control and/or reported records
  // suppressed by sampling since its previous status (a delta).
  virtual void on_status(const PeerInfo&, const ControlStatus&) {}
  // The bool is false when buffered bytes (an incomplete frame) were
  // discarded or the connection died on a protocol error.
  virtual void on_disconnect(const PeerInfo&, bool /*clean*/) {}
};

class CollectorDaemon {
 public:
  struct Options {
    // Endpoint specs to listen on: "unix:/path", "tcp:host:port" (port 0
    // binds ephemeral; see listen_addresses()), or a bare socket path.
    // At least one is required.
    std::vector<std::string> listen;
    std::size_t read_chunk{64 * 1024};
  };

  struct Stats {
    std::uint64_t connections_total{0};
    std::uint64_t connections_active{0};
    std::uint64_t segments_received{0};
    std::uint64_t bytes_received{0};
    std::uint64_t drop_notices{0};
    std::uint64_t protocol_errors{0};
    std::uint64_t partial_tail_bytes{0};  // discarded on abrupt closes
    std::uint64_t control_sent{0};        // directives queued to publishers
    std::uint64_t statuses_received{0};   // CWST frames from publishers
    // Per-transport breakdown of the fabric: how many listeners of each
    // kind are bound, and how many connections each kind has accepted.
    std::uint64_t listeners_unix{0};
    std::uint64_t listeners_tcp{0};
    std::uint64_t connections_unix{0};
    std::uint64_t connections_tcp{0};
  };

  // `sink` must outlive the daemon.  Every listen address is parsed here,
  // so a bad spec (oversized unix path, malformed host:port) throws before
  // anything binds.
  CollectorDaemon(Options options, DaemonSink& sink);
  ~CollectorDaemon();
  CollectorDaemon(const CollectorDaemon&) = delete;
  CollectorDaemon& operator=(const CollectorDaemon&) = delete;

  // Binds every listener -- all listening when start() returns, so
  // publishers started afterwards cannot race a bind -- and starts the
  // daemon thread.  Throws TransportError when any bind fails (listeners
  // already bound are released).
  void start();
  // Drains nothing further: closes every connection (counting buffered
  // partial frames as discarded), joins the thread, closes the listeners
  // (unlinking unix socket files).  Idempotent.
  void stop();

  // The bound listen addresses, with ephemeral TCP ports resolved to their
  // kernel-assigned values.  Valid after start().
  std::vector<EndpointAddress> listen_addresses() const;

  // Queues a control directive for one publisher; the daemon thread's next
  // loop iteration writes it out (nonblocking, interleaved with reads on
  // the same poll set).  Thread-safe -- call it from a policy reacting to
  // sink callbacks, or from any other thread.  The directive's `seq` is
  // assigned here (daemon-wide monotonic) and returned; directives for a
  // peer that is gone or speaks protocol 1 are discarded on the daemon
  // thread (a v1 publisher cannot parse CWCT).
  std::uint64_t send_control(std::uint64_t peer_id,
                             ControlDirective directive);

  Stats stats() const;

 private:
  struct Connection;

  void run();
  void service(Connection& conn);
  bool consume_frames(Connection& conn);
  void flush_out(Connection& conn);
  void close_connection(Connection& conn, bool clean);
  void drain_control_queue();

  Options options_;
  std::vector<EndpointAddress> addresses_;  // parsed at construction
  DaemonSink& sink_;
  std::vector<Listener> listeners_;
  std::thread worker_;
  std::atomic<bool> stop_requested_{false};
  bool started_{false};
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_peer_id_{1};

  std::mutex control_mutex_;
  std::uint64_t next_control_seq_{0};  // guarded by control_mutex_
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
      pending_control_;  // peer_id -> encoded CWCT, guarded by control_mutex_

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace causeway::transport
